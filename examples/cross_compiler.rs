//! A look inside the pipeline (the paper's Figures 2–3): the same source
//! compiled by two vendors, its strand decomposition, the lifted IVL, and
//! a strand-level VCP computed by the verifier.
//!
//! Run with: `cargo run --release --example cross_compiler`

use esh::prelude::*;
use esh_core::{vcp_pair, VcpConfig};
use esh_minic::demo;
use esh_strands::lift_strand;
use esh_verifier::VerifierSession;

fn main() {
    let source = demo::heartbleed_like();
    let gcc = Compiler::new(Vendor::Gcc, VendorVersion::new(4, 9)).compile_function(&source);
    let icc = Compiler::new(Vendor::Icc, VendorVersion::new(15, 0)).compile_function(&source);

    println!("== gcc 4.9 -O2 ==\n{gcc}");
    println!("== icc 15.0 -O2 ==\n{icc}");

    // Decompose both into strands (Algorithm 1).
    let gcc_strands = extract_proc_strands(&gcc);
    let icc_strands = extract_proc_strands(&icc);
    println!(
        "gcc: {} blocks, {} strands; icc: {} blocks, {} strands\n",
        gcc.blocks.len(),
        gcc_strands.len(),
        icc.blocks.len(),
        icc_strands.len()
    );

    // Show one strand and its lifted IVL (compare the paper's Figure 3).
    let sample = gcc_strands
        .iter()
        .max_by_key(|s| s.insts.len())
        .expect("non-empty");
    println!("largest gcc strand (block {}):", sample.block);
    for i in &sample.insts {
        println!("  {i}");
    }
    let lifted = lift_strand(sample);
    println!("\nlifted IVL:\n{lifted}");

    // Compute the best VCP of that strand against every icc strand.
    let mut session = VerifierSession::new();
    let config = VcpConfig::default();
    let mut best = (0.0f64, usize::MAX);
    for (k, t) in icc_strands.iter().enumerate() {
        let t_lifted = lift_strand(t);
        if t_lifted.vars.len() < config.min_strand_vars {
            continue;
        }
        let v = vcp_pair(&mut session, &lifted, &t_lifted, &config);
        if v.q_in_t > best.0 {
            best = (v.q_in_t, k);
        }
    }
    if best.1 != usize::MAX {
        println!(
            "best matching icc strand (VCP = {:.3}) in block {}:",
            best.0, icc_strands[best.1].block
        );
        for i in &icc_strands[best.1].insts {
            println!("  {i}");
        }
    }
    println!("\nverifier statistics: {:?}", session.stats());
}
