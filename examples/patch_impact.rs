//! Patch impact study (§5.3's prediction: "precision will decline as the
//! size of the patch grows"): measure GES between a procedure and
//! increasingly patched versions of its own source.
//!
//! Run with: `cargo run --release --example patch_impact`

use esh::prelude::*;
use esh_minic::demo;
use esh_minic::patch::{apply_patch, PatchLevel};

fn main() {
    let source = demo::wget_like();
    let cc = Compiler::new(Vendor::Gcc, VendorVersion::new(4, 9));
    let query = cc.compile_function(&source);

    let mut engine = SimilarityEngine::new(EngineConfig::default());
    let mut labels = Vec::new();
    // Unpatched cross-vendor build as the reference point.
    let clang = Compiler::new(Vendor::Clang, VendorVersion::new(3, 5));
    labels.push((
        "unpatched [clang 3.5]".to_string(),
        engine.add_target("unpatched", &clang.compile_function(&source)),
    ));
    for level in [PatchLevel::Minor, PatchLevel::Moderate, PatchLevel::Major] {
        let patched = apply_patch(&source, level, 42);
        let name = format!("{:?} patch ({} edits) [clang 3.5]", level, level.edits());
        labels.push((
            name.clone(),
            engine.add_target(name, &clang.compile_function(&patched)),
        ));
    }
    // An unrelated procedure for scale.
    labels.push((
        "unrelated [clang 3.5]".to_string(),
        engine.add_target("unrelated", &clang.compile_function(&demo::venom_like())),
    ));

    let scores = engine.query(&query);
    println!("GES of wget-like query vs patched variants (cross-vendor):");
    for (name, id) in &labels {
        let s = scores
            .scores
            .iter()
            .find(|s| s.target == *id)
            .expect("scored");
        println!("  {:>9.3}  {name}", s.ges);
    }
    println!("\nExpected shape: monotone-ish decline with patch size, with the");
    println!("unrelated procedure far below every variant of the true source.");
}
