//! Quickstart: compile one source function with two different "vendors"
//! and measure their statistical similarity with Esh.
//!
//! Run with: `cargo run --release --example quickstart`

use esh::prelude::*;
use esh_minic::demo;

fn main() {
    // A small C-like source function (see `esh_minic::demo`).
    let source = demo::saturating_sum();
    println!("source:\n{source}");

    // Compile it twice: a gcc-flavoured and a clang-flavoured toolchain.
    let gcc = Compiler::new(Vendor::Gcc, VendorVersion::new(4, 9));
    let clang = Compiler::new(Vendor::Clang, VendorVersion::new(3, 5));
    let query = gcc.compile_function(&source);
    let target = clang.compile_function(&source);
    println!(
        "gcc 4.9 produced {} instructions:\n{query}",
        query.inst_count()
    );
    println!(
        "clang 3.5 produced {} instructions:\n{target}",
        target.inst_count()
    );

    // Index the clang build (plus a decoy) and query with the gcc build.
    let decoy_src = demo::venom_like();
    let decoy = clang.compile_function(&decoy_src);
    let mut engine = SimilarityEngine::new(EngineConfig::default());
    let tp = engine.add_target("saturating_sum [clang 3.5]", &target);
    engine.add_target("fdctrl_handle_drive_specification [clang 3.5]", &decoy);

    let scores = engine.query(&query);
    println!("ranked results (GES, higher = more similar):");
    for s in scores.ranked() {
        let marker = if s.target == tp {
            "  <-- same source"
        } else {
            ""
        };
        println!("  {:>8.3}  {}{}", s.ges, s.name, marker);
    }
}
