//! Property-style invariants over randomly generated programs, spanning
//! the compiler, strand, lifter and scoring layers.

use esh::prelude::*;
use esh_cc::Toolchain;
use esh_minic::gen::{self, GenConfig, Shape};
use esh_strands::{lift_strand, semantic_signature};
use rand::prelude::*;
use rand::rngs::StdRng;

#[test]
fn strands_cover_and_lift_for_all_toolchains() {
    let mut rng = StdRng::seed_from_u64(2024);
    let config = GenConfig::default();
    for shape in Shape::ALL {
        let f = gen::generate_function(&mut rng, format!("inv_{shape:?}"), shape, &config);
        for tc in Toolchain::paper_matrix() {
            let p = Compiler::from_toolchain(tc).compile_function(&f);
            let strands = extract_proc_strands(&p);
            // Coverage: every instruction appears in some strand.
            for (bi, block) in p.blocks.iter().enumerate() {
                for ii in 0..block.insts.len() {
                    let covered = strands
                        .iter()
                        .any(|s| s.block == block.label && s.indices.contains(&ii));
                    assert!(covered, "{tc}: inst {ii} of block {bi} uncovered\n{p}");
                }
            }
            // Every strand lifts to valid SSA IVL with a signature.
            for s in &strands {
                let lifted = lift_strand(s);
                let errs = lifted.validate();
                assert!(errs.is_empty(), "{tc}: {errs:?}\n{lifted}");
                let sig = semantic_signature(&lifted);
                assert_eq!(sig.rounds.len(), esh_strands::SIGNATURE_SEEDS.len());
            }
        }
    }
}

#[test]
fn self_signature_overlap_is_total() {
    let mut rng = StdRng::seed_from_u64(7);
    let f = gen::generate_function(&mut rng, "sig_self", Shape::Mixed, &GenConfig::default());
    let p = Compiler::new(Vendor::Gcc, VendorVersion::new(4, 9)).compile_function(&f);
    for s in extract_proc_strands(&p) {
        let lifted = lift_strand(&s);
        if lifted.temps().is_empty() {
            // Value-free strands (e.g. a lone jmp) carry no signature and
            // are filtered by the engine's minimum-size threshold.
            continue;
        }
        let sig = semantic_signature(&lifted);
        assert!(
            (sig.overlap_bound(&sig) - 1.0).abs() < 1e-12,
            "a signature must fully overlap itself"
        );
    }
}

#[test]
fn same_source_scores_above_different_source_across_vendors() {
    // For a handful of generated programs: GES(query | same-source
    // cross-vendor build) > GES(query | different-source same-vendor
    // build). This is the core retrieval property.
    let mut rng = StdRng::seed_from_u64(99);
    let config = GenConfig {
        stmt_budget: 14,
        ..GenConfig::default()
    };
    let mut wins = 0;
    let mut total = 0;
    for k in 0..4 {
        let f = gen::generate_function(&mut rng, format!("p{k}"), Shape::Mixed, &config);
        let g = gen::generate_function(&mut rng, format!("q{k}"), Shape::Mixed, &config);
        let query = Compiler::new(Vendor::Gcc, VendorVersion::new(4, 9)).compile_function(&f);
        let clang = Compiler::new(Vendor::Clang, VendorVersion::new(3, 5));
        let mut engine = SimilarityEngine::new(EngineConfig::default());
        let tp = engine.add_target("same-source", &clang.compile_function(&f));
        let fp = engine.add_target("diff-source", &clang.compile_function(&g));
        let scores = engine.query(&query);
        let get = |id| {
            scores
                .scores
                .iter()
                .find(|s| s.target == id)
                .map(|s| s.ges)
                .unwrap()
        };
        total += 1;
        if get(tp) > get(fp) {
            wins += 1;
        }
    }
    assert!(
        wins >= 3,
        "same-source should win consistently ({wins}/{total})"
    );
}

#[test]
fn ges_self_query_is_maximal() {
    // Querying a procedure against a set containing itself must rank the
    // exact binary first.
    let mut rng = StdRng::seed_from_u64(5);
    let f = gen::generate_function(
        &mut rng,
        "selfq",
        Shape::LoopAccumulate,
        &GenConfig::default(),
    );
    let me = Compiler::new(Vendor::Icc, VendorVersion::new(15, 0)).compile_function(&f);
    let mut engine = SimilarityEngine::new(EngineConfig::default());
    let self_id = engine.add_target("self", &me);
    for (i, tc) in Toolchain::paper_matrix().into_iter().take(3).enumerate() {
        let g = gen::generate_function(
            &mut rng,
            format!("other{i}"),
            Shape::Mixed,
            &GenConfig::default(),
        );
        engine.add_target(
            format!("other{i}"),
            &Compiler::from_toolchain(tc).compile_function(&g),
        );
    }
    let scores = engine.query(&me);
    assert_eq!(scores.ranked()[0].target, self_id);
}
