//! Cross-crate integration tests: the full pipeline from MiniC source
//! through the synthetic compilers, strand extraction, verification and
//! statistical scoring — plus the who-wins orderings the paper reports.

use esh::prelude::*;
use esh_baselines::{match_libraries, tracy_similarity};
use esh_corpus::CorpusConfig;
use esh_minic::demo;
use esh_minic::patch::{apply_patch, PatchLevel};

fn gcc() -> Compiler {
    Compiler::new(Vendor::Gcc, VendorVersion::new(4, 9))
}

fn gcc_old() -> Compiler {
    Compiler::new(Vendor::Gcc, VendorVersion::new(4, 6))
}

fn clang() -> Compiler {
    Compiler::new(Vendor::Clang, VendorVersion::new(3, 5))
}

fn icc() -> Compiler {
    Compiler::new(Vendor::Icc, VendorVersion::new(15, 0))
}

#[test]
fn cross_vendor_search_ranks_all_variants_first() {
    // Index every CVE function compiled with clang and icc; query with the
    // gcc build of heartbleed. Both true positives must outrank every
    // distractor (experiment #1's shape).
    let hb = demo::heartbleed_like();
    let mut engine = SimilarityEngine::new(EngineConfig::default());
    let mut tps = Vec::new();
    for (name, f) in demo::cve_functions() {
        let is_tp = f.name == hb.name;
        let c = engine.add_target(format!("{name} [clang]"), &clang().compile_function(&f));
        let i = engine.add_target(format!("{name} [icc]"), &icc().compile_function(&f));
        if is_tp {
            tps.extend([c, i]);
        }
    }
    let scores = engine.query(&gcc().compile_function(&hb));
    let ranked = scores.ranked();
    let top2: Vec<_> = ranked.iter().take(2).map(|s| s.target).collect();
    for tp in &tps {
        assert!(
            top2.contains(tp),
            "true positive {tp:?} not in top 2: {ranked:#?}"
        );
    }
}

#[test]
fn esh_beats_tracy_cross_vendor_and_tracy_holds_on_patches() {
    // Table 2's shape: TRACY survives same-vendor patching but collapses
    // cross-vendor; Esh handles both.
    let f = demo::shellshock_like();
    let query = gcc().compile_function(&f);

    // Same vendor + small patch: TRACY similarity stays high.
    let mut patched = apply_patch(&f, PatchLevel::Minor, 3);
    patched.name = f.name.clone();
    let same_vendor_patched = gcc().compile_function(&patched);
    let tracy_patch = tracy_similarity(&query, &same_vendor_patched);

    // Cross vendor, unpatched: TRACY similarity degrades.
    let cross = icc().compile_function(&f);
    let tracy_cross = tracy_similarity(&query, &cross);
    assert!(
        tracy_patch >= tracy_cross && tracy_cross < 1.0,
        "TRACY should prefer same-vendor patched ({tracy_patch}) over cross-vendor \
         ({tracy_cross})"
    );

    // Esh must still rank the cross-vendor build above an unrelated one.
    let mut engine = SimilarityEngine::new(EngineConfig::default());
    let tp = engine.add_target("cross", &cross);
    engine.add_target(
        "unrelated",
        &icc().compile_function(&demo::clobberin_time_like()),
    );
    let scores = engine.query(&query);
    assert_eq!(scores.ranked()[0].target, tp);
}

#[test]
fn bindiff_matches_same_structure_but_not_cross_vendor_rewrites() {
    use esh_asm::Program;
    // Same toolchain: BinDiff-style matching works.
    let m = esh_minic::gen::generate_module(11, "lib", 6);
    let mut a = Program::new("a");
    let mut b = Program::new("b");
    for f in &m.functions {
        a.procs.push(gcc().compile_function(f));
        b.procs.push(gcc().compile_function(f));
    }
    let ms = match_libraries(&a, &b);
    let correct = ms.iter().filter(|p| p.a == p.b).count();
    assert_eq!(correct, 6, "identical builds must fully match");

    // Cross-vendor: accuracy drops (the paper's Table 3 shows BinDiff
    // failing on most cross-vendor+patch pairs). clang's unrotated loops
    // and inline returns reshape the CFG relative to gcc.
    let mut c = Program::new("c");
    for f in &m.functions {
        c.procs.push(clang().compile_function(f));
    }
    let ms = match_libraries(&a, &c);
    let correct_cross = ms.iter().filter(|p| p.a == p.b).count();
    assert!(
        correct_cross < 6,
        "cross-vendor matching should be lossy (got {correct_cross}/6)"
    );
}

#[test]
fn version_and_vendor_variants_both_beat_unrelated_code() {
    // §5.3's axes: whether the target differs by compiler version (gcc 4.6
    // vs 4.9 — which also flips frame-pointer policy) or by vendor (icc),
    // the true variants must outrank unrelated code.
    let f = demo::ws_snmp_like();
    let query = gcc().compile_function(&f);
    let mut engine = SimilarityEngine::new(EngineConfig::default());
    engine.add_target("gcc 4.6", &gcc_old().compile_function(&f));
    engine.add_target("icc", &icc().compile_function(&f));
    engine.add_target("decoy", &icc().compile_function(&demo::venom_like()));
    engine.add_target("decoy2", &gcc_old().compile_function(&demo::ffmpeg_like()));
    let scores = engine.query(&query);
    let ranked = scores.ranked();
    assert!(
        !ranked[0].name.starts_with("decoy") && !ranked[1].name.starts_with("decoy"),
        "true variants must outrank decoys: {ranked:#?}"
    );
}

#[test]
fn corpus_pipeline_smoke() {
    // End-to-end over the corpus builder: every CVE query finds its own
    // cross-toolchain sibling at rank 1 in the small corpus.
    let corpus = Corpus::build(&CorpusConfig::small());
    let mut engine = SimilarityEngine::new(EngineConfig::default());
    for p in &corpus.procs {
        engine.add_target(p.display(), &p.proc_);
    }
    let qi = corpus
        .query_for("CVE-2015-3456", "gcc 4.9")
        .expect("venom query");
    let scores = engine.query(&corpus.procs[qi].proc_);
    let ranked = scores.ranked();
    // Rank 1 is the query's own corpus entry; rank 2 must be the sibling.
    assert_eq!(ranked[0].target.0, qi, "self first");
    assert_eq!(
        corpus.procs[ranked[1].target.0].func,
        corpus.procs[qi].func,
        "cross-toolchain sibling second: {:#?}",
        &ranked[..4.min(ranked.len())]
    );
}
