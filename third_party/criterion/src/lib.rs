//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock benchmarking harness exposing the subset of the
//! criterion 0.5 API this workspace's benches use: [`Criterion`] with
//! `sample_size`, [`Criterion::bench_function`], [`Bencher::iter`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros. It runs each
//! benchmark body `sample_size` times after a short warm-up and prints
//! mean per-iteration timings; there are no statistics, plots or baselines.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Times closures handed to [`Criterion::bench_function`].
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `body` repeatedly, recording one timing sample per run.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // Warm-up: one untimed run (also forces lazy initialization).
        std_black_box(body());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std_black_box(body());
            self.samples.push(start.elapsed());
        }
    }
}

/// Benchmark driver (stand-in for `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark and prints its mean/min/max timings.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b);
        if b.samples.is_empty() {
            println!("bench {name}: no samples recorded");
            return self;
        }
        let total: Duration = b.samples.iter().sum();
        let mean = total / b.samples.len() as u32;
        let min = b.samples.iter().min().copied().unwrap_or_default();
        let max = b.samples.iter().max().copied().unwrap_or_default();
        println!(
            "bench {name}: mean {mean:?} min {min:?} max {max:?} ({} samples)",
            b.samples.len()
        );
        self
    }

    /// No-op finalizer for API parity.
    pub fn final_summary(&mut self) {}
}

/// Declares a benchmark group; mirrors criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `fn main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut runs = 0u32;
        Criterion::default()
            .sample_size(5)
            .bench_function("smoke", |b| b.iter(|| runs += 1));
        // 5 timed + 1 warm-up.
        assert_eq!(runs, 6);
    }

    criterion_group!(
        name = test_group;
        config = Criterion::default().sample_size(2);
        targets = noop_bench
    );

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        test_group();
    }
}
