//! Derive macros for the vendored `serde` stand-in.
//!
//! Hand-rolled token parsing (no `syn`/`quote` — the build container has
//! no crates-io access). Supports exactly the shapes this workspace
//! derives on: non-generic structs (named, tuple, unit) and enums whose
//! variants are unit, tuple or struct-like. Anything fancier panics with
//! a readable message at macro-expansion time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of one enum variant.
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Parsed shape of the derive input item.
enum Item {
    NamedStruct(String, Vec<String>),
    TupleStruct(String, usize),
    UnitStruct(String),
    Enum(String, Vec<(String, Shape)>),
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("serde derive: expected `struct` or `enum`, found `{t}`"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("serde derive: expected type name, found `{t}`"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive: generic type `{name}` is not supported by the vendored serde");
    }
    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::NamedStruct(name, parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct(name, count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct(name),
            None => Item::UnitStruct(name),
            t => panic!("serde derive: unexpected struct body {t:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Enum(name, parse_variants(g.stream()))
            }
            t => panic!("serde derive: unexpected enum body {t:?}"),
        },
        other => panic!("serde derive: cannot derive for `{other}` items"),
    }
}

/// Advances past `#[...]` attributes and `pub`/`pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // `#`
                if matches!(tokens.get(*i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1; // `[...]`
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // `(crate)` etc.
                }
            }
            _ => return,
        }
    }
}

/// Consumes a type (or any token run) up to a top-level `,`, tracking
/// angle-bracket depth so `Map<K, V>` commas don't split fields.
fn skip_until_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle = 0i32;
    while let Some(t) = tokens.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let fname = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            t => panic!("serde derive: expected field name, found `{t}`"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            t => panic!("serde derive: expected `:` after field `{fname}`, found `{t}`"),
        }
        skip_until_comma(&tokens, &mut i);
        i += 1; // the comma (or one past the end)
        fields.push(fname);
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_until_comma(&tokens, &mut i);
        i += 1;
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Shape)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let vname = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            t => panic!("serde derive: expected variant name, found `{t}`"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        skip_until_comma(&tokens, &mut i);
        i += 1;
        variants.push((vname, shape));
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct(name, fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::serialize(&self.{f}))"
                    )
                })
                .collect();
            impl_serialize(
                name,
                &format!("::serde::Value::Object(::std::vec![{}])", entries.join(", ")),
            )
        }
        Item::TupleStruct(name, 1) => {
            impl_serialize(name, "::serde::Serialize::serialize(&self.0)")
        }
        Item::TupleStruct(name, n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::serialize(&self.{k})"))
                .collect();
            impl_serialize(
                name,
                &format!("::serde::Value::Array(::std::vec![{}])", items.join(", ")),
            )
        }
        Item::UnitStruct(name) => impl_serialize(name, "::serde::Value::Null"),
        Item::Enum(name, variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, shape)| match shape {
                    Shape::Unit => format!(
                        "{name}::{v} => \
                         ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                    ),
                    Shape::Tuple(1) => format!(
                        "{name}::{v}(f0) => ::serde::Value::Object(::std::vec![\
                         (::std::string::String::from(\"{v}\"), \
                          ::serde::Serialize::serialize(f0))]),"
                    ),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Serialize::serialize(f{k})"))
                            .collect();
                        format!(
                            "{name}::{v}({binds}) => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from(\"{v}\"), \
                              ::serde::Value::Array(::std::vec![{items}]))]),",
                            binds = binds.join(", "),
                            items = items.join(", "),
                        )
                    }
                    Shape::Named(fields) => {
                        let binds = fields.join(", ");
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::serialize({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from(\"{v}\"), \
                              ::serde::Value::Object(::std::vec![{entries}]))]),",
                            entries = entries.join(", "),
                        )
                    }
                })
                .collect();
            impl_serialize(name, &format!("match self {{ {} }}", arms.join(" ")))
        }
    }
}

fn impl_serialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let body = match item {
        Item::NamedStruct(name, fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(obj, \"{f}\")?,"))
                .collect();
            format!(
                "let obj = v.as_object().ok_or_else(|| ::serde::DeError::new(\
                 \"{name}: expected object\"))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(" ")
            )
        }
        Item::TupleStruct(name, 1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(v)?))")
        }
        Item::TupleStruct(name, n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::deserialize(&items[{k}])?"))
                .collect();
            format!(
                "let items = v.as_array().ok_or_else(|| ::serde::DeError::new(\
                 \"{name}: expected array\"))?;\n\
                 if items.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::DeError::new(\"{name}: wrong arity\")); }}\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Item::UnitStruct(name) => format!("::std::result::Result::Ok({name})"),
        Item::Enum(name, variants) => {
            let mut unit_arms = Vec::new();
            let mut payload_arms = Vec::new();
            for (v, shape) in variants {
                match shape {
                    Shape::Unit => unit_arms.push(format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}),"
                    )),
                    Shape::Tuple(1) => payload_arms.push(format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::deserialize(_inner)?)),"
                    )),
                    Shape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::deserialize(&items[{k}])?"))
                            .collect();
                        payload_arms.push(format!(
                            "\"{v}\" => {{\n\
                             let items = _inner.as_array().ok_or_else(|| \
                             ::serde::DeError::new(\"{name}::{v}: expected array\"))?;\n\
                             if items.len() != {n} {{ return ::std::result::Result::Err(\
                             ::serde::DeError::new(\"{name}::{v}: wrong arity\")); }}\n\
                             ::std::result::Result::Ok({name}::{v}({}))\n\
                             }}",
                            items.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::field(obj, \"{f}\")?,"))
                            .collect();
                        payload_arms.push(format!(
                            "\"{v}\" => {{\n\
                             let obj = _inner.as_object().ok_or_else(|| \
                             ::serde::DeError::new(\"{name}::{v}: expected object\"))?;\n\
                             ::std::result::Result::Ok({name}::{v} {{ {} }})\n\
                             }}",
                            inits.join(" ")
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {units}\n\
                 other => ::std::result::Result::Err(::serde::DeError::new(\
                 ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                 }},\n\
                 ::serde::Value::Object(o) if o.len() == 1 => {{\n\
                 let (k, _inner) = &o[0];\n\
                 match k.as_str() {{\n\
                 {payloads}\n\
                 other => ::std::result::Result::Err(::serde::DeError::new(\
                 ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                 }}\n\
                 }},\n\
                 _ => ::std::result::Result::Err(::serde::DeError::new(\
                 \"{name}: expected enum representation\")),\n\
                 }}",
                units = unit_arms.join("\n"),
                payloads = payload_arms.join("\n"),
            )
        }
    };
    let name = match item {
        Item::NamedStruct(n, _)
        | Item::TupleStruct(n, _)
        | Item::UnitStruct(n)
        | Item::Enum(n, _) => n,
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(v: &::serde::Value) -> \
             ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}
