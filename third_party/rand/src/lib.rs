//! Offline stand-in for `rand` 0.8.
//!
//! Provides a deterministic splitmix64-backed [`rngs::StdRng`] and the
//! slice of the rand 0.8 API this workspace uses: [`Rng::gen`],
//! [`Rng::gen_range`], [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`]
//! and [`prelude::SliceRandom::choose`]. The stream differs from the real
//! `rand` crate, but every consumer in this repo seeds explicitly and only
//! needs reproducibility, not a particular stream.

/// RNG construction from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be produced uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Ranges acceptable to [`Rng::gen_range`]. Generic over the element type
/// (rather than using an associated type) so the *return type* at a call
/// site drives integer-literal inference, exactly like rand 0.8.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for ::std::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for ::std::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for ::std::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Core random-value interface.
pub trait Rng {
    /// Returns the next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Generates a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Generates a value uniformly within `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic splitmix64 generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15) }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Random helpers on slices (subset of rand 0.8's `SliceRandom`).
pub trait SliceRandom {
    /// The slice element type.
    type Item;
    /// Returns a uniformly random element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let idx = (rng.next_u64() as usize) % self.len();
            Some(&self[idx])
        }
    }
}

/// Glob-import convenience module matching `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, SampleRange, SeedableRng, SliceRandom, Standard};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(0..512);
            assert!(x < 512);
            let y = rng.gen_range(1i64..64);
            assert!((1..64).contains(&y));
            let z = rng.gen_range(1u8..16);
            assert!((1..16).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(11);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..256 {
            let &x = items.choose(&mut rng).unwrap();
            seen[x - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
