//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators and macros this workspace uses —
//! [`Strategy::prop_map`], [`Strategy::prop_filter_map`],
//! [`Strategy::prop_recursive`], [`prop_oneof!`], [`sample::select`],
//! [`collection::vec`], [`option::of`], [`any`], [`Just`] and the
//! [`proptest!`] test macro with `prop_assert*`/`prop_assume!` — over a
//! deterministic splitmix64 RNG seeded from the test's module path.
//! There is no shrinking: a failing case reports the generated inputs via
//! the assertion message instead.

pub mod test_runner {
    //! Test-execution plumbing: config, RNG, and case errors.

    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of successful cases required per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` successful iterations per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed; the case is retried with fresh inputs.
        Reject(String),
        /// A `prop_assert*` failed; the property is falsified.
        Fail(String),
    }

    /// Deterministic splitmix64 RNG used for all generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds deterministically from a name (typically the test path).
        pub fn from_name(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`.
        pub fn below(&mut self, bound: usize) -> usize {
            assert!(bound > 0, "below: zero bound");
            (self.next_u64() as usize) % bound
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinator types.

    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::rc::Rc;

    /// A recipe for generating random values of an associated type.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Keeps only values for which `f` returns `Some`, retrying others.
        fn prop_filter_map<U, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<U>,
        {
            FilterMap { inner: self, reason, f }
        }

        /// Builds recursive structures: `f` wraps an inner strategy one
        /// level, applied up to `depth` times. The `desired_size` and
        /// `expected_branch_size` hints are accepted for API parity but
        /// unused.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let leaf = self.boxed();
            let mut s = leaf.clone();
            for _ in 0..depth {
                let wrapped = f(s).boxed();
                // Two recursing arms to one leaf arm keeps trees non-trivial
                // while still terminating quickly.
                s = OneOf::new(vec![leaf.clone(), wrapped.clone(), wrapped]).boxed();
            }
            s
        }

        /// Erases the strategy type behind a clonable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
        }
    }

    /// Type-erased, clonable strategy handle.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> std::fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter_map`].
    #[derive(Debug, Clone)]
    pub struct FilterMap<S, F> {
        inner: S,
        reason: &'static str,
        f: F,
    }

    impl<S, F, U> Strategy for FilterMap<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> Option<U>,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            for _ in 0..10_000 {
                if let Some(v) = (self.f)(self.inner.generate(rng)) {
                    return v;
                }
            }
            panic!("prop_filter_map exhausted retries: {}", self.reason);
        }
    }

    /// Uniform choice between same-valued strategies (see [`prop_oneof!`]).
    pub struct OneOf<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        /// Builds a choice over `arms`; panics if empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof: no arms");
            OneOf { arms }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.arms.len());
            self.arms[idx].generate(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy for any value of a [`Arbitrary`]-implementing type.
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<T> Copy for Any<T> {}

    impl<T> std::fmt::Debug for Any<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Any")
        }
    }

    /// Types with a canonical "generate anything" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Returns the canonical strategy for `T` (`any::<u64>()` etc.).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! strategy_for_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
        )*};
    }
    strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! strategy_for_tuple {
        ($(($($s:ident : $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    strategy_for_tuple! {
        (A: 0, B: 1);
        (A: 0, B: 1, C: 2);
        (A: 0, B: 1, C: 2, D: 3);
        (A: 0, B: 1, C: 2, D: 3, E: 4);
    }

    impl<S: Strategy, const N: usize> Strategy for [S; N] {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|i| self[i].generate(rng))
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.len.end - self.len.start;
            let n = self.len.start + if span == 0 { 0 } else { rng.below(span) };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, min..max)`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod sample {
    //! Sampling strategies over explicit item lists.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy choosing uniformly from a fixed list.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[rng.below(self.items.len())].clone()
        }
    }

    /// `prop::sample::select(items)`; panics if `items` is empty.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select: empty item list");
        Select { items }
    }
}

pub mod option {
    //! Strategies for `Option` values.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy producing `None` about a quarter of the time.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `prop::option::of(strategy)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Runs one property body against `config.cases` generated inputs.
///
/// Used by the [`proptest!`] macro; not part of the public proptest API
/// but kept `pub` so the macro expansion can reach it.
pub fn run_cases(
    name: &str,
    config: test_runner::ProptestConfig,
    mut case: impl FnMut(&mut test_runner::TestRng) -> Result<(), test_runner::TestCaseError>,
) {
    use test_runner::TestCaseError;
    let mut rng = test_runner::TestRng::from_name(name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= config.cases.saturating_mul(16).saturating_add(1024),
                    "{name}: too many prop_assume! rejections"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: property falsified after {passed} passing cases: {msg}")
            }
        }
    }
}

/// Everything needed by a typical `use proptest::prelude::*;` consumer.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Any, Arbitrary, BoxedStrategy, Just, OneOf, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Defines property tests. See crate docs; mirrors proptest's macro shape.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_cases(
                ::std::concat!(::std::module_path!(), "::", ::std::stringify!($name)),
                $cfg,
                |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body (fails the property).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", ::std::stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (va, vb) = (&$a, &$b);
        $crate::prop_assert!(va == vb, "{:?} != {:?}", va, vb);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (va, vb) = (&$a, &$b);
        $crate::prop_assert!(
            va == vb,
            "{:?} != {:?}: {}", va, vb, ::std::format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (va, vb) = (&$a, &$b);
        $crate::prop_assert!(va != vb, "{:?} == {:?}", va, vb);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (va, vb) = (&$a, &$b);
        $crate::prop_assert!(
            va != vb,
            "{:?} == {:?}: {}", va, vb, ::std::format!($($fmt)*)
        );
    }};
}

/// Discards the current case (retried with fresh inputs) if `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(::std::stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Expr {
        Leaf(u32),
        Pair(Box<Expr>, Box<Expr>),
    }

    impl Expr {
        fn depth(&self) -> u32 {
            match self {
                Expr::Leaf(_) => 0,
                Expr::Pair(a, b) => 1 + a.depth().max(b.depth()),
            }
        }
    }

    fn arb_expr() -> impl Strategy<Value = Expr> {
        let leaf = (0u32..10).prop_map(Expr::Leaf);
        leaf.prop_recursive(3, 8, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Pair(a.into(), b.into()))
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in -5i64..5, z in 0.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.0..1.0).contains(&z));
        }

        #[test]
        fn recursion_is_depth_bounded(e in arb_expr()) {
            prop_assert!(e.depth() <= 3, "too deep: {:?}", e);
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(any::<u64>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn select_only_returns_listed(x in prop::sample::select(vec![1u8, 3, 5])) {
            prop_assert!([1u8, 3, 5].contains(&x));
        }

        #[test]
        fn assume_retries(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn filter_map_applies(x in (0u32..100).prop_filter_map("odd", |x| (x % 2 == 1).then_some(x))) {
            prop_assert_ne!(x % 2, 0);
        }

        #[test]
        fn arrays_and_tuples_generate(pair in ([any::<u64>(); 4], Just(7u8))) {
            let (arr, seven) = pair;
            prop_assert_eq!(arr.len(), 4);
            prop_assert_eq!(seven, 7u8);
        }

        #[test]
        fn oneof_and_option(v in prop_oneof![Just(0u8), 1u8..4], o in prop::option::of(Just(1u8))) {
            prop_assert!(v < 4);
            prop_assert!(o.is_none() || o == Some(1));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let s = (0u32..1000, 0u32..1000);
        let mut r1 = TestRng::from_name("x");
        let mut r2 = TestRng::from_name("x");
        for _ in 0..32 {
            assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
        }
    }
}
