//! Offline stand-in for the `serde` crate.
//!
//! The build container has no crates-io access, so the workspace vendors a
//! minimal serialization framework under the same crate name. It keeps the
//! parts of serde's surface this repository actually uses — `Serialize` /
//! `Deserialize` traits plus derive macros for plain structs and enums —
//! over a much simpler data model: every value serializes into a [`Value`]
//! tree, and `serde_json` (also vendored) renders/parses that tree as JSON.
//!
//! Not supported (and not needed here): generics on derived types, serde
//! attributes (`#[serde(...)]`), zero-copy deserialization, non-self-
//! describing formats.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// The serialized form of any value: a JSON-shaped tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map (insertion order preserved for determinism).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The fields if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The items if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// A short tag describing the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> DeError {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can serialize themselves into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self`.
    fn serialize(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes from `v`.
    fn deserialize(v: &Value) -> Result<Self, DeError>;
}

/// Looks up `name` in an object's fields and deserializes it. Used by the
/// derive macro; `Option` fields absent from the object read as `None`
/// because a missing key deserializes `Value::Null`.
pub fn field<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, DeError> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::deserialize(v)
            .map_err(|e| DeError::new(format!("field `{name}`: {e}"))),
        None => T::deserialize(&Value::Null)
            .map_err(|_| DeError::new(format!("missing field `{name}`"))),
    }
}

// ------------------------------------------------------------ primitives

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    _ => return Err(DeError::new(format!(
                        "expected unsigned integer, found {}", v.kind()
                    ))),
                };
                <$t>::try_from(n).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}
ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| DeError::new("integer out of range"))?,
                    _ => return Err(DeError::new(format!(
                        "expected integer, found {}", v.kind()
                    ))),
                };
                <$t>::try_from(n).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}
ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            _ => Err(DeError::new(format!("expected number, found {}", v.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        f64::deserialize(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::new(format!("expected bool, found {}", v.kind()))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::new(format!("expected string, found {}", v.kind()))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::new("expected single-character string")),
        }
    }
}

// ------------------------------------------------------------ containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        T::deserialize(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.serialize(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            _ => Err(DeError::new(format!("expected array, found {}", v.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let items = v
            .as_array()
            .ok_or_else(|| DeError::new("expected array"))?;
        if items.len() != N {
            return Err(DeError::new(format!("expected {N} items, found {}", items.len())));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(items) {
            *slot = T::deserialize(item)?;
        }
        Ok(out)
    }
}

macro_rules! ser_de_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array()
                    .ok_or_else(|| DeError::new("expected array for tuple"))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(DeError::new(format!(
                        "expected {expected}-tuple, found {} items", items.len()
                    )));
                }
                Ok(($($name::deserialize(&items[$idx])?,)+))
            }
        }
    )*};
}
ser_de_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.serialize())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::new("expected object for map"))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Value {
        // Sort keys so serialization is deterministic.
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::new("expected object for map"))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::deserialize(&42u64.serialize()).unwrap(), 42);
        assert_eq!(i64::deserialize(&(-7i64).serialize()).unwrap(), -7);
        assert!(bool::deserialize(&true.serialize()).unwrap());
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()).unwrap(),
            "hi"
        );
        assert_eq!(
            Option::<u32>::deserialize(&None::<u32>.serialize()).unwrap(),
            None
        );
        assert_eq!(
            Vec::<u8>::deserialize(&vec![1u8, 2, 3].serialize()).unwrap(),
            vec![1, 2, 3]
        );
        let t = (1u32, "x".to_string());
        assert_eq!(<(u32, String)>::deserialize(&t.serialize()).unwrap(), t);
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(u8::deserialize(&Value::U64(300)).is_err());
        assert!(u64::deserialize(&Value::I64(-1)).is_err());
    }
}
