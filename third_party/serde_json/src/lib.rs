//! Offline stand-in for `serde_json`.
//!
//! Renders and parses JSON over the vendored [`serde::Value`] tree. The
//! API surface mirrors the subset this workspace uses: [`to_string`],
//! [`to_string_pretty`], [`from_str`] and the [`Error`] type.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Error produced by JSON serialization or parsing.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a value of type `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value_str(s)?;
    Ok(T::deserialize(&value)?)
}

// ---------------------------------------------------------------- writing

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(*x, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        // `{:?}` keeps round-trip precision and always includes a decimal
        // point or exponent, so the value re-parses as a float.
        out.push_str(&format!("{x:?}"));
    } else {
        // JSON has no NaN/Infinity; match serde_json's lossy `null`.
        out.push_str("null");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_str(s: &str) -> Result<Value> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<()> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                c as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!("unexpected input at offset {}", self.pos))),
        }
    }

    fn keyword(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid utf-8 in number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Ok(n) = text.parse::<u64>() {
            Ok(Value::U64(n))
        } else if let Ok(n) = text.parse::<i64>() {
            Ok(Value::I64(n))
        } else {
            // Integer overflow: fall back to float like serde_json's
            // arbitrary-precision-off behavior.
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: expect `\uXXXX` low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                let combined = 0x10000
                                    + ((cp - 0xD800) << 10)
                                    + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(Error::new("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the maximal run of plain bytes in one step.
                    // `"` and `\` are ASCII, and UTF-8 continuation bytes
                    // are >= 0x80, so stopping on them never splits a
                    // multi-byte character; validating the run once keeps
                    // parsing linear in input size.
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == b'"' || c == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let cp = u32::from_str_radix(text, 16)
            .map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at offset {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at offset {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_compact() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(3)),
            ("b".into(), Value::Array(vec![Value::Bool(true), Value::Null])),
            ("c".into(), Value::Str("x\n\"y\"".into())),
            ("d".into(), Value::F64(1.5)),
        ]);
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        let s2 = to_string(&back).unwrap();
        assert_eq!(s, s2);
    }

    #[test]
    fn pretty_parses_back() {
        let v = Value::Array(vec![Value::I64(-2), Value::Str("hi".into())]);
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        let back: Value = from_str(&s).unwrap();
        assert_eq!(to_string(&back).unwrap(), to_string(&v).unwrap());
    }

    #[test]
    fn floats_round_trip_precisely() {
        let x = 0.1f64 + 0.2f64;
        let s = to_string(&x).unwrap();
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn unicode_escapes() {
        let back: String = from_str("\"\\u00e9\\u0041\"").unwrap();
        assert_eq!(back, "éA");
        let smiley: String = from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(smiley, "😀");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("1 2").is_err());
    }
}
