//! `esh` — command-line binary similarity search, in the shape of the
//! paper's released tool: build a corpus, then query procedures against it.
//!
//! ```text
//! esh build-corpus [smoke|default|paper] <corpus.json>
//! esh corpus gen --procs N [--seed S] [--out corpus.json] [--threads N]
//! esh search <corpus.json> <query-substring> [top_n]
//! esh index build <corpus.json> <index.esh | index.eshx> [targets-per-shard]
//! esh index migrate <index.esh> <index.eshx> [targets-per-shard]
//! esh query --index <index.esh | index.eshx> <corpus.json> <query-substring>
//!           [top_n] [--json] [--no-prefilter] [--whole-decode]
//! esh query --remote <addr> <query-substring> [top_n] [--json]
//! esh serve --index <index.esh | index.eshx> <corpus.json> [--addr A] [--workers N]
//!           [--queue N] [--deadline-ms N] [--threads N]
//!           [--batch-max N] [--batch-window-ms N] [--shard-budget-mb N]
//!           [--whole-decode]
//! esh bench-serve [--smoke]
//! esh bench-prefilter [--smoke]
//! esh bench-rankquality [--smoke]
//! esh bench-scale [--smoke] [--threads N] [--no-mmap] [--max-procs N]
//! esh stats <corpus.json>
//! esh pair <corpus.json> <query-substring> <target-substring>
//! ```
//!
//! `index build` persists the engine's derived corpus state (strand
//! classes, signatures, hashes) to a versioned snapshot; `query --index`
//! restores it — skipping decomposition/lifting of every target — runs the
//! query, reports VCP-cache statistics, and writes the warmed cache back
//! into the snapshot so repeat queries skip the verifier almost entirely.
//!
//! `serve` turns the same engine into a long-running daemon: snapshot
//! loaded once, queries answered concurrently over pipelined
//! newline-delimited JSON with bounded admission, per-request deadlines,
//! batch coalescing (`--batch-max` / `--batch-window-ms`) and
//! `/metrics`.
//! `query --remote` is the matching client; `--json` prints the shared
//! machine-readable response schema from either path. `bench-serve`
//! load-tests the daemon over loopback and writes `BENCH_serve.json`;
//! `bench-prefilter` compares the sketch-prefiltered engine against the
//! exhaustive one and writes `BENCH_prefilter.json`; `bench-rankquality`
//! scores the pruned ranking against the exhaustive one (top-K agreement,
//! Kendall tau, ROC/CROC — see `docs/RANK_QUALITY.md`) and writes
//! `BENCH_rankquality.json`.
//!
//! `query --index ... --no-prefilter` disables the semantic-sketch tier
//! for that one query — the escape hatch when a sketch-estimated pair
//! must be re-checked exactly; output is byte-identical to an engine
//! built without the tier.
//!
//! The **scale tier**: `corpus gen` streams a seeded synthetic corpus
//! (10k+ procedures across the 21-configuration compiler matrix) without
//! materializing it in memory (`--threads` caps the compile pool); an
//! index path ending in `.eshx` selects the sharded binary format (v6)
//! whose shards mmap lazily at query time and decode *per procedure* on
//! demand (`--whole-decode` reverts to eager whole-shard decode), can be
//! skipped wholesale by the sketch-band sidecar, and are evicted LRU
//! under `serve --shard-budget-mb`; `index migrate` upgrades an existing
//! JSON snapshot in place; `bench-scale` measures build throughput,
//! cold-load time (mmap vs the `--no-mmap` buffered fallback), query
//! latency (demand-decode vs whole-decode), whole-shard pruning and
//! budgeted eviction at 1k/5k/10k/100k (`--max-procs` trims the ladder)
//! and writes `BENCH_scale.json`. Sharded indexes are immutable at
//! query time: `query --index` skips the cache write-back that JSON
//! snapshots receive.

use esh::prelude::*;
use esh_eval::experiments::Scale;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  esh build-corpus [smoke|default|paper] <corpus.json>\n  \
         esh corpus gen --procs N [--seed S] [--out corpus.json] [--threads N]\n  \
         esh search <corpus.json> <query-substring> [top_n]\n  \
         esh index build <corpus.json> <index.esh | index.eshx> [targets-per-shard]\n  \
         esh index migrate <index.esh> <index.eshx> [targets-per-shard]\n  \
         esh query --index <index.esh | index.eshx> <corpus.json> <query-substring>\n  \
         \x20         [top_n] [--json] [--no-prefilter] [--whole-decode]\n  \
         esh query --remote <addr> <query-substring> [top_n] [--json]\n  \
         esh serve --index <index.esh | index.eshx> <corpus.json> [--addr A] [--workers N]\n  \
         \x20         [--queue N] [--deadline-ms N] [--threads N]\n  \
         \x20         [--batch-max N] [--batch-window-ms N] [--shard-budget-mb N]\n  \
         \x20         [--whole-decode]\n  \
         esh bench-serve [--smoke]\n  \
         esh bench-prefilter [--smoke]\n  \
         esh bench-rankquality [--smoke]\n  \
         esh bench-scale [--smoke] [--threads N] [--no-mmap] [--max-procs N]\n  \
         esh stats <corpus.json>\n  \
         esh pair <corpus.json> <query-substring> <target-substring>"
    );
    ExitCode::from(2)
}

fn load(path: &str) -> Result<Corpus, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    Corpus::from_json(&text).map_err(|e| format!("parsing {path}: {e}"))
}

fn find_proc(corpus: &Corpus, needle: &str) -> Option<usize> {
    corpus
        .procs
        .iter()
        .position(|p| p.display().contains(needle))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("build-corpus") => build_corpus(&args[1..]),
        Some("corpus") => corpus_cmd(&args[1..]),
        Some("search") => search(&args[1..]),
        Some("index") => index(&args[1..]),
        Some("query") => query(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("bench-serve") => bench_serve(&args[1..]),
        Some("bench-prefilter") => bench_prefilter(&args[1..]),
        Some("bench-rankquality") => bench_rankquality(&args[1..]),
        Some("bench-scale") => bench_scale(&args[1..]),
        Some("stats") => stats(&args[1..]),
        Some("pair") => pair(&args[1..]),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn build_corpus(args: &[String]) -> Result<(), String> {
    let (scale, path) = match args {
        [path] => (Scale::Default, path),
        [scale, path] => (
            Scale::parse(scale).ok_or_else(|| format!("unknown scale `{scale}`"))?,
            path,
        ),
        _ => return Err("build-corpus takes [scale] <corpus.json>".into()),
    };
    eprintln!("building {scale:?} corpus...");
    let corpus = Corpus::build(&scale.corpus_config());
    let json = corpus.to_json().map_err(|e| e.to_string())?;
    std::fs::write(path, json).map_err(|e| e.to_string())?;
    println!("wrote {} procedures to {path}", corpus.procs.len());
    Ok(())
}

fn search(args: &[String]) -> Result<(), String> {
    let (path, needle, top_n) = match args {
        [path, needle] => (path, needle, 10),
        [path, needle, n] => (
            path,
            needle,
            n.parse().map_err(|_| format!("bad top_n `{n}`"))?,
        ),
        _ => return Err("search takes <corpus.json> <query-substring> [top_n]".into()),
    };
    let corpus = load(path)?;
    let qi =
        find_proc(&corpus, needle).ok_or_else(|| format!("no procedure matching `{needle}`"))?;
    eprintln!("query: {}", corpus.procs[qi].display());
    let mut engine = SimilarityEngine::new(EngineConfig::default());
    for p in &corpus.procs {
        engine.add_target(p.display(), &p.proc_);
    }
    let scores = engine.query(&corpus.procs[qi].proc_);
    println!("{:>10}  procedure", "GES");
    for s in scores
        .ranked()
        .iter()
        .filter(|s| s.target.0 != qi)
        .take(top_n)
    {
        println!("{:>10.3}  {}", s.ges, s.name);
    }
    Ok(())
}

/// Builds an engine over every procedure of a corpus — the shared path of
/// `search` (in-memory) and `index build` (persisted), kept in one place
/// so `query --index` scores are identical to the in-memory ones.
fn engine_over_corpus(corpus: &Corpus) -> SimilarityEngine {
    let mut engine = SimilarityEngine::new(EngineConfig::default());
    for p in &corpus.procs {
        engine.add_target(p.display(), &p.proc_);
    }
    engine
}

/// Default shard granularity when the CLI does not specify one.
const DEFAULT_TARGETS_PER_SHARD: usize = 64;

/// True when `path` names (or will name) a sharded v5 index: an existing
/// directory with a manifest, or a fresh path with the `.eshx` extension.
fn wants_sharded(path: &str) -> bool {
    esh::index::is_sharded_index(path) || path.ends_with(".eshx")
}

fn parse_shard_size(arg: Option<&String>) -> Result<usize, String> {
    match arg {
        None => Ok(DEFAULT_TARGETS_PER_SHARD),
        Some(n) => n
            .parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| format!("bad targets-per-shard `{n}`")),
    }
}

fn report_sharded(path: &str, summary: &esh::index::WriteSummary) {
    println!(
        "wrote sharded index {path}: {} targets, {} classes, {} shards, \
         {}B core + {}B shards, format v{}",
        summary.targets,
        summary.classes,
        summary.shards,
        summary.core_bytes,
        summary.shard_bytes,
        esh::index::SHARDED_FORMAT_VERSION,
    );
}

fn index(args: &[String]) -> Result<(), String> {
    match args {
        [sub, corpus_path, index_path, rest @ ..] if sub == "build" && rest.len() <= 1 => {
            let corpus = load(corpus_path)?;
            eprintln!("indexing {} procedures...", corpus.procs.len());
            let engine = engine_over_corpus(&corpus);
            if wants_sharded(index_path) {
                let per_shard = parse_shard_size(rest.first())?;
                let summary = esh::index::write_sharded(&engine, index_path, per_shard)
                    .map_err(|e| e.to_string())?;
                report_sharded(index_path, &summary);
            } else {
                if !rest.is_empty() {
                    return Err("targets-per-shard only applies to .eshx outputs".into());
                }
                engine.save(index_path).map_err(|e| e.to_string())?;
                println!(
                    "wrote index: {} targets, {} strand classes, format v{}, config {:#018x}",
                    engine.target_count(),
                    engine.class_count(),
                    esh::core::SNAPSHOT_FORMAT_VERSION,
                    engine.config().fingerprint(),
                );
            }
            Ok(())
        }
        [sub, json_path, eshx_path, rest @ ..] if sub == "migrate" && rest.len() <= 1 => {
            let per_shard = parse_shard_size(rest.first())?;
            let summary = esh::index::migrate_json(json_path, eshx_path, per_shard)
                .map_err(|e| e.to_string())?;
            report_sharded(eshx_path, &summary);
            Ok(())
        }
        _ => Err("index takes: build <corpus.json> <index.esh | index.eshx> \
                  [targets-per-shard], or migrate <index.esh> <index.eshx> \
                  [targets-per-shard]"
            .into()),
    }
}

/// Streams the scale-tier corpus to disk as a `Corpus`-compatible JSON
/// document (`{"procs":[...]}`) without materializing it: each compiled
/// procedure is serialized and written as it is emitted.
fn corpus_cmd(args: &[String]) -> Result<(), String> {
    use std::io::Write as _;
    let mut rest = args.iter();
    if rest.next().map(String::as_str) != Some("gen") {
        return Err(
            "corpus takes: gen --procs N [--seed S] [--out corpus.json] [--threads N]".into(),
        );
    }
    let mut procs = None;
    let mut seed = 0xe5e5u64;
    let mut out = None;
    let mut threads = 0usize;
    while let Some(arg) = rest.next() {
        let mut value = |name: &str| {
            rest.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--procs" => {
                procs = Some(value("--procs")?.parse::<usize>().map_err(|e| format!("--procs: {e}"))?)
            }
            "--seed" => seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--out" => out = Some(value("--out")?.to_string()),
            "--threads" => {
                threads = value("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?
            }
            extra => return Err(format!("unexpected argument `{extra}`")),
        }
    }
    let procs = procs.ok_or("corpus gen needs --procs N")?;
    // `--threads 0` (the default) means one compile thread per matrix
    // configuration; the emitted stream is byte-identical either way.
    let threads = if threads == 0 { esh::corpus::scale::scale_matrix().len() } else { threads };
    let config = esh::corpus::scale::ScaleConfig::new(procs, seed);
    let sink: Box<dyn std::io::Write> = match &out {
        Some(path) => Box::new(std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?),
        None => Box::new(std::io::stdout().lock()),
    };
    let mut w = std::io::BufWriter::new(sink);
    let mut failure = None;
    w.write_all(b"{\"procs\":[").map_err(|e| e.to_string())?;
    let mut first = true;
    let emitted = esh::corpus::scale::stream_scale_corpus_with_threads(&config, threads, |p| {
        if failure.is_some() {
            return;
        }
        let record = match serde_json::to_string(&p) {
            Ok(r) => r,
            Err(e) => {
                failure = Some(format!("serializing {}: {e}", p.display()));
                return;
            }
        };
        let sep = if first { "" } else { "," };
        first = false;
        if let Err(e) = write!(w, "{sep}{record}") {
            failure = Some(e.to_string());
        }
    });
    if let Some(e) = failure {
        return Err(e);
    }
    w.write_all(b"]}").map_err(|e| e.to_string())?;
    w.flush().map_err(|e| e.to_string())?;
    eprintln!(
        "generated {emitted} procedures (seed {seed:#x}, {} sources x {} toolchain configs){}",
        config.source_count(),
        esh::corpus::scale::scale_matrix().len(),
        out.map(|p| format!(" -> {p}")).unwrap_or_default(),
    );
    Ok(())
}

fn query(args: &[String]) -> Result<(), String> {
    // `--json` / `--no-prefilter` / `--whole-decode` may appear anywhere;
    // strip them before positional matching.
    let json = args.iter().any(|a| a == "--json");
    let no_prefilter = args.iter().any(|a| a == "--no-prefilter");
    let whole_decode = args.iter().any(|a| a == "--whole-decode");
    let args: Vec<&String> = args
        .iter()
        .filter(|a| *a != "--json" && *a != "--no-prefilter" && *a != "--whole-decode")
        .collect();
    if (no_prefilter || whole_decode) && args.first().map(|a| a.as_str()) == Some("--remote") {
        return Err(
            "--no-prefilter/--whole-decode apply to --index queries (the daemon owns its engine)"
                .into(),
        );
    }
    match args.as_slice() {
        [flag, index, corpus, needle] if *flag == "--index" => {
            query_index(index, corpus, needle, 10, json, no_prefilter, whole_decode)
        }
        [flag, index, corpus, needle, n] if *flag == "--index" => query_index(
            index,
            corpus,
            needle,
            n.parse().map_err(|_| format!("bad top_n `{n}`"))?,
            json,
            no_prefilter,
            whole_decode,
        ),
        [flag, addr, needle] if *flag == "--remote" => query_remote(addr, needle, 10, json),
        [flag, addr, needle, n] if *flag == "--remote" => query_remote(
            addr,
            needle,
            n.parse().map_err(|_| format!("bad top_n `{n}`"))?,
            json,
        ),
        _ => Err("query takes --index <index.esh> <corpus.json> <query-substring> [top_n] \
                  [--json] [--no-prefilter] [--whole-decode], or --remote <addr> \
                  <query-substring> [top_n] [--json]"
            .into()),
    }
}

/// Prints a ranked match list in the human-readable table format.
fn print_matches(matches: &[esh::serve::RankedMatch]) {
    println!("{:>10}  procedure", "GES");
    for m in matches {
        println!("{:>10.3}  {}", m.ges, m.name);
    }
}

/// Opens an index either way: sharded v6 directories load lazily,
/// anything else is a JSON snapshot. Returns `(engine, sharded)` — a
/// sharded index is immutable at query time, so callers must skip the
/// warmed-cache write-back for it. `whole_decode` is the escape hatch
/// that turns per-procedure demand decoding back into eager whole-shard
/// decoding (ignored for JSON snapshots, which are always resident).
fn open_index(index_path: &str, whole_decode: bool) -> Result<(SimilarityEngine, bool), String> {
    if esh::index::is_sharded_index(index_path) {
        let options = esh::index::EshxOpenOptions {
            demand: !whole_decode,
            ..Default::default()
        };
        let engine =
            esh::index::open_sharded_with(index_path, options).map_err(|e| e.to_string())?;
        Ok((engine, true))
    } else {
        let engine = SimilarityEngine::load(index_path).map_err(|e| e.to_string())?;
        Ok((engine, false))
    }
}

fn query_index(
    index_path: &str,
    corpus_path: &str,
    needle: &str,
    top_n: usize,
    json: bool,
    no_prefilter: bool,
    whole_decode: bool,
) -> Result<(), String> {
    let corpus = load(corpus_path)?;
    let qi =
        find_proc(&corpus, needle).ok_or_else(|| format!("no procedure matching `{needle}`"))?;
    eprintln!("query: {}", corpus.procs[qi].display());
    let (mut engine, sharded) = open_index(index_path, whole_decode)?;
    // The escape hatch: answer this one query with the exhaustive engine.
    // The index's own configuration is restored before the snapshot is
    // written back, so the stored fingerprint is untouched.
    let saved_sketch = engine.config().sketch;
    if no_prefilter {
        engine.set_prefilter_enabled(false);
    }
    let started = std::time::Instant::now();
    let scores = engine.query(&corpus.procs[qi].proc_);
    let matches = esh::serve::ranked_matches(&scores, Some(esh::core::TargetId(qi)), top_n);
    if json {
        // The wire schema, verbatim: offline and remote output are
        // interchangeable for machine consumers.
        let response = esh::serve::QueryResponse {
            outcome: esh::serve::Outcome::Ok,
            error: None,
            query: Some(corpus.procs[qi].display()),
            matches,
            queue_ms: 0,
            latency_ms: started.elapsed().as_millis() as u64,
        };
        print!("{}", esh::serve::encode_line(&response));
    } else {
        print_matches(&matches);
        let stats = engine.cache_stats();
        println!(
            "vcp cache: {} hits, {} misses, {:.1}% hit rate, {} entries",
            stats.hits,
            stats.misses,
            stats.hit_rate() * 100.0,
            stats.entries,
        );
        let sp = engine.solver_stats();
        println!(
            "sat solver: {} queries, {:.1} conflicts/query, {:.1} ms sat time, \
             {} blast hits / {} misses, {} learnts retained ({} dropped, {} resets)",
            sp.sat_queries,
            sp.conflicts_per_query(),
            sp.sat_time_ns as f64 / 1e6,
            sp.blast_cache_hits,
            sp.blast_cache_misses,
            sp.retained_learnts,
            sp.learnts_dropped,
            sp.solver_resets,
        );
    }
    // Persist the warmed cache: the next identical query skips the
    // verifier entirely. Sharded indexes are immutable at query time —
    // their persisted cache segments are the ones written at build.
    if !sharded {
        if no_prefilter && saved_sketch.is_some_and(|s| s.enabled) {
            engine.set_prefilter_enabled(true);
        }
        engine.save_with_cache(index_path).map_err(|e| e.to_string())?;
    }
    Ok(())
}

fn query_remote(addr: &str, needle: &str, top_n: usize, json: bool) -> Result<(), String> {
    let request = esh::serve::QueryRequest {
        query: needle.to_string(),
        top_n: Some(top_n as u64),
        deadline_ms: None,
    };
    let response =
        esh::serve::remote_query(addr, &request, std::time::Duration::from_secs(60))
            .map_err(|e| format!("querying {addr}: {e}"))?;
    if json {
        print!("{}", esh::serve::encode_line(&response));
        return Ok(());
    }
    match response.outcome {
        esh::serve::Outcome::Ok => {
            if let Some(name) = &response.query {
                eprintln!("query: {name}");
            }
            print_matches(&response.matches);
            println!(
                "server: {}ms latency ({}ms queued)",
                response.latency_ms, response.queue_ms
            );
            Ok(())
        }
        outcome => Err(format!(
            "server answered {outcome:?}: {}",
            response.error.unwrap_or_default()
        )),
    }
}

fn serve(args: &[String]) -> Result<(), String> {
    let mut index_path = None;
    let mut corpus_path = None;
    let mut config = esh::serve::ServeConfig::default();
    let mut threads = 1usize;
    let mut whole_decode = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--index" => index_path = Some(value("--index")?.to_string()),
            "--addr" => config.addr = value("--addr")?.to_string(),
            "--workers" => {
                config.workers = value("--workers")?.parse().map_err(|e| format!("--workers: {e}"))?
            }
            "--queue" => {
                config.queue_capacity =
                    value("--queue")?.parse().map_err(|e| format!("--queue: {e}"))?
            }
            "--batch-max" => {
                config.batch_max = value("--batch-max")?
                    .parse()
                    .map_err(|e| format!("--batch-max: {e}"))?
            }
            "--batch-window-ms" => {
                config.batch_window_ms = value("--batch-window-ms")?
                    .parse()
                    .map_err(|e| format!("--batch-window-ms: {e}"))?
            }
            "--deadline-ms" => {
                config.default_deadline_ms = value("--deadline-ms")?
                    .parse()
                    .map_err(|e| format!("--deadline-ms: {e}"))?
            }
            "--threads" => {
                threads = value("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?
            }
            "--shard-budget-mb" => {
                config.shard_budget_mb = Some(
                    value("--shard-budget-mb")?
                        .parse()
                        .map_err(|e| format!("--shard-budget-mb: {e}"))?,
                )
            }
            "--whole-decode" => whole_decode = true,
            path if corpus_path.is_none() => corpus_path = Some(path.to_string()),
            extra => return Err(format!("unexpected argument `{extra}`")),
        }
    }
    let index_path = index_path.ok_or("serve needs --index <index.esh>")?;
    let corpus_path = corpus_path.ok_or("serve needs <corpus.json>")?;

    let corpus = load(&corpus_path)?;
    let (mut engine, _sharded) = open_index(&index_path, whole_decode)?;
    if engine.target_count() != corpus.procs.len() {
        return Err(format!(
            "index {} has {} targets but {} has {} procedures — rebuild with `esh index build`",
            index_path,
            engine.target_count(),
            corpus_path,
            corpus.procs.len(),
        ));
    }
    // Under a worker pool, per-query parallelism multiplies: keep each
    // query narrow by default and let concurrency come from requests.
    engine.set_threads(threads);

    let server = esh::serve::Server::start(engine, corpus, config.clone())
        .map_err(|e| format!("binding {}: {e}", config.addr))?;
    let addr = server.local_addr();
    eprintln!(
        "esh serve: listening on {addr} ({} workers, queue {}, default deadline {}ms, \
         batch {}x{}ms)",
        config.workers,
        config.queue_capacity,
        config.default_deadline_ms,
        config.batch_max,
        config.batch_window_ms
    );
    eprintln!("esh serve: GET /healthz and /metrics on the same port");
    eprintln!("esh serve: send {{\"query\":\"@shutdown\"}} to drain and exit");
    let stats = server.join();
    eprintln!(
        "esh serve: drained — {} ok, {} overloaded, {} deadline-exceeded, {} not-found, \
         {} bad, {} http; queue high-water {}, p50 {}ms, p99 {}ms",
        stats.ok,
        stats.overloaded,
        stats.deadline_exceeded,
        stats.not_found,
        stats.bad_request,
        stats.http,
        stats.queue_depth_hwm,
        stats.p50_ms,
        stats.p99_ms,
    );
    Ok(())
}

fn bench_serve(args: &[String]) -> Result<(), String> {
    let smoke = match args {
        [] => false,
        [flag] if flag == "--smoke" => true,
        _ => return Err("bench-serve takes [--smoke]".into()),
    };
    esh::serve::bench::run(smoke)
}

fn bench_prefilter(args: &[String]) -> Result<(), String> {
    let smoke = match args {
        [] => false,
        [flag] if flag == "--smoke" => true,
        _ => return Err("bench-prefilter takes [--smoke]".into()),
    };
    esh::bench_prefilter::run(smoke)
}

fn bench_rankquality(args: &[String]) -> Result<(), String> {
    let smoke = match args {
        [] => false,
        [flag] if flag == "--smoke" => true,
        _ => return Err("bench-rankquality takes [--smoke]".into()),
    };
    esh::bench_rankquality::run(smoke)
}

fn bench_scale(args: &[String]) -> Result<(), String> {
    let mut opts = esh::bench_scale::BenchScaleOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => opts.smoke = true,
            "--no-mmap" => opts.mmap = false,
            "--threads" => {
                opts.threads = it
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--max-procs" => {
                opts.max_procs = it
                    .next()
                    .ok_or("--max-procs needs a value")?
                    .parse()
                    .map_err(|e| format!("--max-procs: {e}"))?
            }
            extra => {
                return Err(format!(
                    "bench-scale takes [--smoke] [--threads N] [--no-mmap] [--max-procs N], \
                     not `{extra}`"
                ))
            }
        }
    }
    esh::bench_scale::run(&opts)
}

fn stats(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err("stats takes <corpus.json>".into());
    };
    let corpus = load(path)?;
    println!("procedures: {}", corpus.procs.len());
    let cves: std::collections::BTreeSet<_> =
        corpus.procs.iter().filter_map(|p| p.cve.clone()).collect();
    println!("CVE functions: {}", cves.len());
    let toolchains: std::collections::BTreeSet<_> =
        corpus.procs.iter().map(|p| p.toolchain.clone()).collect();
    println!("toolchains: {}", toolchains.len());
    for t in toolchains {
        println!("  {t}");
    }
    let insts: usize = corpus.procs.iter().map(|p| p.proc_.inst_count()).sum();
    println!("total instructions: {insts}");
    Ok(())
}

fn pair(args: &[String]) -> Result<(), String> {
    let [path, qn, tn] = args else {
        return Err("pair takes <corpus.json> <query-substring> <target-substring>".into());
    };
    let corpus = load(path)?;
    let qi = find_proc(&corpus, qn).ok_or_else(|| format!("no procedure matching `{qn}`"))?;
    let ti = find_proc(&corpus, tn).ok_or_else(|| format!("no procedure matching `{tn}`"))?;
    let mut engine = SimilarityEngine::new(EngineConfig::default());
    let target = engine.add_target(corpus.procs[ti].display(), &corpus.procs[ti].proc_);
    let scores = engine.query(&corpus.procs[qi].proc_);
    let s = scores
        .scores
        .iter()
        .find(|s| s.target == target)
        .expect("scored");
    println!("query : {}", corpus.procs[qi].display());
    println!("target: {}", corpus.procs[ti].display());
    println!("GES   : {:.3}", s.ges);
    println!("S-LOG : {:.3}", s.s_log);
    println!("S-VCP : {:.3}", s.s_vcp);
    Ok(())
}
