//! `esh` — command-line binary similarity search, in the shape of the
//! paper's released tool: build a corpus, then query procedures against it.
//!
//! ```text
//! esh build-corpus [smoke|default|paper] <corpus.json>
//! esh search <corpus.json> <query-substring> [top_n]
//! esh index build <corpus.json> <index.esh>
//! esh query --index <index.esh> <corpus.json> <query-substring> [top_n]
//! esh stats <corpus.json>
//! esh pair <corpus.json> <query-substring> <target-substring>
//! ```
//!
//! `index build` persists the engine's derived corpus state (strand
//! classes, signatures, hashes) to a versioned snapshot; `query --index`
//! restores it — skipping decomposition/lifting of every target — runs the
//! query, reports VCP-cache statistics, and writes the warmed cache back
//! into the snapshot so repeat queries skip the verifier almost entirely.

use esh::prelude::*;
use esh_eval::experiments::Scale;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  esh build-corpus [smoke|default|paper] <corpus.json>\n  \
         esh search <corpus.json> <query-substring> [top_n]\n  \
         esh index build <corpus.json> <index.esh>\n  \
         esh query --index <index.esh> <corpus.json> <query-substring> [top_n]\n  \
         esh stats <corpus.json>\n  \
         esh pair <corpus.json> <query-substring> <target-substring>"
    );
    ExitCode::from(2)
}

fn load(path: &str) -> Result<Corpus, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    Corpus::from_json(&text).map_err(|e| format!("parsing {path}: {e}"))
}

fn find_proc(corpus: &Corpus, needle: &str) -> Option<usize> {
    corpus
        .procs
        .iter()
        .position(|p| p.display().contains(needle))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("build-corpus") => build_corpus(&args[1..]),
        Some("search") => search(&args[1..]),
        Some("index") => index(&args[1..]),
        Some("query") => query(&args[1..]),
        Some("stats") => stats(&args[1..]),
        Some("pair") => pair(&args[1..]),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn build_corpus(args: &[String]) -> Result<(), String> {
    let (scale, path) = match args {
        [path] => (Scale::Default, path),
        [scale, path] => (
            Scale::parse(scale).ok_or_else(|| format!("unknown scale `{scale}`"))?,
            path,
        ),
        _ => return Err("build-corpus takes [scale] <corpus.json>".into()),
    };
    eprintln!("building {scale:?} corpus...");
    let corpus = Corpus::build(&scale.corpus_config());
    let json = corpus.to_json().map_err(|e| e.to_string())?;
    std::fs::write(path, json).map_err(|e| e.to_string())?;
    println!("wrote {} procedures to {path}", corpus.procs.len());
    Ok(())
}

fn search(args: &[String]) -> Result<(), String> {
    let (path, needle, top_n) = match args {
        [path, needle] => (path, needle, 10),
        [path, needle, n] => (
            path,
            needle,
            n.parse().map_err(|_| format!("bad top_n `{n}`"))?,
        ),
        _ => return Err("search takes <corpus.json> <query-substring> [top_n]".into()),
    };
    let corpus = load(path)?;
    let qi =
        find_proc(&corpus, needle).ok_or_else(|| format!("no procedure matching `{needle}`"))?;
    eprintln!("query: {}", corpus.procs[qi].display());
    let mut engine = SimilarityEngine::new(EngineConfig::default());
    for p in &corpus.procs {
        engine.add_target(p.display(), &p.proc_);
    }
    let scores = engine.query(&corpus.procs[qi].proc_);
    println!("{:>10}  procedure", "GES");
    for s in scores
        .ranked()
        .iter()
        .filter(|s| s.target.0 != qi)
        .take(top_n)
    {
        println!("{:>10.3}  {}", s.ges, s.name);
    }
    Ok(())
}

/// Builds an engine over every procedure of a corpus — the shared path of
/// `search` (in-memory) and `index build` (persisted), kept in one place
/// so `query --index` scores are identical to the in-memory ones.
fn engine_over_corpus(corpus: &Corpus) -> SimilarityEngine {
    let mut engine = SimilarityEngine::new(EngineConfig::default());
    for p in &corpus.procs {
        engine.add_target(p.display(), &p.proc_);
    }
    engine
}

fn index(args: &[String]) -> Result<(), String> {
    let [sub, corpus_path, index_path] = args else {
        return Err("index takes: build <corpus.json> <index.esh>".into());
    };
    if sub != "build" {
        return Err(format!("unknown index subcommand `{sub}` (expected `build`)"));
    }
    let corpus = load(corpus_path)?;
    eprintln!("indexing {} procedures...", corpus.procs.len());
    let engine = engine_over_corpus(&corpus);
    engine.save(index_path).map_err(|e| e.to_string())?;
    println!(
        "wrote index: {} targets, {} strand classes, format v{}, config {:#018x}",
        engine.target_count(),
        engine.class_count(),
        esh::core::SNAPSHOT_FORMAT_VERSION,
        engine.config().fingerprint(),
    );
    Ok(())
}

fn query(args: &[String]) -> Result<(), String> {
    let (index_path, corpus_path, needle, top_n) = match args {
        [flag, index, corpus, needle] if flag == "--index" => (index, corpus, needle, 10),
        [flag, index, corpus, needle, n] if flag == "--index" => (
            index,
            corpus,
            needle,
            n.parse().map_err(|_| format!("bad top_n `{n}`"))?,
        ),
        _ => return Err("query takes --index <index.esh> <corpus.json> <query-substring> [top_n]".into()),
    };
    let corpus = load(corpus_path)?;
    let qi =
        find_proc(&corpus, needle).ok_or_else(|| format!("no procedure matching `{needle}`"))?;
    eprintln!("query: {}", corpus.procs[qi].display());
    let engine = SimilarityEngine::load(index_path).map_err(|e| e.to_string())?;
    let scores = engine.query(&corpus.procs[qi].proc_);
    println!("{:>10}  procedure", "GES");
    for s in scores
        .ranked()
        .iter()
        .filter(|s| s.target.0 != qi)
        .take(top_n)
    {
        println!("{:>10.3}  {}", s.ges, s.name);
    }
    let stats = engine.cache_stats();
    println!(
        "vcp cache: {} hits, {} misses, {:.1}% hit rate, {} entries",
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0,
        stats.entries,
    );
    let sp = engine.solver_stats();
    println!(
        "sat solver: {} queries, {:.1} conflicts/query, {:.1} ms sat time, \
         {} blast hits / {} misses, {} learnts retained ({} dropped, {} resets)",
        sp.sat_queries,
        sp.conflicts_per_query(),
        sp.sat_time_ns as f64 / 1e6,
        sp.blast_cache_hits,
        sp.blast_cache_misses,
        sp.retained_learnts,
        sp.learnts_dropped,
        sp.solver_resets,
    );
    // Persist the warmed cache: the next identical query skips the
    // verifier entirely.
    engine.save_with_cache(index_path).map_err(|e| e.to_string())?;
    Ok(())
}

fn stats(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err("stats takes <corpus.json>".into());
    };
    let corpus = load(path)?;
    println!("procedures: {}", corpus.procs.len());
    let cves: std::collections::BTreeSet<_> =
        corpus.procs.iter().filter_map(|p| p.cve.clone()).collect();
    println!("CVE functions: {}", cves.len());
    let toolchains: std::collections::BTreeSet<_> =
        corpus.procs.iter().map(|p| p.toolchain.clone()).collect();
    println!("toolchains: {}", toolchains.len());
    for t in toolchains {
        println!("  {t}");
    }
    let insts: usize = corpus.procs.iter().map(|p| p.proc_.inst_count()).sum();
    println!("total instructions: {insts}");
    Ok(())
}

fn pair(args: &[String]) -> Result<(), String> {
    let [path, qn, tn] = args else {
        return Err("pair takes <corpus.json> <query-substring> <target-substring>".into());
    };
    let corpus = load(path)?;
    let qi = find_proc(&corpus, qn).ok_or_else(|| format!("no procedure matching `{qn}`"))?;
    let ti = find_proc(&corpus, tn).ok_or_else(|| format!("no procedure matching `{tn}`"))?;
    let mut engine = SimilarityEngine::new(EngineConfig::default());
    let target = engine.add_target(corpus.procs[ti].display(), &corpus.procs[ti].proc_);
    let scores = engine.query(&corpus.procs[qi].proc_);
    let s = scores
        .scores
        .iter()
        .find(|s| s.target == target)
        .expect("scored");
    println!("query : {}", corpus.procs[qi].display());
    println!("target: {}", corpus.procs[ti].display());
    println!("GES   : {:.3}", s.ges);
    println!("S-LOG : {:.3}", s.s_log);
    println!("S-VCP : {:.3}", s.s_vcp);
    Ok(())
}
