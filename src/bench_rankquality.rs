//! `esh bench-rankquality`: ranking fidelity of the pruned pipeline.
//!
//! `esh bench-prefilter` gates on top-1 identity and SAT savings;
//! this bench measures what the prefilter historically traded away —
//! **retrieval depth**. It builds the cross-compiler corpus twice (default
//! prefiltered config vs no sketch tier), runs the same CVE queries
//! through both, and scores the pruned ranking *against the exhaustive
//! ranking* with the `esh-eval` rank-fidelity metrics:
//!
//! * per-query top-10 agreement (set overlap of the served windows),
//! * Kendall tau over the shared window (order fidelity),
//! * ROC/CROC of both rankings against same-source ground truth,
//! * SAT-query reduction plus the multi-probe / refine-top-K counters.
//!
//! The full run enforces the tentpole acceptance bar — mean top-10
//! agreement ≥ 0.9 with ≥ 50% SAT-query reduction; `--smoke` shrinks the
//! query count for CI and gates on [`SMOKE_TOP10_FLOOR`]. Results land in
//! `BENCH_rankquality.json` at the repo root (schema:
//! `docs/BENCH_SCHEMAS.md`).

use std::collections::HashMap;
use std::time::Instant;

use esh_core::{EngineConfig, SimilarityEngine, TargetId};
use esh_corpus::{Corpus, CorpusConfig};
use esh_eval::{compare_rankings, RankComparison};

/// Agreement window: the ranking depth triage workloads consume, and the
/// default [`esh_core::PrefilterConfig::refine_top_k`] window.
const TOP_K: usize = 10;

/// Smoke-mode regression floor on mean top-10 agreement. CI fails when a
/// change drops the smoke bench below this; the full bench holds the
/// stricter 0.9 bar.
pub const SMOKE_TOP10_FLOOR: f64 = 0.9;

/// Held-out class pairs sampled by per-corpus margin calibration. Each
/// sample pays one exact verification, so the sample size trades margin
/// confidence against the very SAT budget the bench gates on; 32 pairs
/// keep calibration under ~5% of the exhaustive bill.
const CALIBRATION_SAMPLES: usize = 32;

/// Calibration's score-distortion cap: the largest exact VCP a calibrated
/// prune may zero (0.5 sits at the sigmoid midpoint, below which a pair
/// contributes almost no likelihood evidence).
const CALIBRATION_MAX_PRUNED_VCP: f64 = 0.75;

/// The bench corpus. Ranking *depth* only exists when the served window
/// is a small slice of the ranking **and** the window ranks are held by
/// genuinely similar targets: the full run uses the default corpus (the
/// paper's toolchain matrix with patched variants, template family,
/// wrappers, and the distractor pool), where each query has enough
/// toolchain/patch/wrapper variants to fill the top-10 with
/// sketch-visible similarity. `--smoke` reuses the 28-procedure test
/// corpus — there the window covers a third of the ranking, which is
/// fine for the agreement regression gate but meaningless for SAT
/// accounting (which smoke does not gate).
fn bench_corpus(smoke: bool) -> CorpusConfig {
    if smoke {
        CorpusConfig::small()
    } else {
        CorpusConfig::default()
    }
}

/// One engine mode's rankings and cost counters.
struct ModeRun {
    /// Per-query full rankings `(display name, GES)`, self-match excluded.
    rankings: Vec<Vec<(String, f64)>>,
    /// SAT queries issued across corpus build + all queries.
    sat_queries: u64,
    /// `vcp_pair` invocations: VCP-cache misses plus refine-top-K
    /// re-pricings (refine's lookups bypass the cache counters).
    verifier_calls: u64,
    /// Total query wall time, ms.
    query_ms: u128,
    /// Prefilter counters (zero for the exhaustive mode).
    prefilter: esh_core::PrefilterStatsSnapshot,
}

fn run_mode(corpus: &Corpus, queries: &[usize], sketch: bool) -> ModeRun {
    let config = if sketch {
        EngineConfig::default()
    } else {
        EngineConfig {
            sketch: None,
            ..EngineConfig::default()
        }
    };
    let mut engine = SimilarityEngine::new(config);
    for p in &corpus.procs {
        engine.add_target(p.display(), &p.proc_);
    }
    if sketch {
        // Per-corpus margin calibration (the tentpole's staged design:
        // prune aggressively under a calibrated margin, recover window
        // exactness via probing + refine-top-K). Calibration's own solver
        // work lands in this engine's counters — the reported SAT
        // reduction pays for it honestly.
        if let Some(cal) = engine.calibrate_margin(CALIBRATION_SAMPLES, CALIBRATION_MAX_PRUNED_VCP)
        {
            eprintln!(
                "bench-rankquality: calibrated margin {:.2} from {} pairs \
                 (prunes {:.0}%, max pruned VCP {:.2})",
                cal.margin,
                cal.sampled_pairs,
                cal.pruned_fraction * 100.0,
                cal.max_pruned_exact,
            );
        }
    }
    let t0 = Instant::now();
    let rankings = queries
        .iter()
        .map(|&qi| {
            let scores = engine.query(&corpus.procs[qi].proc_);
            scores
                .ranked()
                .into_iter()
                .filter(|s| s.target != TargetId(qi))
                .map(|s| (s.name.clone(), s.ges))
                .collect()
        })
        .collect();
    let prefilter = engine.prefilter_stats();
    ModeRun {
        rankings,
        sat_queries: engine.solver_stats().sat_queries,
        verifier_calls: engine.cache_stats().misses + prefilter.refined_pairs,
        query_ms: t0.elapsed().as_millis(),
        prefilter,
    }
}

/// Formats an `f64` list as a JSON array.
fn json_floats(xs: &[f64]) -> String {
    let body: Vec<String> = xs.iter().map(|x| format!("{x:.4}")).collect();
    format!("[{}]", body.join(", "))
}

/// Runs the comparison and writes `BENCH_rankquality.json`. `smoke`
/// shrinks the query count for CI. Returns an error when a rank-fidelity
/// gate fails: full mode demands mean top-10 agreement ≥ 0.9 **and**
/// SAT-query reduction ≥ 50%; smoke mode demands mean top-10 agreement ≥
/// [`SMOKE_TOP10_FLOOR`]. Top-1 must be identical in both modes.
pub fn run(smoke: bool) -> Result<(), String> {
    let t0 = Instant::now();
    let n_queries = if smoke { 2 } else { 4 };

    eprintln!("bench-rankquality: building corpus...");
    let corpus = Corpus::build(&bench_corpus(smoke));
    // Ground truth: two targets are relevant to each other iff they were
    // compiled from the same source function.
    let func_of: HashMap<String, &str> = corpus
        .procs
        .iter()
        .map(|p| (p.display(), p.func.as_str()))
        .collect();
    // Distinct CVE procedures, by corpus index — the bench-prefilter /
    // bench-serve query set.
    let mut names: Vec<String> = corpus
        .procs
        .iter()
        .filter(|p| p.cve.is_some())
        .map(|p| p.display())
        .collect();
    names.sort();
    names.dedup();
    names.truncate(n_queries);
    let queries: Vec<usize> = names
        .iter()
        .map(|q| {
            corpus
                .procs
                .iter()
                .position(|p| p.display() == *q)
                .expect("query name came from the corpus")
        })
        .collect();
    if queries.len() < n_queries {
        return Err(format!(
            "corpus has only {} CVE queries, need {n_queries}",
            queries.len()
        ));
    }

    eprintln!(
        "bench-rankquality: exhaustive pass ({} queries)...",
        queries.len()
    );
    let off = run_mode(&corpus, &queries, false);
    eprintln!("bench-rankquality: prefiltered pass...");
    let on = run_mode(&corpus, &queries, true);

    let per_query: Vec<RankComparison> = queries
        .iter()
        .zip(off.rankings.iter().zip(&on.rankings))
        .map(|(&qi, (reference, pruned))| {
            let query_func = corpus.procs[qi].func.as_str();
            compare_rankings(
                reference,
                pruned,
                |name| func_of.get(name).copied() == Some(query_func),
                TOP_K,
            )
        })
        .collect();

    let top1_identical = per_query.iter().all(|c| c.top1_identical);
    let top10: Vec<f64> = per_query.iter().map(|c| c.topk_agreement).collect();
    let taus: Vec<f64> = per_query.iter().map(|c| c.kendall_tau).collect();
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
    let top10_mean = mean(&top10);
    let top10_min = top10.iter().copied().fold(f64::INFINITY, f64::min);
    let tau_mean = mean(&taus);
    let roc_off = mean(&per_query.iter().map(|c| c.roc_exhaustive).collect::<Vec<_>>());
    let roc_on = mean(&per_query.iter().map(|c| c.roc_pruned).collect::<Vec<_>>());
    let croc_off = mean(&per_query.iter().map(|c| c.croc_exhaustive).collect::<Vec<_>>());
    let croc_on = mean(&per_query.iter().map(|c| c.croc_pruned).collect::<Vec<_>>());
    let sat_reduction = if off.sat_queries > 0 {
        1.0 - on.sat_queries as f64 / off.sat_queries as f64
    } else {
        0.0
    };
    eprintln!(
        "bench-rankquality: top-1 identical: {top1_identical}, top-{TOP_K} agreement \
         mean {:.3} min {:.3}, tau mean {:.3}, SAT {} -> {} ({:.1}% fewer)",
        top10_mean,
        top10_min,
        tau_mean,
        off.sat_queries,
        on.sat_queries,
        sat_reduction * 100.0,
    );

    let json = format!(
        "{{\n  \"bench\": \"rankquality\",\n  \"mode\": \"{mode}\",\n  \
         \"corpus_procs\": {procs},\n  \"queries\": {nq},\n  \
         \"top_k\": {TOP_K},\n  \
         \"top1_identical\": {top1_identical},\n  \
         \"top10_agreement\": {top10_mean:.4},\n  \
         \"top10_agreement_min\": {top10_min:.4},\n  \
         \"top10_agreement_per_query\": {top10_pq},\n  \
         \"kendall_tau\": {tau_mean:.4},\n  \
         \"kendall_tau_per_query\": {tau_pq},\n  \
         \"roc_auc\": {{ \"exhaustive\": {roc_off:.4}, \"prefiltered\": {roc_on:.4} }},\n  \
         \"croc_auc\": {{ \"exhaustive\": {croc_off:.4}, \"prefiltered\": {croc_on:.4} }},\n  \
         \"exhaustive\": {{ \"query_ms\": {oq}, \"sat_queries\": {os}, \
         \"verifier_calls\": {oc} }},\n  \
         \"prefiltered\": {{ \"query_ms\": {nq2}, \"sat_queries\": {ns}, \
         \"verifier_calls\": {ncalls}, \"pairs_pruned\": {pp}, \
         \"sketch_collisions\": {sc}, \"exact_fallbacks\": {ef}, \
         \"ambiguous_probes\": {ap}, \"probe_escalations\": {pe}, \
         \"refined_pairs\": {rp}, \"refine_passes\": {rf} }},\n  \
         \"sat_query_reduction\": {sat_reduction:.4},\n  \
         \"elapsed_ms\": {elapsed}\n}}\n",
        mode = if smoke { "smoke" } else { "full" },
        procs = corpus.procs.len(),
        nq = queries.len(),
        top10_pq = json_floats(&top10),
        tau_pq = json_floats(&taus),
        oq = off.query_ms,
        os = off.sat_queries,
        oc = off.verifier_calls,
        nq2 = on.query_ms,
        ns = on.sat_queries,
        ncalls = on.verifier_calls,
        pp = on.prefilter.pairs_pruned,
        sc = on.prefilter.sketch_collisions,
        ef = on.prefilter.exact_fallbacks,
        ap = on.prefilter.ambiguous_probes,
        pe = on.prefilter.probe_escalations,
        rp = on.prefilter.refined_pairs,
        rf = on.prefilter.refine_passes,
        elapsed = t0.elapsed().as_millis(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_rankquality.json");
    std::fs::write(path, &json).map_err(|e| format!("writing BENCH_rankquality.json: {e}"))?;
    println!("{json}");

    if !top1_identical {
        return Err("top-1 rankings diverged between prefiltered and exhaustive".into());
    }
    if smoke {
        if top10_mean < SMOKE_TOP10_FLOOR {
            return Err(format!(
                "smoke top-10 agreement {top10_mean:.3} regressed below the \
                 {SMOKE_TOP10_FLOOR} floor"
            ));
        }
    } else {
        if top10_mean < 0.9 {
            return Err(format!(
                "top-10 agreement {top10_mean:.3} misses the 0.9 bar"
            ));
        }
        if sat_reduction < 0.50 {
            return Err(format!(
                "SAT-query reduction {:.1}% misses the 50% bar",
                sat_reduction * 100.0
            ));
        }
    }
    println!("bench-rankquality: passed; wrote BENCH_rankquality.json");
    Ok(())
}
