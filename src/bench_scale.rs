//! `esh bench-scale`: the scale tier measured end to end.
//!
//! For each corpus size (1k/5k/10k/100k procedures; `--smoke` keeps 1k
//! only, `--max-procs N` drops every rung above `N`) the bench streams
//! the seeded synthetic corpus
//! ([`esh_corpus::scale::stream_scale_corpus_with_threads`]) straight
//! into an engine running the pure-LSH scale profile
//! ([`esh_core::PrefilterConfig::lsh_only`]), persists it as a sharded
//! binary index (format v6) — plus a JSON snapshot (format v4) at sizes
//! where parsing one is still tolerable — then measures what the scale
//! tier exists to improve:
//!
//! * **build throughput** — procedures ingested per second (streamed
//!   generation + compilation + decompose/lift/dedup/sketch),
//! * **cold-load time** — [`esh_index::open_sharded_with`] with `mmap`
//!   on *and* off (manifest + `core.bin` only; procedure bodies stay on
//!   disk until a query needs them), vs `SimilarityEngine::load`
//!   (parse the whole JSON document) where the baseline is measured,
//! * **query latency and shard fan-out** — ranked queries against the
//!   lazily loaded engine under per-record demand decoding, with shard
//!   residency, whole-shard prunes (the sketch-band sidecar), peak
//!   resident bytes, and decoded-vs-mapped bytes reported,
//! * **whole-decode baseline** — the same queries with demand decoding
//!   off (`EshxOpenOptions { demand: false }`, the v5 behavior where a
//!   touched shard decodes every record at open), for the latency and
//!   residency comparison the demand-decode tier is gated on,
//! * **memory-bounded serving** — the same queries repeated under a
//!   one-shard [`set_shard_budget`](esh_core::SimilarityEngine::set_shard_budget),
//!   gated on evictions happening, settled residency staying under the
//!   budget, and the ranked output staying bit-identical to the
//!   unbudgeted run.
//!
//! The bench *gates* on: the sharded cold-load beating the JSON load at
//! every size it is measured; the mmap cold-load never losing to the
//! read-into-buffer fallback; at least one whole shard pruned per query;
//! demand decoding decoding strictly fewer bytes than it maps, with at
//! least one partially-decoded shard after every query and rankings
//! bit-identical to the whole-decode baseline; at the 100k rung, the
//! cold demand-decode query at least 2× faster than whole-decode with
//! strictly lower peak residency; the budgeted invariants above; and a
//! byte-identity check — the ranked output of a sharded engine must
//! equal the JSON-loaded engine's bit for bit on the cross-compiler
//! paper corpus (371 procedures; `--smoke` uses the small 28-procedure
//! matrix). Results land in `BENCH_scale.json`.

use std::time::Instant;

use esh_core::{EngineConfig, PrefilterConfig, QueryScores, SimilarityEngine};
use esh_corpus::scale::{scale_matrix, stream_scale_corpus_with_threads, ScaleConfig};
use esh_corpus::{Corpus, CorpusConfig};
use esh_index::EshxOpenOptions;

/// Generation seed for the synthetic corpus (fixed: the bench is a
/// regression harness, not a fuzzer).
const SEED: u64 = 0x5CA1E;

/// Targets per shard for the persisted v6 indexes. Finer than the CLI
/// default (64): whole-shard pruning is a per-shard all-or-nothing
/// test, and on the digest-heavy synthetic corpus a 64-target shard
/// almost always has at least one band collision with some query
/// strand. Eight targets keeps shards coarse enough to amortize loads
/// while leaving the sketch-band sidecar real work to do.
const TARGETS_PER_SHARD: usize = 8;

/// Ranked queries issued against each lazily loaded index.
const QUERIES_PER_SIZE: usize = 2;

/// Largest size at which the JSON snapshot baseline is still measured.
/// Above it (the 100k rung) the near-gigabyte JSON document is the
/// failure mode the scale tier exists to retire, not a baseline worth
/// building — those entries report `null` for the JSON fields.
const JSON_BASELINE_CEILING: usize = 10_000;

/// Knobs the `esh bench-scale` CLI exposes.
pub struct BenchScaleOptions {
    /// Keep the 1k size and the small identity matrix (CI).
    pub smoke: bool,
    /// Compile threads for the streamed corpus build; `0` means one per
    /// matrix configuration.
    pub threads: usize,
    /// Query through mmap-backed shards (`false` = the read-into-buffer
    /// fallback). Both cold loads are measured either way; this picks
    /// which backing the query phases run on.
    pub mmap: bool,
    /// Skip corpus rungs above this size (`0` = run them all). The full
    /// ladder's 100k rung dominates wall time; `--max-procs 10000`
    /// keeps a local full run fast.
    pub max_procs: usize,
}

impl Default for BenchScaleOptions {
    fn default() -> BenchScaleOptions {
        BenchScaleOptions { smoke: false, threads: 0, mmap: true, max_procs: 0 }
    }
}

/// One corpus size's measurements.
struct SizeRun {
    procs: usize,
    build_ms: u128,
    json_bytes: u64,
    json_load_ms: Option<u128>,
    sharded_bytes: u64,
    mmap_load_ms: u128,
    buffered_load_ms: u128,
    query_ms: Vec<u128>,
    query_ms_whole: Vec<u128>,
    shards_total: u64,
    shards_loaded: u64,
    shards_pruned: u64,
    resident_bytes_peak: u64,
    resident_bytes_peak_whole: u64,
    decoded_bytes: u64,
    mapped_bytes: u64,
    classes_decoded: u64,
    shards_partial_min: u64,
    budget_bytes: u64,
    budget_resident_bytes: u64,
    budget_resident_peak: u64,
    budget_evicted: u64,
}

impl SizeRun {
    fn throughput(&self) -> f64 {
        self.procs as f64 / (self.build_ms.max(1) as f64 / 1000.0)
    }

    /// Cold-load time of the backing the query phases ran on.
    fn sharded_load_ms(&self, mmap: bool) -> u128 {
        if mmap { self.mmap_load_ms } else { self.buffered_load_ms }
    }
}

fn scratch_dir() -> std::path::PathBuf {
    std::env::temp_dir().join(format!("esh-bench-scale-{}", std::process::id()))
}

/// The scale-tier engine profile: pure-LSH prefiltering, where the
/// sketch-band sidecar can prove whole shards irrelevant before fan-out.
fn scale_engine() -> SimilarityEngine {
    SimilarityEngine::new(EngineConfig {
        sketch: Some(PrefilterConfig::lsh_only()),
        ..EngineConfig::default()
    })
}

/// Best-of-5 open times for both shard backings, in ms, interleaved
/// (`mmap, buffered, mmap, buffered, ...`). Interleaved and best-of,
/// not sequential and first-of: the first open after a build pays the
/// page-cache fill, and a block of same-mode runs would charge cache
/// churn from the preceding phase to whichever mode ran first —
/// alternating gives both modes identical cache conditions, and the
/// minimum is the steady-state open cost.
fn cold_load_ms(eshx: &std::path::Path) -> Result<(u128, u128), String> {
    let mut best = [u128::MAX; 2];
    for _ in 0..5 {
        for (i, mmap) in [(0usize, true), (1, false)] {
            let t = Instant::now();
            let engine = esh_index::open_sharded_with(
                eshx,
                EshxOpenOptions { mmap, prune: true, demand: true },
            )
            .map_err(|e| e.to_string())?;
            best[i] = best[i].min(t.elapsed().as_millis());
            drop(engine);
        }
    }
    Ok((best[0], best[1]))
}

/// The per-size query battery: distinct sources compiled with one matrix
/// toolchain — each has an exact self-match in the corpus, so the
/// queries exercise the full pipeline including VCP.
fn query_battery() -> Vec<esh_asm::Procedure> {
    let tc = scale_matrix()[7]; // gcc 4.9 -O2
    let cc = esh_cc::Compiler::with_opt(tc.vendor, tc.version, tc.opt);
    (0..QUERIES_PER_SIZE as u64)
        .map(|k| cc.compile_function(&esh_minic::gen::generate_scale_source(SEED, k)))
        .collect()
}

fn assert_identical(a: &QueryScores, b: &QueryScores, what: &str) -> Result<(), String> {
    let ra = a.ranked();
    let rb = b.ranked();
    if ra.len() != rb.len() {
        return Err(format!("{what}: ranked lengths differ"));
    }
    for (x, y) in ra.iter().zip(&rb) {
        if x.name != y.name || x.ges.to_bits() != y.ges.to_bits() {
            return Err(format!("{what}: ranking diverges at `{}` vs `{}`", x.name, y.name));
        }
    }
    Ok(())
}

fn measure_size(procs: usize, opts: &BenchScaleOptions) -> Result<SizeRun, String> {
    let dir = scratch_dir();
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let json_path = dir.join(format!("scale-{procs}.esh"));
    let eshx_path = dir.join(format!("scale-{procs}.eshx"));
    let threads = if opts.threads == 0 { scale_matrix().len() } else { opts.threads };

    eprintln!("bench-scale: [{procs}] streaming corpus into engine ({threads} threads)...");
    let config = ScaleConfig::new(procs, SEED);
    let t0 = Instant::now();
    let mut engine = scale_engine();
    let emitted = stream_scale_corpus_with_threads(&config, threads, |p| {
        engine.add_target(p.display(), &p.proc_);
    });
    let build_ms = t0.elapsed().as_millis();
    assert_eq!(emitted, procs);

    let summary =
        esh_index::write_sharded(&engine, &eshx_path, TARGETS_PER_SHARD).map_err(|e| e.to_string())?;
    let (json_bytes, json_load_ms) = if procs <= JSON_BASELINE_CEILING {
        engine.save(&json_path).map_err(|e| e.to_string())?;
        drop(engine);
        let bytes = std::fs::metadata(&json_path).map_err(|e| e.to_string())?.len();
        let t1 = Instant::now();
        let json_engine = SimilarityEngine::load(&json_path).map_err(|e| e.to_string())?;
        let ms = t1.elapsed().as_millis();
        drop(json_engine);
        (bytes, Some(ms))
    } else {
        drop(engine);
        (0, None)
    };

    eprintln!(
        "bench-scale: [{procs}] built in {build_ms}ms ({:.0} procs/s); sharded {}B across {} \
         shards{}",
        procs as f64 / (build_ms.max(1) as f64 / 1000.0),
        summary.total_bytes(),
        summary.shards,
        match json_load_ms {
            Some(ms) => format!("; json {json_bytes}B loads in {ms}ms"),
            None => "; json baseline skipped at this size".to_string(),
        },
    );

    let (mmap_load_ms, buffered_load_ms) = cold_load_ms(&eshx_path)?;
    eprintln!(
        "bench-scale: [{procs}] cold load: mmap {mmap_load_ms}ms, buffered {buffered_load_ms}ms"
    );

    let queries = query_battery();
    let open = |demand: bool| {
        esh_index::open_sharded_with(
            &eshx_path,
            EshxOpenOptions { mmap: opts.mmap, prune: true, demand },
        )
        .map_err(|e| e.to_string())
    };

    // Unbudgeted demand-decode pass: latency, whole-shard prunes, peak
    // residency, decoded-vs-mapped bytes. `shards_partial_min` is the
    // smallest count of partially-decoded resident shards observed
    // after any query — the gate that demand decoding actually leaves
    // neighbour records raw on every query, not just in aggregate.
    let lazy = open(true)?;
    let mut query_ms = Vec::with_capacity(queries.len());
    let mut baselines = Vec::with_capacity(queries.len());
    let mut shards_partial_min = u64::MAX;
    for q in &queries {
        let tq = Instant::now();
        let scores = lazy.query(q);
        query_ms.push(tq.elapsed().as_millis());
        assert_eq!(scores.scores.len(), procs);
        baselines.push(scores);
        shards_partial_min = shards_partial_min.min(lazy.shard_stats().shards_partial);
    }
    let stats = lazy.shard_stats();
    drop(lazy);
    eprintln!(
        "bench-scale: [{procs}] queries {query_ms:?}ms; shards loaded {}/{} (fanout {}, pruned \
         {}), peak resident {}B; decoded {}B of {}B mapped ({} classes, ≥{} shards partial)",
        stats.shards_loaded,
        stats.shards_total,
        stats.fanout_total,
        stats.pruned_total,
        stats.resident_bytes_peak,
        stats.decoded_bytes,
        stats.mapped_bytes,
        stats.classes_decoded_total,
        shards_partial_min,
    );

    // Whole-decode baseline: the same queries with demand decoding off
    // (every touched shard decodes all records at open — the v5
    // behavior). Rankings must not move by a bit; the latency and
    // residency deltas are what the demand-decode tier is gated on.
    let whole = open(false)?;
    let mut query_ms_whole = Vec::with_capacity(queries.len());
    for (i, q) in queries.iter().enumerate() {
        let tq = Instant::now();
        let scores = whole.query(q);
        query_ms_whole.push(tq.elapsed().as_millis());
        assert_identical(&baselines[i], &scores, &format!("[{procs}] whole-decode query {i}"))?;
    }
    let wstats = whole.shard_stats();
    drop(whole);
    eprintln!(
        "bench-scale: [{procs}] whole-decode baseline {query_ms_whole:?}ms, peak resident {}B",
        wstats.resident_bytes_peak,
    );

    // Budgeted pass: one-shard budget, same queries. Evictions must
    // happen, settled residency must respect the budget, and the ranked
    // output must not move by a bit.
    let budget_bytes = esh_index::read_manifest(&eshx_path)
        .map_err(|e| e.to_string())?
        .largest_shard_bytes;
    let budgeted = open(true)?;
    budgeted.set_shard_budget(budget_bytes);
    for (i, q) in queries.iter().enumerate() {
        let scores = budgeted.query(q);
        assert_identical(&baselines[i], &scores, &format!("[{procs}] budgeted query {i}"))?;
    }
    let bstats = budgeted.shard_stats();
    drop(budgeted);
    eprintln!(
        "bench-scale: [{procs}] budget {budget_bytes}B: {} evictions, settled {}B, peak {}B",
        bstats.evicted_total, bstats.resident_bytes, bstats.resident_bytes_peak,
    );

    std::fs::remove_file(&json_path).ok();
    std::fs::remove_dir_all(&eshx_path).ok();

    Ok(SizeRun {
        procs,
        build_ms,
        json_bytes,
        json_load_ms,
        sharded_bytes: summary.total_bytes(),
        mmap_load_ms,
        buffered_load_ms,
        query_ms,
        query_ms_whole,
        shards_total: stats.shards_total,
        shards_loaded: stats.shards_loaded,
        shards_pruned: stats.pruned_total,
        resident_bytes_peak: stats.resident_bytes_peak,
        resident_bytes_peak_whole: wstats.resident_bytes_peak,
        decoded_bytes: stats.decoded_bytes,
        mapped_bytes: stats.mapped_bytes,
        classes_decoded: stats.classes_decoded_total,
        shards_partial_min,
        budget_bytes,
        budget_resident_bytes: bstats.resident_bytes,
        budget_resident_peak: bstats.resident_bytes_peak,
        budget_evicted: bstats.evicted_total,
    })
}

/// Byte-identity on the cross-compiler matrix: a sharded engine's ranked
/// output must equal the JSON-loaded engine's, bit for bit, scores and
/// order alike. Returns `(corpus procs, queries checked)`.
fn check_identity(smoke: bool) -> Result<(usize, usize), String> {
    let corpus_config = if smoke { CorpusConfig::small() } else { CorpusConfig::default() };
    let corpus = Corpus::build(&corpus_config);
    eprintln!(
        "bench-scale: identity check on the {}-procedure compiler matrix...",
        corpus.procs.len()
    );
    let mut engine = SimilarityEngine::new(esh_core::EngineConfig::default());
    for p in &corpus.procs {
        engine.add_target(p.display(), &p.proc_);
    }
    let dir = scratch_dir();
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let json_path = dir.join("identity.esh");
    let eshx_path = dir.join("identity.eshx");
    engine.save(&json_path).map_err(|e| e.to_string())?;
    esh_index::write_sharded(&engine, &eshx_path, 32).map_err(|e| e.to_string())?;
    drop(engine);
    let from_json = SimilarityEngine::load(&json_path).map_err(|e| e.to_string())?;
    let from_shards = esh_index::open_sharded(&eshx_path).map_err(|e| e.to_string())?;

    let queries: Vec<usize> = corpus
        .procs
        .iter()
        .enumerate()
        .filter(|(_, p)| p.cve.is_some())
        .map(|(i, _)| i)
        .step_by(7)
        .take(3)
        .collect();
    for &qi in &queries {
        let a = from_json.query(&corpus.procs[qi].proc_);
        let b = from_shards.query(&corpus.procs[qi].proc_);
        let ra = a.ranked();
        let rb = b.ranked();
        if ra.len() != rb.len() {
            return Err(format!("identity: ranked lengths differ on query {qi}"));
        }
        for (x, y) in ra.iter().zip(&rb) {
            if x.name != y.name
                || x.ges.to_bits() != y.ges.to_bits()
                || x.s_log.to_bits() != y.s_log.to_bits()
                || x.s_vcp.to_bits() != y.s_vcp.to_bits()
            {
                return Err(format!(
                    "identity: sharded ranking diverges on query {qi} at `{}` vs `{}`",
                    x.name, y.name
                ));
            }
        }
    }
    // The counter contract too: both engines saw the same queries, so
    // their hit/miss counters must agree exactly.
    let ca = from_json.cache_stats();
    let cb = from_shards.cache_stats();
    if (ca.hits, ca.misses) != (cb.hits, cb.misses) {
        return Err(format!(
            "identity: cache counters diverge — json {}h/{}m, sharded {}h/{}m",
            ca.hits, ca.misses, cb.hits, cb.misses
        ));
    }
    std::fs::remove_file(&json_path).ok();
    std::fs::remove_dir_all(&eshx_path).ok();
    Ok((corpus.procs.len(), queries.len()))
}

/// All the pass/fail conditions over the measured runs, separated from
/// measurement so a failure still leaves every number printed above it.
fn apply_gates(runs: &[SizeRun], mmap: bool) -> Result<(), String> {
    for r in runs {
        if let Some(json_ms) = r.json_load_ms {
            if r.sharded_load_ms(mmap) >= json_ms {
                return Err(format!(
                    "cold-load gate failed at {} procs: sharded {}ms is not faster than json {}ms",
                    r.procs,
                    r.sharded_load_ms(mmap),
                    json_ms
                ));
            }
        }
        if r.mmap_load_ms > r.buffered_load_ms {
            return Err(format!(
                "mmap gate failed at {} procs: mmap cold-load {}ms lost to the buffered \
                 fallback's {}ms",
                r.procs, r.mmap_load_ms, r.buffered_load_ms
            ));
        }
        if r.shards_pruned < QUERIES_PER_SIZE as u64 {
            return Err(format!(
                "pruning gate failed at {} procs: {} whole-shard prunes over {} queries \
                 (need one per query)",
                r.procs, r.shards_pruned, QUERIES_PER_SIZE
            ));
        }
        if r.decoded_bytes >= r.mapped_bytes {
            return Err(format!(
                "demand-decode gate failed at {} procs: decoded {}B is not below mapped {}B \
                 (queries decoded every record they mapped)",
                r.procs, r.decoded_bytes, r.mapped_bytes
            ));
        }
        if r.shards_partial_min < 1 {
            return Err(format!(
                "partial-decode gate failed at {} procs: some query left no resident shard \
                 partially decoded",
                r.procs
            ));
        }
        // The headline demand-decode gates bind where whole-shard decode
        // actually hurts: at 100k-scale, shard decode dominates a cold
        // query. Below that, SAT work dominates and the ratio is noise.
        if r.procs >= 100_000 {
            let cold = r.query_ms[0].max(1);
            let cold_whole = r.query_ms_whole[0];
            if cold_whole < cold.saturating_mul(2) {
                return Err(format!(
                    "demand-decode speedup gate failed at {} procs: cold query {}ms vs \
                     whole-decode {}ms (need ≥2×)",
                    r.procs, r.query_ms[0], cold_whole
                ));
            }
            if r.resident_bytes_peak >= r.resident_bytes_peak_whole {
                return Err(format!(
                    "residency gate failed at {} procs: demand-decode peak {}B is not below \
                     whole-decode peak {}B",
                    r.procs, r.resident_bytes_peak, r.resident_bytes_peak_whole
                ));
            }
        }
        if r.budget_evicted == 0 {
            return Err(format!(
                "eviction gate failed at {} procs: a one-shard budget ({}B) never evicted",
                r.procs, r.budget_bytes
            ));
        }
        if r.budget_resident_bytes > r.budget_bytes {
            return Err(format!(
                "budget gate failed at {} procs: settled residency {}B exceeds the {}B budget",
                r.procs, r.budget_resident_bytes, r.budget_bytes
            ));
        }
    }
    Ok(())
}

/// Runs the scale bench and writes `BENCH_scale.json`. `--smoke` keeps
/// the 1k size and the small identity matrix for CI. Returns an error
/// when any gate fails — cold-load, mmap-vs-buffered, whole-shard
/// pruning, eviction under budget, or ranked-output identity.
pub fn run(opts: &BenchScaleOptions) -> Result<(), String> {
    let t0 = Instant::now();
    let ladder: &[usize] = if opts.smoke { &[1000] } else { &[1000, 5000, 10_000, 100_000] };
    let sizes: Vec<usize> = match opts.max_procs {
        0 => ladder.to_vec(),
        cap => {
            let kept: Vec<usize> = ladder.iter().copied().filter(|&n| n <= cap).collect();
            // A cap below the smallest rung still runs that rung — an
            // empty bench would trivially "pass" every gate.
            if kept.is_empty() { vec![ladder[0]] } else { kept }
        }
    };
    let mut runs = Vec::with_capacity(sizes.len());
    for &n in &sizes {
        runs.push(measure_size(n, opts)?);
    }
    let (identity_procs, identity_queries) = check_identity(opts.smoke)?;
    std::fs::remove_dir_all(scratch_dir()).ok();

    apply_gates(&runs, opts.mmap)?;

    let size_entries: Vec<String> = runs
        .iter()
        .map(|r| {
            let q: Vec<String> = r.query_ms.iter().map(|m| m.to_string()).collect();
            let qw: Vec<String> = r.query_ms_whole.iter().map(|m| m.to_string()).collect();
            let cold_speedup = r.query_ms_whole.first().copied().unwrap_or(0) as f64
                / (*r.query_ms.first().unwrap_or(&1)).max(1) as f64;
            let json_side = match r.json_load_ms {
                Some(ms) => format!(
                    "\"json_bytes\": {}, \"json_load_ms\": {}, \"cold_load_speedup\": {:.2}",
                    r.json_bytes,
                    ms,
                    ms as f64 / r.sharded_load_ms(opts.mmap).max(1) as f64,
                ),
                None => "\"json_bytes\": null, \"json_load_ms\": null, \
                         \"cold_load_speedup\": null"
                    .to_string(),
            };
            format!(
                "    {{ \"procs\": {}, \"build_ms\": {}, \
                 \"build_throughput_procs_per_s\": {:.1}, {json_side}, \
                 \"sharded_bytes\": {}, \"mmap_load_ms\": {}, \"buffered_load_ms\": {}, \
                 \"query_ms\": [{}], \"query_ms_whole_decode\": [{}], \
                 \"cold_query_speedup\": {:.2}, \"shards_total\": {}, \
                 \"shards_loaded_after_queries\": {}, \
                 \"shards_pruned\": {}, \"resident_bytes_peak\": {}, \
                 \"resident_bytes_peak_whole_decode\": {}, \"decoded_bytes\": {}, \
                 \"mapped_bytes\": {}, \"classes_decoded\": {}, \"shards_partial_min\": {}, \
                 \"shard_budget_bytes\": {}, \"budget_resident_bytes\": {}, \
                 \"budget_resident_bytes_peak\": {}, \"shards_evicted\": {} }}",
                r.procs,
                r.build_ms,
                r.throughput(),
                r.sharded_bytes,
                r.mmap_load_ms,
                r.buffered_load_ms,
                q.join(", "),
                qw.join(", "),
                cold_speedup,
                r.shards_total,
                r.shards_loaded,
                r.shards_pruned,
                r.resident_bytes_peak,
                r.resident_bytes_peak_whole,
                r.decoded_bytes,
                r.mapped_bytes,
                r.classes_decoded,
                r.shards_partial_min,
                r.budget_bytes,
                r.budget_resident_bytes,
                r.budget_resident_peak,
                r.budget_evicted,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"scale\",\n  \"mode\": \"{mode}\",\n  \"seed\": {SEED},\n  \
         \"matrix_configs\": {matrix},\n  \"targets_per_shard\": {TARGETS_PER_SHARD},\n  \
         \"profile\": \"lsh_only\",\n  \"mmap\": {mmap},\n  \
         \"sizes\": [\n{sizes}\n  ],\n  \
         \"identity\": {{ \"corpus_procs\": {ip}, \"queries\": {iq}, \"identical\": true }},\n  \
         \"elapsed_ms\": {elapsed}\n}}\n",
        mode = if opts.smoke { "smoke" } else { "full" },
        matrix = scale_matrix().len(),
        mmap = opts.mmap,
        sizes = size_entries.join(",\n"),
        ip = identity_procs,
        iq = identity_queries,
        elapsed = t0.elapsed().as_millis(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_scale.json");
    std::fs::write(path, &json).map_err(|e| e.to_string())?;
    eprintln!("bench-scale: wrote {path}");
    print!("{json}");
    Ok(())
}
