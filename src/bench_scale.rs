//! `esh bench-scale`: the scale tier measured end to end.
//!
//! For each corpus size (1k/5k/10k procedures; `--smoke` keeps 1k only)
//! the bench streams the seeded synthetic corpus
//! ([`esh_corpus::scale::stream_scale_corpus`]) straight into an engine,
//! persists it both ways — JSON snapshot (format v4) and sharded binary
//! index (format v5) — then measures what the scale tier exists to
//! improve:
//!
//! * **build throughput** — procedures ingested per second (streamed
//!   generation + compilation + decompose/lift/dedup/sketch),
//! * **cold-load time** — `SimilarityEngine::load` (parse the whole JSON
//!   document) vs [`esh_index::open_sharded`] (manifest + `core.bin`
//!   only; procedure bodies stay on disk until a query needs them),
//! * **query latency** — ranked queries against the lazily loaded
//!   engine, with the shard residency after the queries reported to show
//!   how little of the index a query actually touches.
//!
//! The bench *gates* on the sharded cold-load beating the JSON load at
//! every size, and on a byte-identity check: the ranked output of a
//! sharded engine must equal the JSON-loaded engine's bit for bit on the
//! cross-compiler paper corpus (371 procedures; `--smoke` uses the small
//! 28-procedure matrix). Results land in `BENCH_scale.json`.

use std::time::Instant;

use esh_core::SimilarityEngine;
use esh_corpus::scale::{scale_matrix, stream_scale_corpus, ScaleConfig};
use esh_corpus::{Corpus, CorpusConfig};

/// Generation seed for the synthetic corpus (fixed: the bench is a
/// regression harness, not a fuzzer).
const SEED: u64 = 0x5CA1E;

/// Targets per shard for the persisted v5 indexes.
const TARGETS_PER_SHARD: usize = 64;

/// Ranked queries issued against each lazily loaded index.
const QUERIES_PER_SIZE: usize = 2;

/// One corpus size's measurements.
struct SizeRun {
    procs: usize,
    build_ms: u128,
    json_bytes: u64,
    json_load_ms: u128,
    sharded_bytes: u64,
    sharded_load_ms: u128,
    query_ms: Vec<u128>,
    shards_total: u64,
    shards_loaded: u64,
}

impl SizeRun {
    fn throughput(&self) -> f64 {
        self.procs as f64 / (self.build_ms.max(1) as f64 / 1000.0)
    }

    fn speedup(&self) -> f64 {
        self.json_load_ms as f64 / self.sharded_load_ms.max(1) as f64
    }
}

fn scratch_dir() -> std::path::PathBuf {
    std::env::temp_dir().join(format!("esh-bench-scale-{}", std::process::id()))
}

fn measure_size(procs: usize) -> Result<SizeRun, String> {
    let dir = scratch_dir();
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let json_path = dir.join(format!("scale-{procs}.esh"));
    let eshx_path = dir.join(format!("scale-{procs}.eshx"));

    eprintln!("bench-scale: [{procs}] streaming corpus into engine...");
    let config = ScaleConfig::new(procs, SEED);
    let t0 = Instant::now();
    let mut engine = SimilarityEngine::new(esh_core::EngineConfig::default());
    let emitted = stream_scale_corpus(&config, |p| {
        engine.add_target(p.display(), &p.proc_);
    });
    let build_ms = t0.elapsed().as_millis();
    assert_eq!(emitted, procs);

    engine.save(&json_path).map_err(|e| e.to_string())?;
    let json_bytes = std::fs::metadata(&json_path).map_err(|e| e.to_string())?.len();
    let summary =
        esh_index::write_sharded(&engine, &eshx_path, TARGETS_PER_SHARD).map_err(|e| e.to_string())?;
    drop(engine);

    eprintln!(
        "bench-scale: [{procs}] built in {build_ms}ms ({:.0} procs/s); json {json_bytes}B, \
         sharded {}B across {} shards",
        procs as f64 / (build_ms.max(1) as f64 / 1000.0),
        summary.total_bytes(),
        summary.shards,
    );

    let t1 = Instant::now();
    let json_engine = SimilarityEngine::load(&json_path).map_err(|e| e.to_string())?;
    let json_load_ms = t1.elapsed().as_millis();
    drop(json_engine);

    let t2 = Instant::now();
    let lazy = esh_index::open_sharded(&eshx_path).map_err(|e| e.to_string())?;
    let sharded_load_ms = t2.elapsed().as_millis();
    eprintln!(
        "bench-scale: [{procs}] cold load: json {json_load_ms}ms, sharded {sharded_load_ms}ms"
    );

    // Ranked queries against the lazy engine: distinct sources compiled
    // with one matrix toolchain — each has an exact self-match in the
    // corpus, so the queries exercise the full pipeline including VCP.
    let tc = scale_matrix()[7]; // gcc 4.9 -O2
    let cc = esh_cc::Compiler::with_opt(tc.vendor, tc.version, tc.opt);
    let mut query_ms = Vec::with_capacity(QUERIES_PER_SIZE);
    for k in 0..QUERIES_PER_SIZE as u64 {
        let f = esh_minic::gen::generate_scale_source(SEED, k);
        let q = cc.compile_function(&f);
        let tq = Instant::now();
        let scores = lazy.query(&q);
        query_ms.push(tq.elapsed().as_millis());
        assert_eq!(scores.scores.len(), procs);
    }
    let stats = lazy.shard_stats();
    eprintln!(
        "bench-scale: [{procs}] queries {query_ms:?}ms; shards loaded {}/{} (fanout {})",
        stats.shards_loaded, stats.shards_total, stats.fanout_total,
    );
    drop(lazy);
    std::fs::remove_file(&json_path).ok();
    std::fs::remove_dir_all(&eshx_path).ok();

    Ok(SizeRun {
        procs,
        build_ms,
        json_bytes,
        json_load_ms,
        sharded_bytes: summary.total_bytes(),
        sharded_load_ms,
        query_ms,
        shards_total: stats.shards_total,
        shards_loaded: stats.shards_loaded,
    })
}

/// Byte-identity on the cross-compiler matrix: a sharded engine's ranked
/// output must equal the JSON-loaded engine's, bit for bit, scores and
/// order alike. Returns `(corpus procs, queries checked)`.
fn check_identity(smoke: bool) -> Result<(usize, usize), String> {
    let corpus_config = if smoke { CorpusConfig::small() } else { CorpusConfig::default() };
    let corpus = Corpus::build(&corpus_config);
    eprintln!(
        "bench-scale: identity check on the {}-procedure compiler matrix...",
        corpus.procs.len()
    );
    let mut engine = SimilarityEngine::new(esh_core::EngineConfig::default());
    for p in &corpus.procs {
        engine.add_target(p.display(), &p.proc_);
    }
    let dir = scratch_dir();
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let json_path = dir.join("identity.esh");
    let eshx_path = dir.join("identity.eshx");
    engine.save(&json_path).map_err(|e| e.to_string())?;
    esh_index::write_sharded(&engine, &eshx_path, 32).map_err(|e| e.to_string())?;
    drop(engine);
    let from_json = SimilarityEngine::load(&json_path).map_err(|e| e.to_string())?;
    let from_shards = esh_index::open_sharded(&eshx_path).map_err(|e| e.to_string())?;

    let queries: Vec<usize> = corpus
        .procs
        .iter()
        .enumerate()
        .filter(|(_, p)| p.cve.is_some())
        .map(|(i, _)| i)
        .step_by(7)
        .take(3)
        .collect();
    for &qi in &queries {
        let a = from_json.query(&corpus.procs[qi].proc_);
        let b = from_shards.query(&corpus.procs[qi].proc_);
        let ra = a.ranked();
        let rb = b.ranked();
        if ra.len() != rb.len() {
            return Err(format!("identity: ranked lengths differ on query {qi}"));
        }
        for (x, y) in ra.iter().zip(&rb) {
            if x.name != y.name
                || x.ges.to_bits() != y.ges.to_bits()
                || x.s_log.to_bits() != y.s_log.to_bits()
                || x.s_vcp.to_bits() != y.s_vcp.to_bits()
            {
                return Err(format!(
                    "identity: sharded ranking diverges on query {qi} at `{}` vs `{}`",
                    x.name, y.name
                ));
            }
        }
    }
    // The counter contract too: both engines saw the same queries, so
    // their hit/miss counters must agree exactly.
    let ca = from_json.cache_stats();
    let cb = from_shards.cache_stats();
    if (ca.hits, ca.misses) != (cb.hits, cb.misses) {
        return Err(format!(
            "identity: cache counters diverge — json {}h/{}m, sharded {}h/{}m",
            ca.hits, ca.misses, cb.hits, cb.misses
        ));
    }
    std::fs::remove_file(&json_path).ok();
    std::fs::remove_dir_all(&eshx_path).ok();
    Ok((corpus.procs.len(), queries.len()))
}

/// Runs the scale bench and writes `BENCH_scale.json`. `smoke` keeps the
/// 1k size and the small identity matrix for CI. Returns an error when
/// the sharded cold-load fails to beat the JSON load at any size, or
/// when the identity check finds any divergence.
pub fn run(smoke: bool) -> Result<(), String> {
    let t0 = Instant::now();
    let sizes: &[usize] = if smoke { &[1000] } else { &[1000, 5000, 10_000] };
    let mut runs = Vec::with_capacity(sizes.len());
    for &n in sizes {
        runs.push(measure_size(n)?);
    }
    let (identity_procs, identity_queries) = check_identity(smoke)?;
    std::fs::remove_dir_all(scratch_dir()).ok();

    for r in &runs {
        if r.sharded_load_ms >= r.json_load_ms {
            return Err(format!(
                "cold-load gate failed at {} procs: sharded {}ms is not faster than json {}ms",
                r.procs, r.sharded_load_ms, r.json_load_ms
            ));
        }
    }

    let size_entries: Vec<String> = runs
        .iter()
        .map(|r| {
            let q: Vec<String> = r.query_ms.iter().map(|m| m.to_string()).collect();
            format!(
                "    {{ \"procs\": {}, \"build_ms\": {}, \
                 \"build_throughput_procs_per_s\": {:.1}, \"json_bytes\": {}, \
                 \"json_load_ms\": {}, \"sharded_bytes\": {}, \"sharded_load_ms\": {}, \
                 \"cold_load_speedup\": {:.2}, \"query_ms\": [{}], \
                 \"shards_total\": {}, \"shards_loaded_after_queries\": {} }}",
                r.procs,
                r.build_ms,
                r.throughput(),
                r.json_bytes,
                r.json_load_ms,
                r.sharded_bytes,
                r.sharded_load_ms,
                r.speedup(),
                q.join(", "),
                r.shards_total,
                r.shards_loaded,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"scale\",\n  \"mode\": \"{mode}\",\n  \"seed\": {SEED},\n  \
         \"matrix_configs\": {matrix},\n  \"targets_per_shard\": {TARGETS_PER_SHARD},\n  \
         \"sizes\": [\n{sizes}\n  ],\n  \
         \"identity\": {{ \"corpus_procs\": {ip}, \"queries\": {iq}, \"identical\": true }},\n  \
         \"elapsed_ms\": {elapsed}\n}}\n",
        mode = if smoke { "smoke" } else { "full" },
        matrix = scale_matrix().len(),
        sizes = size_entries.join(",\n"),
        ip = identity_procs,
        iq = identity_queries,
        elapsed = t0.elapsed().as_millis(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_scale.json");
    std::fs::write(path, &json).map_err(|e| e.to_string())?;
    eprintln!("bench-scale: wrote {path}");
    print!("{json}");
    Ok(())
}
