#![warn(missing_docs)]

//! # esh — statistical similarity of binaries
//!
//! A from-scratch Rust reproduction of *"Statistical Similarity of
//! Binaries"* (David, Partush, Yahav — PLDI 2016), including every substrate
//! the paper's pipeline depends on: an x86-64 subset model, a synthetic
//! multi-vendor compiler standing in for gcc/CLang/icc, an SSA intermediate
//! verification language and lifter, strand extraction, a bitvector
//! equivalence verifier (normalization + CDCL SAT), the Esh statistical
//! similarity engine, baselines (S-VCP, S-LOG, TRACY, BinDiff-like), a
//! corpus builder and the ROC/CROC evaluation harness — plus a serving
//! layer (`esh serve`) that answers queries concurrently over TCP.
//!
//! This crate is a facade that re-exports the workspace members.
//!
//! ## Quickstart
//!
//! ```
//! use esh::prelude::*;
//!
//! // Compile the same MiniC function with two different "vendors".
//! let src = esh::minic::demo::saturating_sum();
//! let gcc = Compiler::new(Vendor::Gcc, VendorVersion::new(4, 9)).compile_function(&src);
//! let clang = Compiler::new(Vendor::Clang, VendorVersion::new(3, 5)).compile_function(&src);
//!
//! // Score their similarity with Esh.
//! let config = EngineConfig::default();
//! let mut engine = SimilarityEngine::new(config);
//! let t = engine.add_target("clang-build", &clang);
//! let scores = engine.query(&gcc);
//! assert_eq!(scores.ranked()[0].target, t);
//! ```

pub mod bench_prefilter;
pub mod bench_rankquality;
pub mod bench_scale;

pub use esh_asm as asm;
pub use esh_baselines as baselines;
pub use esh_cc as cc;
pub use esh_core as core;
pub use esh_corpus as corpus;
pub use esh_eval as eval;
pub use esh_index as index;
pub use esh_ivl as ivl;
pub use esh_minic as minic;
pub use esh_serve as serve;
pub use esh_solver as solver;
pub use esh_strands as strands;
pub use esh_verifier as verifier;

/// Commonly used items, re-exported for one-line imports.
pub mod prelude {
    pub use esh_asm::{Procedure, Program};
    pub use esh_cc::{Compiler, OptLevel, Vendor, VendorVersion};
    pub use esh_core::{EngineConfig, ScoringMode, SimilarityEngine};
    pub use esh_corpus::{Corpus, CorpusBuilder};
    pub use esh_eval::{croc_auc, roc_auc};
    pub use esh_strands::extract_proc_strands;
}
