//! `esh bench-prefilter`: pruned vs exhaustive engine comparison.
//!
//! Builds the cross-compiler corpus twice — once with the semantic-sketch
//! prefilter *prune tier* enabled (the default [`EngineConfig`] with
//! refine-top-K disabled, so the numbers isolate the sketch margin) and
//! once with the tier absent entirely — runs the same CVE queries through
//! both, and compares:
//!
//! * **wall time** per mode (corpus build + all queries),
//! * **SAT queries** and **verifier calls** (VCP-cache misses count
//!   `vcp_pair` invocations) per mode,
//! * **rank agreement**: the top-1 answer of every query must be
//!   identical, and the full top-10 name agreement is reported.
//!
//! The full run enforces the acceptance bar — ≥40% fewer SAT queries with
//! identical top-1 rankings; `--smoke` keeps the 100%-top-1 gate only and
//! shrinks the query count for CI. Results land in `BENCH_prefilter.json`
//! at the repo root.

use std::time::Instant;

use esh_core::{EngineConfig, PrefilterStatsSnapshot, SimilarityEngine, TargetId};
use esh_corpus::{Corpus, CorpusConfig};

/// How many ranked entries per query participate in the agreement report.
const TOP_N: usize = 10;

/// One mode's measurements.
struct ModeRun {
    /// Corpus-build wall time (decompose + lift + sign + sketch), ms.
    build_ms: u128,
    /// Total query wall time, ms.
    query_ms: u128,
    /// SAT queries issued across every query.
    sat_queries: u64,
    /// `vcp_pair` invocations: VCP-cache misses plus refine-top-K
    /// re-pricings (refine's lookups bypass the cache counters).
    verifier_calls: u64,
    /// Per-query ranked `(name, ges bits)` lists, self-match excluded.
    rankings: Vec<Vec<(String, u64)>>,
    /// Prefilter counters (all zero for the exhaustive mode).
    prefilter: PrefilterStatsSnapshot,
}

fn run_mode(corpus: &Corpus, queries: &[usize], sketch: bool) -> ModeRun {
    let config = if sketch {
        // The *prune tier* in isolation: refine-top-K is disabled so the
        // measured SAT savings are the sketch margin's alone. The staged
        // pipeline with window refinement is bench-rankquality's subject —
        // this bench's depressed top-10 agreement is exactly the depth
        // sacrifice that bench exists to measure the recovery of.
        let mut config = EngineConfig::default();
        if let Some(sketch) = &mut config.sketch {
            sketch.refine_top_k = None;
        }
        config
    } else {
        EngineConfig {
            sketch: None,
            ..EngineConfig::default()
        }
    };
    let t0 = Instant::now();
    let mut engine = SimilarityEngine::new(config);
    for p in &corpus.procs {
        engine.add_target(p.display(), &p.proc_);
    }
    let build_ms = t0.elapsed().as_millis();

    let t1 = Instant::now();
    let rankings = queries
        .iter()
        .map(|&qi| {
            let scores = engine.query(&corpus.procs[qi].proc_);
            scores
                .ranked()
                .into_iter()
                .filter(|s| s.target != TargetId(qi))
                .take(TOP_N)
                .map(|s| (s.name.clone(), s.ges.to_bits()))
                .collect()
        })
        .collect();
    let prefilter = engine.prefilter_stats();
    ModeRun {
        build_ms,
        query_ms: t1.elapsed().as_millis(),
        sat_queries: engine.solver_stats().sat_queries,
        verifier_calls: engine.cache_stats().misses + prefilter.refined_pairs,
        rankings,
        prefilter,
    }
}

/// Runs the comparison and writes `BENCH_prefilter.json`. `smoke` shrinks
/// the query count for CI. Returns an error when top-1 rankings diverge,
/// or (full mode only) when the SAT-query reduction misses 40%.
pub fn run(smoke: bool) -> Result<(), String> {
    let t0 = Instant::now();
    let n_queries = if smoke { 2 } else { 4 };

    eprintln!("bench-prefilter: building corpus...");
    let corpus = Corpus::build(&CorpusConfig::small());
    // Distinct CVE procedures, by corpus index, mirroring bench-serve's
    // query set.
    let mut names: Vec<String> = corpus
        .procs
        .iter()
        .filter(|p| p.cve.is_some())
        .map(|p| p.display())
        .collect();
    names.sort();
    names.dedup();
    names.truncate(n_queries);
    let queries: Vec<usize> = names
        .iter()
        .map(|q| {
            corpus
                .procs
                .iter()
                .position(|p| p.display() == *q)
                .expect("query name came from the corpus")
        })
        .collect();
    if queries.len() < n_queries {
        return Err(format!(
            "corpus has only {} CVE queries, need {n_queries}",
            queries.len()
        ));
    }

    eprintln!("bench-prefilter: exhaustive pass ({} queries)...", queries.len());
    let off = run_mode(&corpus, &queries, false);
    eprintln!("bench-prefilter: prefiltered pass...");
    let on = run_mode(&corpus, &queries, true);

    // Rank agreement between the two modes — reported per query, not just
    // in aggregate, so a depth regression localizes to the query that
    // caused it instead of hiding inside the mean.
    let mut top1_identical = true;
    let mut per_query: Vec<f64> = Vec::with_capacity(on.rankings.len());
    for (a, b) in on.rankings.iter().zip(&off.rankings) {
        if a.first().map(|e| &e.0) != b.first().map(|e| &e.0) {
            top1_identical = false;
        }
        let slots = a.len().max(b.len());
        let agree = a.iter().zip(b).filter(|(x, y)| x.0 == y.0).count();
        per_query.push(agree as f64 / slots.max(1) as f64);
    }
    let topn_agreement =
        per_query.iter().sum::<f64>() / per_query.len().max(1) as f64;
    let topn_agreement_min = per_query.iter().copied().fold(f64::INFINITY, f64::min);
    let per_query_json: Vec<String> = per_query.iter().map(|x| format!("{x:.4}")).collect();
    let per_query_json = format!("[{}]", per_query_json.join(", "));
    let sat_reduction = if off.sat_queries > 0 {
        1.0 - on.sat_queries as f64 / off.sat_queries as f64
    } else {
        0.0
    };
    let call_reduction = if off.verifier_calls > 0 {
        1.0 - on.verifier_calls as f64 / off.verifier_calls as f64
    } else {
        0.0
    };
    eprintln!(
        "bench-prefilter: SAT {} -> {} ({:.1}% fewer), verifier calls {} -> {}, \
         top-1 identical: {top1_identical}, top-{TOP_N} agreement mean {:.1}% min {:.1}%",
        off.sat_queries,
        on.sat_queries,
        sat_reduction * 100.0,
        off.verifier_calls,
        on.verifier_calls,
        topn_agreement * 100.0,
        topn_agreement_min * 100.0,
    );

    let json = format!(
        "{{\n  \"bench\": \"prefilter\",\n  \"mode\": \"{mode}\",\n  \
         \"corpus_procs\": {procs},\n  \"queries\": {nq},\n  \
         \"top1_identical\": {top1_identical},\n  \
         \"top{TOP_N}_agreement\": {topn_agreement:.4},\n  \
         \"top{TOP_N}_agreement_min\": {topn_agreement_min:.4},\n  \
         \"top{TOP_N}_agreement_per_query\": {per_query_json},\n  \
         \"exhaustive\": {{ \"build_ms\": {ob}, \"query_ms\": {oq}, \
         \"sat_queries\": {os}, \"verifier_calls\": {oc} }},\n  \
         \"prefiltered\": {{ \"build_ms\": {nb}, \"query_ms\": {nq2}, \
         \"sat_queries\": {ns}, \"verifier_calls\": {ncalls}, \
         \"pairs_pruned\": {pp}, \"sketch_collisions\": {sc}, \
         \"exact_fallbacks\": {ef} }},\n  \
         \"sat_query_reduction\": {sat_reduction:.4},\n  \
         \"verifier_call_reduction\": {call_reduction:.4},\n  \
         \"elapsed_ms\": {elapsed}\n}}\n",
        mode = if smoke { "smoke" } else { "full" },
        procs = corpus.procs.len(),
        nq = queries.len(),
        ob = off.build_ms,
        oq = off.query_ms,
        os = off.sat_queries,
        oc = off.verifier_calls,
        nb = on.build_ms,
        nq2 = on.query_ms,
        ns = on.sat_queries,
        ncalls = on.verifier_calls,
        pp = on.prefilter.pairs_pruned,
        sc = on.prefilter.sketch_collisions,
        ef = on.prefilter.exact_fallbacks,
        elapsed = t0.elapsed().as_millis(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_prefilter.json");
    std::fs::write(path, &json).map_err(|e| format!("writing BENCH_prefilter.json: {e}"))?;
    println!("{json}");

    if !top1_identical {
        return Err("top-1 rankings diverged between prefiltered and exhaustive".into());
    }
    if !smoke && sat_reduction < 0.40 {
        return Err(format!(
            "SAT-query reduction {:.1}% misses the 40% bar",
            sat_reduction * 100.0
        ));
    }
    println!("bench-prefilter: passed; wrote BENCH_prefilter.json");
    Ok(())
}
