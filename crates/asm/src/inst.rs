//! The instruction set and its Def/Ref (data-flow) semantics.

use crate::loc::Loc;
use crate::operand::{Mem, Operand};
use crate::reg::{Reg, Reg64, Width};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Condition codes for `jcc`, `setcc` and `cmovcc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Cond {
    E,
    Ne,
    L,
    Le,
    G,
    Ge,
    B,
    Be,
    A,
    Ae,
    S,
    Ns,
}

impl Cond {
    /// The mnemonic suffix (`e`, `ne`, `l`, ...).
    pub fn suffix(self) -> &'static str {
        match self {
            Cond::E => "e",
            Cond::Ne => "ne",
            Cond::L => "l",
            Cond::Le => "le",
            Cond::G => "g",
            Cond::Ge => "ge",
            Cond::B => "b",
            Cond::Be => "be",
            Cond::A => "a",
            Cond::Ae => "ae",
            Cond::S => "s",
            Cond::Ns => "ns",
        }
    }

    /// Parses a mnemonic suffix.
    pub fn from_suffix(s: &str) -> Option<Cond> {
        Some(match s {
            "e" | "z" => Cond::E,
            "ne" | "nz" => Cond::Ne,
            "l" => Cond::L,
            "le" => Cond::Le,
            "g" => Cond::G,
            "ge" => Cond::Ge,
            "b" => Cond::B,
            "be" => Cond::Be,
            "a" => Cond::A,
            "ae" => Cond::Ae,
            "s" => Cond::S,
            "ns" => Cond::Ns,
            _ => return None,
        })
    }

    /// The condition testing the opposite outcome.
    pub fn negate(self) -> Cond {
        match self {
            Cond::E => Cond::Ne,
            Cond::Ne => Cond::E,
            Cond::L => Cond::Ge,
            Cond::Le => Cond::G,
            Cond::G => Cond::Le,
            Cond::Ge => Cond::L,
            Cond::B => Cond::Ae,
            Cond::Be => Cond::A,
            Cond::A => Cond::Be,
            Cond::Ae => Cond::B,
            Cond::S => Cond::Ns,
            Cond::Ns => Cond::S,
        }
    }
}

/// A shift amount: an immediate or the `cl` register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ShiftAmount {
    /// Shift by a constant.
    Imm(u8),
    /// Shift by `cl`.
    Cl,
}

impl fmt::Display for ShiftAmount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShiftAmount::Imm(i) => write!(f, "{i:#x}"),
            ShiftAmount::Cl => write!(f, "cl"),
        }
    }
}

/// One x86-64 instruction of the modelled subset.
///
/// Each variant documents its Def/Ref behaviour through [`Inst::defs`] and
/// [`Inst::refs`]; these sets drive strand extraction (paper Algorithm 1).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // operand fields (`dst`, `src`, ...) are uniform
pub enum Inst {
    /// `mov dst, src`
    Mov { dst: Operand, src: Operand },
    /// `movzx dst, src` — zero-extending load of a narrower value.
    MovZx { dst: Reg, src: Operand },
    /// `movsx`/`movsxd dst, src` — sign-extending load.
    MovSx { dst: Reg, src: Operand },
    /// `lea dst, [addr]` — address arithmetic without memory access.
    Lea { dst: Reg, addr: Mem },
    /// `add dst, src`
    Add { dst: Operand, src: Operand },
    /// `sub dst, src`
    Sub { dst: Operand, src: Operand },
    /// `imul dst, src` — two-operand signed multiply.
    Imul { dst: Reg, src: Operand },
    /// `imul dst, src, imm` — three-operand form.
    ImulImm { dst: Reg, src: Operand, imm: i64 },
    /// `neg dst`
    Neg { dst: Operand },
    /// `not dst`
    Not { dst: Operand },
    /// `inc dst`
    Inc { dst: Operand },
    /// `dec dst`
    Dec { dst: Operand },
    /// `and dst, src`
    And { dst: Operand, src: Operand },
    /// `or dst, src`
    Or { dst: Operand, src: Operand },
    /// `xor dst, src`
    Xor { dst: Operand, src: Operand },
    /// `shl dst, amount`
    Shl { dst: Operand, amount: ShiftAmount },
    /// `shr dst, amount`
    Shr { dst: Operand, amount: ShiftAmount },
    /// `sar dst, amount`
    Sar { dst: Operand, amount: ShiftAmount },
    /// `cmp a, b` — sets flags only.
    Cmp { a: Operand, b: Operand },
    /// `test a, b` — sets flags only.
    Test { a: Operand, b: Operand },
    /// `setcc dst` — materializes a condition bit into a byte.
    Set { cond: Cond, dst: Operand },
    /// `cmovcc dst, src` — conditional move.
    Cmov { cond: Cond, dst: Reg, src: Operand },
    /// `push src`
    Push { src: Operand },
    /// `pop dst`
    Pop { dst: Operand },
    /// `call target` with `args` register arguments (System V order).
    Call { target: String, args: u8 },
    /// `ret`
    Ret,
    /// `jmp target`
    Jmp { target: String },
    /// `jcc target`
    Jcc { cond: Cond, target: String },
    /// `cdqe` — sign-extend `eax` into `rax`.
    Cdqe,
    /// `nop`
    Nop,
}

/// System V AMD64 integer argument registers, in order.
pub const ARG_REGS: [Reg64; 6] = [
    Reg64::Rdi,
    Reg64::Rsi,
    Reg64::Rdx,
    Reg64::Rcx,
    Reg64::R8,
    Reg64::R9,
];

/// Caller-saved (volatile) registers under the System V ABI.
pub const CALLER_SAVED: [Reg64; 9] = [
    Reg64::Rax,
    Reg64::Rcx,
    Reg64::Rdx,
    Reg64::Rsi,
    Reg64::Rdi,
    Reg64::R8,
    Reg64::R9,
    Reg64::R10,
    Reg64::R11,
];

/// Callee-saved (non-volatile) registers under the System V ABI.
pub const CALLEE_SAVED: [Reg64; 6] = [
    Reg64::Rbx,
    Reg64::Rbp,
    Reg64::R12,
    Reg64::R13,
    Reg64::R14,
    Reg64::R15,
];

fn read_locs(op: &Operand, out: &mut Vec<Loc>) {
    match op {
        Operand::Reg(r) => out.push(Loc::Reg(r.base)),
        Operand::Imm(_) => {}
        Operand::Mem(m) => {
            for r in m.addr_regs() {
                out.push(Loc::Reg(r));
            }
            out.push(Loc::mem(m));
        }
    }
}

/// Adds the locations referenced when *writing* `op` (address registers for
/// memory destinations; the base register itself for sub-32-bit register
/// writes, which preserve the upper bits).
fn write_refs(op: &Operand, out: &mut Vec<Loc>) {
    match op {
        Operand::Reg(r) => {
            if matches!(r.width, Width::W8 | Width::W16) {
                out.push(Loc::Reg(r.base));
            }
        }
        Operand::Imm(_) => {}
        Operand::Mem(m) => {
            for r in m.addr_regs() {
                out.push(Loc::Reg(r));
            }
        }
    }
}

fn write_defs(op: &Operand, out: &mut Vec<Loc>) {
    match op {
        Operand::Reg(r) => out.push(Loc::Reg(r.base)),
        Operand::Imm(_) => {}
        Operand::Mem(m) => out.push(Loc::mem(m)),
    }
}

fn dedup(mut v: Vec<Loc>) -> Vec<Loc> {
    let mut out: Vec<Loc> = Vec::with_capacity(v.len());
    for l in v.drain(..) {
        if !out.contains(&l) {
            out.push(l);
        }
    }
    out
}

impl Inst {
    /// The set of locations this instruction defines.
    pub fn defs(&self) -> Vec<Loc> {
        let mut out = Vec::new();
        match self {
            Inst::Mov { dst, .. } | Inst::Set { dst, .. } => write_defs(dst, &mut out),
            Inst::MovZx { dst, .. } | Inst::MovSx { dst, .. } | Inst::Lea { dst, .. } => {
                out.push(Loc::Reg(dst.base))
            }
            Inst::Add { dst, .. }
            | Inst::Sub { dst, .. }
            | Inst::And { dst, .. }
            | Inst::Or { dst, .. }
            | Inst::Xor { dst, .. }
            | Inst::Neg { dst }
            | Inst::Not { dst }
            | Inst::Inc { dst }
            | Inst::Dec { dst }
            | Inst::Shl { dst, .. }
            | Inst::Shr { dst, .. }
            | Inst::Sar { dst, .. } => {
                write_defs(dst, &mut out);
                if !matches!(self, Inst::Not { .. }) {
                    out.push(Loc::Flags);
                }
            }
            Inst::Imul { dst, .. } | Inst::ImulImm { dst, .. } => {
                out.push(Loc::Reg(dst.base));
                out.push(Loc::Flags);
            }
            Inst::Cmp { .. } | Inst::Test { .. } => out.push(Loc::Flags),
            Inst::Cmov { dst, .. } => out.push(Loc::Reg(dst.base)),
            Inst::Push { .. } => {
                out.push(Loc::Reg(Reg64::Rsp));
                out.push(Loc::MemSlot {
                    base: Some(Reg64::Rsp),
                    index: None,
                    disp: -8,
                });
            }
            Inst::Pop { dst } => {
                write_defs(dst, &mut out);
                out.push(Loc::Reg(Reg64::Rsp));
            }
            Inst::Call { .. } => {
                for r in CALLER_SAVED {
                    out.push(Loc::Reg(r));
                }
                out.push(Loc::Flags);
            }
            Inst::Cdqe => out.push(Loc::Reg(Reg64::Rax)),
            Inst::Ret | Inst::Jmp { .. } | Inst::Jcc { .. } | Inst::Nop => {}
        }
        dedup(out)
    }

    /// The set of locations this instruction references.
    pub fn refs(&self) -> Vec<Loc> {
        let mut out = Vec::new();
        match self {
            Inst::Mov { dst, src } => {
                read_locs(src, &mut out);
                write_refs(dst, &mut out);
            }
            Inst::MovZx { dst, src } | Inst::MovSx { dst, src } => {
                read_locs(src, &mut out);
                write_refs(&Operand::Reg(*dst), &mut out);
            }
            Inst::Lea { addr, .. } => {
                for r in addr.addr_regs() {
                    out.push(Loc::Reg(r));
                }
            }
            Inst::Add { dst, src }
            | Inst::Sub { dst, src }
            | Inst::And { dst, src }
            | Inst::Or { dst, src }
            | Inst::Xor { dst, src } => {
                read_locs(dst, &mut out);
                read_locs(src, &mut out);
            }
            Inst::Imul { dst, src } => {
                out.push(Loc::Reg(dst.base));
                read_locs(src, &mut out);
            }
            Inst::ImulImm { src, .. } => read_locs(src, &mut out),
            Inst::Neg { dst } | Inst::Not { dst } | Inst::Inc { dst } | Inst::Dec { dst } => {
                read_locs(dst, &mut out)
            }
            Inst::Shl { dst, amount } | Inst::Shr { dst, amount } | Inst::Sar { dst, amount } => {
                read_locs(dst, &mut out);
                if matches!(amount, ShiftAmount::Cl) {
                    out.push(Loc::Reg(Reg64::Rcx));
                }
            }
            Inst::Cmp { a, b } | Inst::Test { a, b } => {
                read_locs(a, &mut out);
                read_locs(b, &mut out);
            }
            Inst::Set { dst, .. } => {
                out.push(Loc::Flags);
                write_refs(dst, &mut out);
            }
            Inst::Cmov { dst, src, .. } => {
                out.push(Loc::Flags);
                out.push(Loc::Reg(dst.base));
                read_locs(src, &mut out);
            }
            Inst::Push { src } => {
                read_locs(src, &mut out);
                out.push(Loc::Reg(Reg64::Rsp));
            }
            Inst::Pop { dst } => {
                out.push(Loc::Reg(Reg64::Rsp));
                out.push(Loc::MemSlot {
                    base: Some(Reg64::Rsp),
                    index: None,
                    disp: 0,
                });
                write_refs(dst, &mut out);
            }
            Inst::Call { args, .. } => {
                for r in ARG_REGS.iter().take(usize::from(*args)) {
                    out.push(Loc::Reg(*r));
                }
                out.push(Loc::Reg(Reg64::Rsp));
            }
            Inst::Ret => {
                out.push(Loc::Reg(Reg64::Rax));
                out.push(Loc::Reg(Reg64::Rsp));
            }
            Inst::Jcc { .. } => out.push(Loc::Flags),
            Inst::Cdqe => out.push(Loc::Reg(Reg64::Rax)),
            Inst::Jmp { .. } | Inst::Nop => {}
        }
        dedup(out)
    }

    /// True if this instruction ends a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(self, Inst::Ret | Inst::Jmp { .. } | Inst::Jcc { .. })
    }

    /// The branch target label, if any.
    pub fn jump_target(&self) -> Option<&str> {
        match self {
            Inst::Jmp { target } | Inst::Jcc { target, .. } => Some(target),
            _ => None,
        }
    }

    /// The mnemonic string (used by the syntactic baselines).
    pub fn mnemonic(&self) -> String {
        match self {
            Inst::Mov { .. } => "mov".into(),
            Inst::MovZx { .. } => "movzx".into(),
            Inst::MovSx { .. } => "movsx".into(),
            Inst::Lea { .. } => "lea".into(),
            Inst::Add { .. } => "add".into(),
            Inst::Sub { .. } => "sub".into(),
            Inst::Imul { .. } | Inst::ImulImm { .. } => "imul".into(),
            Inst::Neg { .. } => "neg".into(),
            Inst::Not { .. } => "not".into(),
            Inst::Inc { .. } => "inc".into(),
            Inst::Dec { .. } => "dec".into(),
            Inst::And { .. } => "and".into(),
            Inst::Or { .. } => "or".into(),
            Inst::Xor { .. } => "xor".into(),
            Inst::Shl { .. } => "shl".into(),
            Inst::Shr { .. } => "shr".into(),
            Inst::Sar { .. } => "sar".into(),
            Inst::Cmp { .. } => "cmp".into(),
            Inst::Test { .. } => "test".into(),
            Inst::Set { cond, .. } => format!("set{}", cond.suffix()),
            Inst::Cmov { cond, .. } => format!("cmov{}", cond.suffix()),
            Inst::Push { .. } => "push".into(),
            Inst::Pop { .. } => "pop".into(),
            Inst::Call { .. } => "call".into(),
            Inst::Ret => "ret".into(),
            Inst::Jmp { .. } => "jmp".into(),
            Inst::Jcc { cond, .. } => format!("j{}", cond.suffix()),
            Inst::Cdqe => "cdqe".into(),
            Inst::Nop => "nop".into(),
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Mov { dst, src } => write!(f, "mov {dst}, {src}"),
            Inst::MovZx { dst, src } => write!(f, "movzx {dst}, {src}"),
            Inst::MovSx { dst, src } => write!(f, "movsx {dst}, {src}"),
            Inst::Lea { dst, addr } => {
                // lea prints the bare address expression.
                let body = addr.to_string();
                let bracket = body.find('[').expect("mem display has bracket");
                write!(f, "lea {dst}, {}", &body[bracket..])
            }
            Inst::Add { dst, src } => write!(f, "add {dst}, {src}"),
            Inst::Sub { dst, src } => write!(f, "sub {dst}, {src}"),
            Inst::Imul { dst, src } => write!(f, "imul {dst}, {src}"),
            Inst::ImulImm { dst, src, imm } => write!(f, "imul {dst}, {src}, {imm:#x}"),
            Inst::Neg { dst } => write!(f, "neg {dst}"),
            Inst::Not { dst } => write!(f, "not {dst}"),
            Inst::Inc { dst } => write!(f, "inc {dst}"),
            Inst::Dec { dst } => write!(f, "dec {dst}"),
            Inst::And { dst, src } => write!(f, "and {dst}, {src}"),
            Inst::Or { dst, src } => write!(f, "or {dst}, {src}"),
            Inst::Xor { dst, src } => write!(f, "xor {dst}, {src}"),
            Inst::Shl { dst, amount } => write!(f, "shl {dst}, {amount}"),
            Inst::Shr { dst, amount } => write!(f, "shr {dst}, {amount}"),
            Inst::Sar { dst, amount } => write!(f, "sar {dst}, {amount}"),
            Inst::Cmp { a, b } => write!(f, "cmp {a}, {b}"),
            Inst::Test { a, b } => write!(f, "test {a}, {b}"),
            Inst::Set { cond, dst } => write!(f, "set{} {dst}", cond.suffix()),
            Inst::Cmov { cond, dst, src } => write!(f, "cmov{} {dst}, {src}", cond.suffix()),
            Inst::Push { src } => write!(f, "push {src}"),
            Inst::Pop { dst } => write!(f, "pop {dst}"),
            Inst::Call { target, args } => {
                if *args == 0 {
                    write!(f, "call {target}")
                } else {
                    write!(f, "call {target}/{args}")
                }
            }
            Inst::Ret => write!(f, "ret"),
            Inst::Jmp { target } => write!(f, "jmp {target}"),
            Inst::Jcc { cond, target } => write!(f, "j{} {target}", cond.suffix()),
            Inst::Cdqe => write!(f, "cdqe"),
            Inst::Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Width;

    fn r(reg: Reg64) -> Operand {
        Operand::Reg(reg.full())
    }

    #[test]
    fn mov_defs_refs() {
        let i = Inst::Mov {
            dst: r(Reg64::Rax),
            src: r(Reg64::Rdi),
        };
        assert_eq!(i.defs(), vec![Loc::reg(Reg64::Rax)]);
        assert_eq!(i.refs(), vec![Loc::reg(Reg64::Rdi)]);
    }

    #[test]
    fn partial_width_write_is_read_modify_write() {
        // mov al, 5 preserves rax's upper bits, so it references rax.
        let i = Inst::Mov {
            dst: Operand::Reg(Reg64::Rax.view(Width::W8)),
            src: Operand::Imm(5),
        };
        assert!(i.refs().contains(&Loc::reg(Reg64::Rax)));
        // mov eax, 5 zeroes the upper bits: pure def.
        let i = Inst::Mov {
            dst: Operand::Reg(Reg64::Rax.view(Width::W32)),
            src: Operand::Imm(5),
        };
        assert!(i.refs().is_empty());
    }

    #[test]
    fn mem_store_defs_slot_refs_addr() {
        let m = Mem::base_disp(Width::W8, Reg64::R13, 1);
        let i = Inst::Mov {
            dst: Operand::Mem(m),
            src: Operand::Reg(Reg64::Rax.view(Width::W8)),
        };
        assert!(i.defs().contains(&Loc::mem(&m)));
        assert!(i.refs().contains(&Loc::reg(Reg64::R13)));
        assert!(i.refs().contains(&Loc::reg(Reg64::Rax)));
    }

    #[test]
    fn arithmetic_defines_flags() {
        let i = Inst::Add {
            dst: r(Reg64::Rbp),
            src: Operand::Imm(3),
        };
        assert!(i.defs().contains(&Loc::Flags));
        assert!(i.refs().contains(&Loc::reg(Reg64::Rbp)));
    }

    #[test]
    fn lea_reads_only_address_registers() {
        let m = Mem::base_index(Width::W64, Reg64::R12, Reg64::Rbx, crate::Scale::S1, 0x13);
        let i = Inst::Lea {
            dst: Reg64::R14.view(Width::W32),
            addr: m,
        };
        assert_eq!(i.defs(), vec![Loc::reg(Reg64::R14)]);
        let refs = i.refs();
        assert!(refs.contains(&Loc::reg(Reg64::R12)));
        assert!(refs.contains(&Loc::reg(Reg64::Rbx)));
        assert!(!refs.iter().any(Loc::is_mem));
    }

    #[test]
    fn jcc_refs_flags() {
        let i = Inst::Jcc {
            cond: Cond::L,
            target: "loc_22F4".into(),
        };
        assert_eq!(i.refs(), vec![Loc::Flags]);
        assert!(i.is_terminator());
        assert_eq!(i.jump_target(), Some("loc_22F4"));
    }

    #[test]
    fn call_clobbers_caller_saved_and_reads_args() {
        let i = Inst::Call {
            target: "memcpy".into(),
            args: 3,
        };
        assert!(i.defs().contains(&Loc::reg(Reg64::Rax)));
        assert!(i.defs().contains(&Loc::reg(Reg64::R11)));
        assert!(!i.defs().contains(&Loc::reg(Reg64::Rbx)));
        assert!(i.refs().contains(&Loc::reg(Reg64::Rdi)));
        assert!(i.refs().contains(&Loc::reg(Reg64::Rdx)));
        assert!(!i.refs().contains(&Loc::reg(Reg64::Rcx)));
    }

    #[test]
    fn push_chains_through_rsp() {
        let i = Inst::Push { src: r(Reg64::Rbx) };
        assert!(i.defs().contains(&Loc::reg(Reg64::Rsp)));
        assert!(i.refs().contains(&Loc::reg(Reg64::Rsp)));
        assert!(i.refs().contains(&Loc::reg(Reg64::Rbx)));
    }

    #[test]
    fn display_matches_paper_style() {
        let i = Inst::Lea {
            dst: Reg64::R14.view(Width::W32),
            addr: Mem::base_disp(Width::W64, Reg64::R12, 0x13),
        };
        assert_eq!(i.to_string(), "lea r14d, [r12+0x13]");
        let i = Inst::Shr {
            dst: Operand::Reg(Reg64::Rax.view(Width::W32)),
            amount: ShiftAmount::Imm(8),
        };
        assert_eq!(i.to_string(), "shr eax, 0x8");
    }

    #[test]
    fn cond_negate_involution() {
        for c in [
            Cond::E,
            Cond::Ne,
            Cond::L,
            Cond::Le,
            Cond::G,
            Cond::Ge,
            Cond::B,
            Cond::Be,
            Cond::A,
            Cond::Ae,
            Cond::S,
            Cond::Ns,
        ] {
            assert_eq!(c.negate().negate(), c);
        }
    }
}
