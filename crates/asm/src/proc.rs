//! Procedures, basic blocks and whole programs ("binaries").

use crate::inst::Inst;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A labelled basic block: straight-line instructions plus an optional
/// terminator (the last instruction, when it is a branch or return).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BasicBlock {
    /// The block label.
    pub label: String,
    /// The instructions, in program order.
    pub insts: Vec<Inst>,
}

impl BasicBlock {
    /// Creates an empty block with the given label.
    pub fn new(label: impl Into<String>) -> BasicBlock {
        BasicBlock {
            label: label.into(),
            insts: Vec::new(),
        }
    }

    /// Appends an instruction.
    pub fn push(&mut self, inst: Inst) {
        self.insts.push(inst);
    }

    /// The block's terminator, if its last instruction is one.
    pub fn terminator(&self) -> Option<&Inst> {
        self.insts.last().filter(|i| i.is_terminator())
    }

    /// Labels of blocks this one may branch to (not counting fallthrough).
    pub fn branch_targets(&self) -> Vec<&str> {
        self.insts
            .last()
            .and_then(Inst::jump_target)
            .into_iter()
            .collect()
    }

    /// Whether control can fall through to the next block in layout order.
    pub fn falls_through(&self) -> bool {
        !matches!(self.insts.last(), Some(Inst::Ret) | Some(Inst::Jmp { .. }))
    }
}

impl fmt::Display for BasicBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}:", self.label)?;
        for i in &self.insts {
            writeln!(f, "  {i}")?;
        }
        Ok(())
    }
}

/// A binary procedure: an ordered list of basic blocks, entry first.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Procedure {
    /// The (possibly synthetic) symbol name. Stripped binaries have none,
    /// so nothing in the analysis pipeline may depend on it; it exists for
    /// ground-truth bookkeeping in the evaluation.
    pub name: String,
    /// Basic blocks in layout order; `blocks[0]` is the entry.
    pub blocks: Vec<BasicBlock>,
}

impl Procedure {
    /// Creates an empty procedure.
    pub fn new(name: impl Into<String>) -> Procedure {
        Procedure {
            name: name.into(),
            blocks: Vec::new(),
        }
    }

    /// Total instruction count across all blocks.
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Finds a block by label.
    pub fn block(&self, label: &str) -> Option<&BasicBlock> {
        self.blocks.iter().find(|b| b.label == label)
    }

    /// Successor labels of the block at `idx` (branch targets plus
    /// fallthrough).
    pub fn successors(&self, idx: usize) -> Vec<String> {
        let mut out = Vec::new();
        let b = &self.blocks[idx];
        for t in b.branch_targets() {
            out.push(t.to_string());
        }
        if b.falls_through() {
            if let Some(next) = self.blocks.get(idx + 1) {
                if !out.contains(&next.label) {
                    out.push(next.label.clone());
                }
            }
        }
        out
    }

    /// An iterator over all instructions in layout order.
    pub fn insts(&self) -> impl Iterator<Item = &Inst> {
        self.blocks.iter().flat_map(|b| b.insts.iter())
    }
}

impl fmt::Display for Procedure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "proc {}", self.name)?;
        for b in &self.blocks {
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

/// A "binary": a named collection of procedures, as produced by one
/// compilation of one package.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Program {
    /// Package/binary name (e.g. `openssl-1.0.1f`).
    pub name: String,
    /// The procedures.
    pub procs: Vec<Procedure>,
}

impl Program {
    /// Creates an empty program.
    pub fn new(name: impl Into<String>) -> Program {
        Program {
            name: name.into(),
            procs: Vec::new(),
        }
    }

    /// Finds a procedure by name.
    pub fn proc(&self, name: &str) -> Option<&Procedure> {
        self.procs.iter().find(|p| p.name == name)
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in &self.procs {
            writeln!(f, "{p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Cond;
    use crate::operand::Operand;
    use crate::reg::Reg64;

    fn sample() -> Procedure {
        let mut p = Procedure::new("f");
        let mut b0 = BasicBlock::new("entry");
        b0.push(Inst::Mov {
            dst: Reg64::Rax.into(),
            src: Reg64::Rdi.into(),
        });
        b0.push(Inst::Test {
            a: Reg64::Rax.into(),
            b: Reg64::Rax.into(),
        });
        b0.push(Inst::Jcc {
            cond: Cond::E,
            target: "done".into(),
        });
        let mut b1 = BasicBlock::new("body");
        b1.push(Inst::Add {
            dst: Reg64::Rax.into(),
            src: Operand::Imm(1),
        });
        let mut b2 = BasicBlock::new("done");
        b2.push(Inst::Ret);
        p.blocks = vec![b0, b1, b2];
        p
    }

    #[test]
    fn successors_include_fallthrough_and_targets() {
        let p = sample();
        assert_eq!(
            p.successors(0),
            vec!["done".to_string(), "body".to_string()]
        );
        assert_eq!(p.successors(1), vec!["done".to_string()]);
        assert!(p.successors(2).is_empty());
    }

    #[test]
    fn counts_and_lookup() {
        let p = sample();
        assert_eq!(p.inst_count(), 5);
        assert!(p.block("body").is_some());
        assert!(p.block("nope").is_none());
    }

    #[test]
    fn terminator_detection() {
        let p = sample();
        assert!(p.blocks[0].terminator().is_some());
        assert!(p.blocks[1].terminator().is_none());
        assert!(p.blocks[1].falls_through());
        assert!(!p.blocks[2].falls_through());
    }
}
