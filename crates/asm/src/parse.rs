//! A small Intel-syntax parser for the modelled subset.
//!
//! The parser exists so tests, examples and documentation can write assembly
//! as text (like the paper's figures) instead of constructing ASTs by hand.
//! It accepts exactly the output of the crate's `Display` impls, making the
//! printer/parser pair round-trip.

use crate::inst::{Cond, Inst, ShiftAmount};
use crate::operand::{Mem, Operand, Scale};
use crate::proc::{BasicBlock, Procedure, Program};
use crate::reg::{Reg, Reg64, Width};
use std::fmt;

/// An error produced while parsing assembly text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

fn parse_int(s: &str) -> Option<i64> {
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x") {
        i64::from_str_radix(hex, 16).ok()?
    } else if let Some(hex) = body.strip_suffix('h') {
        // IDA-style `13h` immediates, as in the paper's figures.
        i64::from_str_radix(hex, 16).ok()?
    } else {
        body.parse::<i64>().ok()?
    };
    Some(if neg { -v } else { v })
}

fn parse_mem_body(body: &str, width: Width, line: usize) -> Result<Mem, ParseError> {
    // body is the text inside [ ... ]
    let mut mem = Mem {
        width,
        base: None,
        index: None,
        disp: 0,
    };
    // Split into signed terms.
    let mut terms: Vec<(bool, String)> = Vec::new();
    let mut cur = String::new();
    let mut neg = false;
    for c in body.chars() {
        match c {
            '+' | '-' => {
                if !cur.trim().is_empty() {
                    terms.push((neg, cur.trim().to_string()));
                }
                cur = String::new();
                neg = c == '-';
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        terms.push((neg, cur.trim().to_string()));
    }
    for (neg, term) in terms {
        if let Some(star) = term.find('*') {
            let (r, f) = term.split_at(star);
            let reg = Reg::from_name(r.trim()).ok_or_else(|| ParseError {
                line,
                message: format!("bad index register `{r}`"),
            })?;
            let factor = parse_int(&f[1..])
                .and_then(|v| u64::try_from(v).ok())
                .and_then(Scale::from_factor)
                .ok_or_else(|| ParseError {
                    line,
                    message: format!("bad scale in `{term}`"),
                })?;
            if neg {
                return err(line, "negative index term");
            }
            mem.index = Some((reg.base, factor));
        } else if let Some(reg) = Reg::from_name(&term) {
            if neg {
                return err(line, "negative register term");
            }
            if mem.base.is_none() {
                mem.base = Some(reg.base);
            } else if mem.index.is_none() {
                mem.index = Some((reg.base, Scale::S1));
            } else {
                return err(line, "too many registers in address");
            }
        } else if let Some(v) = parse_int(&term) {
            mem.disp += if neg { -v } else { v };
        } else {
            return err(line, format!("unrecognized address term `{term}`"));
        }
    }
    Ok(mem)
}

/// Parses one operand. `default_width` supplies the access width for memory
/// operands written without a `ptr` prefix.
fn parse_operand(s: &str, default_width: Width, line: usize) -> Result<Operand, ParseError> {
    let s = s.trim();
    let (width, rest) = if let Some(r) = s.strip_prefix("byte ptr") {
        (Width::W8, r.trim())
    } else if let Some(r) = s.strip_prefix("word ptr") {
        (Width::W16, r.trim())
    } else if let Some(r) = s.strip_prefix("dword ptr") {
        (Width::W32, r.trim())
    } else if let Some(r) = s.strip_prefix("qword ptr") {
        (Width::W64, r.trim())
    } else {
        (default_width, s)
    };
    if let Some(body) = rest.strip_prefix('[') {
        let body = body.strip_suffix(']').ok_or_else(|| ParseError {
            line,
            message: format!("unterminated `[` in `{s}`"),
        })?;
        return Ok(Operand::Mem(parse_mem_body(body, width, line)?));
    }
    if let Some(reg) = Reg::from_name(rest) {
        return Ok(Operand::Reg(reg));
    }
    if let Some(v) = parse_int(rest) {
        return Ok(Operand::Imm(v));
    }
    err(line, format!("unrecognized operand `{s}`"))
}

fn split_operands(s: &str) -> Vec<String> {
    // Commas never occur inside the bracketed address syntax we accept.
    s.split(',')
        .map(|p| p.trim().to_string())
        .filter(|p| !p.is_empty())
        .collect()
}

/// Width context for memory operands: take the width of a *register*
/// operand in the same instruction, defaulting to 64 bits.
fn mem_width_from(ops: &[Operand]) -> Width {
    ops.iter()
        .filter_map(|o| o.as_reg().map(|r| r.width))
        .next()
        .unwrap_or(Width::W64)
}

/// Parses a single instruction line.
pub fn parse_inst(text: &str) -> Result<Inst, ParseError> {
    parse_inst_at(text, 1)
}

fn shift_amount(op: &Operand, line: usize) -> Result<ShiftAmount, ParseError> {
    match op {
        Operand::Imm(v) if (0..=63).contains(v) => Ok(ShiftAmount::Imm(*v as u8)),
        Operand::Reg(r) if r.base == Reg64::Rcx && r.width == Width::W8 => Ok(ShiftAmount::Cl),
        _ => err(line, "shift amount must be an immediate or cl"),
    }
}

fn two(ops: Vec<Operand>, line: usize, mn: &str) -> Result<(Operand, Operand), ParseError> {
    if ops.len() == 2 {
        let mut it = ops.into_iter();
        Ok((
            it.next().expect("len checked"),
            it.next().expect("len checked"),
        ))
    } else {
        err(line, format!("`{mn}` expects 2 operands"))
    }
}

fn one(ops: Vec<Operand>, line: usize, mn: &str) -> Result<Operand, ParseError> {
    if ops.len() == 1 {
        Ok(ops.into_iter().next().expect("len checked"))
    } else {
        err(line, format!("`{mn}` expects 1 operand"))
    }
}

fn want_reg(op: Operand, line: usize, mn: &str) -> Result<Reg, ParseError> {
    op.as_reg().ok_or_else(|| ParseError {
        line,
        message: format!("`{mn}` destination must be a register"),
    })
}

fn parse_inst_at(text: &str, line: usize) -> Result<Inst, ParseError> {
    let text = text.trim();
    let (mn, rest) = match text.find(char::is_whitespace) {
        Some(i) => (&text[..i], text[i..].trim()),
        None => (text, ""),
    };
    // Zero-operand instructions first.
    match mn {
        "ret" | "retn" => return Ok(Inst::Ret),
        "nop" => return Ok(Inst::Nop),
        "cdqe" => return Ok(Inst::Cdqe),
        _ => {}
    }
    // Control flow with a label operand.
    if mn == "jmp" {
        return Ok(Inst::Jmp {
            target: rest.to_string(),
        });
    }
    if let Some(suffix) = mn.strip_prefix('j') {
        if let Some(cond) = Cond::from_suffix(suffix) {
            // Allow IDA's `jl short loc_X` spelling.
            let target = rest
                .strip_prefix("short ")
                .unwrap_or(rest)
                .trim()
                .to_string();
            return Ok(Inst::Jcc { cond, target });
        }
    }
    if mn == "call" {
        let (target, args) = match rest.split_once('/') {
            Some((t, n)) => (
                t.trim().to_string(),
                n.trim().parse::<u8>().map_err(|_| ParseError {
                    line,
                    message: format!("bad call arity `{n}`"),
                })?,
            ),
            None => (rest.to_string(), 0),
        };
        return Ok(Inst::Call { target, args });
    }

    // Everything else takes a comma-separated operand list. Parse twice so
    // `mov [rax], 1` can adopt a width from a register operand when present.
    let raw = split_operands(rest);
    let mut ops = Vec::new();
    for r in &raw {
        ops.push(parse_operand(r, Width::W64, line)?);
    }
    let w = mem_width_from(&ops);
    let mut ops = Vec::new();
    for r in &raw {
        ops.push(parse_operand(r, w, line)?);
    }

    let inst = match mn {
        "mov" => {
            let (dst, src) = two(ops, line, mn)?;
            Inst::Mov { dst, src }
        }
        "movzx" => {
            let (dst, src) = two(ops, line, mn)?;
            Inst::MovZx {
                dst: want_reg(dst, line, mn)?,
                src,
            }
        }
        "movsx" | "movsxd" => {
            let (dst, src) = two(ops, line, mn)?;
            Inst::MovSx {
                dst: want_reg(dst, line, mn)?,
                src,
            }
        }
        "lea" => {
            let (dst, src) = two(ops, line, mn)?;
            let addr = src.as_mem().ok_or_else(|| ParseError {
                line,
                message: "`lea` needs an address".into(),
            })?;
            Inst::Lea {
                dst: want_reg(dst, line, mn)?,
                addr,
            }
        }
        "add" | "sub" | "and" | "or" | "xor" => {
            let (dst, src) = two(ops, line, mn)?;
            match mn {
                "add" => Inst::Add { dst, src },
                "sub" => Inst::Sub { dst, src },
                "and" => Inst::And { dst, src },
                "or" => Inst::Or { dst, src },
                _ => Inst::Xor { dst, src },
            }
        }
        "imul" => match ops.len() {
            2 => {
                let (dst, src) = two(ops, line, mn)?;
                Inst::Imul {
                    dst: want_reg(dst, line, mn)?,
                    src,
                }
            }
            3 => {
                let imm = ops[2].as_imm().ok_or_else(|| ParseError {
                    line,
                    message: "imul imm form".into(),
                })?;
                Inst::ImulImm {
                    dst: want_reg(ops[0], line, mn)?,
                    src: ops[1],
                    imm,
                }
            }
            _ => return err(line, "`imul` expects 2 or 3 operands"),
        },
        "neg" => Inst::Neg {
            dst: one(ops, line, mn)?,
        },
        "not" => Inst::Not {
            dst: one(ops, line, mn)?,
        },
        "inc" => Inst::Inc {
            dst: one(ops, line, mn)?,
        },
        "dec" => Inst::Dec {
            dst: one(ops, line, mn)?,
        },
        "shl" | "sal" | "shr" | "sar" => {
            let (dst, src) = two(ops, line, mn)?;
            let amount = shift_amount(&src, line)?;
            match mn {
                "shl" | "sal" => Inst::Shl { dst, amount },
                "shr" => Inst::Shr { dst, amount },
                _ => Inst::Sar { dst, amount },
            }
        }
        "cmp" => {
            let (a, b) = two(ops, line, mn)?;
            Inst::Cmp { a, b }
        }
        "test" => {
            let (a, b) = two(ops, line, mn)?;
            Inst::Test { a, b }
        }
        "push" => Inst::Push {
            src: one(ops, line, mn)?,
        },
        "pop" => Inst::Pop {
            dst: one(ops, line, mn)?,
        },
        _ => {
            if let Some(suffix) = mn.strip_prefix("set") {
                if let Some(cond) = Cond::from_suffix(suffix) {
                    return Ok(Inst::Set {
                        cond,
                        dst: one(ops, line, mn)?,
                    });
                }
            }
            if let Some(suffix) = mn.strip_prefix("cmov") {
                if let Some(cond) = Cond::from_suffix(suffix) {
                    let (dst, src) = two(ops, line, mn)?;
                    return Ok(Inst::Cmov {
                        cond,
                        dst: want_reg(dst, line, mn)?,
                        src,
                    });
                }
            }
            return err(line, format!("unknown mnemonic `{mn}`"));
        }
    };
    Ok(inst)
}

/// Parses one procedure.
///
/// Syntax: a `proc NAME` header, then labelled blocks of one instruction per
/// line. Lines starting with `;` or `#` are comments. Instructions before
/// the first label go in an implicit `entry` block.
///
/// # Errors
///
/// Returns a [`ParseError`] carrying the offending line on malformed input.
pub fn parse_proc(text: &str) -> Result<Procedure, ParseError> {
    let mut progs = parse_program(text)?;
    if progs.procs.len() != 1 {
        return err(
            0,
            format!(
                "expected exactly one procedure, found {}",
                progs.procs.len()
            ),
        );
    }
    Ok(progs.procs.remove(0))
}

/// Parses a whole program (any number of `proc` sections).
///
/// # Errors
///
/// Returns a [`ParseError`] carrying the offending line on malformed input.
pub fn parse_program(text: &str) -> Result<Program, ParseError> {
    let mut program = Program::new("text");
    let mut cur_proc: Option<Procedure> = None;
    let mut cur_block: Option<BasicBlock> = None;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = match raw.find(';').or_else(|| raw.find('#')) {
            Some(i) => raw[..i].trim(),
            None => raw.trim(),
        };
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix("proc ") {
            if let Some(mut p) = cur_proc.take() {
                if let Some(b) = cur_block.take() {
                    p.blocks.push(b);
                }
                program.procs.push(p);
            }
            cur_proc = Some(Procedure::new(name.trim()));
            continue;
        }
        if let Some(label) = line.strip_suffix(':') {
            let p = match cur_proc.as_mut() {
                Some(p) => p,
                None => return err(line_no, "label outside a procedure"),
            };
            if let Some(b) = cur_block.take() {
                p.blocks.push(b);
            }
            cur_block = Some(BasicBlock::new(label.trim()));
            continue;
        }
        if cur_proc.is_none() {
            return err(line_no, "instruction outside a procedure");
        }
        let inst = parse_inst_at(line, line_no)?;
        let block = cur_block.get_or_insert_with(|| BasicBlock::new("entry"));
        block.push(inst);
    }
    if let Some(mut p) = cur_proc.take() {
        if let Some(b) = cur_block.take() {
            p.blocks.push(b);
        }
        program.procs.push(p);
    }
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loc::Loc;

    #[test]
    fn parses_paper_figure_2a() {
        // The gcc 4.9 -O3 Heartbleed snippet from Figure 2(a).
        let text = "proc heartbleed_gcc\n\
                    entry:\n\
                    lea r14d, [r12+13h]\n\
                    mov r13, rax\n\
                    mov eax, r12d\n\
                    lea rcx, [r13+3]\n\
                    shr eax, 8\n\
                    lea rsi, [rbx+3]\n\
                    mov [r13+1], al\n\
                    mov [r13+2], r12b\n\
                    mov rdi, rcx\n\
                    call memcpy/3\n\
                    mov ecx, r14d\n\
                    mov esi, 18h\n\
                    mov eax, ecx\n\
                    add eax, esi\n\
                    call write_bytes/2\n\
                    test eax, eax\n\
                    js short loc_2A38\n";
        let p = parse_proc(text).expect("parses");
        assert_eq!(p.inst_count(), 17);
        assert_eq!(p.blocks.len(), 1);
        // `mov [r13+1], al` stores a byte (width from `al`).
        let store = &p.blocks[0].insts[6];
        let mem = match store {
            Inst::Mov {
                dst: Operand::Mem(m),
                ..
            } => *m,
            other => panic!("expected store, got {other}"),
        };
        assert_eq!(mem.width, Width::W8);
        assert!(store.refs().contains(&Loc::reg(Reg64::R13)));
    }

    #[test]
    fn roundtrip_display_parse() {
        let lines = [
            "mov rax, rdi",
            "mov eax, 0x13",
            "mov byte ptr [r13+0x1], al",
            "lea r14d, [r12+0x13]",
            "lea rdi, [r12+rbx*4+0x10]",
            "add rbp, 0x3",
            "sub rsp, 0x20",
            "imul rax, rsi",
            "imul rax, rsi, 0x18",
            "xor ebx, ebx",
            "shr eax, 0x8",
            "sar rax, cl",
            "cmp rax, rbx",
            "test eax, eax",
            "sete al",
            "cmovl rax, rbx",
            "push rbx",
            "pop rbx",
            "call memcpy/3",
            "jmp loc_1",
            "jl loc_2",
            "cdqe",
            "neg rax",
            "not rax",
            "inc rdx",
            "dec rdx",
            "movzx eax, byte ptr [rdi]",
            "movsx rax, dword ptr [rsi+0x4]",
            "ret",
            "nop",
        ];
        for l in lines {
            let i = parse_inst(l).unwrap_or_else(|e| panic!("parse `{l}`: {e}"));
            let printed = i.to_string();
            let again = parse_inst(&printed).unwrap_or_else(|e| panic!("reparse `{printed}`: {e}"));
            assert_eq!(i, again, "roundtrip failed for `{l}` -> `{printed}`");
        }
    }

    #[test]
    fn ida_style_hex() {
        let i = parse_inst("mov rsi, 14h").expect("parses");
        assert_eq!(
            i,
            Inst::Mov {
                dst: Reg64::Rsi.into(),
                src: Operand::Imm(0x14)
            }
        );
    }

    #[test]
    fn multi_block_procedure() {
        let text = "proc f\n\
                    entry:\n\
                    test rdi, rdi\n\
                    je done\n\
                    body:\n\
                    add rax, 1\n\
                    jmp entry\n\
                    done:\n\
                    ret\n";
        let p = parse_proc(text).expect("parses");
        assert_eq!(p.blocks.len(), 3);
        assert_eq!(
            p.successors(0),
            vec!["done".to_string(), "body".to_string()]
        );
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "proc g\n; a comment\n\nmov rax, 1 ; trailing\n# another\nret\n";
        let p = parse_proc(text).expect("parses");
        assert_eq!(p.inst_count(), 2);
        assert_eq!(p.blocks[0].label, "entry");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = "proc f\nmov rax, rdi\nbogus rax\n";
        let e = parse_proc(text).expect_err("should fail");
        assert_eq!(e.line, 3);
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn negative_displacement() {
        let i = parse_inst("mov rax, qword ptr [rbp-0x8]").expect("parses");
        let m = match i {
            Inst::Mov {
                src: Operand::Mem(m),
                ..
            } => m,
            _ => panic!(),
        };
        assert_eq!(m.disp, -8);
    }
}
