//! Instruction operands: registers, immediates and memory references.

use crate::reg::{Reg, Reg64, Width};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An index-register scale factor in a memory operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Scale {
    /// `*1`
    S1,
    /// `*2`
    S2,
    /// `*4`
    S4,
    /// `*8`
    S8,
}

impl Scale {
    /// The numeric multiplier.
    pub fn factor(self) -> u64 {
        match self {
            Scale::S1 => 1,
            Scale::S2 => 2,
            Scale::S4 => 4,
            Scale::S8 => 8,
        }
    }

    /// Builds a scale from a multiplier, if it is one x86 supports.
    pub fn from_factor(f: u64) -> Option<Scale> {
        match f {
            1 => Some(Scale::S1),
            2 => Some(Scale::S2),
            4 => Some(Scale::S4),
            8 => Some(Scale::S8),
            _ => None,
        }
    }
}

/// A memory operand `width ptr [base + index*scale + disp]`.
///
/// All address components are optional except that at least one of `base`,
/// `index` or `disp` must be present for the operand to be meaningful.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Mem {
    /// Access width.
    pub width: Width,
    /// Base register, if any.
    pub base: Option<Reg64>,
    /// Index register and scale, if any.
    pub index: Option<(Reg64, Scale)>,
    /// Signed displacement.
    pub disp: i64,
}

impl Mem {
    /// `width ptr [base]`
    pub fn base(width: Width, base: Reg64) -> Mem {
        Mem {
            width,
            base: Some(base),
            index: None,
            disp: 0,
        }
    }

    /// `width ptr [base + disp]`
    pub fn base_disp(width: Width, base: Reg64, disp: i64) -> Mem {
        Mem {
            width,
            base: Some(base),
            index: None,
            disp,
        }
    }

    /// `width ptr [base + index*scale + disp]`
    pub fn base_index(width: Width, base: Reg64, index: Reg64, scale: Scale, disp: i64) -> Mem {
        Mem {
            width,
            base: Some(base),
            index: Some((index, scale)),
            disp,
        }
    }

    /// Registers referenced when computing the effective address.
    pub fn addr_regs(&self) -> Vec<Reg64> {
        let mut out = Vec::new();
        if let Some(b) = self.base {
            out.push(b);
        }
        if let Some((i, _)) = self.index {
            out.push(i);
        }
        out
    }

    /// The same address expression viewed at a different access width.
    pub fn with_width(self, width: Width) -> Mem {
        Mem { width, ..self }
    }

    /// A key identifying the *address expression* (ignoring access width).
    ///
    /// Strand extraction treats two syntactically identical address
    /// expressions in one basic block as the same abstract memory variable;
    /// this key is that variable's identity.
    pub fn addr_key(&self) -> (Option<Reg64>, Option<(Reg64, Scale)>, i64) {
        (self.base, self.index, self.disp)
    }
}

impl fmt::Display for Mem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ptr = match self.width {
            Width::W8 => "byte",
            Width::W16 => "word",
            Width::W32 => "dword",
            Width::W64 => "qword",
        };
        write!(f, "{ptr} ptr [")?;
        let mut first = true;
        if let Some(b) = self.base {
            write!(f, "{b}")?;
            first = false;
        }
        if let Some((i, s)) = self.index {
            if !first {
                write!(f, "+")?;
            }
            write!(f, "{i}")?;
            if s != Scale::S1 {
                write!(f, "*{}", s.factor())?;
            }
            first = false;
        }
        if self.disp != 0 || first {
            if self.disp < 0 {
                write!(f, "-{:#x}", -self.disp)?;
            } else {
                if !first {
                    write!(f, "+")?;
                }
                write!(f, "{:#x}", self.disp)?;
            }
        }
        write!(f, "]")
    }
}

/// A generic instruction operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// A register view.
    Reg(Reg),
    /// A sign-extended immediate.
    Imm(i64),
    /// A memory reference.
    Mem(Mem),
}

impl Operand {
    /// The operand's value width, if it has an intrinsic one.
    ///
    /// Immediates are width-less (they adopt the width of their context).
    pub fn width(&self) -> Option<Width> {
        match self {
            Operand::Reg(r) => Some(r.width),
            Operand::Mem(m) => Some(m.width),
            Operand::Imm(_) => None,
        }
    }

    /// Returns the register if this is a register operand.
    pub fn as_reg(&self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(*r),
            _ => None,
        }
    }

    /// Returns the memory reference if this is a memory operand.
    pub fn as_mem(&self) -> Option<Mem> {
        match self {
            Operand::Mem(m) => Some(*m),
            _ => None,
        }
    }

    /// Returns the immediate if this is an immediate operand.
    pub fn as_imm(&self) -> Option<i64> {
        match self {
            Operand::Imm(i) => Some(*i),
            _ => None,
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Operand {
        Operand::Reg(r)
    }
}

impl From<Reg64> for Operand {
    fn from(r: Reg64) -> Operand {
        Operand::Reg(r.full())
    }
}

impl From<i64> for Operand {
    fn from(i: i64) -> Operand {
        Operand::Imm(i)
    }
}

impl From<Mem> for Operand {
    fn from(m: Mem) -> Operand {
        Operand::Mem(m)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(i) => {
                if *i < 0 {
                    write!(f, "-{:#x}", -i)
                } else {
                    write!(f, "{:#x}", i)
                }
            }
            Operand::Mem(m) => write!(f, "{m}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_display() {
        let m = Mem::base_index(Width::W64, Reg64::R12, Reg64::Rbx, Scale::S4, 0x13);
        assert_eq!(m.to_string(), "qword ptr [r12+rbx*4+0x13]");
        let m2 = Mem::base_disp(Width::W8, Reg64::R13, 1);
        assert_eq!(m2.to_string(), "byte ptr [r13+0x1]");
        let m3 = Mem::base_disp(Width::W32, Reg64::Rbp, -8);
        assert_eq!(m3.to_string(), "dword ptr [rbp-0x8]");
    }

    #[test]
    fn addr_key_ignores_width() {
        let a = Mem::base_disp(Width::W8, Reg64::Rax, 4);
        let b = Mem::base_disp(Width::W64, Reg64::Rax, 4);
        assert_eq!(a.addr_key(), b.addr_key());
    }

    #[test]
    fn operand_conversions() {
        let o: Operand = Reg64::Rcx.into();
        assert_eq!(o.as_reg().unwrap().base, Reg64::Rcx);
        let o: Operand = 42i64.into();
        assert_eq!(o.as_imm(), Some(42));
        assert!(o.width().is_none());
    }

    #[test]
    fn negative_imm_display() {
        assert_eq!(Operand::Imm(-16).to_string(), "-0x10");
        assert_eq!(Operand::Imm(255).to_string(), "0xff");
    }
}
