//! Abstract machine locations used for data-flow (Def/Ref) analysis.

use crate::operand::{Mem, Scale};
use crate::reg::Reg64;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A machine location, the "variable" of the paper's Algorithm 1.
///
/// Registers are tracked at base-register (64-bit) granularity; the
/// arithmetic flags are a single location (every flag-producing instruction
/// defines them as a unit, every conditional instruction references them);
/// memory is tracked per syntactic address expression within a basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Loc {
    /// A general-purpose register (full 64-bit base).
    Reg(Reg64),
    /// The RFLAGS condition bits, as one unit.
    Flags,
    /// An abstract memory slot identified by its address expression.
    MemSlot {
        /// Base register of the address, if any.
        base: Option<Reg64>,
        /// Index register and scale, if any.
        index: Option<(Reg64, Scale)>,
        /// Displacement.
        disp: i64,
    },
}

impl Loc {
    /// The location for a register operand.
    pub fn reg(r: Reg64) -> Loc {
        Loc::Reg(r)
    }

    /// The abstract slot for a memory operand.
    pub fn mem(m: &Mem) -> Loc {
        let (base, index, disp) = m.addr_key();
        Loc::MemSlot { base, index, disp }
    }

    /// True if this is a register location.
    pub fn is_reg(&self) -> bool {
        matches!(self, Loc::Reg(_))
    }

    /// True if this is a memory slot.
    pub fn is_mem(&self) -> bool {
        matches!(self, Loc::MemSlot { .. })
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Loc::Reg(r) => write!(f, "{r}"),
            Loc::Flags => write!(f, "flags"),
            Loc::MemSlot { base, index, disp } => {
                write!(f, "mem[")?;
                if let Some(b) = base {
                    write!(f, "{b}")?;
                }
                if let Some((i, s)) = index {
                    write!(f, "+{i}*{}", s.factor())?;
                }
                write!(f, "{disp:+}]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Width;

    #[test]
    fn mem_loc_identity_ignores_width() {
        let a = Mem::base_disp(Width::W8, Reg64::R13, 1);
        let b = Mem::base_disp(Width::W32, Reg64::R13, 1);
        assert_eq!(Loc::mem(&a), Loc::mem(&b));
        let c = Mem::base_disp(Width::W8, Reg64::R13, 2);
        assert_ne!(Loc::mem(&a), Loc::mem(&c));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Loc::reg(Reg64::Rax).to_string(), "rax");
        assert_eq!(Loc::Flags.to_string(), "flags");
        let m = Mem::base_disp(Width::W8, Reg64::R13, 1);
        assert_eq!(Loc::mem(&m).to_string(), "mem[r13+1]");
    }
}
