//! General-purpose registers and their sub-register views.
//!
//! x86-64 exposes each 64-bit register under several widths (`rax`, `eax`,
//! `ax`, `al`). The model keeps the *base* register and the *view width*
//! separate: data-flow (Def/Ref) is tracked at base-register granularity,
//! exactly like the paper's IVL, which "always uses the full 64-bit
//! representation of registers".

use serde::{Deserialize, Serialize};
use std::fmt;

/// The sixteen x86-64 general-purpose base registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Reg64 {
    Rax,
    Rbx,
    Rcx,
    Rdx,
    Rsi,
    Rdi,
    Rbp,
    Rsp,
    R8,
    R9,
    R10,
    R11,
    R12,
    R13,
    R14,
    R15,
}

impl Reg64 {
    /// All base registers, in encoding order.
    pub const ALL: [Reg64; 16] = [
        Reg64::Rax,
        Reg64::Rbx,
        Reg64::Rcx,
        Reg64::Rdx,
        Reg64::Rsi,
        Reg64::Rdi,
        Reg64::Rbp,
        Reg64::Rsp,
        Reg64::R8,
        Reg64::R9,
        Reg64::R10,
        Reg64::R11,
        Reg64::R12,
        Reg64::R13,
        Reg64::R14,
        Reg64::R15,
    ];

    /// A stable small index in `0..16`, useful as an array key.
    pub fn index(self) -> usize {
        Reg64::ALL
            .iter()
            .position(|&r| r == self)
            .expect("register in ALL")
    }

    /// The canonical 64-bit name (`"rax"`, `"r8"`, ...).
    pub fn name(self) -> &'static str {
        match self {
            Reg64::Rax => "rax",
            Reg64::Rbx => "rbx",
            Reg64::Rcx => "rcx",
            Reg64::Rdx => "rdx",
            Reg64::Rsi => "rsi",
            Reg64::Rdi => "rdi",
            Reg64::Rbp => "rbp",
            Reg64::Rsp => "rsp",
            Reg64::R8 => "r8",
            Reg64::R9 => "r9",
            Reg64::R10 => "r10",
            Reg64::R11 => "r11",
            Reg64::R12 => "r12",
            Reg64::R13 => "r13",
            Reg64::R14 => "r14",
            Reg64::R15 => "r15",
        }
    }

    /// Views this base register at the given width.
    pub fn view(self, width: Width) -> Reg {
        Reg { base: self, width }
    }

    /// The full 64-bit view of this register.
    pub fn full(self) -> Reg {
        self.view(Width::W64)
    }
}

impl fmt::Display for Reg64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Operand widths supported by the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Width {
    /// 8 bits (`al`-class views, `byte ptr`).
    W8,
    /// 16 bits (`ax`-class views, `word ptr`).
    W16,
    /// 32 bits (`eax`-class views, `dword ptr`).
    W32,
    /// 64 bits (`rax`-class views, `qword ptr`).
    W64,
}

impl Width {
    /// The width in bits.
    pub fn bits(self) -> u32 {
        match self {
            Width::W8 => 8,
            Width::W16 => 16,
            Width::W32 => 32,
            Width::W64 => 64,
        }
    }

    /// The width in bytes.
    pub fn bytes(self) -> u64 {
        u64::from(self.bits() / 8)
    }

    /// A mask with the low `bits()` bits set.
    pub fn mask(self) -> u64 {
        match self {
            Width::W64 => u64::MAX,
            w => (1u64 << w.bits()) - 1,
        }
    }

    /// All widths, narrowest first.
    pub const ALL: [Width; 4] = [Width::W8, Width::W16, Width::W32, Width::W64];
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.bits())
    }
}

/// A register operand: a base register viewed at a particular width.
///
/// `Reg64::Rax.view(Width::W32)` prints as `eax`; data-flow still tracks the
/// `rax` base.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Reg {
    /// The underlying 64-bit register.
    pub base: Reg64,
    /// The number of low bits this view exposes.
    pub width: Width,
}

impl Reg {
    /// Creates a view of `base` at `width`.
    pub fn new(base: Reg64, width: Width) -> Reg {
        Reg { base, width }
    }

    /// The x86 spelling of this view (`eax`, `r9d`, `sil`, ...).
    pub fn name(self) -> String {
        let b = self.base;
        match self.width {
            Width::W64 => b.name().to_string(),
            Width::W32 => match b {
                Reg64::Rax => "eax".into(),
                Reg64::Rbx => "ebx".into(),
                Reg64::Rcx => "ecx".into(),
                Reg64::Rdx => "edx".into(),
                Reg64::Rsi => "esi".into(),
                Reg64::Rdi => "edi".into(),
                Reg64::Rbp => "ebp".into(),
                Reg64::Rsp => "esp".into(),
                other => format!("{}d", other.name()),
            },
            Width::W16 => match b {
                Reg64::Rax => "ax".into(),
                Reg64::Rbx => "bx".into(),
                Reg64::Rcx => "cx".into(),
                Reg64::Rdx => "dx".into(),
                Reg64::Rsi => "si".into(),
                Reg64::Rdi => "di".into(),
                Reg64::Rbp => "bp".into(),
                Reg64::Rsp => "sp".into(),
                other => format!("{}w", other.name()),
            },
            Width::W8 => match b {
                Reg64::Rax => "al".into(),
                Reg64::Rbx => "bl".into(),
                Reg64::Rcx => "cl".into(),
                Reg64::Rdx => "dl".into(),
                Reg64::Rsi => "sil".into(),
                Reg64::Rdi => "dil".into(),
                Reg64::Rbp => "bpl".into(),
                Reg64::Rsp => "spl".into(),
                other => format!("{}b", other.name()),
            },
        }
    }

    /// Parses any x86 register spelling into a `(base, width)` view.
    pub fn from_name(name: &str) -> Option<Reg> {
        for base in Reg64::ALL {
            for width in Width::ALL {
                if base.view(width).name() == name {
                    return Some(base.view(width));
                }
            }
        }
        None
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_names_roundtrip() {
        for base in Reg64::ALL {
            for width in Width::ALL {
                let r = base.view(width);
                assert_eq!(Reg::from_name(&r.name()), Some(r), "spelling {}", r.name());
            }
        }
    }

    #[test]
    fn classic_spellings() {
        assert_eq!(Reg64::Rax.view(Width::W32).name(), "eax");
        assert_eq!(Reg64::R9.view(Width::W32).name(), "r9d");
        assert_eq!(Reg64::Rsi.view(Width::W8).name(), "sil");
        assert_eq!(Reg64::R12.view(Width::W8).name(), "r12b");
        assert_eq!(Reg64::Rbp.view(Width::W16).name(), "bp");
    }

    #[test]
    fn width_masks() {
        assert_eq!(Width::W8.mask(), 0xff);
        assert_eq!(Width::W16.mask(), 0xffff);
        assert_eq!(Width::W32.mask(), 0xffff_ffff);
        assert_eq!(Width::W64.mask(), u64::MAX);
    }

    #[test]
    fn indices_are_dense() {
        let mut seen = [false; 16];
        for r in Reg64::ALL {
            assert!(!seen[r.index()]);
            seen[r.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
