#![warn(missing_docs)]

//! # esh-asm — x86-64 subset assembly model
//!
//! This crate models the fragment of x86-64 assembly that the Esh
//! reproduction operates on: the instructions emitted by the synthetic
//! compilers in `esh-cc` and consumed by the lifter in `esh-ivl` and the
//! strand extractor in `esh-strands`.
//!
//! The model is *semantic-first*: every instruction knows the set of machine
//! locations it defines ([`Inst::defs`]) and references ([`Inst::refs`]),
//! which is exactly what the paper's Algorithm 1 (strand extraction by
//! backward slicing inside a basic block) needs.
//!
//! ## Example
//!
//! ```
//! use esh_asm::{parse_proc, Loc, Reg64};
//!
//! let p = parse_proc(
//!     "proc f\n\
//!      entry:\n\
//!      mov rax, rdi\n\
//!      add rax, 13\n\
//!      ret\n",
//! )?;
//! assert_eq!(p.name, "f");
//! let block = &p.blocks[0];
//! assert!(block.insts[1].defs().contains(&Loc::reg(Reg64::Rax)));
//! # Ok::<(), esh_asm::ParseError>(())
//! ```

mod inst;
mod loc;
mod operand;
mod parse;
mod proc;
mod reg;

pub use inst::{Cond, Inst, ShiftAmount, ARG_REGS, CALLEE_SAVED, CALLER_SAVED};
pub use loc::Loc;
pub use operand::{Mem, Operand, Scale};
pub use parse::{parse_inst, parse_proc, parse_program, ParseError};
pub use proc::{BasicBlock, Procedure, Program};
pub use reg::{Reg, Reg64, Width};
