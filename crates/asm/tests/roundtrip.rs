//! Property tests: the printer and parser round-trip over random
//! instructions, and Def/Ref sets are stable under round-trip.

use esh_asm::{parse_inst, Cond, Inst, Mem, Operand, Reg64, Scale, ShiftAmount, Width};
use proptest::prelude::*;

fn arb_reg64() -> impl Strategy<Value = Reg64> {
    prop::sample::select(Reg64::ALL.to_vec())
}

fn arb_width() -> impl Strategy<Value = Width> {
    prop::sample::select(Width::ALL.to_vec())
}

fn arb_scale() -> impl Strategy<Value = Scale> {
    prop::sample::select(vec![Scale::S1, Scale::S2, Scale::S4, Scale::S8])
}

fn arb_mem() -> impl Strategy<Value = Mem> {
    (
        arb_width(),
        prop::option::of(arb_reg64()),
        prop::option::of((arb_reg64(), arb_scale())),
        -4096i64..4096,
    )
        .prop_filter_map(
            "address must have a component",
            |(width, mut base, mut index, disp)| {
                if base.is_none() && index.is_none() {
                    return None;
                }
                // Canonicalize `[reg*1]` to `[reg]`, matching how the parser
                // reads the printed form back.
                if base.is_none() {
                    if let Some((r, Scale::S1)) = index {
                        base = Some(r);
                        index = None;
                    }
                }
                Some(Mem {
                    width,
                    base,
                    index,
                    disp,
                })
            },
        )
}

fn arb_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        (arb_reg64(), arb_width()).prop_map(|(b, w)| Operand::Reg(b.view(w))),
        (-65536i64..65536).prop_map(Operand::Imm),
        arb_mem().prop_map(Operand::Mem),
    ]
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    prop::sample::select(vec![
        Cond::E,
        Cond::Ne,
        Cond::L,
        Cond::Le,
        Cond::G,
        Cond::Ge,
        Cond::B,
        Cond::Be,
        Cond::A,
        Cond::Ae,
        Cond::S,
        Cond::Ns,
    ])
}

fn arb_binary() -> impl Strategy<Value = Inst> {
    // Destination must not be an immediate; avoid mem-to-mem which x86 forbids.
    let dst = prop_oneof![
        (arb_reg64(), arb_width()).prop_map(|(b, w)| Operand::Reg(b.view(w))),
        arb_mem().prop_map(Operand::Mem),
    ];
    (dst, arb_operand(), 0usize..5).prop_filter_map("no mem-to-mem", |(dst, src, k)| {
        if dst.as_mem().is_some() && src.as_mem().is_some() {
            return None;
        }
        Some(match k {
            0 => Inst::Add { dst, src },
            1 => Inst::Sub { dst, src },
            2 => Inst::And { dst, src },
            3 => Inst::Or { dst, src },
            _ => Inst::Xor { dst, src },
        })
    })
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        arb_binary(),
        (arb_reg64(), arb_width(), arb_mem()).prop_filter_map("movzx widens", |(b, w, m)| {
            let dst = b.view(w);
            (m.width.bits() < dst.width.bits()).then_some(Inst::MovZx {
                dst,
                src: Operand::Mem(m),
            })
        }),
        // lea never accesses memory, so the address width is irrelevant;
        // pin it to the width the parser will infer from the destination.
        (arb_reg64(), arb_mem()).prop_map(|(r, m)| Inst::Lea {
            dst: r.full(),
            addr: m.with_width(Width::W64)
        }),
        (arb_operand(), 0u8..64).prop_filter_map("shift dst", |(dst, n)| {
            dst.as_imm().is_none().then_some(Inst::Shr {
                dst,
                amount: ShiftAmount::Imm(n),
            })
        }),
        (arb_operand(), arb_operand()).prop_filter_map("cmp", |(a, b)| {
            (!(a.as_mem().is_some() && b.as_mem().is_some())).then_some(Inst::Cmp { a, b })
        }),
        (arb_cond(), arb_reg64()).prop_map(|(c, r)| Inst::Set {
            cond: c,
            dst: Operand::Reg(r.view(Width::W8))
        }),
        (arb_cond(), arb_reg64(), arb_reg64()).prop_map(|(c, d, s)| Inst::Cmov {
            cond: c,
            dst: d.full(),
            src: Operand::Reg(s.full())
        }),
        arb_reg64().prop_map(|r| Inst::Push {
            src: Operand::Reg(r.full())
        }),
        arb_reg64().prop_map(|r| Inst::Pop {
            dst: Operand::Reg(r.full())
        }),
        (0u8..7).prop_map(|n| Inst::Call {
            target: "callee".into(),
            args: n
        }),
        Just(Inst::Ret),
        Just(Inst::Cdqe),
    ]
}

proptest! {
    #[test]
    fn print_parse_roundtrip(inst in arb_inst()) {
        let printed = inst.to_string();
        let reparsed = parse_inst(&printed)
            .unwrap_or_else(|e| panic!("failed to reparse `{printed}`: {e}"));
        prop_assert_eq!(&inst, &reparsed, "`{}` reparsed differently", printed);
    }

    #[test]
    fn defs_refs_stable_under_roundtrip(inst in arb_inst()) {
        let reparsed = parse_inst(&inst.to_string()).expect("reparse");
        prop_assert_eq!(inst.defs(), reparsed.defs());
        prop_assert_eq!(inst.refs(), reparsed.refs());
    }

    #[test]
    fn defs_and_refs_are_duplicate_free(inst in arb_inst()) {
        for set in [inst.defs(), inst.refs()] {
            for (i, a) in set.iter().enumerate() {
                for b in &set[i + 1..] {
                    prop_assert_ne!(a, b);
                }
            }
        }
    }
}
