//! Incremental equality solving: one long-lived SAT instance shared
//! across many closely-related `a == b` queries.
//!
//! A [`BitBlaster`] already memoizes Tseitin encodings by `TermId`, which
//! is sound because the [`TermPool`] is append-only and hash-consing — an
//! id never changes meaning. The [`IncrementalBlaster`] adds the query
//! protocol that makes reuse pay off across *solves*, not just encodings:
//!
//! - Each query `a == b` builds (or reuses) the comparator literal `eq`
//!   and asserts the disequality under a **fresh activation literal**
//!   `act`: the clause `(¬act ∨ ¬eq)` is added permanently, and the solve
//!   runs under the assumption `act`. Assumptions enter the CDCL search
//!   as decisions, so clauses learned during the solve may *mention*
//!   `act` but never resolve it away — every learnt clause is a
//!   consequence of the shared formula alone and stays sound for later
//!   queries. VSIDS activities and saved phases carry over the same way.
//! - After the solve, the unit `¬act` permanently deactivates the
//!   disequality, so it cannot constrain later queries. When the solve
//!   proved `Unsat` (the equality is valid), the unit `eq` is also added:
//!   `act` was fresh and appears only in `(¬act ∨ ¬eq)`, so unsatisfiable
//!   under `act` means the formula entails `¬eq ⇒ ⊥`, i.e. `eq` — keeping
//!   the lemma lets later queries rewrite through proved equalities for
//!   free.
//! - Clause-database hygiene: when retained learnt clauses exceed
//!   [`IncrementalLimits::reduce_learnts_at`], the lower-activity half of
//!   long learnts is dropped ([`Solver::reduce_learnts`]). When the
//!   instance outgrows the hard var/clause watermark, the whole solver is
//!   discarded and rebuilt fresh — correctness never depends on reuse.

use std::collections::HashSet;
use std::time::Instant;

use crate::bitblast::BitBlaster;
use crate::sat::{Lit, SatResult};
use crate::term::{TermId, TermPool};

/// Growth watermarks for the shared solver instance.
///
/// The defaults are deliberately small. Every solve on the shared
/// instance assigns and propagates the *whole* live circuit — the input
/// variables are shared by design, so assigning them fires the watch
/// lists of every retained gate, old cones included — which makes
/// per-query cost proportional to instance size, not cone size. Reuse
/// only pays while the live instance is a small multiple of one query's
/// cone (a few thousand variables covers the run of closely-related
/// queries one strand pair generates); past that, resetting is nearly
/// free while an oversized instance taxes every subsequent solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IncrementalLimits {
    /// Discard and rebuild the solver when it holds more variables.
    pub max_vars: usize,
    /// Discard and rebuild the solver when it holds more clauses.
    pub max_clauses: usize,
    /// Run learnt-clause reduction when more learnts are retained.
    pub reduce_learnts_at: usize,
}

impl Default for IncrementalLimits {
    fn default() -> IncrementalLimits {
        IncrementalLimits {
            max_vars: 1_200,
            max_clauses: 5_000,
            reduce_learnts_at: 1_000,
        }
    }
}

/// Per-session solver performance counters.
///
/// Filled by both the incremental and the fresh-blaster paths so the two
/// are comparable; aggregated per worker by the engine and surfaced in
/// `esh query` output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolverPerf {
    /// SAT queries issued (one per `prove_equal` that reached the solver).
    pub sat_queries: u64,
    /// Tseitin encodings served from the per-term CNF cache.
    pub blast_cache_hits: u64,
    /// Tseitin encodings built fresh.
    pub blast_cache_misses: u64,
    /// Total CDCL conflicts across all queries.
    pub conflicts: u64,
    /// Wall time spent inside the SAT solver, in nanoseconds.
    pub sat_time_ns: u64,
    /// Learnt clauses currently retained in the shared solver (a gauge,
    /// not a counter — `merge` takes the max).
    pub retained_learnts: u64,
    /// Learnt clauses dropped by database reductions.
    pub learnts_dropped: u64,
    /// Times the shared solver hit a watermark (or went inconsistent)
    /// and was rebuilt from scratch.
    pub solver_resets: u64,
}

impl SolverPerf {
    /// Mean conflicts per SAT query, `0.0` when no query ran.
    pub fn conflicts_per_query(&self) -> f64 {
        if self.sat_queries == 0 {
            0.0
        } else {
            self.conflicts as f64 / self.sat_queries as f64
        }
    }

    /// Counters accumulated since `earlier` (which must be a previous
    /// snapshot of the same counter set). The retained-learnts gauge is
    /// carried over as-is, not differenced.
    pub fn delta_since(&self, earlier: &SolverPerf) -> SolverPerf {
        SolverPerf {
            sat_queries: self.sat_queries - earlier.sat_queries,
            blast_cache_hits: self.blast_cache_hits - earlier.blast_cache_hits,
            blast_cache_misses: self.blast_cache_misses - earlier.blast_cache_misses,
            conflicts: self.conflicts - earlier.conflicts,
            sat_time_ns: self.sat_time_ns - earlier.sat_time_ns,
            retained_learnts: self.retained_learnts,
            learnts_dropped: self.learnts_dropped - earlier.learnts_dropped,
            solver_resets: self.solver_resets - earlier.solver_resets,
        }
    }

    /// Folds another counter set into this one (counters add; the
    /// retained-learnts gauge takes the max).
    pub fn merge(&mut self, other: &SolverPerf) {
        self.sat_queries += other.sat_queries;
        self.blast_cache_hits += other.blast_cache_hits;
        self.blast_cache_misses += other.blast_cache_misses;
        self.conflicts += other.conflicts;
        self.sat_time_ns += other.sat_time_ns;
        self.retained_learnts = self.retained_learnts.max(other.retained_learnts);
        self.learnts_dropped += other.learnts_dropped;
        self.solver_resets += other.solver_resets;
    }
}

/// A persistent bit-blasting solver shared across equality queries.
///
/// See the module docs for the activation-literal protocol and its
/// soundness argument. The blaster is tied to one (append-only)
/// [`TermPool`]; passing terms from a different pool is a logic error.
pub struct IncrementalBlaster {
    bb: BitBlaster,
    /// Queries already decided `valid` on this instance; served without
    /// touching the solver (the `eq` lemma unit makes re-solving trivial
    /// anyway, but skipping it avoids a propagate).
    proved: HashSet<(TermId, TermId)>,
}

impl Default for IncrementalBlaster {
    fn default() -> IncrementalBlaster {
        IncrementalBlaster::new()
    }
}

impl IncrementalBlaster {
    /// Creates a blaster with a fresh solver.
    pub fn new() -> IncrementalBlaster {
        IncrementalBlaster {
            bb: BitBlaster::new(),
            proved: HashSet::new(),
        }
    }

    /// Learnt clauses currently retained by the shared solver.
    pub fn retained_learnts(&self) -> usize {
        self.bb.sat.learnt_count()
    }

    /// Checks validity of `a == b` under `budget` conflicts, reusing the
    /// shared solver: `Some(true)` valid, `Some(false)` refuted, `None`
    /// budget exhausted. Updates `perf` with the query's cost.
    pub fn prove_equal(
        &mut self,
        pool: &TermPool,
        a: TermId,
        b: TermId,
        budget: u64,
        limits: &IncrementalLimits,
        perf: &mut SolverPerf,
    ) -> Option<bool> {
        let key = if a < b { (a, b) } else { (b, a) };
        if self.proved.contains(&key) {
            return Some(true);
        }
        // Hard watermark: a grown-out (or inconsistent) instance is
        // replaced wholesale; nothing below relies on history.
        if !self.bb.sat.is_ok()
            || self.bb.sat.num_vars() > limits.max_vars
            || self.bb.sat.num_clauses() > limits.max_clauses
        {
            self.reset(perf);
        }
        let res = match self.query(pool, key, budget, perf) {
            Some(r) => Some(r),
            // `query` returns None for both a budget-exhausted solve and
            // a solver that went inconsistent mid-encoding (only possible
            // on an instance carrying history); retry the latter once on
            // a fresh solver.
            None if !self.bb.sat.is_ok() => {
                self.reset(perf);
                self.query(pool, key, budget, perf)
            }
            None => None,
        };
        if res == Some(true) {
            self.proved.insert(key);
        }
        self.maintain(limits, perf);
        res
    }

    fn query(
        &mut self,
        pool: &TermPool,
        key: (TermId, TermId),
        budget: u64,
        perf: &mut SolverPerf,
    ) -> Option<bool> {
        let hits0 = self.bb.blast_hits;
        let misses0 = self.bb.blast_misses;
        let eq = self.bb.eq_lit(pool, key.0, key.1);
        perf.blast_cache_hits += self.bb.blast_hits - hits0;
        perf.blast_cache_misses += self.bb.blast_misses - misses0;
        if !self.bb.sat.is_ok() {
            return None;
        }
        let act = Lit::pos(self.bb.sat.new_var());
        self.bb.sat.add_clause(vec![act.negate(), eq.negate()]);
        let t0 = Instant::now();
        let res = self.bb.sat.solve_with_budget(&[act], budget);
        perf.sat_time_ns += t0.elapsed().as_nanos() as u64;
        perf.sat_queries += 1;
        perf.conflicts += self.bb.sat.conflicts;
        // Permanently retire this query's disequality.
        self.bb.sat.add_clause(vec![act.negate()]);
        match res {
            SatResult::Unsat => {
                // Valid equality: keep it as a unit lemma (see module
                // docs for why this is sound).
                self.bb.sat.add_clause(vec![eq]);
                Some(true)
            }
            SatResult::Sat => Some(false),
            SatResult::Unknown => None,
        }
    }

    /// Post-query hygiene: learnt-DB reduction and gauge upkeep.
    fn maintain(&mut self, limits: &IncrementalLimits, perf: &mut SolverPerf) {
        if self.bb.sat.learnt_count() > limits.reduce_learnts_at {
            perf.learnts_dropped += self.bb.sat.reduce_learnts() as u64;
        }
        perf.retained_learnts = perf.retained_learnts.max(self.bb.sat.learnt_count() as u64);
    }

    fn reset(&mut self, perf: &mut SolverPerf) {
        self.bb = BitBlaster::new();
        self.proved.clear();
        perf.solver_resets += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::TermPool;

    #[test]
    fn repeated_queries_reuse_encodings() {
        let mut p = TermPool::new();
        let x = p.var(0, 16);
        let y = p.var(1, 16);
        let lhs = p.xor(vec![x, y]);
        let or = p.or(vec![x, y]);
        let and = p.and(vec![x, y]);
        let rhs = p.sub(or, and);
        let mut inc = IncrementalBlaster::new();
        let limits = IncrementalLimits::default();
        let mut perf = SolverPerf::default();
        assert_eq!(
            inc.prove_equal(&p, lhs, rhs, u64::MAX, &limits, &mut perf),
            Some(true)
        );
        let misses_after_first = perf.blast_cache_misses;
        assert_eq!(perf.sat_queries, 1);
        // Second identical query: answered from the proved-set, no new
        // encodings, no new solve.
        assert_eq!(
            inc.prove_equal(&p, lhs, rhs, u64::MAX, &limits, &mut perf),
            Some(true)
        );
        assert_eq!(perf.sat_queries, 1);
        assert_eq!(perf.blast_cache_misses, misses_after_first);
        // A related query over the same sub-DAG hits the CNF cache.
        let c1 = p.constant(1, 16);
        let lhs1 = p.add2(lhs, c1);
        let rhs1 = p.add2(rhs, c1);
        let hits_before = perf.blast_cache_hits;
        assert_eq!(
            inc.prove_equal(&p, lhs1, rhs1, u64::MAX, &limits, &mut perf),
            Some(true)
        );
        assert!(perf.blast_cache_hits > hits_before);
    }

    #[test]
    fn refutation_does_not_poison_later_queries() {
        let mut p = TermPool::new();
        let x = p.var(0, 16);
        let c1 = p.constant(1, 16);
        let c2 = p.constant(2, 16);
        let a = p.add2(x, c1);
        let b = p.add2(x, c2);
        let mut inc = IncrementalBlaster::new();
        let limits = IncrementalLimits::default();
        let mut perf = SolverPerf::default();
        assert_eq!(
            inc.prove_equal(&p, a, b, u64::MAX, &limits, &mut perf),
            Some(false)
        );
        // The deactivated disequality must not make a valid query fail.
        let xx = p.add2(x, c1);
        assert_eq!(
            inc.prove_equal(&p, xx, a, u64::MAX, &limits, &mut perf),
            Some(true)
        );
        // And the same refutable query still refutes.
        assert_eq!(
            inc.prove_equal(&p, a, b, u64::MAX, &limits, &mut perf),
            Some(false)
        );
    }

    #[test]
    fn watermark_reset_preserves_correctness() {
        let mut p = TermPool::new();
        let x = p.var(0, 16);
        let y = p.var(1, 16);
        let lhs = p.xor(vec![x, y]);
        let or = p.or(vec![x, y]);
        let and = p.and(vec![x, y]);
        let rhs = p.sub(or, and);
        // Watermark so tight every query after the first trips it.
        let limits = IncrementalLimits {
            max_vars: 8,
            max_clauses: 16,
            reduce_learnts_at: 20_000,
        };
        let mut inc = IncrementalBlaster::new();
        let mut perf = SolverPerf::default();
        for _ in 0..3 {
            assert_eq!(
                inc.prove_equal(&p, lhs, rhs, u64::MAX, &limits, &mut perf),
                Some(true)
            );
            let c1 = p.constant(1, 16);
            let a = p.add2(x, c1);
            assert_eq!(
                inc.prove_equal(&p, x, a, u64::MAX, &limits, &mut perf),
                Some(false)
            );
        }
        assert!(perf.solver_resets > 0, "tight watermark must trigger resets");
    }
}
