//! Tseitin bit-blasting of bitvector terms into CNF.
//!
//! Memory is handled byte-accurately: loads decompose into byte reads,
//! store chains become address-comparison mux chains, and reads from the
//! same base memory variable are related by Ackermann congruence
//! constraints. This keeps mixed-width load/store reasoning sound.
//!
//! The blaster owns no reference to the [`TermPool`]; every encoding call
//! takes the pool as an argument instead. Because the pool is append-only
//! and hash-consing (a `TermId` never changes meaning), encodings memoized
//! in [`BitBlaster::blast`]'s CNF cache stay valid across many queries —
//! this is what the incremental layer (see [`crate::incremental`]) builds
//! on to share one solver instance between closely-related equality
//! queries.

use std::collections::HashMap;

use crate::sat::{Lit, SatResult, Solver};
use crate::term::{TermId, TermOp, TermPool};

/// A recorded base-memory byte read: `(address bits, value bits)`.
type ByteRead = (Vec<Lit>, Vec<Lit>);

/// A bit-blasting context wrapping a SAT solver.
pub struct BitBlaster {
    /// The underlying SAT solver.
    pub sat: Solver,
    bits: HashMap<TermId, Vec<Lit>>,
    var_bits: HashMap<u32, Vec<Lit>>,
    /// Byte reads per base memory variable.
    mem_reads: HashMap<u32, Vec<ByteRead>>,
    /// Memoized byte reads keyed by (memory term, address bits).
    #[allow(clippy::type_complexity)]
    byte_memo: HashMap<(TermId, Vec<Lit>), Vec<Lit>>,
    /// Memoized equality comparators keyed by the (ordered) term pair.
    eq_memo: HashMap<(TermId, TermId), Lit>,
    true_lit: Lit,
    /// Term encodings served from the CNF cache (counted per `blast`
    /// lookup, including recursive sub-DAG lookups).
    pub blast_hits: u64,
    /// Term encodings built fresh.
    pub blast_misses: u64,
}

impl Default for BitBlaster {
    fn default() -> BitBlaster {
        BitBlaster::new()
    }
}

impl BitBlaster {
    /// Creates an empty blaster.
    pub fn new() -> BitBlaster {
        let mut sat = Solver::new();
        let t = sat.new_var();
        sat.add_clause(vec![Lit::pos(t)]);
        BitBlaster {
            sat,
            bits: HashMap::new(),
            var_bits: HashMap::new(),
            mem_reads: HashMap::new(),
            byte_memo: HashMap::new(),
            eq_memo: HashMap::new(),
            true_lit: Lit::pos(t),
            blast_hits: 0,
            blast_misses: 0,
        }
    }

    fn tru(&self) -> Lit {
        self.true_lit
    }

    fn fals(&self) -> Lit {
        self.true_lit.negate()
    }

    fn fresh(&mut self) -> Lit {
        Lit::pos(self.sat.new_var())
    }

    // ---- gates ---------------------------------------------------------

    fn gate_and(&mut self, a: Lit, b: Lit) -> Lit {
        if a == self.fals() || b == self.fals() {
            return self.fals();
        }
        if a == self.tru() {
            return b;
        }
        if b == self.tru() {
            return a;
        }
        if a == b {
            return a;
        }
        if a == b.negate() {
            return self.fals();
        }
        let c = self.fresh();
        self.sat.add_clause(vec![a.negate(), b.negate(), c]);
        self.sat.add_clause(vec![a, c.negate()]);
        self.sat.add_clause(vec![b, c.negate()]);
        c
    }

    fn gate_or(&mut self, a: Lit, b: Lit) -> Lit {
        self.gate_and(a.negate(), b.negate()).negate()
    }

    fn gate_xor(&mut self, a: Lit, b: Lit) -> Lit {
        if a == self.fals() {
            return b;
        }
        if b == self.fals() {
            return a;
        }
        if a == self.tru() {
            return b.negate();
        }
        if b == self.tru() {
            return a.negate();
        }
        if a == b {
            return self.fals();
        }
        if a == b.negate() {
            return self.tru();
        }
        let c = self.fresh();
        self.sat
            .add_clause(vec![a.negate(), b.negate(), c.negate()]);
        self.sat.add_clause(vec![a, b, c.negate()]);
        self.sat.add_clause(vec![a.negate(), b, c]);
        self.sat.add_clause(vec![a, b.negate(), c]);
        c
    }

    fn gate_mux(&mut self, c: Lit, t: Lit, e: Lit) -> Lit {
        if t == e {
            return t;
        }
        if c == self.tru() {
            return t;
        }
        if c == self.fals() {
            return e;
        }
        let o = self.fresh();
        self.sat.add_clause(vec![c.negate(), t.negate(), o]);
        self.sat.add_clause(vec![c.negate(), t, o.negate()]);
        self.sat.add_clause(vec![c, e.negate(), o]);
        self.sat.add_clause(vec![c, e, o.negate()]);
        o
    }

    fn full_adder(&mut self, a: Lit, b: Lit, cin: Lit) -> (Lit, Lit) {
        let axb = self.gate_xor(a, b);
        let sum = self.gate_xor(axb, cin);
        let c1 = self.gate_and(a, b);
        let c2 = self.gate_and(axb, cin);
        let cout = self.gate_or(c1, c2);
        (sum, cout)
    }

    fn add_bits(&mut self, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        let mut out = Vec::with_capacity(a.len());
        let mut carry = self.fals();
        for i in 0..a.len() {
            let (s, c) = self.full_adder(a[i], b[i], carry);
            out.push(s);
            carry = c;
        }
        out
    }

    fn neg_bits(&mut self, a: &[Lit]) -> Vec<Lit> {
        // two's complement: ~a + 1
        let inv: Vec<Lit> = a.iter().map(|l| l.negate()).collect();
        let mut one = vec![self.fals(); a.len()];
        one[0] = self.tru();
        self.add_bits(&inv, &one)
    }

    /// `a * c` for a constant `c`: shift-add over `c`'s set bits.
    fn mul_const_bits(&mut self, a: &[Lit], c: u64) -> Vec<Lit> {
        let w = a.len();
        let mut acc = vec![self.fals(); w];
        for i in 0..w {
            if (c >> i) & 1 == 1 {
                let mut addend = vec![self.fals(); w];
                addend[i..w].copy_from_slice(&a[..w - i]);
                acc = self.add_bits(&acc, &addend);
            }
        }
        acc
    }

    fn mul_bits(&mut self, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        let w = a.len();
        let mut acc = vec![self.fals(); w];
        for i in 0..w {
            // addend = (a << i) & b[i]
            let mut addend = vec![self.fals(); w];
            for j in 0..w - i {
                addend[i + j] = self.gate_and(a[j], b[i]);
            }
            acc = self.add_bits(&acc, &addend);
        }
        acc
    }

    /// Unsigned a < b as one literal.
    fn ult_bits(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        // MSB-first: lt = (¬a_i ∧ b_i) ∨ (a_i == b_i) ∧ lt_rest
        let mut lt = self.fals();
        for i in 0..a.len() {
            let (ai, bi) = (a[i], b[i]);
            let this_lt = self.gate_and(ai.negate(), bi);
            let eq = self.gate_xor(ai, bi).negate();
            let keep = self.gate_and(eq, lt);
            lt = self.gate_or(this_lt, keep);
        }
        lt
    }

    fn eq_bits(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        let mut acc = self.tru();
        for i in 0..a.len() {
            let eq = self.gate_xor(a[i], b[i]).negate();
            acc = self.gate_and(acc, eq);
        }
        acc
    }

    fn shift_bits(&mut self, a: &[Lit], amount: &[Lit], kind: ShiftKind) -> Vec<Lit> {
        let w = a.len();
        let stages = (usize::BITS - (w - 1).leading_zeros()) as usize; // log2ceil
        let fill = match kind {
            ShiftKind::Shl | ShiftKind::LShr => self.fals(),
            ShiftKind::AShr => a[w - 1],
        };
        let mut cur: Vec<Lit> = a.to_vec();
        for s in 0..stages {
            let k = 1usize << s;
            let sel = amount.get(s).copied().unwrap_or(self.fals());
            let mut next = Vec::with_capacity(w);
            for i in 0..w {
                let shifted = match kind {
                    ShiftKind::Shl => {
                        if i >= k {
                            cur[i - k]
                        } else {
                            self.fals()
                        }
                    }
                    ShiftKind::LShr | ShiftKind::AShr => {
                        if i + k < w {
                            cur[i + k]
                        } else {
                            fill
                        }
                    }
                };
                next.push(self.gate_mux(sel, shifted, cur[i]));
            }
            cur = next;
        }
        cur
    }

    // ---- memory ---------------------------------------------------------

    /// One byte read `mem[addr]` where `mem` is a term of memory sort.
    fn byte_read(&mut self, pool: &TermPool, mem: TermId, addr: &[Lit]) -> Vec<Lit> {
        debug_assert_eq!(addr.len(), 64);
        let key = (mem, addr.to_vec());
        if let Some(bits) = self.byte_memo.get(&key) {
            return bits.clone();
        }
        let out = self.byte_read_uncached(pool, mem, addr);
        self.byte_memo.insert(key, out.clone());
        out
    }

    fn byte_read_uncached(&mut self, pool: &TermPool, mem: TermId, addr: &[Lit]) -> Vec<Lit> {
        match pool.data(mem).op {
            TermOp::Store => {
                let args = pool.data(mem).args.clone();
                let (inner, saddr_t, sval_t) = (args[0], args[1], args[2]);
                let saddr = self.blast(pool, saddr_t);
                let sval = self.blast(pool, sval_t);
                let nbytes = (pool.width(sval_t) / 8).max(1);
                let mut out = self.byte_read(pool, inner, addr);
                for k in 0..nbytes {
                    // target = saddr + k
                    let kconst = self.const_bits(u64::from(k), 64);
                    let target = self.add_bits(&saddr, &kconst);
                    let hit = self.eq_bits(addr, &target);
                    let byte: Vec<Lit> = (0..8)
                        .map(|j| {
                            sval.get((k * 8 + j) as usize)
                                .copied()
                                .unwrap_or(self.fals())
                        })
                        .collect();
                    out = (0..8)
                        .map(|j| self.gate_mux(hit, byte[j], out[j]))
                        .collect();
                }
                out
            }
            TermOp::MemVar(id) => {
                // Ackermann: fresh byte, congruent with previous reads of
                // the same base memory.
                let fresh: Vec<Lit> = (0..8).map(|_| self.fresh()).collect();
                let prev = self.mem_reads.entry(id).or_default().clone();
                for (paddr, pval) in prev {
                    let same = self.eq_bits(addr, &paddr);
                    for j in 0..8 {
                        let eqv = self.gate_xor(fresh[j], pval[j]).negate();
                        // same -> eqv
                        let cl = vec![same.negate(), eqv];
                        self.sat.add_clause(cl);
                    }
                }
                self.mem_reads
                    .get_mut(&id)
                    .expect("entry")
                    .push((addr.to_vec(), fresh.clone()));
                fresh
            }
            TermOp::Ite => {
                let args = pool.data(mem).args.clone();
                let c = self.blast(pool, args[0])[0];
                let t = self.byte_read(pool, args[1], addr);
                let e = self.byte_read(pool, args[2], addr);
                (0..8).map(|j| self.gate_mux(c, t[j], e[j])).collect()
            }
            _ => panic!("byte_read of non-memory term"),
        }
    }

    fn const_bits(&mut self, v: u64, w: u32) -> Vec<Lit> {
        (0..w)
            .map(|i| {
                if (v >> i) & 1 == 1 {
                    self.tru()
                } else {
                    self.fals()
                }
            })
            .collect()
    }

    // ---- terms ---------------------------------------------------------

    /// Bit-blasts a bitvector term, returning its bits LSB-first.
    ///
    /// Encodings are memoized by `TermId`; the pool must be the same
    /// (append-only) pool across all calls on one blaster.
    pub fn blast(&mut self, pool: &TermPool, t: TermId) -> Vec<Lit> {
        if let Some(b) = self.bits.get(&t) {
            self.blast_hits += 1;
            return b.clone();
        }
        self.blast_misses += 1;
        let data = pool.data(t).clone();
        let w = data.width;
        let out: Vec<Lit> = match data.op {
            TermOp::Const(v) => self.const_bits(v, w),
            TermOp::Var(id) => {
                if let Some(b) = self.var_bits.get(&id) {
                    b[..w as usize].to_vec()
                } else {
                    let b: Vec<Lit> = (0..w).map(|_| self.fresh()).collect();
                    self.var_bits.insert(id, b.clone());
                    b
                }
            }
            TermOp::MemVar(_) | TermOp::Store => {
                panic!("memory-sorted terms have no bit representation")
            }
            TermOp::Add => {
                let mut acc = self.blast(pool, data.args[0]);
                for a in &data.args[1..] {
                    let b = self.blast(pool, *a);
                    acc = self.add_bits(&acc, &b);
                }
                acc
            }
            TermOp::Mul => {
                // Multiplication by the all-ones constant is negation —
                // cheaper than a full multiplier and very common because
                // the normalizer encodes subtraction that way.
                if data.args.len() == 2
                    && pool.as_const(data.args[0]) == Some(crate::term::mask(w))
                {
                    let b = self.blast(pool, data.args[1]);
                    self.neg_bits(&b)
                } else {
                    let mut acc = self.blast(pool, data.args[0]);
                    let mut acc_const = pool.as_const(data.args[0]);
                    for a in &data.args[1..] {
                        // Constant multiplicand: shift-add over its set
                        // bits only (the normalizer keeps at most one
                        // constant, in front).
                        if let Some(c) = acc_const.take() {
                            let b = self.blast(pool, *a);
                            acc = self.mul_const_bits(&b, c);
                        } else {
                            let b = self.blast(pool, *a);
                            acc = self.mul_bits(&acc, &b);
                        }
                    }
                    acc
                }
            }
            TermOp::And | TermOp::Or | TermOp::Xor => {
                let mut acc = self.blast(pool, data.args[0]);
                for a in &data.args[1..] {
                    let b = self.blast(pool, *a);
                    acc = (0..w as usize)
                        .map(|i| match data.op {
                            TermOp::And => self.gate_and(acc[i], b[i]),
                            TermOp::Or => self.gate_or(acc[i], b[i]),
                            _ => self.gate_xor(acc[i], b[i]),
                        })
                        .collect();
                }
                acc
            }
            TermOp::Not => {
                let a = self.blast(pool, data.args[0]);
                a.iter().map(|l| l.negate()).collect()
            }
            TermOp::Shl | TermOp::LShr | TermOp::AShr => {
                let a = self.blast(pool, data.args[0]);
                let amt = self.blast(pool, data.args[1]);
                // Amount is taken modulo the width (widths are powers of
                // two here, so the low log2(w) bits suffice).
                let kind = match data.op {
                    TermOp::Shl => ShiftKind::Shl,
                    TermOp::LShr => ShiftKind::LShr,
                    _ => ShiftKind::AShr,
                };
                self.shift_bits(&a, &amt, kind)
            }
            TermOp::Eq => {
                let aw = pool.width(data.args[0]);
                if aw == 0 {
                    panic!("memory equality is not bit-blastable");
                }
                let a = self.blast(pool, data.args[0]);
                let b = self.blast(pool, data.args[1]);
                vec![self.eq_bits(&a, &b)]
            }
            TermOp::Ult => {
                let a = self.blast(pool, data.args[0]);
                let b = self.blast(pool, data.args[1]);
                // ult_bits expects MSB-first traversal; reverse.
                let ar: Vec<Lit> = a.iter().rev().copied().collect();
                let br: Vec<Lit> = b.iter().rev().copied().collect();
                vec![self.ult_bits(&ar, &br)]
            }
            TermOp::Slt => {
                let a = self.blast(pool, data.args[0]);
                let b = self.blast(pool, data.args[1]);
                let n = a.len();
                let (sa, sb) = (a[n - 1], b[n - 1]);
                let ar: Vec<Lit> = a.iter().rev().copied().collect();
                let br: Vec<Lit> = b.iter().rev().copied().collect();
                let ult = self.ult_bits(&ar, &br);
                // slt = (sa ∧ ¬sb) ∨ ((sa == sb) ∧ ult)
                let diff_neg = self.gate_and(sa, sb.negate());
                let same = self.gate_xor(sa, sb).negate();
                let same_lt = self.gate_and(same, ult);
                vec![self.gate_or(diff_neg, same_lt)]
            }
            TermOp::Ite => {
                let c = self.blast(pool, data.args[0])[0];
                let a = self.blast(pool, data.args[1]);
                let b = self.blast(pool, data.args[2]);
                (0..w as usize)
                    .map(|i| self.gate_mux(c, a[i], b[i]))
                    .collect()
            }
            TermOp::Zext => {
                let mut a = self.blast(pool, data.args[0]);
                while a.len() < w as usize {
                    a.push(self.fals());
                }
                a
            }
            TermOp::Sext => {
                let mut a = self.blast(pool, data.args[0]);
                let s = *a.last().expect("non-empty");
                while a.len() < w as usize {
                    a.push(s);
                }
                a
            }
            TermOp::Extract(hi, lo) => {
                let a = self.blast(pool, data.args[0]);
                a[lo as usize..=hi as usize].to_vec()
            }
            TermOp::Concat => {
                let hi = self.blast(pool, data.args[0]);
                let mut lo = self.blast(pool, data.args[1]);
                lo.extend(hi);
                lo
            }
            TermOp::Load => {
                let addr = self.blast(pool, data.args[1]);
                let mut out = Vec::with_capacity(w as usize);
                for k in 0..(w / 8).max(1) {
                    let kc = self.const_bits(u64::from(k), 64);
                    let a = self.add_bits(&addr, &kc);
                    out.extend(self.byte_read(pool, data.args[0], &a));
                }
                out.truncate(w as usize);
                out
            }
        };
        debug_assert_eq!(out.len(), w as usize, "width mismatch for {:?}", data.op);
        self.bits.insert(t, out.clone());
        out
    }

    /// The (memoized) comparator literal asserting `a == b` bitwise.
    pub fn eq_lit(&mut self, pool: &TermPool, a: TermId, b: TermId) -> Lit {
        let key = if a < b { (a, b) } else { (b, a) };
        if let Some(&l) = self.eq_memo.get(&key) {
            return l;
        }
        let ab = self.blast(pool, key.0);
        let bb = self.blast(pool, key.1);
        let eq = self.eq_bits(&ab, &bb);
        self.eq_memo.insert(key, eq);
        eq
    }

    /// Checks the validity of `a == b` (same width) with a conflict budget:
    /// `Some(true)` = valid, `Some(false)` = counterexample, `None` =
    /// budget exhausted.
    pub fn prove_equal(&mut self, pool: &TermPool, a: TermId, b: TermId, budget: u64) -> Option<bool> {
        let eq = self.eq_lit(pool, a, b);
        match self.sat.solve_with_budget(&[eq.negate()], budget) {
            SatResult::Unsat => Some(true),
            SatResult::Sat => Some(false),
            SatResult::Unknown => None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShiftKind {
    Shl,
    LShr,
    AShr,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval, Assignment, CVal};
    use crate::term::TermPool;

    /// Builds a raw (non-normalizing) binary term for testing the blaster
    /// against the evaluator without normalization collapsing both sides.
    fn check_equiv_decision(pool: &mut TermPool, a: TermId, b: TermId, expect_equal: bool) {
        let mut bb = BitBlaster::new();
        let got = bb.prove_equal(pool, a, b, 1_000_000).expect("within budget");
        assert_eq!(got, expect_equal);
    }

    #[test]
    fn add_commutes_under_sat() {
        let mut p = TermPool::new();
        let x = p.var(0, 16);
        let y = p.var(1, 16);
        // Defeat normalization by wrapping one side in extract(concat).
        let xy = p.add2(x, y);
        let z = p.constant(0, 16);
        let yx0 = p.add2(y, x);
        let yx = p.add2(yx0, z);
        assert_eq!(xy, yx, "normalizer should already identify these");
        check_equiv_decision(&mut p, xy, yx, true);
    }

    #[test]
    fn sat_proves_nontrivial_identity() {
        // x ^ y == (x | y) - (x & y) — not closed by the normalizer.
        let mut p = TermPool::new();
        let x = p.var(0, 16);
        let y = p.var(1, 16);
        let lhs = p.xor(vec![x, y]);
        let or = p.or(vec![x, y]);
        let and = p.and(vec![x, y]);
        let rhs = p.sub(or, and);
        assert_ne!(lhs, rhs, "normalizer does not know this identity");
        check_equiv_decision(&mut p, lhs, rhs, true);
    }

    #[test]
    fn sat_refutes_near_identity() {
        // x + 1 != x + 2.
        let mut p = TermPool::new();
        let x = p.var(0, 16);
        let c1 = p.constant(1, 16);
        let c2 = p.constant(2, 16);
        let a = p.add2(x, c1);
        let b = p.add2(x, c2);
        check_equiv_decision(&mut p, a, b, false);
    }

    #[test]
    fn mul_against_shift_add() {
        // 7*x == (x << 3) - x, via SAT on 12-bit vectors.
        let mut p = TermPool::new();
        let x = p.var(0, 12);
        let seven = p.constant(7, 12);
        let lhs = p.mul(vec![seven, x]);
        let eight = p.constant(8, 12);
        let x8 = p.mul(vec![eight, x]);
        let rhs = p.sub(x8, x);
        // Normalizer gets this via linear combination already:
        assert_eq!(lhs, rhs);
        check_equiv_decision(&mut p, lhs, rhs, true);
    }

    #[test]
    fn comparisons_blast_correctly() {
        let mut p = TermPool::new();
        let x = p.var(0, 8);
        let c = p.constant(0x80, 8);
        let slt = p.slt(x, c);
        // x <s 0x80 (i.e. x >= 0 signed ... 0x80 is -128; nothing is < -128)
        let f = p.constant(0, 1);
        check_equiv_decision(&mut p, slt, f, true);
        let ult = p.ult(x, c);
        check_equiv_decision(&mut p, ult, f, false);
    }

    #[test]
    fn dynamic_shift_matches_eval() {
        let mut p = TermPool::new();
        let x = p.var(0, 16);
        let s = p.var(1, 16);
        let shifted = {
            let m = p.constant(15, 16);
            let sm = p.and(vec![s, m]);
            p.lshr(x, sm)
        };
        // Compare SAT model against the evaluator on a few assignments.
        for round in 0..4 {
            let a = Assignment::random(round);
            let want = match eval(&p, shifted, &a) {
                CVal::Bv(v) => v,
                CVal::Mem(_) => unreachable!(),
            };
            let c = p.constant(want, 16);
            let mut bb = BitBlaster::new();
            // Pin the variables to the assignment values via constants.
            let xv = match eval(&p, x, &a) {
                CVal::Bv(v) => v,
                CVal::Mem(_) => unreachable!(),
            };
            let sv = match eval(&p, s, &a) {
                CVal::Bv(v) => v,
                CVal::Mem(_) => unreachable!(),
            };
            let xb = bb.blast(&p, x);
            let xc = bb.const_bits(xv, 16);
            for (l, cbit) in xb.iter().zip(&xc) {
                bb.sat.add_clause(vec![l.negate(), *cbit]);
                bb.sat.add_clause(vec![*l, cbit.negate()]);
            }
            let sb = bb.blast(&p, s);
            let sc = bb.const_bits(sv, 16);
            for (l, cbit) in sb.iter().zip(&sc) {
                bb.sat.add_clause(vec![l.negate(), *cbit]);
                bb.sat.add_clause(vec![*l, cbit.negate()]);
            }
            let got = bb.prove_equal(&p, shifted, c, 1_000_000).expect("budget");
            assert!(got, "round {round}: shift blasting disagrees with eval");
        }
    }

    #[test]
    fn load_store_forwarding_via_sat() {
        // load(store(m, a, v), a) == v even when addresses are symbolic.
        let mut p = TermPool::new();
        let m = p.mem_var(0);
        let a = p.var(0, 64);
        let v = p.var(1, 32);
        let m2 = p.store(m, a, v);
        // Defeat the normalizer's syntactic forwarding with `a + 0`... the
        // normalizer folds that too, so just confirm the already-forwarded
        // form and a byte-split read.
        let lo = p.load(m2, a, 8);
        let vlo = p.extract(v, 7, 0);
        check_equiv_decision(&mut p, lo, vlo, true);
    }

    #[test]
    fn aliasing_load_is_not_provably_old_value() {
        // load(store(m, a, v), b) == load(m, b) must NOT be valid (a may
        // alias b).
        let mut p = TermPool::new();
        let m = p.mem_var(0);
        let a = p.var(0, 64);
        let b = p.var(1, 64);
        let v = p.var(2, 8);
        let m2 = p.store(m, a, v);
        let l1 = p.load(m2, b, 8);
        let l2 = p.load(m, b, 8);
        check_equiv_decision(&mut p, l1, l2, false);
    }

    #[test]
    fn mixed_width_store_load() {
        // Store 32 bits, load the second byte: equals extract(v, 15, 8).
        let mut p = TermPool::new();
        let m = p.mem_var(0);
        let a = p.var(0, 64);
        let v = p.var(1, 32);
        let m2 = p.store(m, a, v);
        let one = p.constant(1, 64);
        let a1 = p.add2(a, one);
        let byte = p.load(m2, a1, 8);
        let want = p.extract(v, 15, 8);
        check_equiv_decision(&mut p, byte, want, true);
    }

    #[test]
    fn blast_cache_counters_track_sub_dag_sharing() {
        let mut p = TermPool::new();
        let x = p.var(0, 16);
        let y = p.var(1, 16);
        let xor = p.xor(vec![x, y]);
        let mut bb = BitBlaster::new();
        bb.blast(&p, xor);
        let misses = bb.blast_misses;
        assert!(misses >= 3, "x, y and the xor all built fresh");
        bb.blast(&p, xor);
        assert_eq!(bb.blast_misses, misses, "second blast is a pure hit");
        assert!(bb.blast_hits >= 1);
    }
}
