//! Hash-consed bitvector terms with normalizing smart constructors.
//!
//! Every construction runs light algebraic normalization (constant
//! folding, flattening and sorting of associative-commutative operators,
//! linear-combination canonicalization of sums, strength-reduced shifts),
//! so that the syntactically different idioms the synthetic compilers emit
//! for one computation — `lea r,[r+r*4]` vs `imul r,5`, `add`-chains vs
//! `lea`, `xor r,r` vs `mov r,0` — meet in one canonical form. What
//! normalization cannot close, the bit-blaster (see `bitblast`) decides.

use std::collections::HashMap;

/// A term handle (index into the pool). Equal handles ⇔ identical terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

impl TermId {
    /// The index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Operator of a term node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TermOp {
    /// A free bitvector variable.
    Var(u32),
    /// A free memory-array variable.
    MemVar(u32),
    /// A constant (value stored masked to the width).
    Const(u64),
    /// N-ary wrapping sum (canonical linear combination).
    Add,
    /// N-ary wrapping product (leading constant coefficient if any).
    Mul,
    /// N-ary bitwise and.
    And,
    /// N-ary bitwise or.
    Or,
    /// N-ary bitwise xor.
    Xor,
    /// Bitwise complement.
    Not,
    /// Left shift by a (non-constant) amount, modulo width.
    Shl,
    /// Logical right shift, modulo width.
    LShr,
    /// Arithmetic right shift, modulo width.
    AShr,
    /// Equality (width-1 result).
    Eq,
    /// Unsigned less-than (width-1 result).
    Ult,
    /// Signed less-than (width-1 result).
    Slt,
    /// If-then-else (condition is width-1).
    Ite,
    /// Zero-extension.
    Zext,
    /// Sign-extension.
    Sext,
    /// Bit extraction `hi..=lo`.
    Extract(u32, u32),
    /// Concatenation of two bitvectors (first arg is the high part).
    Concat,
    /// `load(mem, addr)` of `width` bits.
    Load,
    /// `store(mem, addr, value)` → memory (width of the stored value is
    /// the value argument's width).
    Store,
}

/// The interned representation of one node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TermData {
    /// Operator.
    pub op: TermOp,
    /// Argument handles.
    pub args: Vec<TermId>,
    /// Result width in bits; `0` denotes the memory sort.
    pub width: u32,
}

/// Masks to `w` bits.
pub fn mask(w: u32) -> u64 {
    if w >= 64 {
        u64::MAX
    } else {
        (1u64 << w) - 1
    }
}

fn sext64(v: u64, w: u32) -> i64 {
    if w >= 64 {
        v as i64
    } else {
        ((v << (64 - w)) as i64) >> (64 - w)
    }
}

/// The hash-consing term pool.
#[derive(Debug, Default)]
pub struct TermPool {
    terms: Vec<TermData>,
    dedup: HashMap<TermData, TermId>,
}

impl TermPool {
    /// Creates an empty pool.
    pub fn new() -> TermPool {
        TermPool::default()
    }

    /// The node behind a handle.
    pub fn data(&self, t: TermId) -> &TermData {
        &self.terms[t.index()]
    }

    /// Result width of `t` (0 for memory).
    pub fn width(&self, t: TermId) -> u32 {
        self.data(t).width
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True if the pool has no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    fn intern(&mut self, data: TermData) -> TermId {
        if let Some(&id) = self.dedup.get(&data) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push(data.clone());
        self.dedup.insert(data, id);
        id
    }

    /// Constant of `value` at `width`.
    pub fn constant(&mut self, value: u64, width: u32) -> TermId {
        self.intern(TermData {
            op: TermOp::Const(value & mask(width)),
            args: vec![],
            width,
        })
    }

    /// Free variable `id` at `width`.
    pub fn var(&mut self, id: u32, width: u32) -> TermId {
        self.intern(TermData {
            op: TermOp::Var(id),
            args: vec![],
            width,
        })
    }

    /// Free memory variable.
    pub fn mem_var(&mut self, id: u32) -> TermId {
        self.intern(TermData {
            op: TermOp::MemVar(id),
            args: vec![],
            width: 0,
        })
    }

    /// The constant value of `t`, if it is a constant.
    pub fn as_const(&self, t: TermId) -> Option<u64> {
        match self.data(t).op {
            TermOp::Const(v) => Some(v),
            _ => None,
        }
    }

    fn bool_const(&mut self, b: bool) -> TermId {
        self.constant(u64::from(b), 1)
    }

    // ---- sums (canonical linear combinations) --------------------------

    /// `a + b` (wrapping at their shared width).
    pub fn add2(&mut self, a: TermId, b: TermId) -> TermId {
        self.add(vec![a, b])
    }

    /// N-ary sum: flattens nested sums, folds constants, merges repeated
    /// cores into coefficients (`x + x → 2*x`).
    pub fn add(&mut self, args: Vec<TermId>) -> TermId {
        let w = self.width(args[0]);
        let mut constant = 0u64;
        // core term -> coefficient
        let mut coeffs: Vec<(TermId, u64)> = Vec::new();
        let mut stack = args;
        while let Some(t) = stack.pop() {
            match &self.data(t).op {
                TermOp::Const(v) => constant = constant.wrapping_add(*v) & mask(w),
                TermOp::Add => stack.extend(self.data(t).args.clone()),
                TermOp::Mul => {
                    // Split a leading constant coefficient.
                    let margs = self.data(t).args.clone();
                    if let Some(c) = self.as_const(margs[0]) {
                        let core = if margs.len() == 2 {
                            margs[1]
                        } else {
                            self.mul(margs[1..].to_vec())
                        };
                        bump(&mut coeffs, core, c, w);
                    } else {
                        bump(&mut coeffs, t, 1, w);
                    }
                }
                _ => bump(&mut coeffs, t, 1, w),
            }
        }
        coeffs.retain(|(_, c)| *c != 0);
        coeffs.sort_by_key(|(t, _)| *t);
        let mut parts: Vec<TermId> = Vec::with_capacity(coeffs.len() + 1);
        for (core, c) in coeffs {
            if c == 1 {
                parts.push(core);
            } else {
                let cc = self.constant(c, w);
                parts.push(self.mul(vec![cc, core]));
            }
        }
        if constant != 0 || parts.is_empty() {
            let c = self.constant(constant, w);
            parts.insert(0, c);
        }
        if parts.len() == 1 {
            return parts[0];
        }
        self.intern(TermData {
            op: TermOp::Add,
            args: parts,
            width: w,
        })
    }

    /// `a - b`.
    pub fn sub(&mut self, a: TermId, b: TermId) -> TermId {
        let nb = self.neg(b);
        self.add(vec![a, nb])
    }

    /// Two's-complement negation (canonicalized to `-1 * t`).
    pub fn neg(&mut self, t: TermId) -> TermId {
        let w = self.width(t);
        let m1 = self.constant(u64::MAX, w);
        self.mul(vec![m1, t])
    }

    /// N-ary product: flattens, folds constants to a single leading
    /// coefficient, sorts the rest.
    pub fn mul(&mut self, args: Vec<TermId>) -> TermId {
        let w = self.width(args[0]);
        let mut constant = 1u64 & mask(w);
        if w >= 1 {
            constant = 1;
        }
        let mut cores: Vec<TermId> = Vec::new();
        let mut stack = args;
        while let Some(t) = stack.pop() {
            match &self.data(t).op {
                TermOp::Const(v) => constant = constant.wrapping_mul(*v) & mask(w),
                TermOp::Mul => stack.extend(self.data(t).args.clone()),
                _ => cores.push(t),
            }
        }
        if constant == 0 {
            return self.constant(0, w);
        }
        cores.sort();
        if cores.is_empty() {
            return self.constant(constant, w);
        }
        let mut parts = cores;
        if constant != 1 {
            let c = self.constant(constant, w);
            parts.insert(0, c);
        }
        if parts.len() == 1 {
            return parts[0];
        }
        // Distribute a constant over a sum: c*(a+b) → c*a + c*b, which
        // lets linear combinations merge across lea/imul idioms.
        if parts.len() == 2 {
            if let (Some(c), TermOp::Add) = (self.as_const(parts[0]), self.data(parts[1]).op) {
                let addends = self.data(parts[1]).args.clone();
                let distributed: Vec<TermId> = addends
                    .into_iter()
                    .map(|t| {
                        let cc = self.constant(c, w);
                        self.mul(vec![cc, t])
                    })
                    .collect();
                return self.add(distributed);
            }
        }
        self.intern(TermData {
            op: TermOp::Mul,
            args: parts,
            width: w,
        })
    }

    // ---- bitwise --------------------------------------------------------

    fn acc_bitwise(
        &mut self,
        op: TermOp,
        args: Vec<TermId>,
        ident: u64,
        absorb: Option<u64>,
        fold: fn(u64, u64) -> u64,
    ) -> TermId {
        let w = self.width(args[0]);
        let ident = ident & mask(w);
        let absorb = absorb.map(|a| a & mask(w));
        let mut constant = ident;
        let mut cores: Vec<TermId> = Vec::new();
        let mut stack = args;
        while let Some(t) = stack.pop() {
            match &self.data(t).op {
                TermOp::Const(v) => constant = fold(constant, *v) & mask(w),
                o if *o == op => stack.extend(self.data(t).args.clone()),
                _ => cores.push(t),
            }
        }
        cores.sort();
        if op == TermOp::Xor {
            // x ^ x cancels pairwise.
            let mut out: Vec<TermId> = Vec::new();
            for t in cores {
                if out.last() == Some(&t) {
                    out.pop();
                } else {
                    out.push(t);
                }
            }
            cores = out;
        } else {
            cores.dedup(); // x & x = x, x | x = x
        }
        if Some(constant) == absorb {
            return self.constant(constant, w);
        }
        if cores.is_empty() {
            return self.constant(constant, w);
        }
        let mut parts = cores;
        if constant != ident {
            let c = self.constant(constant, w);
            parts.insert(0, c);
        }
        if parts.len() == 1 {
            return parts[0];
        }
        self.intern(TermData {
            op,
            args: parts,
            width: w,
        })
    }

    /// N-ary bitwise and.
    pub fn and(&mut self, args: Vec<TermId>) -> TermId {
        self.acc_bitwise(TermOp::And, args, u64::MAX, Some(0), |a, b| a & b)
    }

    /// N-ary bitwise or.
    pub fn or(&mut self, args: Vec<TermId>) -> TermId {
        self.acc_bitwise(TermOp::Or, args, 0, Some(u64::MAX), |a, b| a | b)
    }

    /// N-ary bitwise xor (no absorbing element; an all-ones constant
    /// folds into a complement of the rest).
    pub fn xor(&mut self, args: Vec<TermId>) -> TermId {
        let w = self.width(args[0]);
        let r = self.acc_bitwise(TermOp::Xor, args, 0, None, |a, b| a ^ b);
        // Canonicalize `x ^ 1...1` to `not(x)`.
        if let TermOp::Xor = self.data(r).op {
            let rargs = self.data(r).args.clone();
            if self.as_const(rargs[0]) == Some(mask(w)) {
                let rest = if rargs.len() == 2 {
                    rargs[1]
                } else {
                    self.xor(rargs[1..].to_vec())
                };
                return self.not(rest);
            }
        }
        r
    }

    /// Bitwise complement.
    pub fn not(&mut self, t: TermId) -> TermId {
        let w = self.width(t);
        match &self.data(t).op {
            TermOp::Const(v) => self.constant(!v, w),
            TermOp::Not => self.data(t).args[0],
            _ => self.intern(TermData {
                op: TermOp::Not,
                args: vec![t],
                width: w,
            }),
        }
    }

    // ---- shifts ---------------------------------------------------------

    /// Left shift (amount modulo width).
    pub fn shl(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.width(a);
        if let Some(k) = self.as_const(b) {
            let k = (k % u64::from(w)) as u32;
            if k == 0 {
                return a;
            }
            // Strength-reduce to a multiplication so `shl` and `imul`
            // idioms normalize identically.
            let c = self.constant(1u64 << k, w);
            return self.mul(vec![c, a]);
        }
        self.intern(TermData {
            op: TermOp::Shl,
            args: vec![a, b],
            width: w,
        })
    }

    /// Logical right shift (amount modulo width).
    pub fn lshr(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.width(a);
        if let Some(k) = self.as_const(b) {
            let k = (k % u64::from(w)) as u32;
            if k == 0 {
                return a;
            }
            if let Some(v) = self.as_const(a) {
                return self.constant(v >> k, w);
            }
        }
        self.intern(TermData {
            op: TermOp::LShr,
            args: vec![a, b],
            width: w,
        })
    }

    /// Arithmetic right shift (amount modulo width).
    pub fn ashr(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.width(a);
        if let Some(k) = self.as_const(b) {
            let k = (k % u64::from(w)) as u32;
            if k == 0 {
                return a;
            }
            if let Some(v) = self.as_const(a) {
                return self.constant((sext64(v, w) >> k) as u64, w);
            }
        }
        self.intern(TermData {
            op: TermOp::AShr,
            args: vec![a, b],
            width: w,
        })
    }

    // ---- predicates -----------------------------------------------------

    /// Equality.
    pub fn eq(&mut self, a: TermId, b: TermId) -> TermId {
        if a == b {
            return self.bool_const(true);
        }
        if let (Some(x), Some(y)) = (self.as_const(a), self.as_const(b)) {
            return self.bool_const(x == y);
        }
        let (a, b) = if a < b { (a, b) } else { (b, a) };
        self.intern(TermData {
            op: TermOp::Eq,
            args: vec![a, b],
            width: 1,
        })
    }

    /// Unsigned less-than.
    pub fn ult(&mut self, a: TermId, b: TermId) -> TermId {
        if a == b {
            return self.bool_const(false);
        }
        if let (Some(x), Some(y)) = (self.as_const(a), self.as_const(b)) {
            return self.bool_const(x < y);
        }
        self.intern(TermData {
            op: TermOp::Ult,
            args: vec![a, b],
            width: 1,
        })
    }

    /// Signed less-than.
    pub fn slt(&mut self, a: TermId, b: TermId) -> TermId {
        if a == b {
            return self.bool_const(false);
        }
        let w = self.width(a);
        if let (Some(x), Some(y)) = (self.as_const(a), self.as_const(b)) {
            return self.bool_const(sext64(x, w) < sext64(y, w));
        }
        self.intern(TermData {
            op: TermOp::Slt,
            args: vec![a, b],
            width: 1,
        })
    }

    /// Unsigned less-or-equal, via `¬(b < a)`.
    pub fn ule(&mut self, a: TermId, b: TermId) -> TermId {
        let lt = self.ult(b, a);
        self.not(lt)
    }

    /// Signed less-or-equal, via `¬(b <s a)`.
    pub fn sle(&mut self, a: TermId, b: TermId) -> TermId {
        let lt = self.slt(b, a);
        self.not(lt)
    }

    /// If-then-else.
    pub fn ite(&mut self, c: TermId, t: TermId, e: TermId) -> TermId {
        if t == e {
            return t;
        }
        if let Some(v) = self.as_const(c) {
            return if v != 0 { t } else { e };
        }
        let w = self.width(t);
        self.intern(TermData {
            op: TermOp::Ite,
            args: vec![c, t, e],
            width: w,
        })
    }

    // ---- width changes ---------------------------------------------------

    /// Zero-extension to `to` bits.
    pub fn zext(&mut self, t: TermId, to: u32) -> TermId {
        let w = self.width(t);
        if w == to {
            return t;
        }
        if let Some(v) = self.as_const(t) {
            return self.constant(v, to);
        }
        if let TermOp::Zext = self.data(t).op {
            let inner = self.data(t).args[0];
            return self.zext(inner, to);
        }
        self.intern(TermData {
            op: TermOp::Zext,
            args: vec![t],
            width: to,
        })
    }

    /// Sign-extension to `to` bits.
    pub fn sext(&mut self, t: TermId, to: u32) -> TermId {
        let w = self.width(t);
        if w == to {
            return t;
        }
        if let Some(v) = self.as_const(t) {
            return self.constant(sext64(v, w) as u64, to);
        }
        self.intern(TermData {
            op: TermOp::Sext,
            args: vec![t],
            width: to,
        })
    }

    /// Extraction of bits `hi..=lo`.
    pub fn extract(&mut self, t: TermId, hi: u32, lo: u32) -> TermId {
        let w = self.width(t);
        let out_w = hi - lo + 1;
        if lo == 0 && out_w == w {
            return t;
        }
        if let Some(v) = self.as_const(t) {
            return self.constant(v >> lo, out_w);
        }
        match self.data(t).op {
            TermOp::Zext => {
                let inner = self.data(t).args[0];
                let iw = self.width(inner);
                if hi < iw {
                    return self.extract(inner, hi, lo);
                }
                if lo >= iw {
                    return self.constant(0, out_w);
                }
                // Straddles: extract the live part and zero-extend.
                let live = self.extract(inner, iw - 1, lo);
                return self.zext(live, out_w);
            }
            TermOp::Extract(_, ilo) => {
                let inner = self.data(t).args[0];
                return self.extract(inner, ilo + hi, ilo + lo);
            }
            TermOp::Concat => {
                let (hi_part, lo_part) = (self.data(t).args[0], self.data(t).args[1]);
                let lo_w = self.width(lo_part);
                if hi < lo_w {
                    return self.extract(lo_part, hi, lo);
                }
                if lo >= lo_w {
                    return self.extract(hi_part, hi - lo_w, lo - lo_w);
                }
            }
            _ => {}
        }
        self.intern(TermData {
            op: TermOp::Extract(hi, lo),
            args: vec![t],
            width: out_w,
        })
    }

    /// Concatenation (`hi ++ lo`).
    pub fn concat(&mut self, hi: TermId, lo: TermId) -> TermId {
        let w = self.width(hi) + self.width(lo);
        if let (Some(h), Some(l)) = (self.as_const(hi), self.as_const(lo)) {
            let lw = self.width(lo);
            return self.constant((h << lw) | l, w);
        }
        // Merge adjacent extracts of the same base: x[63:8] ++ x[7:0] = x.
        if let (TermOp::Extract(hh, hl), TermOp::Extract(lh, ll)) =
            (self.data(hi).op, self.data(lo).op)
        {
            let (bh, bl) = (self.data(hi).args[0], self.data(lo).args[0]);
            if bh == bl && hl == lh + 1 {
                return self.extract(bh, hh, ll);
            }
        }
        // Zero high part of a zero-extended value: 0 ++ x = zext(x).
        if self.as_const(hi) == Some(0) {
            return self.zext(lo, w);
        }
        self.intern(TermData {
            op: TermOp::Concat,
            args: vec![hi, lo],
            width: w,
        })
    }

    // ---- memory -----------------------------------------------------------

    /// `load(mem, addr)` of `width` bits; sees through store chains when
    /// the addresses are syntactically decidable.
    pub fn load(&mut self, mem: TermId, addr: TermId, width: u32) -> TermId {
        if let TermOp::Store = self.data(mem).op {
            let sargs = self.data(mem).args.clone();
            let (smem, saddr, sval) = (sargs[0], sargs[1], sargs[2]);
            let sw = self.width(sval);
            if saddr == addr && sw == width {
                return sval;
            }
            // Definitely-disjoint constant ranges skip the store.
            if let (Some(a), Some(b)) = (self.as_const(addr), self.as_const(saddr)) {
                let (la, lb) = (u64::from(width / 8), u64::from(sw / 8));
                let disjoint = a.wrapping_add(la) <= b || b.wrapping_add(lb) <= a;
                // Only valid without wraparound; require both ends sane.
                if disjoint && a.checked_add(la).is_some() && b.checked_add(lb).is_some() {
                    return self.load(smem, addr, width);
                }
            }
        }
        self.intern(TermData {
            op: TermOp::Load,
            args: vec![mem, addr],
            width,
        })
    }

    /// `store(mem, addr, value)`.
    pub fn store(&mut self, mem: TermId, addr: TermId, value: TermId) -> TermId {
        // Same-address same-width overwrite supersedes the inner store.
        if let TermOp::Store = self.data(mem).op {
            let sargs = self.data(mem).args.clone();
            if sargs[1] == addr && self.width(sargs[2]) == self.width(value) {
                return self.store(sargs[0], addr, value);
            }
        }
        self.intern(TermData {
            op: TermOp::Store,
            args: vec![mem, addr, value],
            width: 0,
        })
    }

    /// The set of free variables (bitvector and memory) under `t`.
    pub fn free_vars(&self, t: TermId) -> Vec<TermId> {
        let mut seen = vec![false; self.terms.len()];
        let mut out = Vec::new();
        let mut stack = vec![t];
        while let Some(x) = stack.pop() {
            if seen[x.index()] {
                continue;
            }
            seen[x.index()] = true;
            match self.data(x).op {
                TermOp::Var(_) | TermOp::MemVar(_) => out.push(x),
                _ => stack.extend(self.data(x).args.iter().copied()),
            }
        }
        out.sort();
        out
    }

    /// Number of nodes in the DAG rooted at `t`.
    pub fn dag_size(&self, t: TermId) -> usize {
        let mut seen = vec![false; self.terms.len()];
        let mut n = 0;
        let mut stack = vec![t];
        while let Some(x) = stack.pop() {
            if seen[x.index()] {
                continue;
            }
            seen[x.index()] = true;
            n += 1;
            stack.extend(self.data(x).args.iter().copied());
        }
        n
    }
}

fn bump(coeffs: &mut Vec<(TermId, u64)>, core: TermId, c: u64, w: u32) {
    for (t, cc) in coeffs.iter_mut() {
        if *t == core {
            *cc = cc.wrapping_add(c) & mask(w);
            return;
        }
    }
    coeffs.push((core, c & mask(w)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_fold() {
        let mut p = TermPool::new();
        let a = p.constant(40, 64);
        let b = p.constant(2, 64);
        assert_eq!(p.add2(a, b), p.constant(42, 64));
        assert_eq!(p.mul(vec![a, b]), p.constant(80, 64));
        assert_eq!(p.sub(a, b), p.constant(38, 64));
    }

    #[test]
    fn lea_and_imul_idioms_normalize_identically() {
        let mut p = TermPool::new();
        let x = p.var(0, 64);
        // lea r, [x + x*4]  ==  imul r, x, 5  ==  (x << 2) + x
        let four = p.constant(4, 64);
        let five = p.constant(5, 64);
        let x4 = p.mul(vec![x, four]);
        let lea = p.add2(x, x4);
        let imul = p.mul(vec![five, x]);
        let two = p.constant(2, 64);
        let shl = p.shl(x, two);
        let shl_add = p.add2(shl, x);
        assert_eq!(lea, imul);
        assert_eq!(lea, shl_add);
    }

    #[test]
    fn sums_are_order_insensitive_and_merge() {
        let mut p = TermPool::new();
        let x = p.var(0, 64);
        let y = p.var(1, 64);
        let c = p.constant(13, 64);
        let a1 = p.add(vec![x, y, c]);
        let a2 = {
            let t = p.add2(c, y);
            p.add2(t, x)
        };
        assert_eq!(a1, a2);
        // x + x = 2x
        let xx = p.add2(x, x);
        let two = p.constant(2, 64);
        assert_eq!(xx, p.mul(vec![two, x]));
        // x - x = 0
        assert_eq!(p.sub(x, x), p.constant(0, 64));
    }

    #[test]
    fn xor_self_cancels_and_zero_identity() {
        let mut p = TermPool::new();
        let x = p.var(0, 32);
        assert_eq!(p.xor(vec![x, x]), p.constant(0, 32));
        let z = p.constant(0, 32);
        assert_eq!(p.xor(vec![x, z]), x);
        assert_eq!(p.and(vec![x, x]), x);
        let ones = p.constant(u64::MAX, 32);
        assert_eq!(p.and(vec![x, ones]), x);
        assert_eq!(p.or(vec![x, z]), x);
    }

    #[test]
    fn xor_with_all_ones_is_not() {
        // Regression: the all-ones constant is NOT absorbing for xor; it
        // must fold into a complement, never swallow the other operands.
        let mut p = TermPool::new();
        let x = p.var(0, 16);
        let ones = p.constant(0xffff, 16);
        let e = p.xor(vec![x, ones]);
        assert_eq!(e, p.not(x));
        // ...and the `xor reg, -1` vs `not reg` idioms now unify.
        let y = p.var(1, 64);
        let m1 = p.constant(u64::MAX, 64);
        let a = p.xor(vec![y, m1]);
        assert_eq!(a, p.not(y));
        // Three-operand case keeps the rest intact.
        let z = p.var(2, 16);
        let multi = p.xor(vec![x, ones, z]);
        let xz = p.xor(vec![x, z]);
        assert_eq!(multi, p.not(xz));
    }

    #[test]
    fn double_negation_and_not() {
        let mut p = TermPool::new();
        let x = p.var(0, 64);
        let n = p.neg(x);
        assert_eq!(p.neg(n), x);
        let nt = p.not(x);
        assert_eq!(p.not(nt), x);
    }

    #[test]
    fn sub_as_negated_add() {
        let mut p = TermPool::new();
        let x = p.var(0, 64);
        let y = p.var(1, 64);
        // (x - y) + y = x
        let d = p.sub(x, y);
        assert_eq!(p.add2(d, y), x);
    }

    #[test]
    fn extract_concat_roundtrip() {
        let mut p = TermPool::new();
        let x = p.var(0, 64);
        let hi = p.extract(x, 63, 8);
        let lo = p.extract(x, 7, 0);
        assert_eq!(p.concat(hi, lo), x);
        // Extract of extract composes.
        let mid = p.extract(x, 31, 8);
        let sub = p.extract(mid, 7, 0);
        assert_eq!(sub, p.extract(x, 15, 8));
    }

    #[test]
    fn zext_chains_collapse() {
        let mut p = TermPool::new();
        let x = p.var(0, 8);
        let a = p.zext(x, 32);
        let b = p.zext(a, 64);
        assert_eq!(b, p.zext(x, 64));
        // Extract below the original width sees through zext.
        assert_eq!(p.extract(b, 7, 0), x);
        // Extract above is zero.
        assert_eq!(p.extract(b, 63, 8), p.constant(0, 56));
    }

    #[test]
    fn predicates_fold() {
        let mut p = TermPool::new();
        let x = p.var(0, 64);
        assert_eq!(p.eq(x, x), p.constant(1, 1));
        assert_eq!(p.ult(x, x), p.constant(0, 1));
        let a = p.constant(u64::MAX, 64);
        let b = p.constant(0, 64);
        assert_eq!(p.ult(a, b), p.constant(0, 1));
        assert_eq!(p.slt(a, b), p.constant(1, 1)); // -1 <s 0
    }

    #[test]
    fn ite_simplifies() {
        let mut p = TermPool::new();
        let c = p.var(0, 1);
        let x = p.var(1, 64);
        let y = p.var(2, 64);
        assert_eq!(p.ite(c, x, x), x);
        let t = p.constant(1, 1);
        assert_eq!(p.ite(t, x, y), x);
    }

    #[test]
    fn load_store_forwarding() {
        let mut p = TermPool::new();
        let m = p.mem_var(0);
        let a = p.var(0, 64);
        let v = p.var(1, 64);
        let m2 = p.store(m, a, v);
        assert_eq!(p.load(m2, a, 64), v);
        // Disjoint constant addresses skip the store.
        let c1 = p.constant(0x100, 64);
        let c2 = p.constant(0x200, 64);
        let m3 = p.store(m, c1, v);
        assert_eq!(p.load(m3, c2, 64), p.load(m, c2, 64));
        // Overlapping constant addresses do not.
        let c3 = p.constant(0x104, 64);
        assert_ne!(p.load(m3, c3, 64), p.load(m, c3, 64));
    }

    #[test]
    fn hash_consing_dedupes() {
        let mut p = TermPool::new();
        let x = p.var(0, 64);
        let y = p.var(1, 64);
        let a = p.add2(x, y);
        let b = p.add2(y, x);
        assert_eq!(a, b);
        let n = p.len();
        let _ = p.add2(x, y);
        assert_eq!(p.len(), n);
    }
}
