//! The layered equivalence checker: normalize → randomly refute →
//! bit-blast and decide.
//!
//! This is the `Solve()` backend of the paper's Algorithm 2: given two
//! values computed by a joint query/target strand program under assumed
//! input equalities, decide whether they are equal on *all* inputs.
//!
//! Layering (fast → slow), with soundness notes:
//!
//! 1. **Normalization** (free): terms were built through the normalizing
//!    pool, so identical handles ⇒ equal. Sound.
//! 2. **Random refutation**: any concrete assignment distinguishing the
//!    terms proves inequality. Sound for `NotEqual`.
//! 3. **Directed boundary probing**: evaluation on assignments that pin
//!    one input variable to a constant harvested from the pair (±1),
//!    catching sparse-difference pairs — off-by-one comparisons against
//!    immediates — that random sampling essentially never hits. Sound
//!    for `NotEqual`.
//! 4. **Bit-blasting + CDCL**: exact for bitvector terms within the
//!    conflict budget; over budget (or structurally oversized) yields
//!    [`Verdict::Unknown`], which VCP counts as "not matched" —
//!    conservative in the direction the paper prefers (missing a match
//!    can only lower similarity, never produce a false positive).
//!
//! Memory-sorted terms (whole store chains) are compared by normalization
//! and random refutation only; a full array-theory decision is not needed
//! because strand outputs compared across procedures are predominantly
//! bitvector values.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::bitblast::BitBlaster;
use crate::eval::{eval, Assignment, CVal, EvalPlan};
use crate::incremental::{IncrementalBlaster, IncrementalLimits, SolverPerf};
use crate::term::{TermId, TermPool};

/// The equivalence verdict for a pair of terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Proven equal on all inputs.
    Equal,
    /// A distinguishing input exists.
    NotEqual,
    /// Undecided within budget (treated as not-matched by VCP).
    Unknown,
}

/// Budgets for the checker.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EquivConfig {
    /// Random refutation rounds before bit-blasting.
    pub random_rounds: u64,
    /// CDCL conflict budget per query.
    pub sat_budget: u64,
    /// Maximum term-DAG size to attempt bit-blasting on.
    pub max_dag: usize,
    /// Maximum memory blast cost (Σ loads × store-chain depth).
    pub max_mem_cost: usize,
    /// Maximum multiplier blast cost (Σ width² over variable×variable
    /// multiplications).
    pub max_mul_cost: usize,
    /// Decide SAT queries on the shared incremental solver (see
    /// [`IncrementalBlaster`]) instead of a fresh blaster per query.
    pub incremental: bool,
    /// Incremental only: rebuild the shared solver past this many
    /// variables.
    pub solver_max_vars: usize,
    /// Incremental only: rebuild the shared solver past this many
    /// clauses.
    pub solver_max_clauses: usize,
    /// Incremental only: reduce the learnt-clause database past this many
    /// retained learnts.
    pub reduce_learnts_at: usize,
}

impl Default for EquivConfig {
    fn default() -> EquivConfig {
        let lim = IncrementalLimits::default();
        EquivConfig {
            random_rounds: 6,
            sat_budget: 4_000,
            max_dag: 4_000,
            max_mem_cost: 16,
            max_mul_cost: 1_100,
            incremental: true,
            solver_max_vars: lim.max_vars,
            solver_max_clauses: lim.max_clauses,
            reduce_learnts_at: lim.reduce_learnts_at,
        }
    }
}

impl EquivConfig {
    /// Stable FNV-1a digest over every budget. Two configs with the same
    /// fingerprint decide term pairs identically, so cached or snapshotted
    /// results keyed by it are safe to reuse.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for field in [
            self.random_rounds,
            self.sat_budget,
            self.max_dag as u64,
            self.max_mem_cost as u64,
            self.max_mul_cost as u64,
            // The incremental-solver knobs cannot change verdicts (both
            // paths decide the same theory under the same conflict
            // budget), but they are part of the config surface; keep the
            // fingerprint an honest digest of every field.
            u64::from(self.incremental),
            self.solver_max_vars as u64,
            self.solver_max_clauses as u64,
            self.reduce_learnts_at as u64,
        ] {
            for b in field.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        h
    }
}

/// Counters describing how queries were decided.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EquivStats {
    /// Decided by handle identity (normalization).
    pub by_normalization: u64,
    /// Refuted by a random assignment.
    pub by_random: u64,
    /// Refuted by a directed boundary probe (one input variable pinned to
    /// a constant harvested from the pair's own structure).
    pub by_directed: u64,
    /// Proven equal by SAT.
    pub sat_equal: u64,
    /// Refuted by SAT.
    pub sat_not_equal: u64,
    /// Returned unknown (budget/size).
    pub unknown: u64,
    /// Served from the pair cache.
    pub cache_hits: u64,
    /// SAT-solver cost counters (filled by both the incremental and the
    /// fresh-blaster paths).
    pub solver: SolverPerf,
}

/// A term pool plus decision machinery and a pair cache.
#[derive(Default)]
pub struct EquivChecker {
    /// The underlying term pool (build terms through this).
    pub pool: TermPool,
    /// Budgets.
    pub config: EquivConfig,
    /// Decision counters.
    pub stats: EquivStats,
    cache: HashMap<(TermId, TermId), Verdict>,
    blaster: IncrementalBlaster,
}

impl std::fmt::Debug for EquivChecker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EquivChecker")
            .field("terms", &self.pool.len())
            .field("config", &self.config)
            .field("stats", &self.stats)
            .finish()
    }
}

impl EquivChecker {
    /// Creates a checker with default budgets.
    pub fn new() -> EquivChecker {
        EquivChecker::default()
    }

    /// Creates a checker with explicit budgets.
    pub fn with_config(config: EquivConfig) -> EquivChecker {
        EquivChecker {
            config,
            ..EquivChecker::default()
        }
    }

    /// Decides whether `a == b` holds for all inputs.
    pub fn check_eq(&mut self, a: TermId, b: TermId) -> Verdict {
        if a == b {
            self.stats.by_normalization += 1;
            return Verdict::Equal;
        }
        if self.pool.width(a) != self.pool.width(b) {
            self.stats.by_random += 1;
            return Verdict::NotEqual;
        }
        let key = if a < b { (a, b) } else { (b, a) };
        if let Some(v) = self.cache.get(&key) {
            self.stats.cache_hits += 1;
            return *v;
        }
        let v = self.decide(a, b);
        self.cache.insert(key, v);
        v
    }

    fn decide(&mut self, a: TermId, b: TermId) -> Verdict {
        // Random refutation with value-feedback seeding. Round 0 uses a
        // fixed seed; every later round folds a digest of the value both
        // sides agreed on into the next seed. This diversifies the
        // assignments *per pair* (pairs that agree on different values
        // diverge immediately) without keying on raw `TermId`s — ids
        // depend on per-session term construction order, which the
        // work-stealing scheduler makes nondeterministic, and seeds
        // derived from them would make engine scores vary run to run.
        // The digest is a structural property of the pair, so this stays
        // fully deterministic and symmetric in (a, b).
        let mut seed = 0x9e37u64 + 1;
        for _ in 0..self.config.random_rounds {
            let asn = Assignment::random(seed);
            let va = eval(&self.pool, a, &asn);
            if va != eval(&self.pool, b, &asn) {
                self.stats.by_random += 1;
                return Verdict::NotEqual;
            }
            let digest = match va {
                CVal::Bv(v) => v,
                CVal::Mem(_) => 0x004d_454d,
            };
            seed = (seed ^ digest)
                .wrapping_mul(0x2545_f491_4f6c_dd1d)
                .wrapping_add(0x9e37_79b9_7f4a_7c15);
        }
        // Directed boundary probing: random rounds systematically miss
        // pairs whose difference set is vanishingly sparse. The classic
        // shape is a comparison against neighbouring immediates — `x < 5`
        // vs `x < 6` differ only at `x = 5` — which binaries produce in
        // bulk from loop bounds and field offsets; the distinguishing
        // inputs sit *at* the constants appearing in the terms. Probing
        // each input variable at every harvested constant (±1) finds the
        // witness in microseconds of evaluation where refuting through
        // the SAT layer costs a full solver model search. Sound for
        // `NotEqual` only; never claims equality.
        if self.directed_refute(a, b) {
            self.stats.by_directed += 1;
            return Verdict::NotEqual;
        }
        // Memory sort: no bit-level decision; random agreement is not a
        // proof, so remain unknown.
        if self.pool.width(a) == 0 {
            self.stats.unknown += 1;
            return Verdict::Unknown;
        }
        if self.pool.dag_size(a) + self.pool.dag_size(b) > self.config.max_dag {
            self.stats.unknown += 1;
            return Verdict::Unknown;
        }
        // Memory terms blast into per-byte address-comparison mux chains:
        // the CNF grows with (loads × store-chain length). Cap that cost.
        let mem_cost = self.mem_blast_cost(a) + self.mem_blast_cost(b);
        if mem_cost > self.config.max_mem_cost {
            self.stats.unknown += 1;
            return Verdict::Unknown;
        }
        // Variable×variable multiplication blasts into width² adders and
        // produces SAT instances that routinely exhaust the conflict
        // budget; bail out early instead of burning it.
        let mul_cost = self.mul_blast_cost(a) + self.mul_blast_cost(b);
        if mul_cost > self.config.max_mul_cost {
            self.stats.unknown += 1;
            return Verdict::Unknown;
        }
        self.sat_decide(a, b)
    }

    /// Probes assignments that pin one input variable to a boundary value
    /// harvested from the pair's own term structure; returns `true` when
    /// one distinguishes `a` from `b` (a sound `NotEqual` witness).
    ///
    /// Fully deterministic: variables and constants are collected
    /// structurally and probed in sorted order under fixed caps, so
    /// verdicts cannot vary run to run or between construction orders.
    fn directed_refute(&mut self, a: TermId, b: TermId) -> bool {
        use crate::term::TermOp;
        // Bound the probe budget: caps are part of the decision procedure
        // (changing them can flip Unknown/NotEqual verdicts), so they are
        // fixed constants rather than tunable configuration.
        const MAX_VARS: usize = 8;
        const MAX_CONSTS: usize = 12;
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![a, b];
        let mut vars: Vec<u32> = Vec::new();
        let mut consts: Vec<u64> = Vec::new();
        while let Some(x) = stack.pop() {
            if !seen.insert(x) {
                continue;
            }
            let data = self.pool.data(x);
            match data.op {
                TermOp::Var(id) => vars.push(id),
                TermOp::Const(c) => consts.push(c),
                _ => {}
            }
            stack.extend(data.args.iter().copied());
        }
        vars.sort_unstable();
        vars.dedup();
        vars.truncate(MAX_VARS);
        consts.sort_unstable();
        consts.dedup();
        consts.truncate(MAX_CONSTS);
        if vars.is_empty() || consts.is_empty() {
            return false;
        }
        // Probe at each constant and its neighbours: the witness for an
        // off-by-one comparison sits next to the immediate, not on it.
        let mut cands: Vec<u64> = Vec::with_capacity(consts.len() * 3);
        for &c in &consts {
            cands.push(c.wrapping_sub(1));
            cands.push(c);
            cands.push(c.wrapping_add(1));
        }
        cands.sort_unstable();
        cands.dedup();
        let plan = EvalPlan::new(&self.pool, &[a, b]);
        // Unpinned variables keep the fixed pseudo-random base, so each
        // probe perturbs exactly one variable of an otherwise-shared
        // assignment.
        let mut asn = Assignment::random(0x0d1e);
        for &v in &vars {
            for &c in &cands {
                asn.vars.insert(v, c);
                let vals = plan.eval_round(&self.pool, &asn);
                if vals[0] != vals[1] {
                    return true;
                }
            }
            asn.vars.remove(&v);
        }
        false
    }

    /// Estimated memory blast cost of `t`: per load, the number of bytes
    /// read times the store-chain depth it sees through.
    fn mem_blast_cost(&self, t: TermId) -> usize {
        use crate::term::TermOp;
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![t];
        let mut cost = 0usize;
        while let Some(x) = stack.pop() {
            if !seen.insert(x) {
                continue;
            }
            let data = self.pool.data(x);
            if let TermOp::Load = data.op {
                let bytes = (data.width / 8).max(1) as usize;
                // Depth of the store chain under the memory argument.
                let mut depth = 0usize;
                let mut m = data.args[0];
                while let TermOp::Store = self.pool.data(m).op {
                    depth += 1;
                    m = self.pool.data(m).args[0];
                }
                cost += bytes * (depth + 1);
            }
            stack.extend(data.args.iter().copied());
        }
        cost
    }

    /// Estimated multiplier blast cost of `t`: width² per multiplication
    /// with two or more non-constant factors.
    fn mul_blast_cost(&self, t: TermId) -> usize {
        use crate::term::TermOp;
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![t];
        let mut cost = 0usize;
        while let Some(x) = stack.pop() {
            if !seen.insert(x) {
                continue;
            }
            let data = self.pool.data(x);
            if let TermOp::Mul = data.op {
                let non_const = data
                    .args
                    .iter()
                    .filter(|a| self.pool.as_const(**a).is_none())
                    .count();
                if non_const >= 2 {
                    let w = data.width as usize;
                    cost += w * w * (non_const - 1);
                }
            }
            stack.extend(data.args.iter().copied());
        }
        cost
    }

    fn sat_decide(&mut self, a: TermId, b: TermId) -> Verdict {
        let res = if self.config.incremental {
            let limits = IncrementalLimits {
                max_vars: self.config.solver_max_vars,
                max_clauses: self.config.solver_max_clauses,
                reduce_learnts_at: self.config.reduce_learnts_at,
            };
            self.blaster.prove_equal(
                &self.pool,
                a,
                b,
                self.config.sat_budget,
                &limits,
                &mut self.stats.solver,
            )
        } else {
            let mut bb = BitBlaster::new();
            let t0 = std::time::Instant::now();
            let r = bb.prove_equal(&self.pool, a, b, self.config.sat_budget);
            let perf = &mut self.stats.solver;
            perf.sat_queries += 1;
            perf.blast_cache_hits += bb.blast_hits;
            perf.blast_cache_misses += bb.blast_misses;
            perf.conflicts += bb.sat.conflicts;
            perf.sat_time_ns += t0.elapsed().as_nanos() as u64;
            r
        };
        match res {
            Some(true) => {
                self.stats.sat_equal += 1;
                Verdict::Equal
            }
            Some(false) => {
                self.stats.sat_not_equal += 1;
                Verdict::NotEqual
            }
            None => {
                self.stats.unknown += 1;
                Verdict::Unknown
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layered_decisions_hit_expected_layers() {
        let mut ec = EquivChecker::new();
        let x = ec.pool.var(0, 64);
        let y = ec.pool.var(1, 64);

        // Layer 1: normalization.
        let five = ec.pool.constant(5, 64);
        let four = ec.pool.constant(4, 64);
        let a = ec.pool.mul(vec![five, x]);
        let x4 = ec.pool.mul(vec![four, x]);
        let b = ec.pool.add2(x4, x);
        assert_eq!(ec.check_eq(a, b), Verdict::Equal);
        assert_eq!(ec.stats.by_normalization, 1);

        // Layer 2: random refutation.
        assert_eq!(ec.check_eq(x, y), Verdict::NotEqual);
        assert_eq!(ec.stats.by_random, 1);

        // Layer 3: SAT proof of a non-syntactic identity.
        let xor = ec.pool.xor(vec![x, y]);
        let or = ec.pool.or(vec![x, y]);
        let and = ec.pool.and(vec![x, y]);
        let diff = ec.pool.sub(or, and);
        assert_eq!(ec.check_eq(xor, diff), Verdict::Equal);
        assert_eq!(ec.stats.sat_equal, 1);
    }

    #[test]
    fn directed_probe_refutes_sparse_difference_pairs() {
        // `x < 5` vs `x < 6` differ only at x = 5: a 1-in-2^64 difference
        // set that random rounds essentially never hit, but whose witness
        // sits on a constant harvested from the pair itself. The directed
        // layer must refute it before the SAT layer pays a model search.
        let mut ec = EquivChecker::new();
        let x = ec.pool.var(0, 64);
        let five = ec.pool.constant(5, 64);
        let six = ec.pool.constant(6, 64);
        let lt5 = ec.pool.ult(x, five);
        let lt6 = ec.pool.ult(x, six);
        assert_eq!(ec.check_eq(lt5, lt6), Verdict::NotEqual);
        assert_eq!(ec.stats.by_directed, 1);
        assert_eq!(ec.stats.by_random, 0);
        assert_eq!(ec.stats.solver.sat_queries, 0);
    }

    #[test]
    fn cache_serves_repeat_queries() {
        let mut ec = EquivChecker::new();
        let x = ec.pool.var(0, 32);
        let y = ec.pool.var(1, 32);
        let xor = ec.pool.xor(vec![x, y]);
        let or = ec.pool.or(vec![x, y]);
        let and = ec.pool.and(vec![x, y]);
        let diff = ec.pool.sub(or, and);
        let v1 = ec.check_eq(xor, diff);
        let v2 = ec.check_eq(diff, xor);
        assert_eq!(v1, v2);
        assert_eq!(ec.stats.cache_hits, 1);
        assert_eq!(ec.stats.sat_equal, 1);
    }

    #[test]
    fn checker_survives_solver_watermark_fallback() {
        // A watermark so tight that every SAT query trips a solver
        // rebuild: verdicts must be unaffected.
        let mut ec = EquivChecker::with_config(EquivConfig {
            solver_max_vars: 8,
            solver_max_clauses: 16,
            ..Default::default()
        });
        for w in [16u32, 24, 32] {
            let x = ec.pool.var(0, w);
            let y = ec.pool.var(1, w);
            let xor = ec.pool.xor(vec![x, y]);
            let or = ec.pool.or(vec![x, y]);
            let and = ec.pool.and(vec![x, y]);
            let diff = ec.pool.sub(or, and);
            assert_eq!(ec.check_eq(xor, diff), Verdict::Equal);
            let one = ec.pool.constant(1, w);
            let x1 = ec.pool.add2(x, one);
            let nand = ec.pool.not(and);
            let a = ec.pool.and(vec![x1, nand]);
            let b = ec.pool.and(vec![x, nand]);
            assert_eq!(ec.check_eq(a, b), Verdict::NotEqual);
        }
        assert!(
            ec.stats.solver.solver_resets > 0,
            "tight watermark must force solver rebuilds"
        );
        assert_eq!(ec.stats.sat_equal, 3);
    }

    #[test]
    fn width_mismatch_is_instantly_unequal() {
        let mut ec = EquivChecker::new();
        let a = ec.pool.var(0, 32);
        let b = ec.pool.var(1, 64);
        assert_eq!(ec.check_eq(a, b), Verdict::NotEqual);
    }

    #[test]
    fn oversized_terms_return_unknown() {
        let mut ec = EquivChecker::with_config(EquivConfig {
            max_dag: 4,
            ..Default::default()
        });
        // Two sides that agree on randoms but exceed the DAG cap:
        // (x | y) - (x & y) vs x ^ y again.
        let x = ec.pool.var(0, 16);
        let y = ec.pool.var(1, 16);
        let xor = ec.pool.xor(vec![x, y]);
        let or = ec.pool.or(vec![x, y]);
        let and = ec.pool.and(vec![x, y]);
        let diff = ec.pool.sub(or, and);
        assert_eq!(ec.check_eq(xor, diff), Verdict::Unknown);
    }

    #[test]
    fn memory_pairs_stay_unknown_when_random_agrees() {
        let mut ec = EquivChecker::new();
        let m = ec.pool.mem_var(0);
        let a = ec.pool.var(0, 64);
        let v = ec.pool.var(1, 8);
        let s1 = ec.pool.store(m, a, v);
        // A different store chain writing the same byte via a detour the
        // normalizer can't see: store(store(m,a,v),a,v).
        let s2 = ec.pool.store(s1, a, v);
        // Normalizer folds the same-address overwrite, so s2 == s1.
        assert_eq!(s1, s2);
        // Distinct chains with different addresses are refuted randomly.
        let b = ec.pool.var(2, 64);
        let s3 = ec.pool.store(m, b, v);
        assert_eq!(ec.check_eq(s1, s3), Verdict::NotEqual);
    }
}
