//! Concrete evaluation of terms — the fast refutation layer.
//!
//! Random assignments give sound *inequality* verdicts: if any assignment
//! distinguishes two terms, they are definitely not equivalent. Memory
//! variables evaluate to pseudo-random byte oracles overlaid with the
//! store chains, matching the IVL evaluation semantics in `esh-ivl`.
//!
//! Evaluation is plan-based: [`EvalPlan`] flattens the subgraph reachable
//! from a set of root terms into one post-order schedule with dense slot
//! indices, and every round replays that schedule into a flat value
//! array. Compared to the older per-round `HashMap` memo this removes
//! the hash lookups, the per-hit [`CVal`] clones (a `CVal::Mem` clone
//! copies its whole store chain), and the recursion — which matters now
//! that sketching puts `eval_battery` on the hot admission path.

use std::collections::HashMap;

use crate::term::{mask, TermId, TermOp, TermPool};

/// A concrete memory value (pseudo-random base + store overlay).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemRep {
    /// Base-image identifier.
    pub seed: u64,
    /// Stores, oldest first: `(addr, width_bits, value)`.
    pub stores: Vec<(u64, u32, u64)>,
}

impl MemRep {
    fn base_byte(&self, addr: u64) -> u8 {
        let mut z = self.seed ^ addr.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (z ^ (z >> 31)) as u8
    }

    fn read_byte(&self, addr: u64) -> u8 {
        for (a, w, v) in self.stores.iter().rev() {
            let bytes = u64::from(w / 8);
            if addr.wrapping_sub(*a) < bytes {
                return (v >> (8 * addr.wrapping_sub(*a))) as u8;
            }
        }
        self.base_byte(addr)
    }

    fn read(&self, addr: u64, width: u32) -> u64 {
        let mut v = 0u64;
        for i in 0..u64::from(width / 8) {
            v |= u64::from(self.read_byte(addr.wrapping_add(i))) << (8 * i);
        }
        v
    }
}

/// A concrete term value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CVal {
    /// Bitvector (masked).
    Bv(u64),
    /// Memory.
    Mem(MemRep),
}

impl CVal {
    fn bv(&self) -> u64 {
        match self {
            CVal::Bv(v) => *v,
            CVal::Mem(_) => panic!("expected bitvector"),
        }
    }
}

/// An assignment of free variables to concrete values. Unlisted variables
/// take deterministic pseudo-random values derived from the round.
#[derive(Debug, Clone, Default)]
pub struct Assignment {
    /// Bitvector variables.
    pub vars: HashMap<u32, u64>,
    /// Memory variables (by seed).
    pub mems: HashMap<u32, u64>,
    round: u64,
}

impl Assignment {
    /// A deterministic pseudo-random assignment for round `round`.
    pub fn random(round: u64) -> Assignment {
        Assignment {
            vars: HashMap::new(),
            mems: HashMap::new(),
            round,
        }
    }
    fn var_value(&self, id: u32) -> u64 {
        if let Some(v) = self.vars.get(&id) {
            return *v;
        }
        let mut z = self
            .round
            .wrapping_mul(0x2545_f491_4f6c_dd1d)
            .wrapping_add(u64::from(id) + 1)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z ^= z >> 29;
        z
    }

    fn mem_seed(&self, id: u32) -> u64 {
        if let Some(v) = self.mems.get(&id) {
            return *v;
        }
        self.round.wrapping_mul(0x1000_0000_01b3) ^ (u64::from(id) << 17)
    }
}

fn sext64(v: u64, w: u32) -> i64 {
    if w >= 64 {
        v as i64
    } else {
        ((v << (64 - w)) as i64) >> (64 - w)
    }
}

/// Sentinel slot for terms outside the plan's reachable subgraph.
const UNPLACED: u32 = u32::MAX;

/// A flat post-order evaluation schedule over the subgraph reachable from
/// a set of root terms.
///
/// Built once, replayed once per assignment: `order` lists every reachable
/// term with all of its arguments strictly earlier, and `slot` maps a
/// `TermId` to its dense position in the per-round value array. Each round
/// then evaluates straight down the schedule — no hashing, no recursion,
/// and each shared subterm is computed exactly once and *read in place*
/// rather than cloned out of a memo.
#[derive(Debug, Clone)]
pub struct EvalPlan {
    /// Reachable terms in dependency order.
    order: Vec<TermId>,
    /// `slot[t.index()]` = position of `t` in the value array.
    slot: Vec<u32>,
    /// Value-array positions of the requested roots, in request order.
    roots: Vec<u32>,
}

impl EvalPlan {
    /// Builds the schedule for `roots` (duplicates share one slot).
    pub fn new(pool: &TermPool, roots: &[TermId]) -> EvalPlan {
        let mut slot = vec![UNPLACED; pool.len()];
        let mut scheduled = vec![false; pool.len()];
        let mut order: Vec<TermId> = Vec::new();
        // (term, expanded): the first pop pushes the term back with its
        // arguments on top; the second pop emits it.
        let mut stack: Vec<(TermId, bool)> = Vec::with_capacity(roots.len());
        for &r in roots.iter().rev() {
            stack.push((r, false));
        }
        while let Some((t, expanded)) = stack.pop() {
            if expanded {
                slot[t.index()] = order.len() as u32;
                order.push(t);
                continue;
            }
            if scheduled[t.index()] {
                continue;
            }
            scheduled[t.index()] = true;
            stack.push((t, true));
            for &arg in pool.data(t).args.iter().rev() {
                if !scheduled[arg.index()] {
                    stack.push((arg, false));
                }
            }
        }
        let root_slots = roots.iter().map(|r| slot[r.index()]).collect();
        EvalPlan {
            order,
            slot,
            roots: root_slots,
        }
    }

    /// Number of terms the schedule evaluates per round.
    pub fn scheduled_terms(&self) -> usize {
        self.order.len()
    }

    /// Evaluates one round: the values of the requested roots under `a`.
    pub fn eval_round(&self, pool: &TermPool, a: &Assignment) -> Vec<CVal> {
        let mut vals = Vec::with_capacity(self.order.len());
        self.run_into(pool, a, &mut vals);
        self.extract(&vals)
    }

    /// Root values out of a finished value array.
    fn extract(&self, vals: &[CVal]) -> Vec<CVal> {
        self.roots
            .iter()
            .map(|&s| vals[s as usize].clone())
            .collect()
    }

    /// Replays the schedule under `a` into `vals` (cleared first, so one
    /// buffer can be reused across rounds without reallocating).
    fn run_into(&self, pool: &TermPool, a: &Assignment, vals: &mut Vec<CVal>) {
        vals.clear();
        vals.reserve(self.order.len());
        for &t in &self.order {
            let data = pool.data(t);
            let w = data.width;
            let m = mask(w);
            // Every argument sits strictly earlier in `vals`; read by slot.
            let arg = |i: usize| -> &CVal { &vals[self.slot[data.args[i].index()] as usize] };
            let abv = |i: usize| -> u64 { arg(i).bv() };
            let fold = |init: u64, f: fn(u64, u64) -> u64| -> u64 {
                data.args
                    .iter()
                    .fold(init, |acc, x| f(acc, vals[self.slot[x.index()] as usize].bv()))
            };
            let out = match data.op {
                TermOp::Var(id) => CVal::Bv(a.var_value(id) & m),
                TermOp::MemVar(id) => CVal::Mem(MemRep {
                    seed: a.mem_seed(id),
                    stores: Vec::new(),
                }),
                TermOp::Const(v) => CVal::Bv(v),
                TermOp::Add => CVal::Bv(fold(0, u64::wrapping_add) & m),
                TermOp::Mul => CVal::Bv(fold(1, u64::wrapping_mul) & m),
                TermOp::And => CVal::Bv(fold(m, |a, b| a & b)),
                TermOp::Or => CVal::Bv(fold(0, |a, b| a | b)),
                TermOp::Xor => CVal::Bv(fold(0, |a, b| a ^ b)),
                TermOp::Not => CVal::Bv(!abv(0) & m),
                TermOp::Shl => {
                    let sh = abv(1) % u64::from(w);
                    CVal::Bv(abv(0).wrapping_shl(sh as u32) & m)
                }
                TermOp::LShr => {
                    let sh = abv(1) % u64::from(w);
                    CVal::Bv(abv(0).wrapping_shr(sh as u32) & m)
                }
                TermOp::AShr => {
                    let sh = (abv(1) % u64::from(w)) as u32;
                    CVal::Bv(((sext64(abv(0), w) >> sh) as u64) & m)
                }
                TermOp::Eq => CVal::Bv(u64::from(arg(0) == arg(1))),
                TermOp::Ult => CVal::Bv(u64::from(abv(0) < abv(1))),
                TermOp::Slt => {
                    let aw = pool.width(data.args[0]);
                    CVal::Bv(u64::from(sext64(abv(0), aw) < sext64(abv(1), aw)))
                }
                TermOp::Ite => {
                    if abv(0) != 0 {
                        arg(1).clone()
                    } else {
                        arg(2).clone()
                    }
                }
                TermOp::Zext => CVal::Bv(abv(0)),
                TermOp::Sext => {
                    let aw = pool.width(data.args[0]);
                    CVal::Bv((sext64(abv(0), aw) as u64) & m)
                }
                TermOp::Extract(hi, lo) => CVal::Bv((abv(0) >> lo) & mask(hi - lo + 1)),
                TermOp::Concat => {
                    let lo_w = pool.width(data.args[1]);
                    CVal::Bv(((abv(0) << lo_w) | abv(1)) & m)
                }
                TermOp::Load => match arg(0) {
                    CVal::Mem(img) => CVal::Bv(img.read(abv(1), w)),
                    CVal::Bv(_) => panic!("load from non-memory"),
                },
                TermOp::Store => match arg(0) {
                    CVal::Mem(img) => {
                        let mut img = img.clone();
                        let vw = pool.width(data.args[2]);
                        img.stores.push((abv(1), vw, abv(2)));
                        CVal::Mem(img)
                    }
                    CVal::Bv(_) => panic!("store to non-memory"),
                },
            };
            vals.push(out);
        }
    }
}

/// Evaluates `t` under `a`, sharing work across repeated subterms.
pub fn eval(pool: &TermPool, t: TermId, a: &Assignment) -> CVal {
    EvalPlan::new(pool, std::slice::from_ref(&t))
        .eval_round(pool, a)
        .pop()
        .expect("one root, one value")
}

/// Evaluates many terms under one assignment with one shared schedule —
/// much cheaper than repeated [`eval`] calls when the terms share
/// structure (as the values of one strand always do).
pub fn eval_many(pool: &TermPool, terms: &[TermId], a: &Assignment) -> Vec<CVal> {
    EvalPlan::new(pool, terms).eval_round(pool, a)
}

/// Evaluates `terms` under every assignment in `rounds` — the batch entry
/// point behind semantic sketching. The post-order schedule is built once
/// and replayed round-major into one reused value buffer, so the per-round
/// cost is pure arithmetic; the result is laid out round-major:
/// `result[r][k]` is the value of `terms[k]` under `rounds[r]`.
pub fn eval_battery(pool: &TermPool, terms: &[TermId], rounds: &[Assignment]) -> Vec<Vec<CVal>> {
    let plan = EvalPlan::new(pool, terms);
    let mut vals: Vec<CVal> = Vec::with_capacity(plan.order.len());
    rounds
        .iter()
        .map(|a| {
            plan.run_into(pool, a, &mut vals);
            plan.extract(&vals)
        })
        .collect()
}

/// Stable 64-bit digest of a concrete value (FNV-1a over its bytes, with
/// store chains folded in for memories). Unlike hashes built on the
/// standard library's [`DefaultHasher`](std::collections::hash_map::DefaultHasher),
/// this is a fixed function of the value alone, so digests persisted to
/// disk (semantic sketches) stay valid across toolchain upgrades.
pub fn cval_digest(v: &CVal) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mix = |mut h: u64, word: u64| -> u64 {
        for b in word.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
        h
    };
    match v {
        CVal::Bv(b) => mix(mix(OFFSET, 1), *b),
        CVal::Mem(m) => {
            let mut h = mix(mix(OFFSET, 2), m.seed);
            for (addr, width, value) in &m.stores {
                h = mix(h, *addr);
                h = mix(h, u64::from(*width));
                h = mix(h, *value);
            }
            h
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The pre-plan evaluator: naive recursion with a memo map. Kept as a
    /// reference semantics oracle — the plan-based evaluator must agree
    /// with it bit-for-bit on every term.
    fn eval_reference(
        pool: &TermPool,
        t: TermId,
        a: &Assignment,
        memo: &mut HashMap<TermId, CVal>,
    ) -> CVal {
        if let Some(v) = memo.get(&t) {
            return v.clone();
        }
        let data = pool.data(t);
        let w = data.width;
        let m = mask(w);
        let args: Vec<CVal> = data
            .args
            .iter()
            .map(|x| eval_reference(pool, *x, a, memo))
            .collect();
        let out = match data.op {
            TermOp::Var(id) => CVal::Bv(a.var_value(id) & m),
            TermOp::MemVar(id) => CVal::Mem(MemRep {
                seed: a.mem_seed(id),
                stores: Vec::new(),
            }),
            TermOp::Const(v) => CVal::Bv(v),
            TermOp::Add => CVal::Bv(args.iter().fold(0u64, |acc, x| acc.wrapping_add(x.bv())) & m),
            TermOp::Mul => CVal::Bv(args.iter().fold(1u64, |acc, x| acc.wrapping_mul(x.bv())) & m),
            TermOp::And => CVal::Bv(args.iter().fold(m, |acc, x| acc & x.bv())),
            TermOp::Or => CVal::Bv(args.iter().fold(0, |acc, x| acc | x.bv())),
            TermOp::Xor => CVal::Bv(args.iter().fold(0, |acc, x| acc ^ x.bv())),
            TermOp::Not => CVal::Bv(!args[0].bv() & m),
            TermOp::Shl => {
                let sh = args[1].bv() % u64::from(w);
                CVal::Bv(args[0].bv().wrapping_shl(sh as u32) & m)
            }
            TermOp::LShr => {
                let sh = args[1].bv() % u64::from(w);
                CVal::Bv(args[0].bv().wrapping_shr(sh as u32) & m)
            }
            TermOp::AShr => {
                let sh = (args[1].bv() % u64::from(w)) as u32;
                CVal::Bv(((sext64(args[0].bv(), w) >> sh) as u64) & m)
            }
            TermOp::Eq => CVal::Bv(u64::from(args[0] == args[1])),
            TermOp::Ult => CVal::Bv(u64::from(args[0].bv() < args[1].bv())),
            TermOp::Slt => {
                let aw = pool.width(data.args[0]);
                CVal::Bv(u64::from(
                    sext64(args[0].bv(), aw) < sext64(args[1].bv(), aw),
                ))
            }
            TermOp::Ite => {
                if args[0].bv() != 0 {
                    args[1].clone()
                } else {
                    args[2].clone()
                }
            }
            TermOp::Zext => CVal::Bv(args[0].bv()),
            TermOp::Sext => {
                let aw = pool.width(data.args[0]);
                CVal::Bv((sext64(args[0].bv(), aw) as u64) & m)
            }
            TermOp::Extract(hi, lo) => CVal::Bv((args[0].bv() >> lo) & mask(hi - lo + 1)),
            TermOp::Concat => {
                let lo_w = pool.width(data.args[1]);
                CVal::Bv(((args[0].bv() << lo_w) | args[1].bv()) & m)
            }
            TermOp::Load => match &args[0] {
                CVal::Mem(img) => CVal::Bv(img.read(args[1].bv(), w)),
                CVal::Bv(_) => panic!("load from non-memory"),
            },
            TermOp::Store => match &args[0] {
                CVal::Mem(img) => {
                    let mut img = img.clone();
                    let vw = pool.width(data.args[2]);
                    img.stores.push((args[1].bv(), vw, args[2].bv()));
                    CVal::Mem(img)
                }
                CVal::Bv(_) => panic!("store to non-memory"),
            },
        };
        memo.insert(t, out.clone());
        out
    }

    #[test]
    fn normalization_is_sound_under_evaluation() {
        // Build equivalent expressions along different routes; both must
        // evaluate identically even when they normalize to one node, and
        // an unnormalized sibling must agree too.
        let mut p = TermPool::new();
        let x = p.var(0, 64);
        let y = p.var(1, 64);
        let five = p.constant(5, 64);
        let e1 = p.mul(vec![five, x]);
        let four = p.constant(4, 64);
        let x4 = p.mul(vec![four, x]);
        let e2 = p.add2(x4, x);
        assert_eq!(e1, e2);
        for round in 0..16 {
            let a = Assignment::random(round);
            assert_eq!(eval(&p, e1, &a), eval(&p, e2, &a));
            // And a genuinely different term differs somewhere.
            let e3 = p.add2(x, y);
            let _ = eval(&p, e3, &a);
        }
    }

    #[test]
    fn random_assignment_distinguishes_inequivalent_terms() {
        let mut p = TermPool::new();
        let x = p.var(0, 64);
        let one = p.constant(1, 64);
        let e1 = p.add2(x, one);
        let two = p.constant(2, 64);
        let e2 = p.add2(x, two);
        let mut distinguished = false;
        for round in 0..4 {
            let a = Assignment::random(round);
            if eval(&p, e1, &a) != eval(&p, e2, &a) {
                distinguished = true;
            }
        }
        assert!(distinguished);
    }

    #[test]
    fn memory_eval_sees_store_chains() {
        let mut p = TermPool::new();
        let m = p.mem_var(0);
        let addr = p.var(0, 64);
        let val = p.var(1, 64);
        let m2 = p.store(m, addr, val);
        let ld = p.load(m2, addr, 64);
        // normalization already forwards; build a non-forwardable one:
        let other = p.var(2, 64);
        let ld2 = p.load(m2, other, 64);
        let mut a = Assignment::random(1);
        a.vars.insert(0, 0x100);
        a.vars.insert(1, 0xdead);
        a.vars.insert(2, 0x100); // same concrete address!
        assert_eq!(eval(&p, ld, &a).bv(), 0xdead);
        assert_eq!(eval(&p, ld2, &a).bv(), 0xdead, "aliasing must be honoured");
    }

    #[test]
    fn battery_matches_per_round_eval() {
        let mut p = TermPool::new();
        let x = p.var(0, 64);
        let y = p.var(1, 64);
        let sum = p.add2(x, y);
        let prod = p.mul(vec![x, y]);
        let terms = [sum, prod];
        let rounds: Vec<Assignment> = (0..4).map(Assignment::random).collect();
        let grid = eval_battery(&p, &terms, &rounds);
        assert_eq!(grid.len(), 4);
        for (r, a) in rounds.iter().enumerate() {
            for (k, t) in terms.iter().enumerate() {
                assert_eq!(grid[r][k], eval(&p, *t, a));
            }
        }
    }

    #[test]
    fn plan_evaluation_matches_reference_memo_evaluator() {
        // A term mix covering shared subterms, memories with store
        // chains, comparisons and width changes — the plan-based
        // evaluator must reproduce the recursive memo evaluator exactly.
        let mut p = TermPool::new();
        let x = p.var(0, 64);
        let y = p.var(1, 32);
        let m = p.mem_var(0);
        let yz = p.zext(y, 64);
        let sum = p.add2(x, yz);
        let st = p.store(m, sum, x);
        let ld = p.load(st, x, 64);
        let lt = p.slt(ld, sum);
        let sh = p.constant(3, 64);
        let shifted = p.lshr(sum, sh);
        let roots = [lt, ld, shifted, sum, lt]; // duplicate root on purpose
        for round in 0..8 {
            let a = Assignment::random(round);
            let mut memo = HashMap::new();
            let expected: Vec<CVal> = roots
                .iter()
                .map(|t| eval_reference(&p, *t, &a, &mut memo))
                .collect();
            assert_eq!(eval_many(&p, &roots, &a), expected);
        }
    }

    #[test]
    fn plan_schedules_shared_subterms_once() {
        let mut p = TermPool::new();
        let x = p.var(0, 64);
        let y = p.var(1, 64);
        let sum = p.add2(x, y);
        let prod = p.mul(vec![sum, sum]);
        let both = [sum, prod];
        let plan = EvalPlan::new(&p, &both);
        // x, y, sum, prod — the shared `sum` appears exactly once.
        assert_eq!(plan.scheduled_terms(), 4);
    }

    #[test]
    fn cval_digest_separates_values_and_is_stable() {
        assert_eq!(cval_digest(&CVal::Bv(7)), cval_digest(&CVal::Bv(7)));
        assert_ne!(cval_digest(&CVal::Bv(7)), cval_digest(&CVal::Bv(8)));
        // A bitvector and a memory with a coinciding seed must not collide
        // by construction (distinct kind tags are folded in first).
        let mem = CVal::Mem(MemRep { seed: 7, stores: Vec::new() });
        assert_ne!(cval_digest(&CVal::Bv(7)), cval_digest(&mem));
        let stored = CVal::Mem(MemRep { seed: 7, stores: vec![(0x10, 64, 42)] });
        assert_ne!(cval_digest(&mem), cval_digest(&stored));
    }

    #[test]
    fn fixed_assignment_overrides_random() {
        let mut p = TermPool::new();
        let x = p.var(7, 64);
        let mut a = Assignment::random(3);
        a.vars.insert(7, 42);
        assert_eq!(eval(&p, x, &a).bv(), 42);
    }
}
