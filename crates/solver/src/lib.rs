#![warn(missing_docs)]

//! # esh-solver — a bitvector equivalence engine
//!
//! The paper's pipeline discharges strand-equivalence queries through the
//! Boogie verifier backed by Z3 (§4.2). This crate is the from-scratch
//! replacement, specialized to exactly the fragment those queries live in:
//! quantifier-free, loop-free equalities over fixed-width bitvectors with
//! byte-addressed memory.
//!
//! Layers:
//!
//! * [`term`] — hash-consed terms with normalizing smart constructors
//!   (constant folding, AC canonicalization, linear combinations,
//!   strength-reduced shifts, store/load forwarding);
//! * [`eval`] — concrete evaluation for sound random refutation;
//! * [`sat`] — a from-scratch CDCL SAT solver;
//! * [`bitblast`] — Tseitin encoding with byte-accurate memory and
//!   Ackermann congruence for base-memory reads;
//! * [`incremental`] — one long-lived solver shared across queries via
//!   activation literals, with learnt-clause retention and hygiene;
//! * [`equiv`] — the layered [`equiv::EquivChecker`] with a pair cache.
//!
//! ```
//! use esh_solver::equiv::{EquivChecker, Verdict};
//!
//! let mut ec = EquivChecker::new();
//! let x = ec.pool.var(0, 64);
//! let y = ec.pool.var(1, 64);
//! let xor = ec.pool.xor(vec![x, y]);
//! let or = ec.pool.or(vec![x, y]);
//! let and = ec.pool.and(vec![x, y]);
//! let diff = ec.pool.sub(or, and);
//! assert_eq!(ec.check_eq(xor, diff), Verdict::Equal);
//! ```

pub mod bitblast;
pub mod equiv;
pub mod eval;
pub mod incremental;
pub mod sat;
pub mod term;

pub use equiv::{EquivChecker, EquivConfig, EquivStats, Verdict};
pub use incremental::{IncrementalBlaster, IncrementalLimits, SolverPerf};
pub use term::{TermId, TermPool};
