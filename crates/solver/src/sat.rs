//! A from-scratch CDCL SAT solver (MiniSat-style).
//!
//! Watched literals, first-UIP clause learning, VSIDS branching with phase
//! saving, and geometric restarts. This is the decision engine under the
//! bit-blaster; it replaces the Z3 backend of the paper's Boogie pipeline
//! for the (quantifier-free, loop-free) queries Esh generates.

/// A propositional variable (0-based).
pub type Var = u32;

/// A literal: variable plus sign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lit(u32);

impl Lit {
    /// Positive literal of `v`.
    pub fn pos(v: Var) -> Lit {
        Lit(v << 1)
    }

    /// Negative literal of `v`.
    pub fn neg(v: Var) -> Lit {
        Lit(v << 1 | 1)
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        self.0 >> 1
    }

    /// True if this is the negated polarity.
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complementary literal.
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    fn code(self) -> usize {
        self.0 as usize
    }
}

/// Result of a [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SatResult {
    /// A satisfying assignment exists (readable via [`Solver::model_value`]).
    Sat,
    /// No satisfying assignment exists under the given assumptions.
    Unsat,
    /// The conflict budget was exhausted first.
    Unknown,
}

const UNDEF_CLAUSE: u32 = u32::MAX;

/// The CDCL solver.
#[derive(Debug, Default)]
pub struct Solver {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
    /// Per-clause learnt flag; learnt clauses are eligible for
    /// [`Solver::reduce_learnts`] garbage collection.
    learnt: Vec<bool>,
    /// Per-clause activity (bumped when a clause participates in conflict
    /// analysis), the GC's retention signal.
    cla_activity: Vec<f64>,
    cla_inc: f64,
    num_learnts: usize,
    watches: Vec<Vec<u32>>,
    assign: Vec<i8>, // 0 undef, 1 true, -1 false (per var)
    phase: Vec<bool>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    reason: Vec<u32>,
    level: Vec<u32>,
    activity: Vec<f64>,
    var_inc: f64,
    seen: Vec<bool>,
    ok: bool,
    /// Lazy max-heap of `(activity, var)` candidates for branching.
    heap: std::collections::BinaryHeap<(u64, Var)>,
    /// Conflicts encountered in the last `solve` call.
    pub conflicts: u64,
}

fn act_key(a: f64) -> u64 {
    // Activities are non-negative; the bit pattern orders them correctly.
    a.to_bits()
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Solver {
        Solver {
            var_inc: 1.0,
            cla_inc: 1.0,
            ok: true,
            ..Solver::default()
        }
    }

    /// Number of stored clauses (problem + retained learnt).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Number of retained learnt clauses.
    pub fn learnt_count(&self) -> usize {
        self.num_learnts
    }

    /// False once the clause database is known unsatisfiable at the root.
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = self.num_vars as Var;
        self.num_vars += 1;
        self.assign.push(0);
        self.phase.push(false);
        self.reason.push(UNDEF_CLAUSE);
        self.level.push(0);
        self.activity.push(0.0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap.push((act_key(0.0), v));
        v
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    fn value_lit(&self, l: Lit) -> i8 {
        let a = self.assign[l.var() as usize];
        if l.is_neg() {
            -a
        } else {
            a
        }
    }

    /// Adds a clause. Returns `false` if the formula became trivially
    /// unsatisfiable.
    pub fn add_clause(&mut self, mut lits: Vec<Lit>) -> bool {
        if !self.ok {
            return false;
        }
        // A previous `solve` may have left the trail at a decision level
        // (models are read back before any new clause is added); clauses
        // are always attached at the root.
        if !self.trail_lim.is_empty() {
            self.cancel_until(0);
        }
        lits.sort_by_key(|l| l.0);
        lits.dedup();
        // Tautology?
        for w in lits.windows(2) {
            if w[0].var() == w[1].var() {
                return true;
            }
        }
        // Remove root-false literals; detect satisfied clauses.
        lits.retain(|l| self.value_lit(*l) != -1);
        if lits.iter().any(|l| self.value_lit(*l) == 1) {
            return true;
        }
        match lits.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(lits[0], UNDEF_CLAUSE);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                self.attach_clause(lits, false);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> u32 {
        let idx = self.clauses.len() as u32;
        self.watches[lits[0].negate().code()].push(idx);
        self.watches[lits[1].negate().code()].push(idx);
        self.clauses.push(lits);
        self.learnt.push(learnt);
        self.cla_activity.push(0.0);
        if learnt {
            self.num_learnts += 1;
        }
        idx
    }

    fn bump_clause(&mut self, ci: u32) {
        let a = &mut self.cla_activity[ci as usize];
        *a += self.cla_inc;
        if *a > 1e20 {
            for x in &mut self.cla_activity {
                *x *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    fn unchecked_enqueue(&mut self, l: Lit, reason: u32) {
        let v = l.var() as usize;
        self.assign[v] = if l.is_neg() { -1 } else { 1 };
        self.phase[v] = !l.is_neg();
        self.reason[v] = reason;
        self.level[v] = self.trail_lim.len() as u32;
        self.trail.push(l);
    }

    /// Unit propagation. Returns a conflicting clause index on conflict.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            // Clauses watching ¬p (p became true ⇒ their watched lit ¬p is
            // now false... by convention `watches[l]` holds clauses to
            // inspect when literal l becomes TRUE and thus its negation
            // (a watched literal) becomes false).
            let mut i = 0;
            let mut ws = std::mem::take(&mut self.watches[p.code()]);
            while i < ws.len() {
                let ci = ws[i];
                let false_lit = p.negate();
                // Ensure the false literal is at position 1.
                {
                    let c = &mut self.clauses[ci as usize];
                    if c[0] == false_lit {
                        c.swap(0, 1);
                    }
                }
                let first = self.clauses[ci as usize][0];
                if self.value_lit(first) == 1 {
                    i += 1;
                    continue;
                }
                // Find a new watch.
                let mut found = false;
                let len = self.clauses[ci as usize].len();
                for k in 2..len {
                    let lk = self.clauses[ci as usize][k];
                    if self.value_lit(lk) != -1 {
                        self.clauses[ci as usize].swap(1, k);
                        let new_watch = self.clauses[ci as usize][1];
                        self.watches[new_watch.negate().code()].push(ci);
                        ws.swap_remove(i);
                        found = true;
                        break;
                    }
                }
                if found {
                    continue;
                }
                // Unit or conflict.
                if self.value_lit(first) == -1 {
                    self.watches[p.code()] = ws;
                    // leave remaining entries; re-add skipped ones
                    return Some(ci);
                }
                self.unchecked_enqueue(first, ci);
                i += 1;
            }
            // Put the buffer back by move: `take` left an empty zero-capacity
            // vec here and nothing pushes to `watches[p]` while processing it
            // (a new watch for ¬p would mean ¬p is unassigned, but p is true),
            // so a move keeps the allocation instead of reallocating.
            self.watches[p.code()] = ws;
        }
        None
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v as usize] += self.var_inc;
        if self.activity[v as usize] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
            // Stale heap keys are fine: entries are validated on pop.
        }
        self.heap.push((act_key(self.activity[v as usize]), v));
    }

    /// First-UIP conflict analysis. Returns (learnt clause, backjump level).
    fn analyze(&mut self, conflict: u32) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::pos(0)]; // placeholder for UIP
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut clause = conflict;
        let cur_level = self.trail_lim.len() as u32;
        loop {
            if self.learnt[clause as usize] {
                self.bump_clause(clause);
            }
            let lits: Vec<Lit> = self.clauses[clause as usize].clone();
            let skip = usize::from(p.is_some());
            for &q in lits.iter().skip(if p.is_some() && lits[0] == p.unwrap() {
                skip
            } else {
                0
            }) {
                if Some(q) == p {
                    continue;
                }
                let v = q.var() as usize;
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump_var(q.var());
                    if self.level[v] >= cur_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk the trail backwards to the next marked literal.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var() as usize] {
                    break;
                }
            }
            let pl = self.trail[index];
            self.seen[pl.var() as usize] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = pl.negate();
                break;
            }
            p = Some(pl);
            clause = self.reason[pl.var() as usize];
            debug_assert_ne!(clause, UNDEF_CLAUSE);
        }
        for l in &learnt[1..] {
            self.seen[l.var() as usize] = false;
        }
        // Move the highest-level remaining literal to position 1 so the
        // watched-literal invariant survives the backjump.
        let mut backjump = 0;
        let mut max_idx = 1;
        for (i, l) in learnt.iter().enumerate().skip(1) {
            let lv = self.level[l.var() as usize];
            if lv > backjump {
                backjump = lv;
                max_idx = i;
            }
        }
        if learnt.len() > 1 {
            learnt.swap(1, max_idx);
        }
        (learnt, backjump)
    }

    fn cancel_until(&mut self, level: u32) {
        while self.trail_lim.len() as u32 > level {
            let lim = self.trail_lim.pop().expect("non-empty");
            while self.trail.len() > lim {
                let l = self.trail.pop().expect("non-empty");
                let v = l.var();
                self.assign[v as usize] = 0;
                self.reason[v as usize] = UNDEF_CLAUSE;
                self.heap.push((act_key(self.activity[v as usize]), v));
            }
        }
        self.qhead = self.trail.len();
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        while let Some((key, v)) = self.heap.pop() {
            if self.assign[v as usize] != 0 {
                continue;
            }
            // Skip stale entries whose activity has since grown (a fresher
            // entry exists in the heap).
            if key != act_key(self.activity[v as usize]) && key < act_key(self.activity[v as usize])
            {
                continue;
            }
            return Some(if self.phase[v as usize] {
                Lit::pos(v)
            } else {
                Lit::neg(v)
            });
        }
        // Heap exhausted: fall back to a scan (covers any bookkeeping gap).
        for v in 0..self.num_vars {
            if self.assign[v] == 0 {
                return Some(if self.phase[v] {
                    Lit::pos(v as Var)
                } else {
                    Lit::neg(v as Var)
                });
            }
        }
        None
    }

    /// Root-level clause-database reduction: removes clauses satisfied at
    /// the root (notably per-query clauses deactivated through their
    /// activation literal), strips root-false literals, and drops the
    /// lower-activity half of the long learnt clauses. Returns how many
    /// learnt clauses were removed.
    ///
    /// Sound because root assignments are permanent and learnt clauses are
    /// logical consequences of the problem clauses: deleting them can never
    /// change satisfiability, only solving speed.
    pub fn reduce_learnts(&mut self) -> usize {
        if !self.ok {
            return 0;
        }
        self.cancel_until(0);
        // Rank the long learnt clauses by activity; the lower half goes.
        // Binary learnt clauses are kept unconditionally — they are cheap
        // to propagate and disproportionately valuable.
        let mut ranked: Vec<u32> = (0..self.clauses.len() as u32)
            .filter(|&i| self.learnt[i as usize] && self.clauses[i as usize].len() > 2)
            .collect();
        ranked.sort_by(|&a, &b| {
            self.cla_activity[a as usize]
                .partial_cmp(&self.cla_activity[b as usize])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        ranked.truncate(ranked.len() / 2);
        let low_half: std::collections::HashSet<u32> = ranked.into_iter().collect();

        let old = std::mem::take(&mut self.clauses);
        let old_learnt = std::mem::take(&mut self.learnt);
        let old_act = std::mem::take(&mut self.cla_activity);
        for w in &mut self.watches {
            w.clear();
        }
        // Clause indices are about to be remapped; root-level literals are
        // the only survivors on the trail and `analyze` never resolves
        // level-0 reasons, so a blanket reset is safe.
        for r in &mut self.reason {
            *r = UNDEF_CLAUSE;
        }
        self.num_learnts = 0;
        let mut dropped = 0usize;
        let mut units: Vec<Lit> = Vec::new();
        for (i, ((mut lits, learnt), act)) in
            old.into_iter().zip(old_learnt).zip(old_act).enumerate()
        {
            if learnt && low_half.contains(&(i as u32)) {
                dropped += 1;
                continue;
            }
            if lits.iter().any(|&l| self.value_lit(l) == 1) {
                if learnt {
                    dropped += 1;
                }
                continue;
            }
            lits.retain(|&l| self.value_lit(l) != -1);
            match lits.len() {
                0 => {
                    self.ok = false;
                    return dropped;
                }
                1 => units.push(lits[0]),
                _ => {
                    let idx = self.clauses.len() as u32;
                    self.watches[lits[0].negate().code()].push(idx);
                    self.watches[lits[1].negate().code()].push(idx);
                    self.clauses.push(lits);
                    self.learnt.push(learnt);
                    self.cla_activity.push(act);
                    if learnt {
                        self.num_learnts += 1;
                    }
                }
            }
        }
        for u in units {
            match self.value_lit(u) {
                0 => self.unchecked_enqueue(u, UNDEF_CLAUSE),
                -1 => {
                    self.ok = false;
                    return dropped;
                }
                _ => {}
            }
        }
        if self.propagate().is_some() {
            self.ok = false;
        }
        dropped
    }

    /// Solves under assumptions with a conflict budget.
    pub fn solve_with_budget(&mut self, assumptions: &[Lit], max_conflicts: u64) -> SatResult {
        if !self.ok {
            return SatResult::Unsat;
        }
        self.cancel_until(0);
        self.conflicts = 0;
        loop {
            if let Some(conflict) = self.propagate() {
                self.conflicts += 1;
                if self.conflicts > max_conflicts {
                    self.cancel_until(0);
                    return SatResult::Unknown;
                }
                if self.trail_lim.is_empty() {
                    self.ok = false;
                    return SatResult::Unsat;
                }
                // Conflict below/at the assumption levels means the
                // assumptions themselves are contradictory: report Unsat.
                let (learnt, backjump) = self.analyze(conflict);
                self.cancel_until(backjump);
                let asserting = learnt[0];
                if learnt.len() == 1 {
                    self.cancel_until(0);
                    self.unchecked_enqueue(asserting, UNDEF_CLAUSE);
                } else {
                    let ci = self.attach_clause(learnt, true);
                    self.bump_clause(ci);
                    self.unchecked_enqueue(asserting, ci);
                }
                self.var_inc *= 1.05;
                self.cla_inc *= 1.001;
                continue;
            }
            // Assumptions first.
            let next_assumption = assumptions
                .iter()
                .find(|a| self.value_lit(**a) == 0)
                .copied();
            if let Some(a) = assumptions.iter().find(|a| self.value_lit(**a) == -1) {
                let _ = a;
                self.cancel_until(0);
                return SatResult::Unsat;
            }
            let decision = match next_assumption {
                Some(a) => Some(a),
                None => self.pick_branch(),
            };
            match decision {
                None => {
                    let r = SatResult::Sat;
                    return r;
                }
                Some(d) => {
                    self.trail_lim.push(self.trail.len());
                    self.unchecked_enqueue(d, UNDEF_CLAUSE);
                }
            }
        }
    }

    /// Solves under assumptions with the default budget.
    pub fn solve(&mut self, assumptions: &[Lit]) -> SatResult {
        self.solve_with_budget(assumptions, u64::MAX)
    }

    /// The model value of `v` after a `Sat` answer.
    pub fn model_value(&self, v: Var) -> bool {
        self.assign[v as usize] == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(v: Var) -> Lit {
        Lit::pos(v)
    }
    fn nl(v: Var) -> Lit {
        Lit::neg(v)
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let mut s = Solver::new();
        let a = s.new_var();
        assert!(s.add_clause(vec![l(a)]));
        assert_eq!(s.solve(&[]), SatResult::Sat);
        assert!(s.model_value(a));

        let mut s = Solver::new();
        let a = s.new_var();
        assert!(s.add_clause(vec![l(a)]));
        assert!(!s.add_clause(vec![nl(a)]));
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn simple_implication_chain() {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..10).map(|_| s.new_var()).collect();
        for w in vars.windows(2) {
            s.add_clause(vec![nl(w[0]), l(w[1])]); // w0 -> w1
        }
        s.add_clause(vec![l(vars[0])]);
        assert_eq!(s.solve(&[]), SatResult::Sat);
        for v in &vars {
            assert!(s.model_value(*v));
        }
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // 3 pigeons, 2 holes: p[i][j] = pigeon i in hole j.
        let mut s = Solver::new();
        let mut p = [[0 as Var; 2]; 3];
        for row in &mut p {
            for v in row.iter_mut() {
                *v = s.new_var();
            }
        }
        for pi in &p {
            s.add_clause(vec![l(pi[0]), l(pi[1])]);
        }
        for j in 0..2 {
            for (i1, row1) in p.iter().enumerate() {
                for row2 in &p[i1 + 1..] {
                    s.add_clause(vec![nl(row1[j]), nl(row2[j])]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn assumptions_flip_outcomes() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(vec![nl(a), l(b)]); // a -> b
        assert_eq!(s.solve(&[l(a), nl(b)]), SatResult::Unsat);
        assert_eq!(s.solve(&[l(a), l(b)]), SatResult::Sat);
        assert_eq!(s.solve(&[nl(a)]), SatResult::Sat);
    }

    #[test]
    fn random_instances_match_brute_force() {
        // Cross-check on random 3-CNF with 12 vars.
        let mut seed = 0x12345u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _case in 0..60 {
            let nv = 10usize;
            let nc = 38 + (next() % 10) as usize;
            let mut clauses: Vec<Vec<(usize, bool)>> = Vec::new();
            for _ in 0..nc {
                let mut cl = Vec::new();
                for _ in 0..3 {
                    cl.push(((next() % nv as u64) as usize, next() & 1 == 1));
                }
                clauses.push(cl);
            }
            // Brute force.
            let mut brute_sat = false;
            'outer: for m in 0u32..(1 << nv) {
                for cl in &clauses {
                    if !cl.iter().any(|(v, neg)| ((m >> v) & 1 == 1) != *neg) {
                        continue 'outer;
                    }
                }
                brute_sat = true;
                break;
            }
            // CDCL.
            let mut s = Solver::new();
            let vars: Vec<Var> = (0..nv).map(|_| s.new_var()).collect();
            let mut root_unsat = false;
            for cl in &clauses {
                let lits: Vec<Lit> = cl
                    .iter()
                    .map(|(v, neg)| if *neg { nl(vars[*v]) } else { l(vars[*v]) })
                    .collect();
                if !s.add_clause(lits) {
                    root_unsat = true;
                    break;
                }
            }
            let got = if root_unsat {
                SatResult::Unsat
            } else {
                s.solve(&[])
            };
            let want = if brute_sat {
                SatResult::Sat
            } else {
                SatResult::Unsat
            };
            assert_eq!(got, want, "disagreement on case with {nc} clauses");
            // When SAT, the model must actually satisfy the formula.
            if got == SatResult::Sat {
                for cl in &clauses {
                    assert!(
                        cl.iter().any(|(v, neg)| s.model_value(vars[*v]) != *neg),
                        "model does not satisfy clause"
                    );
                }
            }
        }
    }

    #[test]
    fn budget_reports_unknown() {
        // A hard-ish pigeonhole with a tiny budget.
        let mut s = Solver::new();
        let n = 7;
        let mut p = vec![vec![0 as Var; n - 1]; n];
        for row in p.iter_mut() {
            for x in row.iter_mut() {
                *x = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(row.iter().map(|v| l(*v)).collect());
        }
        for j in 0..n - 1 {
            for (i1, row1) in p.iter().enumerate() {
                for row2 in &p[i1 + 1..] {
                    s.add_clause(vec![nl(row1[j]), nl(row2[j])]);
                }
            }
        }
        assert_eq!(s.solve_with_budget(&[], 10), SatResult::Unknown);
    }
}
