//! Property tests for the solver: the normalizing constructors must be
//! semantics-preserving (checked against a shadow interpreter over the
//! un-normalized expression tree), and the bit-blaster must agree with the
//! concrete evaluator.

use esh_solver::bitblast::BitBlaster;
use esh_solver::equiv::{EquivChecker, EquivConfig};
use esh_solver::eval::{eval, Assignment, CVal};
use esh_solver::{TermId, TermPool};
use proptest::prelude::*;

/// An explicit expression tree, kept un-normalized for shadow evaluation.
#[derive(Debug, Clone)]
enum Tree {
    Var(u32),
    Const(u64),
    Add(Box<Tree>, Box<Tree>),
    Sub(Box<Tree>, Box<Tree>),
    Mul(Box<Tree>, Box<Tree>),
    And(Box<Tree>, Box<Tree>),
    Or(Box<Tree>, Box<Tree>),
    Xor(Box<Tree>, Box<Tree>),
    Not(Box<Tree>),
    Neg(Box<Tree>),
    ShlC(Box<Tree>, u32),
    LShrC(Box<Tree>, u32),
    AShrC(Box<Tree>, u32),
}

const WIDTH: u32 = 16;

fn mask(v: u64) -> u64 {
    v & 0xffff
}

fn sext16(v: u64) -> i64 {
    ((mask(v) << 48) as i64) >> 48
}

impl Tree {
    /// Direct (shadow) interpretation, independent of the term pool.
    fn shadow_eval(&self, vars: &[u64; 4]) -> u64 {
        match self {
            Tree::Var(i) => mask(vars[*i as usize % 4]),
            Tree::Const(c) => mask(*c),
            Tree::Add(a, b) => mask(a.shadow_eval(vars).wrapping_add(b.shadow_eval(vars))),
            Tree::Sub(a, b) => mask(a.shadow_eval(vars).wrapping_sub(b.shadow_eval(vars))),
            Tree::Mul(a, b) => mask(a.shadow_eval(vars).wrapping_mul(b.shadow_eval(vars))),
            Tree::And(a, b) => a.shadow_eval(vars) & b.shadow_eval(vars),
            Tree::Or(a, b) => a.shadow_eval(vars) | b.shadow_eval(vars),
            Tree::Xor(a, b) => a.shadow_eval(vars) ^ b.shadow_eval(vars),
            Tree::Not(a) => mask(!a.shadow_eval(vars)),
            Tree::Neg(a) => mask(a.shadow_eval(vars).wrapping_neg()),
            Tree::ShlC(a, k) => mask(a.shadow_eval(vars) << (k % WIDTH)),
            Tree::LShrC(a, k) => mask(a.shadow_eval(vars)) >> (k % WIDTH),
            Tree::AShrC(a, k) => mask((sext16(a.shadow_eval(vars)) >> (k % WIDTH)) as u64),
        }
    }

    /// Construction through the normalizing pool.
    fn build(&self, pool: &mut TermPool) -> TermId {
        match self {
            Tree::Var(i) => pool.var(i % 4, WIDTH),
            Tree::Const(c) => pool.constant(*c, WIDTH),
            Tree::Add(a, b) => {
                let (x, y) = (a.build(pool), b.build(pool));
                pool.add2(x, y)
            }
            Tree::Sub(a, b) => {
                let (x, y) = (a.build(pool), b.build(pool));
                pool.sub(x, y)
            }
            Tree::Mul(a, b) => {
                let (x, y) = (a.build(pool), b.build(pool));
                pool.mul(vec![x, y])
            }
            Tree::And(a, b) => {
                let (x, y) = (a.build(pool), b.build(pool));
                pool.and(vec![x, y])
            }
            Tree::Or(a, b) => {
                let (x, y) = (a.build(pool), b.build(pool));
                pool.or(vec![x, y])
            }
            Tree::Xor(a, b) => {
                let (x, y) = (a.build(pool), b.build(pool));
                pool.xor(vec![x, y])
            }
            Tree::Not(a) => {
                let x = a.build(pool);
                pool.not(x)
            }
            Tree::Neg(a) => {
                let x = a.build(pool);
                pool.neg(x)
            }
            Tree::ShlC(a, k) => {
                let x = a.build(pool);
                let c = pool.constant(u64::from(*k), WIDTH);
                pool.shl(x, c)
            }
            Tree::LShrC(a, k) => {
                let x = a.build(pool);
                let c = pool.constant(u64::from(*k), WIDTH);
                pool.lshr(x, c)
            }
            Tree::AShrC(a, k) => {
                let x = a.build(pool);
                let c = pool.constant(u64::from(*k), WIDTH);
                pool.ashr(x, c)
            }
        }
    }
}

fn arb_tree() -> impl Strategy<Value = Tree> {
    let leaf = prop_oneof![
        (0u32..4).prop_map(Tree::Var),
        (0u64..0x10000).prop_map(Tree::Const),
    ];
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Tree::Add(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Tree::Sub(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Tree::Mul(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Tree::And(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Tree::Or(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Tree::Xor(a.into(), b.into())),
            inner.clone().prop_map(|a| Tree::Not(a.into())),
            inner.clone().prop_map(|a| Tree::Neg(a.into())),
            (inner.clone(), 0u32..16).prop_map(|(a, k)| Tree::ShlC(a.into(), k)),
            (inner.clone(), 0u32..16).prop_map(|(a, k)| Tree::LShrC(a.into(), k)),
            (inner, 0u32..16).prop_map(|(a, k)| Tree::AShrC(a.into(), k)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Normalizing construction preserves semantics on random inputs.
    #[test]
    fn normalization_is_semantics_preserving(tree in arb_tree(), vals in [any::<u64>(); 4]) {
        let mut pool = TermPool::new();
        let t = tree.build(&mut pool);
        let mut asn = Assignment::random(0);
        for (i, v) in vals.iter().enumerate() {
            asn.vars.insert(i as u32, mask(*v));
        }
        let got = match eval(&pool, t, &asn) {
            CVal::Bv(v) => v,
            CVal::Mem(_) => unreachable!(),
        };
        prop_assert_eq!(got, tree.shadow_eval(&vals), "tree: {:?}", tree);
    }

    /// The bit-blaster agrees with the evaluator: pinning the variables to
    /// concrete values makes `term == eval(term)` valid.
    #[test]
    fn bitblast_agrees_with_eval(tree in arb_tree(), vals in [any::<u64>(); 4]) {
        let mut pool = TermPool::new();
        let t = tree.build(&mut pool);
        let mut asn = Assignment::random(0);
        for (i, v) in vals.iter().enumerate() {
            asn.vars.insert(i as u32, mask(*v));
        }
        let want = match eval(&pool, t, &asn) {
            CVal::Bv(v) => v,
            CVal::Mem(_) => unreachable!(),
        };
        let want_t = pool.constant(want, WIDTH);
        let mut bb = BitBlaster::new();
        // Pin the variables.
        for i in 0..4u32 {
            let vt = pool_var_bits(&mut bb, &pool, i);
            let v = mask(vals[i as usize]);
            for (j, l) in vt.iter().enumerate() {
                let bit = (v >> j) & 1 == 1;
                let unit = if bit { *l } else { l.negate() };
                bb.sat.add_clause(vec![unit]);
            }
        }
        match bb.prove_equal(&pool, t, want_t, 100_000) {
            Some(true) => {}
            other => prop_assert!(false, "blaster disagrees ({other:?}) on {tree:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The incremental solving path is verdict-for-verdict identical to a
    /// fresh-blaster checker, including across the retained state of many
    /// back-to-back queries on one session.
    ///
    /// The conflict budget is unbounded so `Unknown` can only arise from
    /// the structural cost gates, which both checkers compute identically
    /// — any divergence is a soundness bug in the incremental layer.
    /// Variable×variable multiplications are gated out (`max_mul_cost:
    /// 0`, again identically on both sides) because unbounded-budget
    /// multiplier equivalences take minutes each; multiplier correctness
    /// is covered by `bitblast_agrees_with_eval` above.
    #[test]
    fn incremental_matches_fresh_blaster(trees in proptest::collection::vec(
        (arb_tree(), arb_tree()), 1..4,
    )) {
        let mut inc = EquivChecker::with_config(EquivConfig {
            sat_budget: u64::MAX,
            max_mul_cost: 0,
            incremental: true,
            ..Default::default()
        });
        let mut fresh = EquivChecker::with_config(EquivConfig {
            sat_budget: u64::MAX,
            max_mul_cost: 0,
            incremental: false,
            ..Default::default()
        });
        for (ta, tb) in &trees {
            // Identical construction order keeps the two pools (and hence
            // ids, DAG sizes, and cost gates) in lockstep.
            let (a1, b1) = (ta.build(&mut inc.pool), tb.build(&mut inc.pool));
            let (a2, b2) = (ta.build(&mut fresh.pool), tb.build(&mut fresh.pool));
            prop_assert_eq!(inc.check_eq(a1, b1), fresh.check_eq(a2, b2),
                "verdicts diverged on {:?} vs {:?}", ta, tb);
            // Include a guaranteed SAT-Equal query so learnt-clause and
            // lemma retention is exercised, not just refutations.
            let lhs1 = {
                let x = ta.build(&mut inc.pool);
                let y = tb.build(&mut inc.pool);
                let xor = inc.pool.xor(vec![x, y]);
                let or = inc.pool.or(vec![x, y]);
                let and = inc.pool.and(vec![x, y]);
                let diff = inc.pool.sub(or, and);
                (xor, diff)
            };
            let lhs2 = {
                let x = ta.build(&mut fresh.pool);
                let y = tb.build(&mut fresh.pool);
                let xor = fresh.pool.xor(vec![x, y]);
                let or = fresh.pool.or(vec![x, y]);
                let and = fresh.pool.and(vec![x, y]);
                let diff = fresh.pool.sub(or, and);
                (xor, diff)
            };
            prop_assert_eq!(inc.check_eq(lhs1.0, lhs1.1), fresh.check_eq(lhs2.0, lhs2.1),
                "xor/or-and identity diverged after {:?} vs {:?}", ta, tb);
        }
    }
}

fn pool_var_bits(bb: &mut BitBlaster, pool: &TermPool, _i: u32) -> Vec<esh_solver::sat::Lit> {
    // The pool is immutable here; var terms already exist from build().
    // Find the var term by scanning (ids are dense and small).
    let t = (0..pool.len() as u32)
        .map(TermId)
        .find(|t| matches!(pool.data(*t).op, esh_solver::term::TermOp::Var(v) if v == _i));
    match t {
        Some(t) => bb.blast(pool, t),
        None => Vec::new(), // variable unused in this tree
    }
}
