#![warn(missing_docs)]

//! # esh-serve — the serving layer
//!
//! A long-running query daemon over the similarity engine: load a corpus
//! (and optionally a snapshot index) once, then answer many queries
//! concurrently behind a *bounded* admission queue. The paper frames Esh
//! as a search engine over binaries (§1); this crate supplies the
//! missing operational half — admission control, per-request deadlines,
//! live metrics and graceful drain — using only `std::net`, because the
//! build environment is offline.
//!
//! The wire protocol is newline-delimited JSON over *pipelined*
//! connections — any number of requests per socket, responses in
//! request order ([`protocol`]) — with a minimal HTTP/1.1 shim on the
//! same port for `GET /healthz` and `GET /metrics` ([`server`]).
//! Between admission and the engine sits a coalescing tier that collects
//! concurrent requests for a bounded window and scores each batch in one
//! shared `query_batch` pass. Load, latency and batch occupancy are
//! observable via [`metrics`]; `esh bench-serve` ([`bench`]) drives a
//! loopback load test whose acceptance property is that concurrent —
//! and batched — responses are *byte-identical* to offline `esh query`
//! rankings.
//!
//! ## Quickstart
//!
//! ```
//! use esh_corpus::{Corpus, CorpusConfig};
//! use esh_core::{EngineConfig, SimilarityEngine};
//! use esh_serve::protocol::{remote_query, QueryRequest};
//! use esh_serve::server::{ServeConfig, Server};
//!
//! // A tiny corpus and its engine, targets in corpus order.
//! let corpus = Corpus::build(&CorpusConfig {
//!     distractors: 0,
//!     template_family: 0,
//!     wrappers: false,
//!     patched_versions: false,
//!     toolchains: vec![esh_cc::Toolchain::paper_matrix()[2]],
//!     ..CorpusConfig::default()
//! });
//! let mut engine = SimilarityEngine::new(EngineConfig { threads: 1, ..EngineConfig::default() });
//! for p in &corpus.procs {
//!     engine.add_target(p.display(), &p.proc_);
//! }
//!
//! let server = Server::start(engine, corpus, ServeConfig {
//!     addr: "127.0.0.1:0".into(), // ephemeral port
//!     ..ServeConfig::default()
//! }).unwrap();
//! let addr = server.local_addr().to_string();
//!
//! let resp = remote_query(&addr, &QueryRequest::new("wget"),
//!                         std::time::Duration::from_secs(30)).unwrap();
//! assert!(!resp.matches.is_empty());
//! server.shutdown();
//! ```

pub mod bench;
pub mod metrics;
pub mod protocol;
pub mod server;

pub use metrics::{ServerStats, StatsSnapshot};
pub use protocol::{
    decode_line, encode_line, http_get, ranked_matches, remote_query, Outcome, PipelinedClient,
    QueryRequest, QueryResponse, RankedMatch,
};
pub use server::{ServeConfig, Server};
