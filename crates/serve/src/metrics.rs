//! Live server metrics: outcome counters, queue-depth high-water mark,
//! batch-coalescing counters, a fixed-bucket latency histogram and an
//! exact max-latency gauge.
//!
//! Everything is lock-free atomics so the hot path (workers recording an
//! outcome per request) never contends with scrapes of `/metrics`. The
//! histogram trades exactness for bounded memory: latencies are counted
//! into fixed millisecond buckets and quantiles report the upper bound of
//! the bucket containing the requested rank — the standard
//! Prometheus-histogram compromise.

use std::sync::atomic::{AtomicU64, Ordering};

use esh_core::{CacheStats, PrefilterStatsSnapshot, ShardStats};
use esh_solver::SolverPerf;

use crate::protocol::Outcome;

/// Upper bounds (milliseconds, inclusive) of the latency histogram
/// buckets. The ladder extends well past one second — SAT-heavy queries
/// against cold caches routinely take seconds, and a histogram whose top
/// finite bucket sits at the p99 reports the cap, not the tail. The
/// interior is dense (≤1.5–2× between adjacent bounds) because
/// sub-shard demand decoding moved typical cold-query latencies into
/// the tens-to-hundreds-of-milliseconds range, where the old sparse
/// ladder quantized p50/p99 too coarsely to see a regression. An
/// implicit `+Inf` bucket still catches everything slower than the last
/// bound, and the Prometheus render reports it distinctly.
pub const LATENCY_BUCKETS_MS: [u64; 25] = [
    1, 2, 3, 5, 8, 10, 15, 20, 30, 50, 75, 100, 150, 200, 300, 500, 750, 1000, 1500, 2000, 5000,
    10_000, 20_000, 60_000, 120_000,
];

/// Value quantiles report when the ranked observation fell in the `+Inf`
/// overflow bucket — deliberately past every finite bound so an
/// overflowing tail is unmistakable in dashboards.
const OVERFLOW_MS: u64 = 300_000;

/// Concurrently-updatable server counters. One instance lives for the
/// whole daemon; workers record into it and `/metrics` renders it.
#[derive(Debug)]
pub struct ServerStats {
    ok: AtomicU64,
    overloaded: AtomicU64,
    deadline_exceeded: AtomicU64,
    not_found: AtomicU64,
    bad_request: AtomicU64,
    shutting_down: AtomicU64,
    internal: AtomicU64,
    http: AtomicU64,
    queue_depth_hwm: AtomicU64,
    /// Exact maximum observed latency — the histogram's quantiles round
    /// up to bucket bounds, which hides the true tail.
    max_ms: AtomicU64,
    batches: AtomicU64,
    batched_queries: AtomicU64,
    coalesced_queries: AtomicU64,
    batch_occupancy_hwm: AtomicU64,
    buckets: [AtomicU64; LATENCY_BUCKETS_MS.len() + 1],
}

impl Default for ServerStats {
    fn default() -> ServerStats {
        ServerStats::new()
    }
}

impl ServerStats {
    /// Fresh zeroed counters.
    pub fn new() -> ServerStats {
        ServerStats {
            ok: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            not_found: AtomicU64::new(0),
            bad_request: AtomicU64::new(0),
            shutting_down: AtomicU64::new(0),
            internal: AtomicU64::new(0),
            http: AtomicU64::new(0),
            queue_depth_hwm: AtomicU64::new(0),
            max_ms: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_queries: AtomicU64::new(0),
            coalesced_queries: AtomicU64::new(0),
            batch_occupancy_hwm: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Counts one finished (or rejected) query request.
    pub fn record_outcome(&self, outcome: Outcome) {
        let counter = match outcome {
            Outcome::Ok => &self.ok,
            Outcome::Overloaded => &self.overloaded,
            Outcome::DeadlineExceeded => &self.deadline_exceeded,
            Outcome::NotFound => &self.not_found,
            Outcome::BadRequest => &self.bad_request,
            Outcome::ShuttingDown => &self.shutting_down,
            Outcome::Internal => &self.internal,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one HTTP request (`/healthz`, `/metrics`, 404s).
    pub fn record_http(&self) {
        self.http.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds one admission-to-response latency to the histogram and
    /// raises the exact max gauge.
    pub fn record_latency_ms(&self, ms: u64) {
        let idx = LATENCY_BUCKETS_MS
            .iter()
            .position(|&bound| ms <= bound)
            .unwrap_or(LATENCY_BUCKETS_MS.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.max_ms.fetch_max(ms, Ordering::Relaxed);
    }

    /// Counts one executed batch of `size` member requests that
    /// collapsed to `unique` distinct engine queries.
    pub fn record_batch(&self, size: usize, unique: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_queries.fetch_add(size as u64, Ordering::Relaxed);
        self.coalesced_queries
            .fetch_add(size.saturating_sub(unique) as u64, Ordering::Relaxed);
        self.batch_occupancy_hwm
            .fetch_max(size as u64, Ordering::Relaxed);
    }

    /// Raises the queue-depth high-water mark to `depth` if it is a new
    /// maximum.
    pub fn observe_queue_depth(&self, depth: usize) {
        self.queue_depth_hwm
            .fetch_max(depth as u64, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter, with quantiles resolved.
    pub fn snapshot(&self) -> StatsSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        StatsSnapshot {
            ok: self.ok.load(Ordering::Relaxed),
            overloaded: self.overloaded.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            not_found: self.not_found.load(Ordering::Relaxed),
            bad_request: self.bad_request.load(Ordering::Relaxed),
            shutting_down: self.shutting_down.load(Ordering::Relaxed),
            internal: self.internal.load(Ordering::Relaxed),
            http: self.http.load(Ordering::Relaxed),
            queue_depth_hwm: self.queue_depth_hwm.load(Ordering::Relaxed),
            p50_ms: quantile(&buckets, 0.50),
            p99_ms: quantile(&buckets, 0.99),
            max_ms: self.max_ms.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_queries: self.batched_queries.load(Ordering::Relaxed),
            coalesced_queries: self.coalesced_queries.load(Ordering::Relaxed),
            batch_occupancy_hwm: self.batch_occupancy_hwm.load(Ordering::Relaxed),
        }
    }

    /// Renders the Prometheus-style `/metrics` payload, folding in the
    /// engine's VCP-cache, SAT-solver, sketch-prefilter and lazy-shard
    /// counters so one scrape shows the whole serving stack.
    pub fn render(
        &self,
        cache: &CacheStats,
        solver: &SolverPerf,
        prefilter: &PrefilterStatsSnapshot,
        shards: &ShardStats,
        queue_depth: usize,
        pending_depth: usize,
    ) -> String {
        let s = self.snapshot();
        let mut out = String::new();
        for (label, v) in [
            ("ok", s.ok),
            ("overloaded", s.overloaded),
            ("deadline_exceeded", s.deadline_exceeded),
            ("not_found", s.not_found),
            ("bad_request", s.bad_request),
            ("shutting_down", s.shutting_down),
            ("internal", s.internal),
        ] {
            out.push_str(&format!("esh_requests_total{{outcome=\"{label}\"}} {v}\n"));
        }
        out.push_str(&format!("esh_http_requests_total {}\n", s.http));
        out.push_str(&format!("esh_queue_depth {queue_depth}\n"));
        out.push_str(&format!("esh_queue_depth_high_water {}\n", s.queue_depth_hwm));
        out.push_str(&format!(
            "esh_request_latency_ms{{quantile=\"0.5\"}} {}\n",
            s.p50_ms
        ));
        out.push_str(&format!(
            "esh_request_latency_ms{{quantile=\"0.99\"}} {}\n",
            s.p99_ms
        ));
        out.push_str(&format!("esh_request_latency_ms_max {}\n", s.max_ms));
        out.push_str(&format!("esh_batch_queue_depth {pending_depth}\n"));
        out.push_str(&format!("esh_batches_total {}\n", s.batches));
        out.push_str(&format!("esh_batched_queries_total {}\n", s.batched_queries));
        out.push_str(&format!(
            "esh_coalesced_queries_total {}\n",
            s.coalesced_queries
        ));
        out.push_str(&format!(
            "esh_batch_occupancy_high_water {}\n",
            s.batch_occupancy_hwm
        ));
        // Full cumulative histogram. The `+Inf` bucket is rendered as its
        // own series (not folded into the last finite bound) so overflow
        // is visible as the gap between `le="120000"` and `le="+Inf"`.
        let mut cumulative = 0u64;
        for (i, &bound) in LATENCY_BUCKETS_MS.iter().enumerate() {
            cumulative += self.buckets[i].load(Ordering::Relaxed);
            out.push_str(&format!(
                "esh_request_latency_ms_bucket{{le=\"{bound}\"}} {cumulative}\n"
            ));
        }
        cumulative += self.buckets[LATENCY_BUCKETS_MS.len()].load(Ordering::Relaxed);
        out.push_str(&format!(
            "esh_request_latency_ms_bucket{{le=\"+Inf\"}} {cumulative}\n"
        ));
        out.push_str(&format!("esh_vcp_cache_hits_total {}\n", cache.hits));
        out.push_str(&format!("esh_vcp_cache_misses_total {}\n", cache.misses));
        out.push_str(&format!("esh_vcp_cache_entries {}\n", cache.entries));
        out.push_str(&format!(
            "esh_vcp_cache_hit_rate {:.6}\n",
            cache.hit_rate()
        ));
        out.push_str(&format!("esh_sat_queries_total {}\n", solver.sat_queries));
        out.push_str(&format!("esh_sat_conflicts_total {}\n", solver.conflicts));
        out.push_str(&format!(
            "esh_sat_time_ms {:.3}\n",
            solver.sat_time_ns as f64 / 1e6
        ));
        out.push_str(&format!(
            "esh_sat_learnts_retained {}\n",
            solver.retained_learnts
        ));
        out.push_str(&format!("esh_sat_solver_resets_total {}\n", solver.solver_resets));
        out.push_str(&format!(
            "esh_prefilter_pairs_pruned_total {}\n",
            prefilter.pairs_pruned
        ));
        out.push_str(&format!(
            "esh_prefilter_sketch_collisions_total {}\n",
            prefilter.sketch_collisions
        ));
        out.push_str(&format!(
            "esh_prefilter_exact_fallbacks_total {}\n",
            prefilter.exact_fallbacks
        ));
        out.push_str(&format!(
            "esh_prefilter_ambiguous_probes_total {}\n",
            prefilter.ambiguous_probes
        ));
        out.push_str(&format!(
            "esh_prefilter_probe_escalations_total {}\n",
            prefilter.probe_escalations
        ));
        out.push_str(&format!(
            "esh_prefilter_refined_pairs_total {}\n",
            prefilter.refined_pairs
        ));
        out.push_str(&format!(
            "esh_prefilter_refine_passes_total {}\n",
            prefilter.refine_passes
        ));
        // Scale tier: shard residency (gauges) and query fan-out
        // (counter). A fully resident engine (JSON snapshot) reports
        // all-zero; a lazy v5 index reports loaded < total until queries
        // have touched every segment, evictions and resident bytes only
        // move under a `--shard-budget-mb` cap, and the pruned counter
        // only under a sketch-band prune sidecar.
        out.push_str(&format!("esh_shards_total {}\n", shards.shards_total));
        out.push_str(&format!("esh_shards_loaded {}\n", shards.shards_loaded));
        out.push_str(&format!(
            "esh_shard_fanout_total {}\n",
            shards.fanout_total
        ));
        out.push_str(&format!(
            "esh_shards_evicted_total {}\n",
            shards.evicted_total
        ));
        out.push_str(&format!(
            "esh_shards_resident_bytes {}\n",
            shards.resident_bytes
        ));
        out.push_str(&format!(
            "esh_shards_resident_bytes_peak {}\n",
            shards.resident_bytes_peak
        ));
        out.push_str(&format!(
            "esh_shards_pruned_total {}\n",
            shards.pruned_total
        ));
        // Sub-shard demand decoding: decoded-vs-mapped byte gauges show
        // how much of the mapped corpus queries actually paid to decode,
        // and `partial` counts shards serving with raw neighbours still
        // undecoded. Under `--whole-decode` (or a JSON snapshot)
        // decoded == resident and partial stays 0.
        out.push_str(&format!(
            "esh_shard_decoded_bytes {}\n",
            shards.decoded_bytes
        ));
        out.push_str(&format!(
            "esh_shard_mapped_bytes {}\n",
            shards.mapped_bytes
        ));
        out.push_str(&format!(
            "esh_classes_decoded_total {}\n",
            shards.classes_decoded_total
        ));
        out.push_str(&format!(
            "esh_shards_partial {}\n",
            shards.shards_partial
        ));
        out
    }
}

/// A plain copy of the counters at one instant — what the daemon prints
/// at shutdown and what `bench-serve` records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Completed queries.
    pub ok: u64,
    /// Requests rejected because the admission queue was full.
    pub overloaded: u64,
    /// Requests whose deadline expired before or during scoring.
    pub deadline_exceeded: u64,
    /// Requests naming no corpus procedure.
    pub not_found: u64,
    /// Unparseable request lines.
    pub bad_request: u64,
    /// `@shutdown` acknowledgements.
    pub shutting_down: u64,
    /// Server-side faults (for example a corrupted index shard).
    pub internal: u64,
    /// HTTP requests served by the metrics shim.
    pub http: u64,
    /// Deepest the admission queue ever got.
    pub queue_depth_hwm: u64,
    /// Median admission-to-response latency (bucket upper bound).
    pub p50_ms: u64,
    /// 99th-percentile latency (bucket upper bound).
    pub p99_ms: u64,
    /// Exact maximum latency observed (not a bucket bound).
    pub max_ms: u64,
    /// Engine batches executed by the coalescing tier.
    pub batches: u64,
    /// Requests that went through a batch (sum of batch sizes).
    pub batched_queries: u64,
    /// Requests that shared another member's engine pass (same corpus
    /// procedure in the same batch).
    pub coalesced_queries: u64,
    /// Largest batch ever executed.
    pub batch_occupancy_hwm: u64,
}

impl StatsSnapshot {
    /// Total query requests across all outcomes (HTTP excluded).
    pub fn total(&self) -> u64 {
        self.ok
            + self.overloaded
            + self.deadline_exceeded
            + self.not_found
            + self.bad_request
            + self.shutting_down
            + self.internal
    }
}

/// Bucket-resolved quantile: the upper bound of the bucket holding the
/// `q`-ranked observation (0 when the histogram is empty).
fn quantile(buckets: &[u64], q: f64) -> u64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = ((q * total as f64).ceil() as u64).max(1);
    let mut cumulative = 0u64;
    for (i, &count) in buckets.iter().enumerate() {
        cumulative += count;
        if cumulative >= rank {
            return LATENCY_BUCKETS_MS.get(i).copied().unwrap_or(OVERFLOW_MS);
        }
    }
    OVERFLOW_MS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_resolve_to_bucket_bounds() {
        let stats = ServerStats::new();
        // 98 fast requests, 2 slow ones: p50 in the ≤3ms bucket, p99 in
        // the ≤500ms bucket.
        for _ in 0..98 {
            stats.record_latency_ms(3);
        }
        stats.record_latency_ms(400);
        stats.record_latency_ms(450);
        let s = stats.snapshot();
        assert_eq!(s.p50_ms, 3);
        assert_eq!(s.p99_ms, 500);
    }

    #[test]
    fn densified_ladder_separates_demand_decode_latencies() {
        // The sparse pre-v6 ladder jumped 50 → 100 → 200: a 60ms and a
        // 180ms query were two buckets apart at best. The dense interior
        // keeps sub-shard decode improvements visible as distinct bounds.
        let stats = ServerStats::new();
        stats.record_latency_ms(60);
        assert_eq!(stats.snapshot().p50_ms, 75);
        let stats = ServerStats::new();
        stats.record_latency_ms(130);
        assert_eq!(stats.snapshot().p50_ms, 150);
        let stats = ServerStats::new();
        stats.record_latency_ms(250);
        assert_eq!(stats.snapshot().p50_ms, 300);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let s = ServerStats::new().snapshot();
        assert_eq!(s.p50_ms, 0);
        assert_eq!(s.p99_ms, 0);
        assert_eq!(s.total(), 0);
    }

    #[test]
    fn overflow_latencies_land_in_the_terminal_bucket() {
        let stats = ServerStats::new();
        // A minute-long query now has its own finite bucket…
        stats.record_latency_ms(60_000);
        assert_eq!(stats.snapshot().p50_ms, 60_000);
        // …and only latencies past the whole ladder report the overflow
        // sentinel.
        let slow = ServerStats::new();
        slow.record_latency_ms(150_000);
        assert_eq!(slow.snapshot().p50_ms, OVERFLOW_MS);
    }

    #[test]
    fn render_reports_cumulative_buckets_and_distinct_inf() {
        let stats = ServerStats::new();
        stats.record_latency_ms(3);
        stats.record_latency_ms(1500);
        stats.record_latency_ms(150_000); // past every finite bound
        let text = stats.render(
            &CacheStats {
                hits: 0,
                misses: 0,
                entries: 0,
            },
            &SolverPerf::default(),
            &PrefilterStatsSnapshot::default(),
            &ShardStats::default(),
            0,
            0,
        );
        assert!(text.contains("esh_request_latency_ms_bucket{le=\"3\"} 1\n"));
        assert!(text.contains("esh_request_latency_ms_bucket{le=\"5\"} 1\n"));
        assert!(text.contains("esh_request_latency_ms_bucket{le=\"1500\"} 2\n"));
        assert!(text.contains("esh_request_latency_ms_bucket{le=\"2000\"} 2\n"));
        assert!(text.contains("esh_request_latency_ms_bucket{le=\"120000\"} 2\n"));
        assert!(text.contains("esh_request_latency_ms_bucket{le=\"+Inf\"} 3\n"));
    }

    #[test]
    fn render_includes_prefilter_counters() {
        let text = ServerStats::new().render(
            &CacheStats {
                hits: 0,
                misses: 0,
                entries: 0,
            },
            &SolverPerf::default(),
            &PrefilterStatsSnapshot {
                pairs_pruned: 41,
                sketch_collisions: 7,
                exact_fallbacks: 3,
                ambiguous_probes: 11,
                probe_escalations: 5,
                refined_pairs: 13,
                refine_passes: 2,
            },
            &ShardStats::default(),
            0,
            0,
        );
        assert!(text.contains("esh_prefilter_pairs_pruned_total 41\n"));
        assert!(text.contains("esh_prefilter_sketch_collisions_total 7\n"));
        assert!(text.contains("esh_prefilter_exact_fallbacks_total 3\n"));
        assert!(text.contains("esh_prefilter_ambiguous_probes_total 11\n"));
        assert!(text.contains("esh_prefilter_probe_escalations_total 5\n"));
        assert!(text.contains("esh_prefilter_refined_pairs_total 13\n"));
        assert!(text.contains("esh_prefilter_refine_passes_total 2\n"));
    }

    #[test]
    fn render_includes_shard_residency_gauges() {
        let shards = ShardStats {
            shards_total: 9,
            shards_loaded: 4,
            fanout_total: 31,
            evicted_total: 5,
            resident_bytes: 4096,
            resident_bytes_peak: 8192,
            pruned_total: 17,
            decoded_bytes: 2048,
            mapped_bytes: 65_536,
            classes_decoded_total: 23,
            shards_partial: 3,
        };
        let text = ServerStats::new().render(
            &CacheStats {
                hits: 0,
                misses: 0,
                entries: 0,
            },
            &SolverPerf::default(),
            &PrefilterStatsSnapshot::default(),
            &shards,
            0,
            0,
        );
        assert!(text.contains("esh_shards_total 9\n"));
        assert!(text.contains("esh_shards_loaded 4\n"));
        assert!(text.contains("esh_shard_fanout_total 31\n"));
        assert!(text.contains("esh_shards_evicted_total 5\n"));
        assert!(text.contains("esh_shards_resident_bytes 4096\n"));
        assert!(text.contains("esh_shards_resident_bytes_peak 8192\n"));
        assert!(text.contains("esh_shards_pruned_total 17\n"));
        assert!(text.contains("esh_shard_decoded_bytes 2048\n"));
        assert!(text.contains("esh_shard_mapped_bytes 65536\n"));
        assert!(text.contains("esh_classes_decoded_total 23\n"));
        assert!(text.contains("esh_shards_partial 3\n"));
    }

    #[test]
    fn internal_outcome_counts_and_renders() {
        let stats = ServerStats::new();
        stats.record_outcome(Outcome::Internal);
        let s = stats.snapshot();
        assert_eq!(s.internal, 1);
        assert_eq!(s.total(), 1);
    }

    #[test]
    fn max_latency_gauge_is_exact_not_a_bucket_bound() {
        let stats = ServerStats::new();
        stats.record_latency_ms(3);
        stats.record_latency_ms(437); // p-quantiles would report 500
        let s = stats.snapshot();
        assert_eq!(s.max_ms, 437);
        assert_eq!(s.p99_ms, 500, "bucket quantile rounds up; max must not");
        stats.record_latency_ms(12);
        assert_eq!(stats.snapshot().max_ms, 437, "max is monotone");
    }

    #[test]
    fn batch_counters_accumulate_and_render() {
        let stats = ServerStats::new();
        stats.record_batch(6, 4); // 6 riders, 4 engine items → 2 coalesced
        stats.record_batch(1, 1);
        let s = stats.snapshot();
        assert_eq!(s.batches, 2);
        assert_eq!(s.batched_queries, 7);
        assert_eq!(s.coalesced_queries, 2);
        assert_eq!(s.batch_occupancy_hwm, 6);
        let text = stats.render(
            &CacheStats {
                hits: 0,
                misses: 0,
                entries: 0,
            },
            &SolverPerf::default(),
            &PrefilterStatsSnapshot::default(),
            &ShardStats::default(),
            0,
            3,
        );
        assert!(text.contains("esh_batches_total 2\n"));
        assert!(text.contains("esh_batched_queries_total 7\n"));
        assert!(text.contains("esh_coalesced_queries_total 2\n"));
        assert!(text.contains("esh_batch_occupancy_high_water 6\n"));
        assert!(text.contains("esh_batch_queue_depth 3\n"));
        assert!(text.contains("esh_request_latency_ms_max 0\n"));
    }

    #[test]
    fn high_water_mark_is_monotone() {
        let stats = ServerStats::new();
        stats.observe_queue_depth(3);
        stats.observe_queue_depth(7);
        stats.observe_queue_depth(2);
        assert_eq!(stats.snapshot().queue_depth_hwm, 7);
    }

    #[test]
    fn outcomes_count_into_distinct_counters() {
        let stats = ServerStats::new();
        stats.record_outcome(Outcome::Ok);
        stats.record_outcome(Outcome::Ok);
        stats.record_outcome(Outcome::Overloaded);
        stats.record_outcome(Outcome::DeadlineExceeded);
        let s = stats.snapshot();
        assert_eq!(s.ok, 2);
        assert_eq!(s.overloaded, 1);
        assert_eq!(s.deadline_exceeded, 1);
        assert_eq!(s.total(), 4);
    }
}
