//! `esh bench-serve`: a loopback load generator for the daemon.
//!
//! Five phases, each exercising one acceptance property:
//!
//! 1. **Correctness under load** — concurrent one-shot clients fire the
//!    same queries the offline engine answered; every response must
//!    carry rankings *byte-identical* (f64 bit patterns included) to the
//!    offline baseline.
//! 2. **Sustained pipelined load** — persistent connections at 4× and
//!    16× the phase-1 concurrency, run once with coalescing disabled
//!    (`batch_max = 1`) and once batched, on identically warmed servers.
//!    Every batched response must stay byte-identical to the offline
//!    baseline, and in full mode the batched 16× run must deliver ≥ 2×
//!    the unbatched throughput.
//! 3. **Admission control** — a burst against a one-worker,
//!    one-slot-queue server must produce typed `Overloaded` rejections,
//!    never hangs or silent drops.
//! 4. **Deadlines** — a zero-budget request must come back
//!    `DeadlineExceeded` without touching the verifier.
//! 5. **Observability & drain** — `/healthz` and `/metrics` answer over
//!    HTTP, and a wire `@shutdown` drains the daemon cleanly.
//!
//! Results land in `BENCH_serve.json` at the repo root. `--smoke`
//! shrinks the client counts for CI but keeps a short sustained phase
//! (batching enabled) so the byte-identity gate covers batched execution
//! on every CI run.

use std::time::{Duration, Instant};

use esh_core::{EngineConfig, SimilarityEngine, TargetId};
use esh_corpus::{Corpus, CorpusConfig};

use crate::protocol::{
    http_get, ranked_matches, remote_query, Outcome, PipelinedClient, QueryRequest, RankedMatch,
};
use crate::server::{ServeConfig, Server};

/// Client-side timeout: generous, the server enforces the real deadline.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

/// Builds the engine the daemon serves — one target per corpus
/// procedure, in corpus order (the contract [`Server::start`] checks).
fn engine_over(corpus: &Corpus, threads: usize) -> SimilarityEngine {
    let mut engine = SimilarityEngine::new(EngineConfig {
        threads,
        ..EngineConfig::default()
    });
    for p in &corpus.procs {
        engine.add_target(p.display(), &p.proc_);
    }
    engine
}

/// Distinct CVE query display names present in the corpus, capped at
/// `n`. Using display-name substrings mirrors real CLI usage.
fn query_names(corpus: &Corpus, n: usize) -> Vec<String> {
    let mut names: Vec<String> = corpus
        .procs
        .iter()
        .filter(|p| p.cve.is_some())
        .map(|p| p.display())
        .collect();
    names.sort();
    names.dedup();
    names.truncate(n);
    names
}

/// Byte-identical comparison: rank, name, and the bit pattern of every
/// score must agree.
fn identical(a: &[RankedMatch], b: &[RankedMatch]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.rank == y.rank
                && x.name == y.name
                && x.ges.to_bits() == y.ges.to_bits()
                && x.s_log.to_bits() == y.s_log.to_bits()
                && x.s_vcp.to_bits() == y.s_vcp.to_bits()
        })
}

/// One sustained-load run: fixed client count, fixed batching mode.
struct Sustained {
    label: &'static str,
    clients: usize,
    batch_max: usize,
    batch_window_ms: u64,
    requests: usize,
    throughput_rps: f64,
    p50_ms: u64,
    p99_ms: u64,
    max_ms: u64,
    batches: u64,
    coalesced: u64,
    occupancy_hwm: u64,
    avg_occupancy: f64,
}

impl Sustained {
    fn json(&self) -> String {
        format!(
            "{{ \"phase\": \"{label}\", \"clients\": {clients}, \
             \"batch_max\": {bmax}, \"batch_window_ms\": {bwin}, \
             \"requests\": {req}, \"identical_to_offline\": true, \
             \"throughput_rps\": {rps:.1}, \"p50_ms\": {p50}, \
             \"p99_ms\": {p99}, \"max_ms\": {max}, \
             \"batches\": {batches}, \"avg_batch_occupancy\": {avg:.2}, \
             \"batch_occupancy_high_water\": {hwm}, \
             \"coalesced\": {coal} }}",
            label = self.label,
            clients = self.clients,
            bmax = self.batch_max,
            bwin = self.batch_window_ms,
            req = self.requests,
            rps = self.throughput_rps,
            p50 = self.p50_ms,
            p99 = self.p99_ms,
            max = self.max_ms,
            batches = self.batches,
            avg = self.avg_occupancy,
            hwm = self.occupancy_hwm,
            coal = self.coalesced,
        )
    }
}

/// Drives one sustained run: `clients` persistent pipelined connections,
/// each keeping up to `queries.len()` requests in flight, every response
/// checked byte-identical against the offline baseline. The server is
/// warmed with one pass over the query set first, so batched and
/// unbatched runs compare steady-state serving rather than first-touch
/// verifier cost.
#[allow(clippy::too_many_arguments)]
fn sustained_phase(
    corpus: &Corpus,
    queries: &[String],
    baselines: &[Vec<RankedMatch>],
    top_n: usize,
    label: &'static str,
    clients: usize,
    reps: usize,
    batch_max: usize,
    batch_window_ms: u64,
) -> Result<Sustained, String> {
    let request_for = |qi: usize| QueryRequest {
        query: queries[qi].clone(),
        top_n: Some(top_n as u64),
        // Generous explicit budget: at high unbatched concurrency the
        // tail request legitimately queues for several seconds, and this
        // phase measures throughput, not deadline enforcement.
        deadline_ms: Some(600_000),
    };
    let server = Server::start(
        engine_over(corpus, 1),
        corpus.clone(),
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: clients,
            queue_capacity: clients.max(8),
            batch_max,
            batch_window_ms,
            ..ServeConfig::default()
        },
    )
    .map_err(|e| format!("starting sustained server ({label}): {e}"))?;
    let addr = server.local_addr().to_string();

    let mut warm = PipelinedClient::connect(&addr, CLIENT_TIMEOUT)
        .map_err(|e| format!("sustained {label} warmup connect: {e}"))?;
    for qi in 0..queries.len() {
        let resp = warm
            .query(&request_for(qi))
            .map_err(|e| format!("sustained {label} warmup query {qi}: {e}"))?;
        if resp.outcome != Outcome::Ok {
            return Err(format!(
                "sustained {label} warmup query {qi}: {:?}",
                resp.outcome
            ));
        }
    }
    drop(warm);

    let per_client = reps * queries.len();
    let t0 = Instant::now();
    std::thread::scope(|scope| -> Result<(), String> {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let (addr, baselines, request_for) = (&addr, baselines, &request_for);
                scope.spawn(move || -> Result<(), String> {
                    let mut client = PipelinedClient::connect(addr, CLIENT_TIMEOUT)
                        .map_err(|e| format!("sustained client {c} connect: {e}"))?;
                    // Offset the cycle per client so different names are
                    // in flight concurrently — coalescing has to earn its
                    // keep on a mixed stream, not a single hot query.
                    let pick = |i: usize| (c + i) % baselines.len();
                    let window = baselines.len().min(per_client);
                    for i in 0..window {
                        client
                            .send(&request_for(pick(i)))
                            .map_err(|e| format!("sustained client {c} send {i}: {e}"))?;
                    }
                    for i in 0..per_client {
                        let resp = client
                            .recv()
                            .map_err(|e| format!("sustained client {c} recv {i}: {e}"))?;
                        if resp.outcome != Outcome::Ok {
                            return Err(format!(
                                "sustained client {c} response {i}: {:?} ({:?})",
                                resp.outcome, resp.error
                            ));
                        }
                        if !identical(&resp.matches, &baselines[pick(i)]) {
                            return Err(format!(
                                "sustained client {c} response {i}: rankings diverged \
                                 from the offline baseline"
                            ));
                        }
                        let next = i + window;
                        if next < per_client {
                            client
                                .send(&request_for(pick(next)))
                                .map_err(|e| format!("sustained client {c} send {next}: {e}"))?;
                        }
                    }
                    Ok(())
                })
            })
            .collect();
        for h in handles {
            h.join().expect("sustained client panicked")?;
        }
        Ok(())
    })?;
    let elapsed = t0.elapsed();
    let requests = clients * per_client;

    let ack = remote_query(&addr, &QueryRequest::new("@shutdown"), CLIENT_TIMEOUT)
        .map_err(|e| format!("sustained {label} @shutdown: {e}"))?;
    if ack.outcome != Outcome::ShuttingDown {
        return Err(format!(
            "sustained {label} @shutdown acknowledged with {:?}",
            ack.outcome
        ));
    }
    let stats = server.join();
    let expected_ok = (requests + queries.len()) as u64; // + warmup
    if stats.ok != expected_ok {
        return Err(format!(
            "sustained {label} answered {} ok, expected {expected_ok}",
            stats.ok
        ));
    }
    Ok(Sustained {
        label,
        clients,
        batch_max,
        batch_window_ms,
        requests,
        throughput_rps: requests as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_ms: stats.p50_ms,
        p99_ms: stats.p99_ms,
        max_ms: stats.max_ms,
        batches: stats.batches,
        coalesced: stats.coalesced_queries,
        occupancy_hwm: stats.batch_occupancy_hwm,
        avg_occupancy: if stats.batches == 0 {
            0.0
        } else {
            stats.batched_queries as f64 / stats.batches as f64
        },
    })
}

/// Runs the full bench and writes `BENCH_serve.json`. `smoke` shrinks
/// the load for CI. Returns an error on any property violation.
pub fn run(smoke: bool) -> Result<(), String> {
    let t0 = Instant::now();
    let (clients, repeats, n_queries) = if smoke { (2, 2, 2) } else { (4, 5, 4) };
    let top_n = 10usize;

    eprintln!("bench-serve: building corpus...");
    let corpus = Corpus::build(&CorpusConfig::small());
    let queries = query_names(&corpus, n_queries);
    if queries.len() < n_queries {
        return Err(format!(
            "corpus has only {} CVE queries, need {n_queries}",
            queries.len()
        ));
    }

    // Offline baseline: the rankings `esh query` would print.
    eprintln!("bench-serve: computing offline baselines...");
    let offline = engine_over(&corpus, 0);
    let baselines: Vec<Vec<RankedMatch>> = queries
        .iter()
        .map(|q| {
            let qi = corpus
                .procs
                .iter()
                .position(|p| p.display().contains(q.as_str()))
                .expect("query name came from the corpus");
            let scores = offline.query(&corpus.procs[qi].proc_);
            ranked_matches(&scores, Some(TargetId(qi)), top_n)
        })
        .collect();

    // Phase 1: sustained concurrent load, byte-identical responses.
    eprintln!(
        "bench-serve: load phase ({clients} clients x {repeats} reps x {} queries)...",
        queries.len()
    );
    let server = Server::start(
        engine_over(&corpus, 1),
        corpus.clone(),
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_capacity: 64,
            ..ServeConfig::default()
        },
    )
    .map_err(|e| format!("starting load server: {e}"))?;
    let addr = server.local_addr().to_string();

    let load_start = Instant::now();
    let total_requests = clients * repeats * queries.len();
    std::thread::scope(|scope| -> Result<(), String> {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let (addr, queries, baselines) = (&addr, &queries, &baselines);
                scope.spawn(move || -> Result<(), String> {
                    for r in 0..repeats {
                        for (qi, q) in queries.iter().enumerate() {
                            let request = QueryRequest {
                                query: q.clone(),
                                top_n: Some(top_n as u64),
                                deadline_ms: None,
                            };
                            let resp = remote_query(addr, &request, CLIENT_TIMEOUT)
                                .map_err(|e| format!("client {c} rep {r} query {qi}: {e}"))?;
                            if resp.outcome != Outcome::Ok {
                                return Err(format!(
                                    "client {c} rep {r} query {qi}: outcome {:?} ({:?})",
                                    resp.outcome, resp.error
                                ));
                            }
                            if !identical(&resp.matches, &baselines[qi]) {
                                return Err(format!(
                                    "client {c} rep {r} query {qi}: rankings diverged \
                                     from the offline baseline"
                                ));
                            }
                        }
                    }
                    Ok(())
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread panicked")?;
        }
        Ok(())
    })?;
    let load_elapsed = load_start.elapsed();

    // Phase 5a (same server, still warm): observability probes.
    let (status, body) = http_get(&addr, "/healthz", CLIENT_TIMEOUT)
        .map_err(|e| format!("healthz probe: {e}"))?;
    if status != 200 || body.trim() != "ok" {
        return Err(format!("healthz returned {status} {body:?}"));
    }
    let (status, metrics) = http_get(&addr, "/metrics", CLIENT_TIMEOUT)
        .map_err(|e| format!("metrics probe: {e}"))?;
    if status != 200 || !metrics.contains("esh_requests_total{outcome=\"ok\"}") {
        return Err(format!("metrics returned {status} without request counters"));
    }

    // Phase 5b: graceful drain over the wire.
    let ack = remote_query(&addr, &QueryRequest::new("@shutdown"), CLIENT_TIMEOUT)
        .map_err(|e| format!("@shutdown request: {e}"))?;
    if ack.outcome != Outcome::ShuttingDown {
        return Err(format!("@shutdown acknowledged with {:?}", ack.outcome));
    }
    let load_stats = server.join();
    if load_stats.ok != total_requests as u64 {
        return Err(format!(
            "load server answered {} ok, expected {total_requests}",
            load_stats.ok
        ));
    }
    let throughput = total_requests as f64 / load_elapsed.as_secs_f64().max(1e-9);
    // The serve engine's cross-query cache hit rate, scraped from the
    // /metrics payload fetched while the server was still up.
    let hit_rate: f64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("esh_vcp_cache_hit_rate "))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0.0);
    eprintln!(
        "bench-serve: load ok ({total_requests} requests, {throughput:.1} req/s, \
         p50 {}ms p99 {}ms max {}ms)",
        load_stats.p50_ms, load_stats.p99_ms, load_stats.max_ms
    );

    // Phase 2: sustained pipelined load, unbatched vs batched. Each run
    // is a fresh warmed server; the batched 16× run carries the ≥2×
    // throughput gate (full mode only — smoke keeps the byte-identity
    // gate but is too short for stable throughput ratios).
    let batched_max = 16;
    let batched_window_ms = 3;
    let sustained_runs: &[(&'static str, usize, usize)] = if smoke {
        &[("16x", 16, 1)]
    } else {
        &[("4x", 16, 2), ("16x", 64, 2)]
    };
    let mut sustained: Vec<Sustained> = Vec::new();
    let mut speedup_16x = 0.0f64;
    for &(label, sustained_clients, reps) in sustained_runs {
        eprintln!(
            "bench-serve: sustained {label} ({sustained_clients} pipelined clients, \
             unbatched then batched)..."
        );
        let unbatched = sustained_phase(
            &corpus, &queries, &baselines, top_n, label, sustained_clients, reps, 1, 0,
        )?;
        let batched = sustained_phase(
            &corpus,
            &queries,
            &baselines,
            top_n,
            label,
            sustained_clients,
            reps,
            batched_max,
            batched_window_ms,
        )?;
        let speedup = batched.throughput_rps / unbatched.throughput_rps.max(1e-9);
        eprintln!(
            "bench-serve: sustained {label} ok (unbatched {:.1} req/s, batched {:.1} req/s, \
             {speedup:.2}x, avg occupancy {:.1}, coalesced {})",
            unbatched.throughput_rps, batched.throughput_rps, batched.avg_occupancy,
            batched.coalesced
        );
        if label == "16x" {
            speedup_16x = speedup;
        }
        sustained.push(unbatched);
        sustained.push(batched);
    }
    if !smoke && speedup_16x < 2.0 {
        return Err(format!(
            "sustained 16x batched throughput is only {speedup_16x:.2}x the unbatched \
             baseline, need >= 2x"
        ));
    }

    // Phase 3: admission control. One worker pinned by a stalled
    // connection (it sends nothing, so the worker blocks until the read
    // timeout), one queue slot filled the same way; every further
    // request must be rejected as Overloaded.
    eprintln!("bench-serve: overload phase...");
    let server = Server::start(
        engine_over(&corpus, 1),
        corpus.clone(),
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            queue_capacity: 1,
            read_timeout_ms: 3_000,
            ..ServeConfig::default()
        },
    )
    .map_err(|e| format!("starting overload server: {e}"))?;
    let addr = server.local_addr().to_string();
    let stall_worker = std::net::TcpStream::connect(&addr).map_err(|e| e.to_string())?;
    // Stagger the stalls so the worker pops the first (and blocks on its
    // silent socket) before the second arrives to occupy the queue slot.
    std::thread::sleep(Duration::from_millis(200));
    let stall_queue = std::net::TcpStream::connect(&addr).map_err(|e| e.to_string())?;
    std::thread::sleep(Duration::from_millis(200));
    let burst = if smoke { 4 } else { 8 };
    let mut overloaded = 0usize;
    for _ in 0..burst {
        let resp = remote_query(&addr, &QueryRequest::new(&queries[0]), CLIENT_TIMEOUT)
            .map_err(|e| format!("overload probe: {e}"))?;
        match resp.outcome {
            Outcome::Overloaded => overloaded += 1,
            Outcome::Ok => {}
            other => return Err(format!("overload phase saw {other:?}")),
        }
    }
    drop(stall_worker);
    drop(stall_queue);
    let overload_stats = server.shutdown();
    if overloaded == 0 {
        return Err("overload phase produced no Overloaded rejections".into());
    }
    if overload_stats.queue_depth_hwm > 1 {
        return Err(format!(
            "queue bound violated: high-water {} > capacity 1",
            overload_stats.queue_depth_hwm
        ));
    }
    eprintln!("bench-serve: overload ok ({overloaded}/{burst} rejected)");

    // Phase 4: deadlines. A zero-budget request expires in the queue.
    eprintln!("bench-serve: deadline phase...");
    let server = Server::start(
        engine_over(&corpus, 1),
        corpus.clone(),
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            queue_capacity: 8,
            ..ServeConfig::default()
        },
    )
    .map_err(|e| format!("starting deadline server: {e}"))?;
    let addr = server.local_addr().to_string();
    let resp = remote_query(
        &addr,
        &QueryRequest {
            query: queries[0].clone(),
            top_n: None,
            deadline_ms: Some(0),
        },
        CLIENT_TIMEOUT,
    )
    .map_err(|e| format!("deadline probe: {e}"))?;
    if resp.outcome != Outcome::DeadlineExceeded {
        return Err(format!("zero deadline returned {:?}", resp.outcome));
    }
    let deadline_stats = server.shutdown();
    if deadline_stats.deadline_exceeded != 1 {
        return Err(format!(
            "deadline counter reads {}, expected 1",
            deadline_stats.deadline_exceeded
        ));
    }
    eprintln!("bench-serve: deadline ok");

    let sustained_json = sustained
        .iter()
        .map(|s| format!("    {}", s.json()))
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"mode\": \"{mode}\",\n  \
         \"corpus_procs\": {procs},\n  \"queries\": {nq},\n  \
         \"clients\": {clients},\n  \"requests\": {total_requests},\n  \
         \"identical_to_offline\": true,\n  \
         \"throughput_rps\": {throughput:.1},\n  \
         \"p50_ms\": {p50},\n  \"p99_ms\": {p99},\n  \"max_ms\": {max},\n  \
         \"queue_depth_high_water\": {hwm},\n  \
         \"sustained\": [\n{sustained_json}\n  ],\n  \
         \"sustained_speedup_16x\": {speedup_16x:.2},\n  \
         \"overload_burst\": {burst},\n  \"overloaded\": {overloaded},\n  \
         \"deadline_exceeded\": {dl},\n  \
         \"serve_vcp_cache_hit_rate\": {hit_rate:.4},\n  \
         \"elapsed_ms\": {elapsed}\n}}\n",
        mode = if smoke { "smoke" } else { "full" },
        procs = corpus.procs.len(),
        nq = queries.len(),
        p50 = load_stats.p50_ms,
        p99 = load_stats.p99_ms,
        max = load_stats.max_ms,
        hwm = load_stats.queue_depth_hwm,
        speedup_16x = speedup_16x,
        dl = deadline_stats.deadline_exceeded,
        elapsed = t0.elapsed().as_millis(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, &json).map_err(|e| format!("writing BENCH_serve.json: {e}"))?;
    println!("{json}");
    println!("bench-serve: all phases passed; wrote BENCH_serve.json");
    Ok(())
}
