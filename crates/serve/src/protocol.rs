//! The wire protocol: newline-delimited JSON over TCP.
//!
//! A connection is *pipelined*: it may carry any number of requests,
//! each a single JSON object on its own line, and the daemon answers
//! every request with one JSON line **in request order** — a client can
//! write several requests before reading the first response
//! ([`PipelinedClient`]), and the one-shot shape (one request, one
//! response, close — [`remote_query`]) is just the single-request
//! special case. The same [`QueryResponse`] schema backs `esh query
//! --json` (offline) and the daemon (remote), so a client can switch
//! between the two without re-parsing — the shared construction path is
//! [`ranked_matches`].
//!
//! The daemon also answers plain `GET /healthz` and `GET /metrics` on the
//! same port: the first line of a connection decides whether it is HTTP
//! (starts with `GET ` / `HEAD `) or a JSON request. [`http_get`] is the
//! matching minimal client.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use esh_core::{QueryScores, TargetId};
use serde::{Deserialize, Serialize};

/// One query request. Serialized as a single JSON line.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryRequest {
    /// Substring selecting the query procedure from the served corpus
    /// (same resolution rule as `esh query`). The reserved value
    /// `@shutdown` asks the daemon to drain and exit.
    pub query: String,
    /// Maximum number of matches to return (server default when absent).
    pub top_n: Option<u64>,
    /// Per-request deadline in milliseconds, measured from admission;
    /// time spent waiting in the queue counts against it (server default
    /// when absent).
    pub deadline_ms: Option<u64>,
}

impl QueryRequest {
    /// A request for `query` with server-default `top_n` and deadline.
    pub fn new(query: impl Into<String>) -> QueryRequest {
        QueryRequest {
            query: query.into(),
            top_n: None,
            deadline_ms: None,
        }
    }
}

/// Typed request outcome — the admission-control and deadline decisions
/// a client must be able to distinguish without parsing error strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Outcome {
    /// The query ran to completion; `matches` is populated.
    Ok,
    /// Rejected at admission: the bounded request queue was full.
    Overloaded,
    /// The deadline expired before or during scoring.
    DeadlineExceeded,
    /// No corpus procedure matched the query substring.
    NotFound,
    /// The request line was not a valid [`QueryRequest`].
    BadRequest,
    /// Acknowledges an `@shutdown` request; the daemon is draining.
    ShuttingDown,
    /// The engine could not score the request because of a server-side
    /// fault (for example a corrupted index shard). The request was
    /// well-formed; retrying will not help until the operator fixes the
    /// index.
    Internal,
}

/// One ranked corpus target, scores exactly as the engine produced them
/// (the JSON encoding round-trips `f64` bit-for-bit).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RankedMatch {
    /// 1-based rank under GES ordering.
    pub rank: u64,
    /// Target display name.
    pub name: String,
    /// Full-method GES score.
    pub ges: f64,
    /// S-LOG ablation score.
    pub s_log: f64,
    /// S-VCP ablation score.
    pub s_vcp: f64,
}

/// The response line.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryResponse {
    /// What happened to the request.
    pub outcome: Outcome,
    /// Human-readable detail for non-`Ok` outcomes.
    pub error: Option<String>,
    /// Resolved display name of the query procedure (on `Ok`).
    pub query: Option<String>,
    /// Ranked matches, best first; empty unless `outcome` is `Ok`.
    pub matches: Vec<RankedMatch>,
    /// Milliseconds the request waited in the admission queue.
    pub queue_ms: u64,
    /// Milliseconds from admission to response.
    pub latency_ms: u64,
}

impl QueryResponse {
    /// A response with `outcome` and optional detail, no matches.
    pub fn status(outcome: Outcome, error: Option<String>) -> QueryResponse {
        QueryResponse {
            outcome,
            error,
            query: None,
            matches: Vec::new(),
            queue_ms: 0,
            latency_ms: 0,
        }
    }
}

/// Builds the ranked-match list from engine scores — the single
/// construction path shared by `esh query --json` and the daemon, so the
/// two surfaces can never drift apart.
///
/// `exclude` drops one target (the query procedure itself when it is a
/// member of the served corpus, matching the offline CLI's self-filter);
/// `top_n` caps the list length.
pub fn ranked_matches(
    scores: &QueryScores,
    exclude: Option<TargetId>,
    top_n: usize,
) -> Vec<RankedMatch> {
    scores
        .ranked()
        .iter()
        .filter(|s| Some(s.target) != exclude)
        .take(top_n)
        .enumerate()
        .map(|(i, s)| RankedMatch {
            rank: i as u64 + 1,
            name: s.name.clone(),
            ges: s.ges,
            s_log: s.s_log,
            s_vcp: s.s_vcp,
        })
        .collect()
}

/// Serializes `msg` as one newline-terminated JSON line.
pub fn encode_line<T: Serialize>(msg: &T) -> String {
    let mut line = serde_json::to_string(msg).expect("wire types serialize infallibly");
    line.push('\n');
    line
}

/// Parses one JSON line into `T`.
pub fn decode_line<T: Deserialize>(line: &str) -> Result<T, String> {
    serde_json::from_str(line.trim()).map_err(|e| format!("invalid JSON line: {e}"))
}

/// A persistent pipelined connection to the daemon.
///
/// [`PipelinedClient::send`] may be called any number of times before
/// the first [`PipelinedClient::recv`]; the daemon answers in request
/// order, so the `n`-th `recv` always pairs with the `n`-th `send`.
/// Keeping many requests in flight on one socket is what lets the
/// daemon's coalescing tier batch them into shared engine passes.
pub struct PipelinedClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl PipelinedClient {
    /// Connects to the daemon; `timeout` bounds every future `recv`.
    pub fn connect(addr: &str, timeout: Duration) -> std::io::Result<PipelinedClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        let writer = stream.try_clone()?;
        Ok(PipelinedClient {
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// Writes one request line without waiting for its response.
    pub fn send(&mut self, request: &QueryRequest) -> std::io::Result<()> {
        self.writer.write_all(encode_line(request).as_bytes())?;
        self.writer.flush()
    }

    /// Reads the next in-order response line.
    pub fn recv(&mut self) -> std::io::Result<QueryResponse> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ));
        }
        decode_line(&line).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// [`PipelinedClient::send`] then [`PipelinedClient::recv`]: one
    /// round trip on the persistent connection.
    pub fn query(&mut self, request: &QueryRequest) -> std::io::Result<QueryResponse> {
        self.send(request)?;
        self.recv()
    }
}

/// Sends one request to a running daemon and waits for the response.
///
/// Opens a fresh connection, writes the request line, and blocks —
/// bounded by `timeout` — for the response line. The one-shot
/// convenience shape; use [`PipelinedClient`] to keep several requests
/// in flight on one socket.
pub fn remote_query(
    addr: &str,
    request: &QueryRequest,
    timeout: Duration,
) -> std::io::Result<QueryResponse> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    let mut writer = stream.try_clone()?;
    writer.write_all(encode_line(request).as_bytes())?;
    writer.flush()?;
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line)?;
    decode_line(&line)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// Minimal HTTP/1.1 GET against the daemon's metrics shim. Returns the
/// status code and body.
pub fn http_get(addr: &str, path: &str, timeout: Duration) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: esh\r\nConnection: close\r\n\r\n")?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed HTTP status line")
        })?;
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_with_optional_fields() {
        let full = QueryRequest {
            query: "openssl".into(),
            top_n: Some(5),
            deadline_ms: Some(250),
        };
        let back: QueryRequest = decode_line(&encode_line(&full)).unwrap();
        assert_eq!(back.query, "openssl");
        assert_eq!(back.top_n, Some(5));
        assert_eq!(back.deadline_ms, Some(250));

        // Absent Option fields deserialize as None — a bare query line is
        // a valid request.
        let bare: QueryRequest = decode_line(r#"{"query":"wget"}"#).unwrap();
        assert_eq!(bare.query, "wget");
        assert_eq!(bare.top_n, None);
        assert_eq!(bare.deadline_ms, None);
    }

    #[test]
    fn response_scores_round_trip_bit_exactly() {
        let resp = QueryResponse {
            outcome: Outcome::Ok,
            error: None,
            query: Some("q".into()),
            matches: vec![RankedMatch {
                rank: 1,
                name: "t".into(),
                ges: 0.1 + 0.2, // not representable exactly: the acid test
                s_log: -3.25e-17,
                s_vcp: 1.0 / 3.0,
            }],
            queue_ms: 2,
            latency_ms: 17,
        };
        let back: QueryResponse = decode_line(&encode_line(&resp)).unwrap();
        assert_eq!(back.outcome, Outcome::Ok);
        let (a, b) = (&resp.matches[0], &back.matches[0]);
        assert_eq!(a.ges.to_bits(), b.ges.to_bits());
        assert_eq!(a.s_log.to_bits(), b.s_log.to_bits());
        assert_eq!(a.s_vcp.to_bits(), b.s_vcp.to_bits());
    }

    #[test]
    fn outcomes_serialize_as_plain_strings() {
        let line = encode_line(&Outcome::Overloaded);
        assert_eq!(line.trim(), "\"Overloaded\"");
        let back: Outcome = decode_line(&line).unwrap();
        assert_eq!(back, Outcome::Overloaded);
    }
}
