//! The daemon: accept loop, bounded admission, pipelined connection
//! readers, a batch-coalescing tier and graceful drain.
//!
//! Thread shape: one acceptor, `workers` connection readers, and one
//! batch executor, all sharing one read-only [`SimilarityEngine`]. The
//! acceptor admits connections into a bounded queue (capacity
//! [`ServeConfig::queue_capacity`]) and rejects the overflow
//! *immediately* with a typed [`Outcome::Overloaded`] response —
//! backpressure is explicit, never a silently growing backlog. A reader
//! owns an admitted connection for its lifetime: the protocol is
//! *pipelined*, so one socket may carry many newline-delimited requests
//! and the reader keeps parsing while earlier requests are still being
//! scored. Responses come back in request order per connection — a
//! per-connection sequence number and reorder buffer ([`ConnWriter`])
//! guarantee it — so one-shot clients (one request, one response, close)
//! keep working unchanged.
//!
//! Between the readers and the engine sits the batching tier: parsed
//! queries land in a pending queue, and the executor coalesces them for
//! a bounded window ([`ServeConfig::batch_window_ms`], at most
//! [`ServeConfig::batch_max`] requests) before submitting one
//! [`SimilarityEngine::query_batch`] call. Requests naming the same
//! corpus procedure collapse into a single engine item (their responses
//! are built from the one shared score set, which batching keeps
//! byte-identical to a sequential query), and distinct queries share the
//! batch's strand preparation, probe-sketch rounds and verifier session.
//!
//! Deadlines are measured from *admission*, so queue wait counts against
//! a request's budget; expired work is dropped at batch assembly before
//! it reaches the verifier, and in-flight work is cancelled
//! cooperatively between VCP tiles via [`CancelToken`]. Coalesced
//! requests share one token whose deadline is the *latest* member's —
//! a member with a tighter budget rides along rather than cancelling
//! work its batch-mates still want.
//!
//! Shutdown: `std` exposes no signal-handler API, so the drain is driven
//! by a control request on the wire (`{"query":"@shutdown"}`) or by
//! [`Server::request_shutdown`] in-process. Either path sets the flag,
//! wakes every thread, and self-connects once to unblock `accept`; the
//! acceptor stops admitting, readers finish every connection already
//! admitted (requests received before the idle timeout are still
//! answered), the executor drains the pending queue, and
//! [`Server::join`] returns the final counters.

use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use esh_core::{BatchQuery, CancelToken, QueryError, SimilarityEngine, TargetId};
use esh_corpus::Corpus;

use crate::metrics::{ServerStats, StatsSnapshot};
use crate::protocol::{encode_line, ranked_matches, Outcome, QueryRequest, QueryResponse};

/// Readers poll their socket in chunks of this length so they can notice
/// shutdown and account idle time without holding a long blocking read.
const READ_CHUNK: Duration = Duration::from_millis(100);

/// The pending (parsed-but-unscored) queue is bounded at
/// `queue_capacity * PENDING_FACTOR`; a pipelined client that floods one
/// connection gets typed `Overloaded` responses past the bound.
const PENDING_FACTOR: usize = 8;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Connection reader threads — the maximum number of connections
    /// served concurrently (a reader owns its connection for the whole
    /// pipelined lifetime).
    pub workers: usize,
    /// Admission queue bound: connections beyond this are rejected with
    /// [`Outcome::Overloaded`].
    pub queue_capacity: usize,
    /// Deadline applied when a request carries none, in milliseconds.
    pub default_deadline_ms: u64,
    /// Match-list length when a request carries no `top_n`.
    pub default_top_n: usize,
    /// How long a reader tolerates a silent connection (no bytes, no
    /// responses owed) before closing it, in milliseconds.
    pub read_timeout_ms: u64,
    /// Most requests one engine batch may carry. `1` disables
    /// coalescing entirely (every request is its own engine pass).
    pub batch_max: usize,
    /// How long the executor holds an open batch waiting for more
    /// requests, in milliseconds, measured from the batch's first
    /// member. `0` batches only what is already queued.
    pub batch_window_ms: u64,
    /// Memory budget for lazily loaded index shards, in mebibytes.
    /// `None` (the default) never evicts; `Some(mb)` bounds resident
    /// shard payload bytes, evicting least-recently-used shards under
    /// the engine's load-before-lookup rule. Only meaningful when
    /// serving a sharded `.eshx` index.
    pub shard_budget_mb: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:4891".into(),
            workers: 2,
            queue_capacity: 32,
            default_deadline_ms: 10_000,
            default_top_n: 10,
            read_timeout_ms: 2_000,
            batch_max: 8,
            batch_window_ms: 2,
            shard_budget_mb: None,
        }
    }
}

/// An admitted connection waiting for a reader.
struct Job {
    stream: TcpStream,
    admitted: Instant,
}

/// The write half of one pipelined connection: responses are delivered
/// by sequence number and written strictly in request order. Readers
/// allocate a sequence at parse time; whoever finishes a response
/// (reader for immediate outcomes, executor for scored ones) delivers it
/// here, and the reorder buffer holds results that finished early.
struct ConnWriter {
    inner: Mutex<ConnInner>,
    /// Sequences allocated but not yet written — the reader keeps the
    /// connection alive while this is non-zero.
    outstanding: AtomicUsize,
}

struct ConnInner {
    stream: TcpStream,
    /// Next sequence number to hand out.
    alloc: u64,
    /// Next sequence number the socket is owed.
    next: u64,
    /// Responses that finished ahead of an earlier request.
    ready: BTreeMap<u64, String>,
}

impl ConnWriter {
    fn new(stream: TcpStream) -> ConnWriter {
        ConnWriter {
            inner: Mutex::new(ConnInner {
                stream,
                alloc: 0,
                next: 0,
                ready: BTreeMap::new(),
            }),
            outstanding: AtomicUsize::new(0),
        }
    }

    /// Reserves the next in-order response slot.
    fn alloc_seq(&self) -> u64 {
        let mut inner = self.inner.lock().expect("conn poisoned");
        let seq = inner.alloc;
        inner.alloc += 1;
        self.outstanding.fetch_add(1, Ordering::SeqCst);
        seq
    }

    /// Hands over the response for `seq`; writes it (and any buffered
    /// successors) once every earlier sequence has been written.
    fn deliver(&self, seq: u64, line: String) {
        let mut inner = self.inner.lock().expect("conn poisoned");
        inner.ready.insert(seq, line);
        let mut wrote = false;
        while let Some(line) = {
            let next = inner.next;
            inner.ready.remove(&next)
        } {
            // A vanished client only costs us the write; the engine work
            // was shared with the rest of the batch anyway.
            let _ = inner.stream.write_all(line.as_bytes());
            inner.next += 1;
            self.outstanding.fetch_sub(1, Ordering::SeqCst);
            wrote = true;
        }
        if wrote {
            let _ = inner.stream.flush();
        }
    }

    /// Writes raw bytes (the HTTP shim) outside the sequence protocol.
    fn write_raw(&self, payload: &str) {
        let mut inner = self.inner.lock().expect("conn poisoned");
        let _ = inner.stream.write_all(payload.as_bytes());
        let _ = inner.stream.flush();
    }

    fn outstanding(&self) -> usize {
        self.outstanding.load(Ordering::SeqCst)
    }
}

/// One parsed query waiting for the batch executor.
struct Pending {
    conn: Arc<ConnWriter>,
    seq: u64,
    /// Resolved corpus index (also the self-filter exclusion).
    qi: usize,
    top_n: usize,
    admitted: Instant,
    deadline: Instant,
    budget_ms: u64,
}

/// State shared by the acceptor, readers, executor and the [`Server`]
/// handle.
struct Shared {
    engine: SimilarityEngine,
    corpus: Corpus,
    config: ServeConfig,
    stats: ServerStats,
    queue: Mutex<VecDeque<Job>>,
    ready: Condvar,
    pending: Mutex<VecDeque<Pending>>,
    pending_ready: Condvar,
    /// Connections currently owned by a reader — the executor must not
    /// exit while one of these could still submit work.
    active_conns: AtomicUsize,
    shutdown: AtomicBool,
    addr: SocketAddr,
}

impl Shared {
    fn request_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return; // already draining
        }
        self.ready.notify_all();
        self.pending_ready.notify_all();
        // Unblock the acceptor's `accept()`; it re-checks the flag before
        // admitting, so this dummy connection is dropped on the floor.
        let _ = TcpStream::connect(self.addr);
    }

    fn pending_bound(&self) -> usize {
        self.config
            .queue_capacity
            .saturating_mul(PENDING_FACTOR)
            .max(1)
    }
}

/// A running daemon. Dropping the handle without calling
/// [`Server::shutdown`] or [`Server::join`] leaves the threads serving —
/// always drain explicitly.
pub struct Server {
    shared: Arc<Shared>,
    acceptor: JoinHandle<()>,
    readers: Vec<JoinHandle<()>>,
    executor: JoinHandle<()>,
}

impl Server {
    /// Binds `config.addr` and starts serving `engine` over `corpus`.
    ///
    /// The corpus must be the one the engine's targets were built from,
    /// in order — query substrings resolve against corpus display names,
    /// and the matching corpus index is excluded from that query's
    /// results (the offline CLI's self-filter).
    pub fn start(
        engine: SimilarityEngine,
        corpus: Corpus,
        config: ServeConfig,
    ) -> std::io::Result<Server> {
        assert_eq!(
            engine.target_count(),
            corpus.procs.len(),
            "engine targets must mirror the corpus, in order"
        );
        if let Some(mb) = config.shard_budget_mb {
            engine.set_shard_budget(mb.saturating_mul(1024 * 1024));
        }
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let readers = config.workers.max(1);
        let shared = Arc::new(Shared {
            engine,
            corpus,
            config,
            stats: ServerStats::new(),
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            pending: Mutex::new(VecDeque::new()),
            pending_ready: Condvar::new(),
            active_conns: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            addr,
        });

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&shared, &listener))
        };
        let readers = (0..readers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || reader_loop(&shared))
            })
            .collect();
        let executor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || executor_loop(&shared))
        };

        Ok(Server {
            shared,
            acceptor,
            readers,
            executor,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Point-in-time server counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// The `/metrics` payload, rendered in-process.
    pub fn metrics(&self) -> String {
        render_metrics(&self.shared)
    }

    /// Begins a graceful drain: stop admitting, finish queued work.
    pub fn request_shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Blocks until the daemon has drained and every thread has exited,
    /// then returns the final counters. Call [`Server::request_shutdown`]
    /// first (or let a client send `@shutdown`), otherwise this waits
    /// indefinitely — which is exactly what `esh serve` wants.
    pub fn join(self) -> StatsSnapshot {
        self.acceptor.join().expect("acceptor thread panicked");
        for r in self.readers {
            r.join().expect("reader thread panicked");
        }
        self.executor.join().expect("executor thread panicked");
        self.shared.stats.snapshot()
    }

    /// [`Server::request_shutdown`] followed by [`Server::join`].
    pub fn shutdown(self) -> StatsSnapshot {
        self.request_shutdown();
        self.join()
    }
}

fn accept_loop(shared: &Shared, listener: &TcpListener) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let mut queue = shared.queue.lock().expect("queue poisoned");
        if queue.len() >= shared.config.queue_capacity {
            drop(queue);
            reject(shared, stream, Outcome::Overloaded, "admission queue full");
        } else {
            queue.push_back(Job {
                stream,
                admitted: Instant::now(),
            });
            shared.stats.observe_queue_depth(queue.len());
            drop(queue);
            shared.ready.notify_one();
        }
    }
}

fn reader_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("queue poisoned");
            loop {
                if let Some(job) = queue.pop_front() {
                    // Claimed under the queue lock, so the executor's exit
                    // check (queue empty AND no active connections) can
                    // never miss a connection in hand-off.
                    shared.active_conns.fetch_add(1, Ordering::SeqCst);
                    break job;
                }
                // Drain before exit: only stop once the queue is empty.
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared.ready.wait(queue).expect("queue poisoned");
            }
        };
        serve_connection(shared, job);
        shared.active_conns.fetch_sub(1, Ordering::SeqCst);
        shared.pending_ready.notify_all(); // let the executor re-check exit
    }
}

/// Serves one admitted connection for its whole pipelined lifetime:
/// reads newline-delimited requests, dispatches each, and keeps the
/// socket open while responses are still owed. Returns when the client
/// closes, the idle budget runs out, or the daemon drains.
fn serve_connection(shared: &Shared, job: Job) {
    let Job { stream, admitted } = job;
    let _ = stream.set_read_timeout(Some(READ_CHUNK));
    let Ok(mut read_half) = stream.try_clone() else {
        return;
    };
    let conn = Arc::new(ConnWriter::new(stream));
    let idle_limit = Duration::from_millis(shared.config.read_timeout_ms.max(1));
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut idle = Duration::ZERO;
    let mut first_request = true;
    loop {
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let raw: Vec<u8> = buf.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            // The first request's deadline budget starts at admission
            // (queue wait counts); later pipelined requests start their
            // clock when their line arrives.
            let request_admitted = if first_request { admitted } else { Instant::now() };
            if first_request && (line.starts_with("GET ") || line.starts_with("HEAD ")) {
                shared.stats.record_http();
                respond_http(shared, &conn, &line);
                return; // the HTTP shim is Connection: close
            }
            first_request = false;
            if !process_request(shared, &conn, &line, request_admitted) {
                return; // @shutdown acknowledged; stop reading
            }
        }
        match read_half.read(&mut chunk) {
            Ok(0) => return, // client closed; late deliveries fail silently
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                idle = Duration::ZERO;
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                idle += READ_CHUNK;
                let owed = conn.outstanding() > 0;
                if !owed && shared.shutdown.load(Ordering::SeqCst) {
                    return; // draining and this connection is settled
                }
                if !owed && idle >= idle_limit {
                    return; // silent too long with nothing outstanding
                }
            }
            Err(_) => return,
        }
    }
}

/// Dispatches one request line. Immediate outcomes (parse errors,
/// unknown names, control requests, pending-queue overflow) are answered
/// right here through the reorder buffer; real queries join the batch
/// queue. Returns `false` when the connection should stop reading
/// (an `@shutdown` acknowledgement).
fn process_request(
    shared: &Shared,
    conn: &Arc<ConnWriter>,
    line: &str,
    admitted: Instant,
) -> bool {
    let seq = conn.alloc_seq();
    let request = match serde_json::from_str::<QueryRequest>(line) {
        Err(e) => {
            let response =
                QueryResponse::status(Outcome::BadRequest, Some(format!("bad request: {e}")));
            respond_now(shared, conn, seq, admitted, response);
            return true;
        }
        Ok(request) => request,
    };
    if request.query == "@shutdown" {
        shared.request_shutdown();
        let response = QueryResponse::status(Outcome::ShuttingDown, None);
        respond_now(shared, conn, seq, admitted, response);
        return false;
    }
    let Some(qi) = shared
        .corpus
        .procs
        .iter()
        .position(|p| p.display().contains(&request.query))
    else {
        let response = QueryResponse::status(
            Outcome::NotFound,
            Some(format!("no procedure matching `{}`", request.query)),
        );
        respond_now(shared, conn, seq, admitted, response);
        return true;
    };
    let budget_ms = request
        .deadline_ms
        .unwrap_or(shared.config.default_deadline_ms);
    let top_n = request
        .top_n
        .map_or(shared.config.default_top_n, |n| n as usize);
    let mut pending = shared.pending.lock().expect("pending poisoned");
    if pending.len() >= shared.pending_bound() {
        drop(pending);
        let response =
            QueryResponse::status(Outcome::Overloaded, Some("batch queue full".to_string()));
        respond_now(shared, conn, seq, admitted, response);
        return true;
    }
    pending.push_back(Pending {
        conn: Arc::clone(conn),
        seq,
        qi,
        top_n,
        admitted,
        deadline: admitted + Duration::from_millis(budget_ms),
        budget_ms,
    });
    drop(pending);
    shared.pending_ready.notify_all();
    true
}

/// Finalizes and delivers a response the reader produced itself (no
/// engine work): stamps latency, records it, hands it to the reorder
/// buffer.
fn respond_now(
    shared: &Shared,
    conn: &ConnWriter,
    seq: u64,
    admitted: Instant,
    mut response: QueryResponse,
) {
    response.latency_ms = admitted.elapsed().as_millis() as u64;
    shared.stats.record_outcome(response.outcome);
    shared.stats.record_latency_ms(response.latency_ms);
    conn.deliver(seq, encode_line(&response));
}

/// The batching tier: pops the oldest pending request, holds the batch
/// open for `batch_window_ms` (or until `batch_max`), then executes one
/// shared engine pass. Exits only when the daemon is draining and no
/// reader could still submit work.
fn executor_loop(shared: &Shared) {
    let window = Duration::from_millis(shared.config.batch_window_ms);
    let batch_max = shared.config.batch_max.max(1);
    loop {
        let mut batch: Vec<Pending> = Vec::new();
        {
            let mut pending = shared.pending.lock().expect("pending poisoned");
            loop {
                if let Some(p) = pending.pop_front() {
                    batch.push(p);
                    break;
                }
                if shared.shutdown.load(Ordering::SeqCst)
                    && shared.active_conns.load(Ordering::SeqCst) == 0
                    && shared.queue.lock().expect("queue poisoned").is_empty()
                {
                    return;
                }
                let (guard, _) = shared
                    .pending_ready
                    .wait_timeout(pending, READ_CHUNK)
                    .expect("pending poisoned");
                pending = guard;
            }
            let opened = Instant::now();
            while batch.len() < batch_max {
                while batch.len() < batch_max {
                    match pending.pop_front() {
                        Some(p) => batch.push(p),
                        None => break,
                    }
                }
                if batch.len() >= batch_max {
                    break;
                }
                let Some(remaining) = window.checked_sub(opened.elapsed()) else {
                    break;
                };
                if remaining.is_zero() {
                    break;
                }
                let (guard, _) = shared
                    .pending_ready
                    .wait_timeout(pending, remaining)
                    .expect("pending poisoned");
                pending = guard;
                if pending.is_empty() && opened.elapsed() >= window {
                    break;
                }
            }
        }
        execute_batch(shared, batch);
    }
}

/// Runs one coalesced batch: expires dead requests, collapses members
/// naming the same corpus procedure into a single engine item, submits
/// one [`SimilarityEngine::query_batch`] pass, and fans the shared
/// scores back out to every member.
fn execute_batch(shared: &Shared, batch: Vec<Pending>) {
    let started = Instant::now();
    let mut live: Vec<Pending> = Vec::new();
    for p in batch {
        if started >= p.deadline {
            let response = QueryResponse::status(
                Outcome::DeadlineExceeded,
                Some(format!("deadline of {}ms expired in the queue", p.budget_ms)),
            );
            finish(shared, &p, started, response);
        } else {
            live.push(p);
        }
    }
    if live.is_empty() {
        return;
    }
    // Group by corpus index, preserving first-seen order. The group's
    // cancel deadline is its latest member's, so an impatient rider never
    // cancels work a batch-mate still wants.
    let mut groups: Vec<(usize, Vec<Pending>)> = Vec::new();
    for p in live {
        match groups.iter_mut().find(|(qi, _)| *qi == p.qi) {
            Some((_, members)) => members.push(p),
            None => groups.push((p.qi, vec![p])),
        }
    }
    let size = groups.iter().map(|(_, m)| m.len()).sum::<usize>();
    shared.stats.record_batch(size, groups.len());
    let items: Vec<BatchQuery> = groups
        .iter()
        .map(|(qi, members)| {
            let deadline = members
                .iter()
                .map(|p| p.deadline)
                .max()
                .expect("groups are non-empty");
            BatchQuery {
                proc_: &shared.corpus.procs[*qi].proc_,
                cancel: CancelToken::with_deadline(deadline),
            }
        })
        .collect();
    let results = shared.engine.query_batch(&items);
    for ((qi, members), result) in groups.into_iter().zip(results) {
        match result {
            Ok(scores) => {
                for p in members {
                    let response = QueryResponse {
                        outcome: Outcome::Ok,
                        error: None,
                        query: Some(shared.corpus.procs[qi].display()),
                        matches: ranked_matches(&scores, Some(TargetId(qi)), p.top_n),
                        queue_ms: 0,
                        latency_ms: 0,
                    };
                    finish(shared, &p, started, response);
                }
            }
            Err(QueryError::Cancelled) => {
                for p in members {
                    let response = QueryResponse::status(
                        Outcome::DeadlineExceeded,
                        Some(format!(
                            "deadline of {}ms expired during scoring",
                            p.budget_ms
                        )),
                    );
                    finish(shared, &p, started, response);
                }
            }
            Err(QueryError::Corrupted(e)) => {
                // Only the members whose scoring touched the bad shard
                // fail; batch-mates over healthy shards got Ok above.
                for p in members {
                    let response =
                        QueryResponse::status(Outcome::Internal, Some(e.to_string()));
                    finish(shared, &p, started, response);
                }
            }
        }
    }
}

/// Finalizes one batched response: stamps queue wait and latency,
/// records the outcome, delivers in request order.
fn finish(shared: &Shared, p: &Pending, started: Instant, mut response: QueryResponse) {
    response.queue_ms = started.saturating_duration_since(p.admitted).as_millis() as u64;
    response.latency_ms = p.admitted.elapsed().as_millis() as u64;
    shared.stats.record_outcome(response.outcome);
    shared.stats.record_latency_ms(response.latency_ms);
    p.conn.deliver(p.seq, encode_line(&response));
}

/// The minimal HTTP/1.1 shim: `/healthz` and `/metrics`, 404 otherwise.
fn respond_http(shared: &Shared, conn: &ConnWriter, request_line: &str) {
    let path = request_line.split_whitespace().nth(1).unwrap_or("/");
    let (status, body) = match path {
        "/healthz" => ("200 OK", "ok\n".to_string()),
        "/metrics" => ("200 OK", render_metrics(shared)),
        _ => ("404 Not Found", "not found\n".to_string()),
    };
    conn.write_raw(&http_payload(status, &body));
}

fn render_metrics(shared: &Shared) -> String {
    let queue_depth = shared.queue.lock().expect("queue poisoned").len();
    let pending_depth = shared.pending.lock().expect("pending poisoned").len();
    shared.stats.render(
        &shared.engine.cache_stats(),
        &shared.engine.solver_stats(),
        &shared.engine.prefilter_stats(),
        &shared.engine.shard_stats(),
        queue_depth,
        pending_depth,
    )
}

fn http_payload(status: &str, body: &str) -> String {
    format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

/// Admission-control rejection. Reads the first line briefly (bounded at
/// 100ms so a slow client cannot stall the acceptor for long) only to
/// answer in the dialect the client speaks: HTTP probes get a 503, JSON
/// clients get a typed [`QueryResponse`].
fn reject(shared: &Shared, mut stream: TcpStream, outcome: Outcome, detail: &str) {
    shared.stats.record_outcome(outcome);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut line = String::new();
    if let Ok(reader) = stream.try_clone() {
        let _ = BufReader::new(reader).read_line(&mut line);
    }
    if line.starts_with("GET ") || line.starts_with("HEAD ") {
        let _ = stream.write_all(
            http_payload("503 Service Unavailable", &format!("{detail}\n")).as_bytes(),
        );
    } else {
        let response = QueryResponse::status(outcome, Some(detail.to_string()));
        let _ = stream.write_all(encode_line(&response).as_bytes());
    }
    let _ = stream.flush();
}
