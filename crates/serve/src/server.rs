//! The daemon: accept loop, bounded admission queue, worker pool and
//! graceful drain.
//!
//! Thread shape: one acceptor plus `workers` query workers, all sharing
//! one read-only [`SimilarityEngine`]. The acceptor admits connections
//! into a bounded queue (capacity [`ServeConfig::queue_capacity`]) and
//! rejects the overflow *immediately* with a typed
//! [`Outcome::Overloaded`] response — backpressure is explicit, never a
//! silently growing backlog. Workers pop admitted connections, classify
//! the first line (HTTP probe vs JSON query), and answer.
//!
//! Deadlines are measured from *admission*, so queue wait counts against
//! a request's budget; expired work is dropped before it reaches the
//! verifier, and in-flight work is cancelled cooperatively between VCP
//! tiles via [`CancelToken`].
//!
//! Shutdown: `std` exposes no signal-handler API, so the drain is driven
//! by a control request on the wire (`{"query":"@shutdown"}`) or by
//! [`Server::request_shutdown`] in-process. Either path sets the flag,
//! wakes every worker, and self-connects once to unblock `accept`; the
//! acceptor stops admitting, workers finish everything already in the
//! queue, and [`Server::join`] returns the final counters.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use esh_core::{CancelToken, SimilarityEngine, TargetId};
use esh_corpus::Corpus;

use crate::metrics::{ServerStats, StatsSnapshot};
use crate::protocol::{encode_line, ranked_matches, Outcome, QueryRequest, QueryResponse};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Query worker threads.
    pub workers: usize,
    /// Admission queue bound: connections beyond this are rejected with
    /// [`Outcome::Overloaded`].
    pub queue_capacity: usize,
    /// Deadline applied when a request carries none, in milliseconds.
    pub default_deadline_ms: u64,
    /// Match-list length when a request carries no `top_n`.
    pub default_top_n: usize,
    /// How long a worker waits for a client's request line before giving
    /// up on the connection, in milliseconds.
    pub read_timeout_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:4891".into(),
            workers: 2,
            queue_capacity: 32,
            default_deadline_ms: 10_000,
            default_top_n: 10,
            read_timeout_ms: 2_000,
        }
    }
}

/// An admitted connection waiting for a worker.
struct Job {
    stream: TcpStream,
    admitted: Instant,
}

/// State shared by the acceptor, the workers and the [`Server`] handle.
struct Shared {
    engine: SimilarityEngine,
    corpus: Corpus,
    config: ServeConfig,
    stats: ServerStats,
    queue: Mutex<VecDeque<Job>>,
    ready: Condvar,
    shutdown: AtomicBool,
    addr: SocketAddr,
}

impl Shared {
    fn request_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return; // already draining
        }
        self.ready.notify_all();
        // Unblock the acceptor's `accept()`; it re-checks the flag before
        // admitting, so this dummy connection is dropped on the floor.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running daemon. Dropping the handle without calling
/// [`Server::shutdown`] or [`Server::join`] leaves the threads serving —
/// always drain explicitly.
pub struct Server {
    shared: Arc<Shared>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `config.addr` and starts serving `engine` over `corpus`.
    ///
    /// The corpus must be the one the engine's targets were built from,
    /// in order — query substrings resolve against corpus display names,
    /// and the matching corpus index is excluded from that query's
    /// results (the offline CLI's self-filter).
    pub fn start(
        engine: SimilarityEngine,
        corpus: Corpus,
        config: ServeConfig,
    ) -> std::io::Result<Server> {
        assert_eq!(
            engine.target_count(),
            corpus.procs.len(),
            "engine targets must mirror the corpus, in order"
        );
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            engine,
            corpus,
            config,
            stats: ServerStats::new(),
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            addr,
        });

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&shared, &listener))
        };
        let workers = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();

        Ok(Server {
            shared,
            acceptor,
            workers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Point-in-time server counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// The `/metrics` payload, rendered in-process.
    pub fn metrics(&self) -> String {
        render_metrics(&self.shared)
    }

    /// Begins a graceful drain: stop admitting, finish queued work.
    pub fn request_shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Blocks until the daemon has drained and every thread has exited,
    /// then returns the final counters. Call [`Server::request_shutdown`]
    /// first (or let a client send `@shutdown`), otherwise this waits
    /// indefinitely — which is exactly what `esh serve` wants.
    pub fn join(self) -> StatsSnapshot {
        self.acceptor.join().expect("acceptor thread panicked");
        for w in self.workers {
            w.join().expect("worker thread panicked");
        }
        self.shared.stats.snapshot()
    }

    /// [`Server::request_shutdown`] followed by [`Server::join`].
    pub fn shutdown(self) -> StatsSnapshot {
        self.request_shutdown();
        self.join()
    }
}

fn accept_loop(shared: &Shared, listener: &TcpListener) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let mut queue = shared.queue.lock().expect("queue poisoned");
        if queue.len() >= shared.config.queue_capacity {
            drop(queue);
            reject(shared, stream, Outcome::Overloaded, "admission queue full");
        } else {
            queue.push_back(Job {
                stream,
                admitted: Instant::now(),
            });
            shared.stats.observe_queue_depth(queue.len());
            drop(queue);
            shared.ready.notify_one();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("queue poisoned");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                // Drain before exit: only stop once the queue is empty.
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared.ready.wait(queue).expect("queue poisoned");
            }
        };
        handle(shared, job);
    }
}

/// Answers one admitted connection: reads the first line, dispatches to
/// the HTTP shim or the query path.
fn handle(shared: &Shared, job: Job) {
    let Job { stream, admitted } = job;
    let queue_ms = admitted.elapsed().as_millis() as u64;
    let _ = stream.set_read_timeout(Some(Duration::from_millis(
        shared.config.read_timeout_ms.max(1),
    )));
    let Ok(reader) = stream.try_clone() else {
        return;
    };
    let mut line = String::new();
    if BufReader::new(reader).read_line(&mut line).is_err() || line.trim().is_empty() {
        return; // client vanished or sent nothing; nothing to answer
    }
    if line.starts_with("GET ") || line.starts_with("HEAD ") {
        shared.stats.record_http();
        respond_http(shared, stream, line.trim());
    } else {
        respond_query(shared, stream, line.trim(), admitted, queue_ms);
    }
}

/// The minimal HTTP/1.1 shim: `/healthz` and `/metrics`, 404 otherwise.
fn respond_http(shared: &Shared, stream: TcpStream, request_line: &str) {
    let path = request_line.split_whitespace().nth(1).unwrap_or("/");
    let (status, body) = match path {
        "/healthz" => ("200 OK", "ok\n".to_string()),
        "/metrics" => ("200 OK", render_metrics(shared)),
        _ => ("404 Not Found", "not found\n".to_string()),
    };
    write_http(stream, status, &body);
}

fn render_metrics(shared: &Shared) -> String {
    let queue_depth = shared.queue.lock().expect("queue poisoned").len();
    shared.stats.render(
        &shared.engine.cache_stats(),
        &shared.engine.solver_stats(),
        &shared.engine.prefilter_stats(),
        queue_depth,
    )
}

fn write_http(mut stream: TcpStream, status: &str, body: &str) {
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: text/plain\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.flush();
}

/// The query path: parse, resolve, enforce the deadline, score, respond.
fn respond_query(
    shared: &Shared,
    stream: TcpStream,
    line: &str,
    admitted: Instant,
    queue_ms: u64,
) {
    let mut response = match serde_json::from_str::<QueryRequest>(line) {
        Err(e) => QueryResponse::status(Outcome::BadRequest, Some(format!("bad request: {e}"))),
        Ok(request) if request.query == "@shutdown" => {
            shared.request_shutdown();
            QueryResponse::status(Outcome::ShuttingDown, None)
        }
        Ok(request) => answer(shared, &request, admitted),
    };
    response.queue_ms = queue_ms;
    response.latency_ms = admitted.elapsed().as_millis() as u64;
    shared.stats.record_outcome(response.outcome);
    shared.stats.record_latency_ms(response.latency_ms);
    write_line(stream, &response);
}

/// Scores one resolved request against the shared engine.
fn answer(shared: &Shared, request: &QueryRequest, admitted: Instant) -> QueryResponse {
    let Some(qi) = shared
        .corpus
        .procs
        .iter()
        .position(|p| p.display().contains(&request.query))
    else {
        return QueryResponse::status(
            Outcome::NotFound,
            Some(format!("no procedure matching `{}`", request.query)),
        );
    };
    let budget = request
        .deadline_ms
        .unwrap_or(shared.config.default_deadline_ms);
    let deadline = admitted + Duration::from_millis(budget);
    if Instant::now() >= deadline {
        return QueryResponse::status(
            Outcome::DeadlineExceeded,
            Some(format!("deadline of {budget}ms expired in the queue")),
        );
    }
    let token = CancelToken::with_deadline(deadline);
    match shared
        .engine
        .query_cancellable(&shared.corpus.procs[qi].proc_, &token)
    {
        Err(_) => QueryResponse::status(
            Outcome::DeadlineExceeded,
            Some(format!("deadline of {budget}ms expired during scoring")),
        ),
        Ok(scores) => {
            let top_n = request
                .top_n
                .map_or(shared.config.default_top_n, |n| n as usize);
            QueryResponse {
                outcome: Outcome::Ok,
                error: None,
                query: Some(shared.corpus.procs[qi].display()),
                matches: ranked_matches(&scores, Some(TargetId(qi)), top_n),
                queue_ms: 0,
                latency_ms: 0,
            }
        }
    }
}

/// Admission-control rejection. Reads the first line briefly (bounded at
/// 100ms so a slow client cannot stall the acceptor for long) only to
/// answer in the dialect the client speaks: HTTP probes get a 503, JSON
/// clients get a typed [`QueryResponse`].
fn reject(shared: &Shared, stream: TcpStream, outcome: Outcome, detail: &str) {
    shared.stats.record_outcome(outcome);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut line = String::new();
    if let Ok(reader) = stream.try_clone() {
        let _ = BufReader::new(reader).read_line(&mut line);
    }
    if line.starts_with("GET ") || line.starts_with("HEAD ") {
        write_http(stream, "503 Service Unavailable", &format!("{detail}\n"));
    } else {
        write_line(
            stream,
            &QueryResponse::status(outcome, Some(detail.to_string())),
        );
    }
}

fn write_line(mut stream: TcpStream, response: &QueryResponse) {
    let _ = stream.write_all(encode_line(response).as_bytes());
    let _ = stream.flush();
}
