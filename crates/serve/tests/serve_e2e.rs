//! End-to-end daemon tests over real loopback sockets: correctness vs
//! the offline engine, typed rejections, deadlines, the HTTP shim and
//! graceful drain.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use esh_cc::{Compiler, Vendor, VendorVersion};
use esh_core::{EngineConfig, SimilarityEngine, TargetId};
use esh_corpus::{CompiledProc, Corpus, PatchTag};
use esh_minic::demo;
use esh_serve::protocol::{
    http_get, ranked_matches, remote_query, Outcome, PipelinedClient, QueryRequest,
};
use esh_serve::server::{ServeConfig, Server};

const TIMEOUT: Duration = Duration::from_secs(30);

/// A four-procedure corpus: two demo functions, each compiled by two
/// vendors, with display names distinct enough to query by substring.
fn tiny_corpus() -> Corpus {
    let clang = Compiler::new(Vendor::Clang, VendorVersion::new(3, 5));
    let icc = Compiler::new(Vendor::Icc, VendorVersion::new(15, 0));
    let mut procs = Vec::new();
    for f in [demo::saturating_sum(), demo::wget_like()] {
        for (toolchain, cc) in [("clang 3.5", &clang), ("icc 15.0", &icc)] {
            procs.push(CompiledProc {
                package: "e2e".into(),
                func: f.name.clone(),
                cve: None,
                toolchain: toolchain.into(),
                patch: PatchTag::Original,
                proc_: cc.compile_function(&f),
            });
        }
    }
    Corpus { procs }
}

fn engine_over(corpus: &Corpus) -> SimilarityEngine {
    let mut engine = SimilarityEngine::new(EngineConfig {
        threads: 1,
        ..EngineConfig::default()
    });
    for p in &corpus.procs {
        engine.add_target(p.display(), &p.proc_);
    }
    engine
}

fn start(workers: usize, queue_capacity: usize, read_timeout_ms: u64) -> (Server, String) {
    let corpus = tiny_corpus();
    let server = Server::start(
        engine_over(&corpus),
        corpus,
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers,
            queue_capacity,
            read_timeout_ms,
            ..ServeConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr().to_string();
    (server, addr)
}

#[test]
fn served_rankings_are_byte_identical_to_offline() {
    let corpus = tiny_corpus();
    let offline = engine_over(&corpus);
    let needle = &corpus.procs[0].display();
    let expected = ranked_matches(&offline.query(&corpus.procs[0].proc_), Some(TargetId(0)), 10);

    let (server, addr) = start(2, 8, 2_000);
    let resp = remote_query(&addr, &QueryRequest::new(needle), TIMEOUT).unwrap();
    assert_eq!(resp.outcome, Outcome::Ok);
    assert_eq!(resp.query.as_deref(), Some(needle.as_str()));
    assert_eq!(resp.matches.len(), expected.len());
    for (got, want) in resp.matches.iter().zip(&expected) {
        assert_eq!(got.rank, want.rank);
        assert_eq!(got.name, want.name);
        assert_eq!(got.ges.to_bits(), want.ges.to_bits(), "{}", want.name);
        assert_eq!(got.s_log.to_bits(), want.s_log.to_bits(), "{}", want.name);
        assert_eq!(got.s_vcp.to_bits(), want.s_vcp.to_bits(), "{}", want.name);
    }
    // The query's own corpus entry is excluded, like the offline CLI.
    assert!(resp.matches.iter().all(|m| &m.name != needle));
    server.shutdown();
}

#[test]
fn top_n_caps_the_match_list() {
    let (server, addr) = start(1, 8, 2_000);
    let resp = remote_query(
        &addr,
        &QueryRequest {
            query: "saturating_sum [clang".into(),
            top_n: Some(1),
            deadline_ms: None,
        },
        TIMEOUT,
    )
    .unwrap();
    assert_eq!(resp.outcome, Outcome::Ok);
    assert_eq!(resp.matches.len(), 1);
    assert_eq!(resp.matches[0].rank, 1);
    server.shutdown();
}

#[test]
fn unknown_query_is_not_found() {
    let (server, addr) = start(1, 8, 2_000);
    let resp = remote_query(&addr, &QueryRequest::new("no-such-proc"), TIMEOUT).unwrap();
    assert_eq!(resp.outcome, Outcome::NotFound);
    assert!(resp.error.unwrap().contains("no-such-proc"));
    assert!(resp.matches.is_empty());
    server.shutdown();
}

#[test]
fn malformed_line_is_bad_request() {
    let (server, addr) = start(1, 8, 2_000);
    let stream = TcpStream::connect(&addr).unwrap();
    stream.set_read_timeout(Some(TIMEOUT)).unwrap();
    let mut w = stream.try_clone().unwrap();
    w.write_all(b"this is not json\n").unwrap();
    let mut line = String::new();
    std::io::BufRead::read_line(&mut std::io::BufReader::new(stream), &mut line).unwrap();
    let resp: esh_serve::protocol::QueryResponse =
        esh_serve::protocol::decode_line(&line).unwrap();
    assert_eq!(resp.outcome, Outcome::BadRequest);
    server.shutdown();
}

#[test]
fn zero_deadline_expires_in_the_queue() {
    let (server, addr) = start(1, 8, 2_000);
    let resp = remote_query(
        &addr,
        &QueryRequest {
            query: "ftp_syst".into(),
            top_n: None,
            deadline_ms: Some(0),
        },
        TIMEOUT,
    )
    .unwrap();
    assert_eq!(resp.outcome, Outcome::DeadlineExceeded);
    let stats = server.shutdown();
    assert_eq!(stats.deadline_exceeded, 1);
    assert_eq!(stats.ok, 0);
}

#[test]
fn healthz_and_metrics_answer_over_http() {
    let (server, addr) = start(1, 8, 2_000);
    let (status, body) = http_get(&addr, "/healthz", TIMEOUT).unwrap();
    assert_eq!(status, 200);
    assert_eq!(body.trim(), "ok");

    // One query so the counters are non-trivial.
    remote_query(&addr, &QueryRequest::new("ftp_syst"), TIMEOUT).unwrap();
    let (status, body) = http_get(&addr, "/metrics", TIMEOUT).unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("esh_requests_total{outcome=\"ok\"} 1"));
    assert!(body.contains("esh_vcp_cache_misses_total"));
    assert!(body.contains("esh_sat_queries_total"));

    let (status, _) = http_get(&addr, "/nope", TIMEOUT).unwrap();
    assert_eq!(status, 404);
    server.shutdown();
}

#[test]
fn full_queue_yields_typed_overload_rejections() {
    // One worker, one queue slot. Two idle connections (they send
    // nothing) pin the worker and fill the slot for the duration of the
    // read timeout, so a real request must be rejected at admission.
    let (server, addr) = start(1, 1, 3_000);
    let _stall_worker = TcpStream::connect(&addr).unwrap();
    // Stagger the stalls: the worker must pop the first before the second
    // arrives, so the second occupies the queue slot rather than racing
    // the pop.
    std::thread::sleep(Duration::from_millis(200));
    let _stall_queue = TcpStream::connect(&addr).unwrap();
    std::thread::sleep(Duration::from_millis(200));

    let resp = remote_query(&addr, &QueryRequest::new("ftp_syst"), TIMEOUT).unwrap();
    assert_eq!(resp.outcome, Outcome::Overloaded);
    assert!(resp.error.unwrap().contains("queue full"));

    // An HTTP probe during overload is load-shed in its own dialect.
    let (status, _) = http_get(&addr, "/healthz", TIMEOUT).unwrap();
    assert_eq!(status, 503);

    let stats = server.shutdown();
    assert!(stats.overloaded >= 2);
    assert!(stats.queue_depth_hwm <= 1, "queue bound was violated");
}

#[test]
fn shutdown_drains_admitted_requests() {
    // One worker pinned by an idle connection; two real requests queue
    // up behind it. Shutdown must still answer both (drain), not drop
    // them.
    let (server, addr) = start(1, 8, 1_000);
    let _stall = TcpStream::connect(&addr).unwrap();

    let send = |q: &str| {
        let stream = TcpStream::connect(&addr).unwrap();
        stream.set_read_timeout(Some(TIMEOUT)).unwrap();
        let mut w = stream.try_clone().unwrap();
        w.write_all(
            esh_serve::protocol::encode_line(&QueryRequest::new(q)).as_bytes(),
        )
        .unwrap();
        stream
    };
    let pending = [send("ftp_syst"), send("saturating_sum [icc")];
    std::thread::sleep(Duration::from_millis(200)); // let both be admitted

    server.request_shutdown();
    for stream in pending {
        let mut line = String::new();
        std::io::BufRead::read_line(&mut std::io::BufReader::new(stream), &mut line).unwrap();
        let resp: esh_serve::protocol::QueryResponse =
            esh_serve::protocol::decode_line(&line).unwrap();
        assert_eq!(resp.outcome, Outcome::Ok, "admitted request was dropped");
    }
    let stats = server.join();
    assert_eq!(stats.ok, 2);
}

/// Starts a server whose coalescing window is wide enough that requests
/// pipelined back-to-back land in one engine batch.
fn start_batching(workers: usize, batch_max: usize, batch_window_ms: u64) -> (Server, String) {
    let corpus = tiny_corpus();
    let server = Server::start(
        engine_over(&corpus),
        corpus,
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers,
            queue_capacity: 8,
            read_timeout_ms: 2_000,
            batch_max,
            batch_window_ms,
            ..ServeConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr().to_string();
    (server, addr)
}

#[test]
fn pipelined_requests_answer_in_order_and_match_offline() {
    let corpus = tiny_corpus();
    let offline = engine_over(&corpus);
    let expected: Vec<_> = (0..corpus.procs.len())
        .map(|qi| {
            ranked_matches(
                &offline.query(&corpus.procs[qi].proc_),
                Some(TargetId(qi)),
                10,
            )
        })
        .collect();

    let (server, addr) = start_batching(1, 8, 50);
    let mut client = PipelinedClient::connect(&addr, TIMEOUT).unwrap();
    // Write the whole pipeline before reading anything: every corpus
    // procedure twice, plus an unknown name in the middle. The window is
    // wide, so these coalesce into shared batches — and must still come
    // back in request order.
    let names: Vec<String> = corpus.procs.iter().map(|p| p.display()).collect();
    for name in names.iter().chain(names.iter()) {
        client.send(&QueryRequest::new(name)).unwrap();
    }
    client.send(&QueryRequest::new("no-such-proc")).unwrap();
    for (k, qi) in (0..names.len()).chain(0..names.len()).enumerate() {
        let resp = client.recv().unwrap();
        assert_eq!(resp.outcome, Outcome::Ok, "response {k}");
        assert_eq!(resp.query.as_deref(), Some(names[qi].as_str()), "order {k}");
        assert_eq!(resp.matches.len(), expected[qi].len());
        for (got, want) in resp.matches.iter().zip(&expected[qi]) {
            assert_eq!(got.name, want.name, "response {k}");
            assert_eq!(got.ges.to_bits(), want.ges.to_bits(), "response {k}");
            assert_eq!(got.s_log.to_bits(), want.s_log.to_bits(), "response {k}");
            assert_eq!(got.s_vcp.to_bits(), want.s_vcp.to_bits(), "response {k}");
        }
    }
    let resp = client.recv().unwrap();
    assert_eq!(resp.outcome, Outcome::NotFound);
    drop(client);
    let stats = server.shutdown();
    assert_eq!(stats.ok, 8);
    assert_eq!(stats.not_found, 1);
    assert!(stats.batches >= 1, "the coalescing tier never ran");
    assert!(
        stats.coalesced_queries >= 1,
        "duplicate queries in one window should share an engine pass \
         (occupancy high-water {})",
        stats.batch_occupancy_hwm
    );
}

#[test]
fn deadline_expiry_interleaves_with_live_pipelined_requests() {
    // A wide window forces all three requests into one batch: the
    // zero-budget member must expire at batch assembly while its
    // batch-mates complete, and order on the wire is preserved.
    let (server, addr) = start_batching(1, 8, 100);
    let mut client = PipelinedClient::connect(&addr, TIMEOUT).unwrap();
    client.send(&QueryRequest::new("ftp_syst")).unwrap();
    client
        .send(&QueryRequest {
            query: "saturating_sum [icc".into(),
            top_n: None,
            deadline_ms: Some(0),
        })
        .unwrap();
    client.send(&QueryRequest::new("saturating_sum [clang")).unwrap();
    let first = client.recv().unwrap();
    let second = client.recv().unwrap();
    let third = client.recv().unwrap();
    assert_eq!(first.outcome, Outcome::Ok);
    assert!(first.query.unwrap().contains("ftp_syst"), "order violated");
    assert_eq!(second.outcome, Outcome::DeadlineExceeded);
    assert!(second.error.unwrap().contains("expired in the queue"));
    assert_eq!(third.outcome, Outcome::Ok);
    assert!(third.query.unwrap().contains("clang"), "order violated");
    drop(client);
    let stats = server.shutdown();
    assert_eq!(stats.ok, 2);
    assert_eq!(stats.deadline_exceeded, 1);
}

#[test]
fn tight_deadline_cancels_cooperatively_without_wedging_the_batch() {
    // A 3ms budget expires either at batch assembly or mid-scoring
    // (cooperative cancellation between VCP tiles) — both are legal, but
    // the server must answer it *and* its unconstrained batch-mate, and
    // a follow-up request on the same socket must still work.
    let (server, addr) = start_batching(1, 8, 60);
    let mut client = PipelinedClient::connect(&addr, TIMEOUT).unwrap();
    client
        .send(&QueryRequest {
            query: "ftp_syst [icc".into(),
            top_n: None,
            deadline_ms: Some(3),
        })
        .unwrap();
    client.send(&QueryRequest::new("saturating_sum [clang")).unwrap();
    let tight = client.recv().unwrap();
    assert!(
        matches!(tight.outcome, Outcome::Ok | Outcome::DeadlineExceeded),
        "tight deadline produced {:?}",
        tight.outcome
    );
    let mate = client.recv().unwrap();
    assert_eq!(mate.outcome, Outcome::Ok, "batch-mate must survive");
    let retry = client.query(&QueryRequest::new("ftp_syst [icc")).unwrap();
    assert_eq!(retry.outcome, Outcome::Ok, "connection stays usable");
    drop(client);
    server.shutdown();
}

#[test]
fn shutdown_drains_a_batch_in_flight() {
    // Requests pipelined into a still-open coalescing window, then an
    // immediate drain: every admitted request must be answered before
    // join returns, and the responses stay in order.
    let (server, addr) = start_batching(2, 8, 150);
    let mut a = PipelinedClient::connect(&addr, TIMEOUT).unwrap();
    let mut b = PipelinedClient::connect(&addr, TIMEOUT).unwrap();
    a.send(&QueryRequest::new("ftp_syst")).unwrap();
    a.send(&QueryRequest::new("saturating_sum [icc")).unwrap();
    b.send(&QueryRequest::new("saturating_sum [clang")).unwrap();
    std::thread::sleep(Duration::from_millis(50)); // inside the window
    server.request_shutdown();
    for resp in [a.recv().unwrap(), a.recv().unwrap(), b.recv().unwrap()] {
        assert_eq!(resp.outcome, Outcome::Ok, "in-flight batch was dropped");
    }
    drop(a);
    drop(b);
    let stats = server.join();
    assert_eq!(stats.ok, 3);
}

#[test]
fn wire_shutdown_acknowledges_and_drains() {
    let (server, addr) = start(2, 8, 2_000);
    remote_query(&addr, &QueryRequest::new("ftp_syst"), TIMEOUT).unwrap();
    let ack = remote_query(&addr, &QueryRequest::new("@shutdown"), TIMEOUT).unwrap();
    assert_eq!(ack.outcome, Outcome::ShuttingDown);
    let stats = server.join(); // must return: every thread exits
    assert_eq!(stats.ok, 1);
    assert_eq!(stats.shutting_down, 1);
}

#[test]
fn serving_from_a_sharded_index_is_lazy_and_identical() {
    // The scale tier's contract, observed end to end: a daemon whose
    // engine came from a sharded v5 index answers byte-identically to a
    // fully resident engine, while loading only the shards a query's
    // candidate classes live in — one shard per target here, so lazy
    // loading is visible as `esh_shards_loaded < esh_shards_total` in
    // /metrics after a query.
    let clang = Compiler::new(Vendor::Clang, VendorVersion::new(3, 5));
    let icc = Compiler::new(Vendor::Icc, VendorVersion::new(15, 0));
    let gcc = Compiler::new(Vendor::Gcc, VendorVersion::new(4, 9));
    let mut procs = Vec::new();
    for f in [
        demo::saturating_sum(),
        demo::wget_like(),
        demo::heartbleed_like(),
        demo::venom_like(),
        demo::ws_snmp_like(),
        demo::shellshock_like(),
    ] {
        for (toolchain, cc) in [("clang 3.5", &clang), ("icc 15.0", &icc), ("gcc 4.9", &gcc)] {
            procs.push(CompiledProc {
                package: "lazy-e2e".into(),
                func: f.name.clone(),
                cve: None,
                toolchain: (*toolchain).into(),
                patch: PatchTag::Original,
                proc_: cc.compile_function(&f),
            });
        }
    }
    let corpus = Corpus { procs };
    let resident = engine_over(&corpus);

    let dir = std::env::temp_dir().join(format!("esh-serve-lazy-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let summary = esh_index::write_sharded(&resident, &dir, 1).expect("write sharded");
    assert_eq!(summary.shards, corpus.procs.len(), "one target per shard");
    let lazy = esh_index::open_sharded(&dir).expect("open sharded");
    let mut lazy = lazy;
    lazy.set_threads(1);

    let needle = corpus.procs[0].display();
    let expected = ranked_matches(&resident.query(&corpus.procs[0].proc_), Some(TargetId(0)), 10);

    let server = Server::start(
        lazy,
        corpus,
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            queue_capacity: 8,
            read_timeout_ms: 2_000,
            ..ServeConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr().to_string();

    let resp = remote_query(&addr, &QueryRequest::new(&needle), TIMEOUT).unwrap();
    assert_eq!(resp.outcome, Outcome::Ok);
    assert_eq!(resp.matches.len(), expected.len());
    for (got, want) in resp.matches.iter().zip(&expected) {
        assert_eq!(got.name, want.name);
        assert_eq!(got.ges.to_bits(), want.ges.to_bits(), "{}", want.name);
        assert_eq!(got.s_log.to_bits(), want.s_log.to_bits(), "{}", want.name);
        assert_eq!(got.s_vcp.to_bits(), want.s_vcp.to_bits(), "{}", want.name);
    }

    let (status, body) = http_get(&addr, "/metrics", TIMEOUT).unwrap();
    assert_eq!(status, 200);
    let metric = |name: &str| -> u64 {
        body.lines()
            .find_map(|l| l.strip_prefix(name).and_then(|v| v.trim().parse().ok()))
            .unwrap_or_else(|| panic!("metric {name} missing:\n{body}"))
    };
    let total = metric("esh_shards_total");
    let loaded = metric("esh_shards_loaded");
    let fanout = metric("esh_shard_fanout_total");
    assert_eq!(total, summary.shards as u64);
    assert!(loaded > 0, "the query touched no shards at all?");
    assert!(
        loaded < total,
        "serving one query loaded every shard ({loaded}/{total}) — lazy loading is broken"
    );
    assert!(fanout > 0 && fanout <= loaded, "fanout {fanout} vs loaded {loaded}");
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shard_budget_mb_caps_residency_while_serving_identically() {
    use esh_corpus::scale::{stream_scale_corpus, ScaleConfig};
    // A corpus whose shard payload comfortably exceeds 1MB (~420
    // procedures × ~6.5KB each), served under `--shard-budget-mb 1`:
    // the budget is genuinely binding once a dense query walks the
    // corpus, so the daemon must evict shards mid-query — and still
    // answer byte-identically to a fully resident engine, with peak
    // residency never crossing the cap.
    // Eager (whole-shard) decode makes every loaded shard's full payload
    // resident, so the budget binds after a handful of queries. Demand
    // decode is exercised in a second phase below: the same budget, the
    // same queries, and the decode-aware accounting keeps residency so
    // far under the cap that nothing needs evicting.
    const BUDGET_MB: u64 = 1;
    let config = ScaleConfig::new(420, 0x5e7e);
    let mut resident = SimilarityEngine::new(EngineConfig {
        threads: 1,
        ..EngineConfig::default()
    });
    let mut procs = Vec::new();
    stream_scale_corpus(&config, |p| {
        resident.add_target(p.display(), &p.proc_);
        procs.push(p);
    });
    let corpus = Corpus { procs };

    let dir = std::env::temp_dir().join(format!("esh-serve-budget-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    esh_index::write_sharded(&resident, &dir, 1).expect("write sharded");
    let manifest = esh_index::read_manifest(&dir).expect("manifest");
    assert!(
        manifest.shard_bytes > 2 * BUDGET_MB * 1024 * 1024,
        "fixture too small to make a {BUDGET_MB}MB budget binding: {}B of shards",
        manifest.shard_bytes
    );
    let mut lazy = esh_index::open_sharded_with(
        &dir,
        esh_index::EshxOpenOptions {
            demand: false,
            ..Default::default()
        },
    )
    .expect("open sharded");
    lazy.set_threads(1);

    // Two queries from distinct sources, baselines computed offline
    // before the corpus moves into the server.
    let picks = [0usize, 21];
    let baselines: Vec<(String, Vec<esh_serve::protocol::RankedMatch>)> = picks
        .iter()
        .map(|&qi| {
            (
                corpus.procs[qi].display(),
                ranked_matches(&resident.query(&corpus.procs[qi].proc_), Some(TargetId(qi)), 10),
            )
        })
        .collect();

    let server = Server::start(
        lazy,
        corpus,
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            queue_capacity: 8,
            read_timeout_ms: 2_000,
            shard_budget_mb: Some(BUDGET_MB),
            ..ServeConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr().to_string();

    for (needle, expected) in &baselines {
        let resp = remote_query(&addr, &QueryRequest::new(needle), TIMEOUT).unwrap();
        assert_eq!(resp.outcome, Outcome::Ok, "{needle}");
        assert_eq!(resp.matches.len(), expected.len(), "{needle}");
        for (got, want) in resp.matches.iter().zip(expected) {
            assert_eq!(got.name, want.name, "{needle}");
            assert_eq!(got.ges.to_bits(), want.ges.to_bits(), "{}", want.name);
            assert_eq!(got.s_log.to_bits(), want.s_log.to_bits(), "{}", want.name);
            assert_eq!(got.s_vcp.to_bits(), want.s_vcp.to_bits(), "{}", want.name);
        }
    }

    let (status, body) = http_get(&addr, "/metrics", TIMEOUT).unwrap();
    assert_eq!(status, 200);
    let metric = |name: &str| -> u64 {
        body.lines()
            .find_map(|l| l.strip_prefix(name).and_then(|v| v.trim().parse().ok()))
            .unwrap_or_else(|| panic!("metric {name} missing:\n{body}"))
    };
    let budget_bytes = BUDGET_MB * 1024 * 1024;
    let evicted = metric("esh_shards_evicted_total");
    let resident_bytes = metric("esh_shards_resident_bytes");
    let peak = metric("esh_shards_resident_bytes_peak");
    assert!(evicted > 0, "a binding budget never evicted a shard");
    assert!(
        resident_bytes <= budget_bytes,
        "settled residency {resident_bytes}B exceeds the {budget_bytes}B budget"
    );
    assert!(
        peak <= budget_bytes,
        "peak residency {peak}B exceeds the {budget_bytes}B budget"
    );
    server.shutdown();

    // Phase two: the same budget under sub-shard demand decoding. Only
    // the records the queries actually price get decoded, so residency
    // stays far enough below the cap that the budget never has to evict
    // — and the answers are still byte-identical.
    let mut demand = esh_index::open_sharded(&dir).expect("open sharded (demand)");
    demand.set_threads(1);
    let server = Server::start(
        demand,
        Corpus {
            procs: {
                let mut procs = Vec::new();
                stream_scale_corpus(&config, |p| procs.push(p));
                procs
            },
        },
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            queue_capacity: 8,
            read_timeout_ms: 2_000,
            shard_budget_mb: Some(BUDGET_MB),
            ..ServeConfig::default()
        },
    )
    .expect("bind loopback (demand)");
    let addr = server.local_addr().to_string();
    for (needle, expected) in &baselines {
        let resp = remote_query(&addr, &QueryRequest::new(needle), TIMEOUT).unwrap();
        assert_eq!(resp.outcome, Outcome::Ok, "{needle} (demand)");
        for (got, want) in resp.matches.iter().zip(expected) {
            assert_eq!(got.name, want.name, "{needle} (demand)");
            assert_eq!(got.ges.to_bits(), want.ges.to_bits(), "{} (demand)", want.name);
        }
    }
    let (status, body) = http_get(&addr, "/metrics", TIMEOUT).unwrap();
    assert_eq!(status, 200);
    let metric = |name: &str| -> u64 {
        body.lines()
            .find_map(|l| l.strip_prefix(name).and_then(|v| v.trim().parse().ok()))
            .unwrap_or_else(|| panic!("metric {name} missing:\n{body}"))
    };
    let decoded = metric("esh_shard_decoded_bytes");
    let mapped = metric("esh_shard_mapped_bytes");
    let demand_peak = metric("esh_shards_resident_bytes_peak");
    assert!(
        metric("esh_shards_evicted_total") == 0,
        "demand decode stayed under budget yet something was evicted"
    );
    assert!(
        demand_peak <= budget_bytes,
        "demand-decode peak {demand_peak}B exceeds the {budget_bytes}B budget"
    );
    assert!(demand_peak < peak, "demand peak {demand_peak}B not below eager peak {peak}B");
    assert!(
        decoded > 0 && decoded < mapped,
        "demand decode should decode a strict subset of mapped bytes ({decoded}/{mapped})"
    );
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
