//! An n-gram similarity baseline (paper §7 cites Smith & Horwitz; its
//! ref \[14\] shows n-grams are a weak representation for binary
//! similarity — this implementation exists to reproduce that
//! observation).

use std::collections::HashMap;

use esh_asm::Procedure;

/// The n-gram window (mnemonic trigrams).
pub const NGRAM: usize = 3;

/// Mnemonic n-gram frequency vector of a procedure.
pub fn ngram_vector(p: &Procedure) -> HashMap<Vec<String>, f64> {
    let toks: Vec<String> = p.insts().map(|i| i.mnemonic()).collect();
    let mut v: HashMap<Vec<String>, f64> = HashMap::new();
    if toks.len() < NGRAM {
        if !toks.is_empty() {
            *v.entry(toks).or_default() += 1.0;
        }
        return v;
    }
    for w in toks.windows(NGRAM) {
        *v.entry(w.to_vec()).or_default() += 1.0;
    }
    v
}

/// Cosine similarity of two n-gram vectors.
pub fn cosine(a: &HashMap<Vec<String>, f64>, b: &HashMap<Vec<String>, f64>) -> f64 {
    let dot: f64 = a.iter().filter_map(|(k, x)| b.get(k).map(|y| x * y)).sum();
    let na: f64 = a.values().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.values().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot / (na * nb)
}

/// n-gram similarity of two procedures.
pub fn ngram_similarity(a: &Procedure, b: &Procedure) -> f64 {
    cosine(&ngram_vector(a), &ngram_vector(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use esh_asm::parse_proc;

    #[test]
    fn self_similarity_is_one() {
        let p = parse_proc("proc f\nentry:\nmov rax, rdi\nadd rax, 0x1\nshr rax, 0x2\nret\n")
            .expect("parses");
        assert!((ngram_similarity(&p, &p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unrelated_sequences_score_low() {
        let a = parse_proc("proc f\nentry:\nmov rax, rdi\nadd rax, 0x1\nshr rax, 0x2\nret\n")
            .expect("parses");
        let b = parse_proc("proc g\nentry:\npush rbx\ncall x/0\npop rbx\nret\n").expect("parses");
        assert!(ngram_similarity(&a, &b) < 0.3);
    }

    #[test]
    fn short_procedures_degenerate_gracefully() {
        let a = parse_proc("proc f\nentry:\nret\n").expect("parses");
        let b = parse_proc("proc g\nentry:\nret\n").expect("parses");
        assert!(ngram_similarity(&a, &b) > 0.99);
    }
}
