#![warn(missing_docs)]

//! # esh-baselines — the comparison systems of the paper's evaluation
//!
//! * [`tracy`] — a tracelet-based syntactic matcher in the style of
//!   TRACY (David & Yahav, PLDI 2014), the "TRACY (Ratio-70)" column of
//!   Table 2;
//! * [`bindiff`] — a structural whole-library matcher in the style of
//!   zynamics BinDiff, the subject of Table 3;
//! * [`blex`] — a blanket-execution dynamic baseline in the style of
//!   Egele et al. (§7 "dynamic methods");
//! * [`ngram`] — a mnemonic n-gram baseline (§7's weak-representation
//!   observation).

pub mod bindiff;
pub mod blex;
pub mod ngram;
pub mod tracy;

pub use bindiff::{feature_similarity, features, match_libraries, Features, PairMatch};
pub use blex::{blex_similarity, observe, SideEffects, DEFAULT_ENVIRONMENTS};
pub use ngram::{ngram_similarity, ngram_vector};
pub use tracy::{tracelet_similarity, tracelets, tracy_similarity, RATIO_70};
