//! A TRACY-style tracelet matcher (David & Yahav, PLDI 2014) — the
//! syntactic baseline of the paper's Table 2.
//!
//! Procedures decompose into *tracelets*: sequences of `k` consecutive
//! basic blocks along CFG edges (k = 3, as in the original system).
//! Instructions are canonicalized (registers abstracted, constants kept)
//! and tracelets compared by normalized edit distance; a procedure matches
//! at "Ratio-70" when a tracelet pair scores ≥ 0.70.

use esh_asm::{Inst, Operand, Procedure};

/// Tracelet length in basic blocks (TRACY's default).
pub const TRACELET_BLOCKS: usize = 3;

/// The match-acceptance ratio of the paper's "TRACY (Ratio-70)" column.
pub const RATIO_70: f64 = 0.70;

/// Renames registers by first appearance within one tracelet — TRACY's
/// consistent register abstraction (a pure renaming is invisible, but a
/// different data-flow shape is not).
#[derive(Debug, Default)]
struct Renamer {
    seen: Vec<esh_asm::Reg64>,
}

impl Renamer {
    fn name(&mut self, r: esh_asm::Reg64) -> String {
        let idx = match self.seen.iter().position(|x| *x == r) {
            Some(i) => i,
            None => {
                self.seen.push(r);
                self.seen.len() - 1
            }
        };
        format!("R{idx}")
    }
}

/// A canonical instruction token: mnemonic plus consistently-renamed
/// operand shape.
fn token(inst: &Inst, ren: &mut Renamer) -> String {
    fn op_tok(o: &Operand, ren: &mut Renamer) -> String {
        match o {
            Operand::Reg(r) => format!("{}:{}", ren.name(r.base), r.width.bits()),
            Operand::Imm(i) => format!("#{i}"),
            Operand::Mem(m) => {
                let mut s = String::from("[");
                if let Some(b) = m.base {
                    s.push_str(&ren.name(b));
                }
                if let Some((i, sc)) = m.index {
                    s.push_str(&format!("+{}*{}", ren.name(i), sc.factor()));
                }
                if m.disp != 0 {
                    s.push_str(&format!("{:+}", m.disp));
                }
                s.push(']');
                s
            }
        }
    }
    let op_tok = |o: &Operand, ren: &mut Renamer| op_tok(o, ren);
    match inst {
        Inst::Mov { dst, src } => format!("mov {} {}", op_tok(dst, ren), op_tok(src, ren)),
        Inst::Add { dst, src } => format!("add {} {}", op_tok(dst, ren), op_tok(src, ren)),
        Inst::Sub { dst, src } => format!("sub {} {}", op_tok(dst, ren), op_tok(src, ren)),
        Inst::And { dst, src } => format!("and {} {}", op_tok(dst, ren), op_tok(src, ren)),
        Inst::Or { dst, src } => format!("or {} {}", op_tok(dst, ren), op_tok(src, ren)),
        Inst::Xor { dst, src } => format!("xor {} {}", op_tok(dst, ren), op_tok(src, ren)),
        Inst::Cmp { a, b } => format!("cmp {} {}", op_tok(a, ren), op_tok(b, ren)),
        Inst::Test { a, b } => format!("test {} {}", op_tok(a, ren), op_tok(b, ren)),
        Inst::Lea { dst, addr } => format!(
            "lea {} {}",
            ren.name(dst.base),
            op_tok(&Operand::Mem(*addr), ren)
        ),
        Inst::MovZx { dst, src } => {
            format!("movzx {} {}", ren.name(dst.base), op_tok(src, ren))
        }
        Inst::MovSx { dst, src } => {
            format!("movsx {} {}", ren.name(dst.base), op_tok(src, ren))
        }
        Inst::Shl { dst, amount } => format!("shl {} {amount}", op_tok(dst, ren)),
        Inst::Shr { dst, amount } => format!("shr {} {amount}", op_tok(dst, ren)),
        Inst::Sar { dst, amount } => format!("sar {} {amount}", op_tok(dst, ren)),
        Inst::Imul { dst, src } => format!("imul {} {}", ren.name(dst.base), op_tok(src, ren)),
        Inst::ImulImm { dst, src, imm } => {
            format!("imul {} {} #{imm}", ren.name(dst.base), op_tok(src, ren))
        }
        Inst::Set { cond, dst } => format!("set{} {}", cond.suffix(), op_tok(dst, ren)),
        Inst::Cmov { cond, dst, src } => {
            format!(
                "cmov{} {} {}",
                cond.suffix(),
                ren.name(dst.base),
                op_tok(src, ren)
            )
        }
        Inst::Push { src } => format!("push {}", op_tok(src, ren)),
        Inst::Pop { dst } => format!("pop {}", op_tok(dst, ren)),
        Inst::Inc { dst } => format!("inc {}", op_tok(dst, ren)),
        Inst::Dec { dst } => format!("dec {}", op_tok(dst, ren)),
        Inst::Call { args, .. } => format!("call/{args}"),
        Inst::Jmp { .. } => "jmp".into(),
        Inst::Jcc { cond, .. } => format!("j{}", cond.suffix()),
        other => other.mnemonic(),
    }
}

/// All tracelets (token sequences) of a procedure.
pub fn tracelets(proc_: &Procedure) -> Vec<Vec<String>> {
    let mut out = Vec::new();
    let n = proc_.blocks.len();
    for start in 0..n {
        // Depth-first paths of up to TRACELET_BLOCKS blocks.
        let mut stack: Vec<(usize, Vec<usize>)> = vec![(start, vec![start])];
        while let Some((cur, path)) = stack.pop() {
            if path.len() == TRACELET_BLOCKS || proc_.successors(cur).is_empty() {
                let mut toks = Vec::new();
                let mut ren = Renamer::default();
                for b in &path {
                    for i in &proc_.blocks[*b].insts {
                        toks.push(token(i, &mut ren));
                    }
                }
                if !toks.is_empty() {
                    out.push(toks);
                }
                continue;
            }
            for succ in proc_.successors(cur) {
                if let Some(idx) = proc_.blocks.iter().position(|b| b.label == succ) {
                    if !path.contains(&idx) {
                        let mut p = path.clone();
                        p.push(idx);
                        stack.push((idx, p));
                    }
                }
            }
        }
    }
    out
}

fn edit_distance(a: &[String], b: &[String]) -> usize {
    let (n, m) = (a.len(), b.len());
    let mut prev: Vec<usize> = (0..=m).collect();
    let mut cur = vec![0usize; m + 1];
    for i in 1..=n {
        cur[0] = i;
        for j in 1..=m {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            cur[j] = (prev[j] + 1).min(cur[j - 1] + 1).min(prev[j - 1] + cost);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

/// Similarity of two tracelets in `[0, 1]`.
pub fn tracelet_similarity(a: &[String], b: &[String]) -> f64 {
    let max = a.len().max(b.len());
    if max == 0 {
        return 1.0;
    }
    1.0 - edit_distance(a, b) as f64 / max as f64
}

/// TRACY's procedure similarity: the fraction of query tracelets whose
/// best target match reaches [`RATIO_70`].
pub fn tracy_similarity(query: &Procedure, target: &Procedure) -> f64 {
    let qt = tracelets(query);
    let tt = tracelets(target);
    if qt.is_empty() || tt.is_empty() {
        return 0.0;
    }
    let mut matched = 0usize;
    for q in &qt {
        let best = tt
            .iter()
            .map(|t| tracelet_similarity(q, t))
            .fold(0.0f64, f64::max);
        if best >= RATIO_70 {
            matched += 1;
        }
    }
    matched as f64 / qt.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use esh_asm::parse_proc;

    fn p(text: &str) -> Procedure {
        parse_proc(text).expect("parses")
    }

    #[test]
    fn identical_procedures_score_one() {
        let a = p("proc f\nentry:\nmov rax, rdi\nadd rax, 0x1\nret\n");
        assert_eq!(tracy_similarity(&a, &a), 1.0);
    }

    #[test]
    fn register_renaming_is_invisible() {
        // TRACY abstracts registers: pure renaming scores 1.0.
        let a = p("proc f\nentry:\nmov rax, rdi\nadd rax, 0x5\nret\n");
        let b = p("proc g\nentry:\nmov rbx, rsi\nadd rbx, 0x5\nret\n");
        assert_eq!(tracy_similarity(&a, &b), 1.0);
    }

    #[test]
    fn different_instruction_selection_hurts_tracy() {
        // The same computation through different idioms (lea vs add/imul)
        // defeats a syntactic matcher — the motivation for Esh.
        let a = p("proc f\nentry:\nlea rax, [rdi+rdi*4]\nlea rax, [rax+0x13]\nret\n");
        let b = p("proc g\nentry:\nimul rax, rdi, 0x5\nadd rax, 0x13\nret\n");
        assert!(tracy_similarity(&a, &b) < 0.7);
    }

    #[test]
    fn small_patches_keep_high_similarity() {
        // One changed constant out of five instructions: TRACY's strength.
        let a = p("proc f\nentry:\nmov rax, rdi\nadd rax, 0x1\nxor rax, rsi\nshr rax, 0x2\nret\n");
        let b = p("proc g\nentry:\nmov rax, rdi\nadd rax, 0x2\nxor rax, rsi\nshr rax, 0x2\nret\n");
        assert!(tracy_similarity(&a, &b) >= 0.7);
    }

    #[test]
    fn tracelets_follow_cfg_paths() {
        let a = p("proc f\nentry:\ntest rdi, rdi\nje out\nbody:\nadd rax, 0x1\nout:\nret\n");
        let ts = tracelets(&a);
        assert!(
            ts.len() >= 2,
            "branching yields multiple tracelets: {}",
            ts.len()
        );
    }
}
