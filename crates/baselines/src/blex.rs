//! A BLEX-style *blanket execution* baseline (Egele et al., USENIX
//! Security 2014 — the paper's §7 "dynamic methods").
//!
//! Both procedures execute under `k` randomized environments and their
//! observable side effects are compared: return value, external-call
//! trace, and heap writes. The paper notes the approach's weakness —
//! similarity can occur by chance under few environments, and coerced
//! execution inflates false positives — which the experiments here
//! reproduce by exposing the environment count as a knob.

use esh_asm::Procedure;
use esh_cc::emu;
use esh_minic::{Memory, StdHost};

/// One observed execution: the side effects BLEX compares.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SideEffects {
    /// Return value (`None` when execution faulted / ran out of fuel).
    pub ret: Option<u64>,
    /// External call trace (names and argument values).
    pub calls: Vec<(String, Vec<u64>)>,
    /// Digest of all bytes written to the two probe buffers.
    pub heap_digest: u64,
}

/// Number of randomized environments (the paper's coverage knob).
pub const DEFAULT_ENVIRONMENTS: u64 = 8;

fn digest_range(mem: &Memory, base: u64, len: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for i in 0..len {
        h ^= u64::from(mem.read_u8(base + i));
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Runs `proc_` in environment `seed` and observes its side effects.
pub fn observe(proc_: &Procedure, seed: u64) -> SideEffects {
    let mut mem = Memory::new();
    // Two probe buffers with patterned contents derived from the seed.
    let a = mem.alloc(4096);
    let b = mem.alloc(4096);
    for i in 0..256u64 {
        let z = seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(i)
            .wrapping_mul(0xbf58_476d_1ce4_e5b9);
        mem.write_u8(a + i, z as u8);
        mem.write_u8(b + i, (z >> 8) as u8);
    }
    let args = [a, b, seed % 64 + 1, seed.wrapping_mul(31)];
    let mut host = StdHost::default();
    let ret = emu::run_procedure_fuel(proc_, &args, &mut mem, &mut host, 1 << 20).ok();
    SideEffects {
        ret,
        calls: host.trace,
        heap_digest: digest_range(&mem, a, 4096) ^ digest_range(&mem, b, 4096).rotate_left(32),
    }
}

/// BLEX similarity: the fraction of environments under which the two
/// procedures produce identical side effects, with partial credit for
/// matching call traces when values differ.
pub fn blex_similarity(a: &Procedure, b: &Procedure, environments: u64) -> f64 {
    if environments == 0 {
        return 0.0;
    }
    let mut score = 0.0;
    for seed in 0..environments {
        let ea = observe(a, seed);
        let eb = observe(b, seed);
        if ea == eb {
            score += 1.0;
        } else {
            let call_names_a: Vec<&str> = ea.calls.iter().map(|(n, _)| n.as_str()).collect();
            let call_names_b: Vec<&str> = eb.calls.iter().map(|(n, _)| n.as_str()).collect();
            if ea.ret == eb.ret && ea.heap_digest == eb.heap_digest {
                score += 0.75;
            } else if call_names_a == call_names_b && !call_names_a.is_empty() {
                score += 0.25;
            }
        }
    }
    score / environments as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use esh_cc::{Compiler, Vendor, VendorVersion};
    use esh_minic::demo;

    fn gcc() -> Compiler {
        Compiler::new(Vendor::Gcc, VendorVersion::new(4, 9))
    }

    fn icc() -> Compiler {
        Compiler::new(Vendor::Icc, VendorVersion::new(15, 0))
    }

    #[test]
    fn same_source_cross_vendor_scores_high() {
        let f = demo::wget_like();
        let a = gcc().compile_function(&f);
        let b = icc().compile_function(&f);
        let s = blex_similarity(&a, &b, DEFAULT_ENVIRONMENTS);
        assert!(
            s > 0.9,
            "semantically equal code must agree dynamically: {s}"
        );
    }

    #[test]
    fn different_sources_score_lower() {
        let a = gcc().compile_function(&demo::wget_like());
        let b = gcc().compile_function(&demo::venom_like());
        let s = blex_similarity(&a, &b, DEFAULT_ENVIRONMENTS);
        assert!(s < 0.5, "unrelated code should diverge: {s}");
    }

    #[test]
    fn patched_code_partially_agrees() {
        use esh_minic::patch::{apply_patch, PatchLevel};
        let f = demo::shellshock2_like();
        let mut p = apply_patch(&f, PatchLevel::Minor, 7);
        p.name = f.name.clone();
        let a = gcc().compile_function(&f);
        let b = gcc().compile_function(&p);
        let unrelated = gcc().compile_function(&demo::clobberin_time_like());
        let s_patch = blex_similarity(&a, &b, DEFAULT_ENVIRONMENTS);
        let s_unrel = blex_similarity(&a, &unrelated, DEFAULT_ENVIRONMENTS);
        assert!(
            s_patch >= s_unrel,
            "a one-edit patch should stay closer than unrelated code \
             ({s_patch} vs {s_unrel})"
        );
    }

    #[test]
    fn observation_is_deterministic_per_seed() {
        let p = gcc().compile_function(&demo::heartbleed_like());
        assert_eq!(observe(&p, 3), observe(&p, 3));
        assert_ne!(observe(&p, 3), observe(&p, 4));
    }

    #[test]
    fn single_environment_can_be_fooled() {
        // The paper's §7 critique: "as they base the similarity on a single
        // randomized run, similarity may occur by chance". Two functions
        // that agree on returns for tiny inputs but differ in general can
        // tie under one environment while more environments separate them.
        let a = gcc().compile_function(&demo::ws_snmp_like());
        let b = gcc().compile_function(&demo::ws_snmp_like());
        let one = blex_similarity(&a, &b, 1);
        let many = blex_similarity(&a, &b, DEFAULT_ENVIRONMENTS);
        // Identical code: both perfect — the knob exists for experiments.
        assert_eq!(one, 1.0);
        assert_eq!(many, 1.0);
    }
}
