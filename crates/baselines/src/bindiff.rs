//! A BinDiff-style whole-library matcher — the baseline of Table 3.
//!
//! Per the BinDiff manual (paper refs [8, 9]), matching is structural and
//! heuristic: procedures pair up by cascades of features (basic-block
//! count, edge count, call count, degree sequences, mnemonic histogram),
//! explicitly ignoring the semantics of concrete instructions. The paper
//! finds it succeeds only when block/branch structure is preserved —
//! which cross-vendor compilation usually destroys.

use std::collections::HashMap;

use esh_asm::{Inst, Procedure, Program};

/// Structural features of one procedure.
#[derive(Debug, Clone, PartialEq)]
pub struct Features {
    /// Number of basic blocks.
    pub blocks: usize,
    /// Number of CFG edges.
    pub edges: usize,
    /// Number of call sites.
    pub calls: usize,
    /// Sorted out-degree sequence.
    pub degrees: Vec<usize>,
    /// Instruction count.
    pub insts: usize,
    /// Mnemonic histogram (sorted `(mnemonic, count)`).
    pub mnemonics: Vec<(String, usize)>,
}

/// Extracts [`Features`] from a procedure.
pub fn features(p: &Procedure) -> Features {
    let blocks = p.blocks.len();
    let mut edges = 0;
    let mut degrees = Vec::with_capacity(blocks);
    for i in 0..blocks {
        let d = p.successors(i).len();
        edges += d;
        degrees.push(d);
    }
    degrees.sort_unstable();
    let calls = p.insts().filter(|i| matches!(i, Inst::Call { .. })).count();
    let mut hist: HashMap<String, usize> = HashMap::new();
    for i in p.insts() {
        *hist.entry(i.mnemonic()).or_default() += 1;
    }
    let mut mnemonics: Vec<(String, usize)> = hist.into_iter().collect();
    mnemonics.sort();
    Features {
        blocks,
        edges,
        calls,
        degrees,
        insts: p.inst_count(),
        mnemonics,
    }
}

/// A proposed procedure pairing with BinDiff-style scores.
#[derive(Debug, Clone)]
pub struct PairMatch {
    /// Procedure name in the first library.
    pub a: String,
    /// Procedure name in the second library.
    pub b: String,
    /// Similarity in `[0, 1]`.
    pub similarity: f64,
    /// Confidence in `[0, 1]`.
    pub confidence: f64,
}

fn histogram_overlap(a: &[(String, usize)], b: &[(String, usize)]) -> f64 {
    let (mut i, mut j) = (0, 0);
    let mut inter = 0usize;
    let mut total_a = 0usize;
    let mut total_b = 0usize;
    for (_, c) in a {
        total_a += c;
    }
    for (_, c) in b {
        total_b += c;
    }
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += a[i].1.min(b[j].1);
                i += 1;
                j += 1;
            }
        }
    }
    if total_a.max(total_b) == 0 {
        return 1.0;
    }
    inter as f64 / total_a.max(total_b) as f64
}

/// Pairwise similarity of two feature vectors.
///
/// BinDiff's initial matching works on *exact* structural signatures
/// (block/edge/call counts, degree sequences), with weaker fallbacks —
/// the manual is explicit that instruction semantics are ignored. The
/// cascade below mirrors that: exact-equality indicators dominate, so a
/// compiler that reshapes the CFG (loop rotation, if-conversion, shared
/// epilogues) breaks the match even when semantics are unchanged.
pub fn feature_similarity(a: &Features, b: &Features) -> f64 {
    let eq = |x: usize, y: usize| -> f64 { f64::from(u8::from(x == y)) };
    let structural = 0.35 * eq(a.blocks, b.blocks)
        + 0.25 * eq(a.edges, b.edges)
        + 0.15 * f64::from(u8::from(a.degrees == b.degrees))
        + 0.10 * eq(a.calls, b.calls);
    // Mnemonic histogram, lightly weighted (BinDiff mostly ignores it).
    structural + 0.15 * histogram_overlap(&a.mnemonics, &b.mnemonics)
}

/// Matches two whole libraries, greedily pairing the most similar
/// procedures first (each procedure used at most once).
pub fn match_libraries(a: &Program, b: &Program) -> Vec<PairMatch> {
    let fa: Vec<(usize, Features)> = a
        .procs
        .iter()
        .enumerate()
        .map(|(i, p)| (i, features(p)))
        .collect();
    let fb: Vec<(usize, Features)> = b
        .procs
        .iter()
        .enumerate()
        .map(|(i, p)| (i, features(p)))
        .collect();
    let mut candidates: Vec<(f64, usize, usize)> = Vec::new();
    for (i, fai) in &fa {
        for (j, fbj) in &fb {
            candidates.push((feature_similarity(fai, fbj), *i, *j));
        }
    }
    candidates.sort_by(|x, y| y.0.partial_cmp(&x.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut used_a = vec![false; a.procs.len()];
    let mut used_b = vec![false; b.procs.len()];
    let mut out = Vec::new();
    for (sim, i, j) in candidates {
        if used_a[i] || used_b[j] || sim < 0.5 {
            continue;
        }
        used_a[i] = true;
        used_b[j] = true;
        // Confidence: how much better than the runner-up this pairing is,
        // folded with structural exactness.
        let exact = features(&a.procs[i]) == features(&b.procs[j]);
        let confidence = if exact {
            0.99
        } else {
            (sim * 0.9 + 0.05).min(0.95)
        };
        out.push(PairMatch {
            a: a.procs[i].name.clone(),
            b: b.procs[j].name.clone(),
            similarity: sim,
            confidence,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use esh_asm::parse_program;

    #[test]
    fn identical_libraries_match_perfectly() {
        let text = "proc f\nentry:\nmov rax, rdi\nret\nproc g\nentry:\ntest rdi, rdi\nje x\nb:\nadd rax, 0x1\nx:\nret\n";
        let a = parse_program(text).expect("parses");
        let b = parse_program(text).expect("parses");
        let ms = match_libraries(&a, &b);
        assert_eq!(ms.len(), 2);
        for m in &ms {
            assert_eq!(m.a, m.b);
            assert!(m.similarity > 0.99);
            assert!(m.confidence > 0.9);
        }
    }

    #[test]
    fn structural_change_breaks_matching() {
        // Same semantics, different block structure (branch vs cmov-style
        // straight line): BinDiff-style matching degrades.
        let a = parse_program(
            "proc f\nentry:\ncmp rdi, rsi\njl less\nmov rax, rsi\nret\nless:\nmov rax, rdi\nret\n",
        )
        .expect("parses");
        let b = parse_program("proc f\nentry:\nmov rax, rsi\ncmp rdi, rsi\ncmovl rax, rdi\nret\n")
            .expect("parses");
        let fa = features(&a.procs[0]);
        let fb = features(&b.procs[0]);
        assert!(feature_similarity(&fa, &fb) < 0.9);
    }

    #[test]
    fn features_count_structure() {
        let p = parse_program(
            "proc f\nentry:\ntest rdi, rdi\nje out\nbody:\ncall memcpy/3\nout:\nret\n",
        )
        .expect("parses");
        let f = features(&p.procs[0]);
        assert_eq!(f.blocks, 3);
        assert_eq!(f.calls, 1);
        assert!(f.edges >= 3);
    }
}
