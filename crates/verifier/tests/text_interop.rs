//! Interop: strands serialized to the textual IVL format and parsed back
//! verify identically — the guarantee that `.ivl` dumps are faithful
//! exchange artifacts (like the paper's `.bpl` files).

use esh_asm::parse_proc;
use esh_ivl::{lift, parse_proc_text, proc_to_text};
use esh_verifier::{JointQuery, VerifierSession};

fn lift_text(text: &str) -> esh_ivl::Proc {
    let p = parse_proc(&format!("proc t\nentry:\n{text}")).expect("parses");
    lift("t", &p.blocks[0].insts)
}

#[test]
fn parsed_strands_verify_like_originals() {
    let q = lift_text("lea r14d, [r12+0x13]");
    let t = lift_text("mov r9, 0x13\nmov r13, rbx\nlea r13d, [r13+r9]");
    let q2 = parse_proc_text(&proc_to_text(&q)).expect("q roundtrips");
    let t2 = parse_proc_text(&proc_to_text(&t)).expect("t roundtrips");

    let run = |q: &esh_ivl::Proc, t: &esh_ivl::Proc| {
        let mut session = VerifierSession::new();
        let mut jq = JointQuery::new(q, t);
        jq.assume_eq(q.inputs()[0], t.inputs()[0]);
        // Compare the zero-extended 32-bit results (the final temps).
        let qv = *q.temps().last().expect("temps");
        let tv = *t.temps().last().expect("temps");
        jq.assert_eq(qv, tv);
        session.solve(&jq)
    };
    assert_eq!(run(&q, &t), run(&q2, &t2), "verdicts must survive the text roundtrip");
    assert_eq!(run(&q, &t2), run(&q2, &t), "mixed original/parsed pairs agree too");
}

#[test]
fn text_dump_of_compiled_strand_is_parseable_and_equivalent() {
    use esh_cc::{Compiler, Vendor, VendorVersion};
    use esh_minic::demo;
    use esh_strands::extract_proc_strands;

    let cc = Compiler::new(Vendor::Gcc, VendorVersion::new(4, 9));
    let p = cc.compile_function(&demo::ws_snmp_like());
    let strand = extract_proc_strands(&p)
        .into_iter()
        .max_by_key(|s| s.insts.len())
        .expect("strands");
    let lifted = lift("s", &strand.insts);
    let parsed = parse_proc_text(&proc_to_text(&lifted)).expect("parses");

    // Every temp of the original must verify equal to its same-named twin
    // under identity input matching.
    let mut session = VerifierSession::new();
    let mut jq = JointQuery::new(&lifted, &parsed);
    for (qi, ti) in lifted.inputs().into_iter().zip(parsed.inputs()) {
        assert_eq!(lifted.var(qi).name, parsed.var(ti).name, "input order preserved");
        jq.assume_eq(qi, ti);
    }
    let pairs: Vec<_> = lifted
        .temps()
        .into_iter()
        .map(|qv| {
            let name = &lifted.var(qv).name;
            let tv = parsed
                .temps()
                .into_iter()
                .find(|tv| &parsed.var(*tv).name == name)
                .expect("same temp names");
            (qv, tv)
        })
        .collect();
    for (qv, tv) in &pairs {
        jq.assert_eq(*qv, *tv);
    }
    let verdicts = session.solve(&jq);
    assert!(
        verdicts.iter().all(|v| *v == esh_verifier::Verdict::Equal),
        "all {} temps must match: {verdicts:?}",
        pairs.len()
    );
}
