//! Boogie-style joint queries over two strands (paper Algorithm 2's
//! program shape: assume input equalities, compose both bodies, assert
//! variable equalities, `Solve()`).

use esh_ivl::{Proc, Sort, VarId};
use esh_solver::{EquivChecker, EquivConfig, EquivStats, TermId, Verdict};

use crate::encode::{encode_proc, InputNamer};

/// A joint query/target program with assumptions and assertions, in the
/// shape of the paper's Algorithm 2.
#[derive(Debug)]
pub struct JointQuery<'a> {
    query: &'a Proc,
    target: &'a Proc,
    assumes: Vec<(VarId, VarId)>,
    asserts: Vec<(VarId, VarId)>,
}

impl<'a> JointQuery<'a> {
    /// Creates a joint program over `query` and `target` (their variable
    /// name spaces are separate by construction).
    pub fn new(query: &'a Proc, target: &'a Proc) -> JointQuery<'a> {
        JointQuery {
            query,
            target,
            assumes: Vec::new(),
            asserts: Vec::new(),
        }
    }

    /// `assume q_input == t_input`.
    ///
    /// # Panics
    ///
    /// Panics if either side is not an input or their sorts differ.
    pub fn assume_eq(&mut self, q_input: VarId, t_input: VarId) -> &mut Self {
        assert!(
            self.query.var(q_input).input.is_some(),
            "assume on non-input"
        );
        assert!(
            self.target.var(t_input).input.is_some(),
            "assume on non-input"
        );
        assert_eq!(
            self.query.var(q_input).sort,
            self.target.var(t_input).sort,
            "assumed inputs must share a sort"
        );
        self.assumes.push((q_input, t_input));
        self
    }

    /// `assert q_var == t_var`.
    pub fn assert_eq(&mut self, q_var: VarId, t_var: VarId) -> &mut Self {
        self.asserts.push((q_var, t_var));
        self
    }

    /// Discharges all assertions with the program verifier, returning one
    /// verdict per assertion in insertion order.
    pub fn solve(&self, checker: &mut EquivChecker) -> Vec<Verdict> {
        let mut namer = InputNamer::new();
        for (qi, ti) in &self.assumes {
            let shared = namer.fresh();
            namer.unify(0, *qi, shared);
            namer.unify(1, *ti, shared);
        }
        let q_terms = encode_proc(&mut checker.pool, self.query, |v| namer.id_for(0, v));
        let t_terms = encode_proc(&mut checker.pool, self.target, |v| namer.id_for(1, v));
        self.asserts
            .iter()
            .map(|(qv, tv)| {
                if self.query.var(*qv).sort != self.target.var(*tv).sort {
                    return Verdict::NotEqual;
                }
                checker.check_eq(q_terms[qv.index()], t_terms[tv.index()])
            })
            .collect()
    }
}

/// A long-lived verifier session: one term pool and decision cache shared
/// by many joint queries (the paper's batching, §5.5 — repeated strands
/// and repeated subterms are decided once). The checker's SAT backend is
/// incremental by default (one shared solver, CNF cache, learned-clause
/// retention — see `esh_solver::incremental`), so the longer a session
/// lives, the cheaper its queries get; the engine keeps sessions alive
/// across whole queries for exactly this reason.
#[derive(Debug, Default)]
pub struct VerifierSession {
    checker: EquivChecker,
}

impl VerifierSession {
    /// Creates a session with default budgets.
    pub fn new() -> VerifierSession {
        VerifierSession::default()
    }

    /// Creates a session with explicit budgets.
    pub fn with_config(config: EquivConfig) -> VerifierSession {
        VerifierSession {
            checker: EquivChecker::with_config(config),
        }
    }

    /// Encodes a procedure with caller-controlled input naming.
    pub fn encode(&mut self, proc_: &Proc, input_id: impl FnMut(VarId) -> u32) -> Vec<TermId> {
        encode_proc(&mut self.checker.pool, proc_, input_id)
    }

    /// Decides equality of two encoded values.
    pub fn check_eq(&mut self, a: TermId, b: TermId) -> Verdict {
        self.checker.check_eq(a, b)
    }

    /// Runs a joint query.
    pub fn solve(&mut self, query: &JointQuery<'_>) -> Vec<Verdict> {
        query.solve(&mut self.checker)
    }

    /// Decision statistics.
    pub fn stats(&self) -> EquivStats {
        self.checker.stats
    }

    /// SAT-solver cost counters for this session (a view into
    /// [`VerifierSession::stats`]).
    pub fn solver_perf(&self) -> esh_solver::SolverPerf {
        self.checker.stats.solver
    }

    /// Direct access to the underlying checker.
    pub fn checker_mut(&mut self) -> &mut EquivChecker {
        &mut self.checker
    }

    /// Read access to the underlying term pool.
    pub fn pool(&self) -> &esh_solver::TermPool {
        &self.checker.pool
    }

    /// Sorts of an encoded value: bitvector width (0 = memory).
    pub fn width(&self, t: TermId) -> u32 {
        self.checker.pool.width(t)
    }
}

/// Convenience: sort of an IVL variable as (is_mem, width).
pub fn var_shape(p: &Proc, v: VarId) -> (bool, u32) {
    match p.var(v).sort {
        Sort::Bv(w) => (false, w),
        Sort::Mem => (true, 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esh_asm::parse_proc;
    use esh_ivl::lift;

    fn lift_text(text: &str) -> Proc {
        let p = parse_proc(&format!("proc t\nentry:\n{text}")).expect("parses");
        lift("t", &p.blocks[0].insts)
    }

    #[test]
    fn figure3_joint_query_all_assertions_hold() {
        // Paper Figure 3: the gcc strand and the icc strand of the
        // Heartbleed length computation, assumed r12_q == rbx_t.
        let q = lift_text("lea r14d, [r12+0x13]\nmov esi, 0x18\nlea eax, [rsi+r14]");
        let t = lift_text(
            "mov r9, 0x13\nmov r13, rbx\nlea r13d, [r13+r9]\nadd r9, 0x5\nmov esi, r9d\n\
             lea eax, [rsi+r13]",
        );
        let mut session = VerifierSession::new();
        let mut jq = JointQuery::new(&q, &t);
        jq.assume_eq(q.inputs()[0], t.inputs()[0]);
        // Assert the final 64-bit sums equal.
        let q_out = q
            .temps()
            .into_iter()
            .rfind(|v| var_shape(&q, *v).1 == 64)
            .unwrap();
        let t_out = t
            .temps()
            .into_iter()
            .rfind(|v| var_shape(&t, *v).1 == 64)
            .unwrap();
        jq.assert_eq(q_out, t_out);
        let verdicts = session.solve(&jq);
        assert_eq!(verdicts, vec![esh_solver::Verdict::Equal]);
    }

    #[test]
    fn assertions_fail_without_assumptions() {
        let q = lift_text("mov rax, r12\nadd rax, 0x13");
        let t = lift_text("mov rax, rbx\nadd rax, 0x13");
        let mut session = VerifierSession::new();
        // Without assuming r12_q == rbx_t the sums are incomparable.
        let mut jq = JointQuery::new(&q, &t);
        let q_out = *q.temps().last().unwrap();
        let t_out = *t.temps().last().unwrap();
        jq.assert_eq(q_out, t_out);
        assert_eq!(session.solve(&jq), vec![esh_solver::Verdict::NotEqual]);
        // With the assumption they match.
        let mut jq2 = JointQuery::new(&q, &t);
        jq2.assume_eq(q.inputs()[0], t.inputs()[0]);
        jq2.assert_eq(q_out, t_out);
        assert_eq!(session.solve(&jq2), vec![esh_solver::Verdict::Equal]);
    }

    #[test]
    fn mismatched_sorts_assert_not_equal() {
        let q = lift_text("mov eax, r12d"); // 32-bit temps exist
        let t = lift_text("mov rax, rbx");
        let mut session = VerifierSession::new();
        let mut jq = JointQuery::new(&q, &t);
        let q32 = q
            .temps()
            .into_iter()
            .find(|v| var_shape(&q, *v).1 == 32)
            .unwrap();
        let t64 = *t.temps().last().unwrap();
        jq.assert_eq(q32, t64);
        assert_eq!(session.solve(&jq), vec![esh_solver::Verdict::NotEqual]);
    }

    #[test]
    fn session_cache_accumulates() {
        let q = lift_text("mov rax, r12\nimul rax, r12\nxor rax, r12");
        let t = lift_text("mov rdx, rbx\nimul rdx, rbx\nxor rdx, rbx");
        let mut session = VerifierSession::new();
        for _ in 0..2 {
            let mut jq = JointQuery::new(&q, &t);
            jq.assume_eq(q.inputs()[0], t.inputs()[0]);
            let q_out = *q.temps().last().unwrap();
            let t_out = *t.temps().last().unwrap();
            jq.assert_eq(q_out, t_out);
            assert_eq!(session.solve(&jq), vec![esh_solver::Verdict::Equal]);
        }
        // Identical encodings hit normalization/cache, not SAT, twice.
        assert!(session.stats().by_normalization >= 1);
    }
}
