//! Encoding IVL procedures into solver terms.
//!
//! An *input correspondence* γ (paper Definition 1) is realized by
//! assigning the same solver variable to both matched inputs: assuming
//! `iq == it` and renaming apart is equivalent to unifying the two symbols,
//! and unification lets the term normalizer fire across the two strands.

use std::collections::HashMap;

use esh_ivl::{Op, Operand, Proc, Sort, VarId};
use esh_solver::{TermId, TermPool};

/// Assigns global solver variable ids to the inputs of encoded procedures.
///
/// Inputs mapped to the same id are assumed equal (the `assume iq == it`
/// of the paper's Algorithm 2).
#[derive(Debug, Default)]
pub struct InputNamer {
    next: u32,
    assigned: HashMap<(usize, VarId), u32>,
}

impl InputNamer {
    /// Creates a namer.
    pub fn new() -> InputNamer {
        InputNamer::default()
    }

    /// Returns a fresh id.
    pub fn fresh(&mut self) -> u32 {
        let id = self.next;
        self.next += 1;
        id
    }

    /// The id for input `var` of procedure instance `side` (0 = query,
    /// 1 = target, arbitrary otherwise), creating a fresh one on first use.
    pub fn id_for(&mut self, side: usize, var: VarId) -> u32 {
        if let Some(id) = self.assigned.get(&(side, var)) {
            return *id;
        }
        let id = self.fresh();
        self.assigned.insert((side, var), id);
        id
    }

    /// Forces input `var` of `side` to use `id` (unification with another
    /// input that already has that id).
    pub fn unify(&mut self, side: usize, var: VarId, id: u32) {
        self.assigned.insert((side, var), id);
        self.next = self.next.max(id + 1);
    }
}

/// Encodes `proc_` into `pool`, returning one term per IVL variable.
///
/// `input_id` supplies the global solver id for each input variable;
/// see [`InputNamer`].
pub fn encode_proc(
    pool: &mut TermPool,
    proc_: &Proc,
    mut input_id: impl FnMut(VarId) -> u32,
) -> Vec<TermId> {
    let mut terms: Vec<Option<TermId>> = vec![None; proc_.vars.len()];
    for id in proc_.inputs() {
        let sid = input_id(id);
        let t = match proc_.var(id).sort {
            Sort::Bv(w) => pool.var(sid, w),
            Sort::Mem => pool.mem_var(sid),
        };
        terms[id.index()] = Some(t);
    }
    let operand = |pool: &mut TermPool, terms: &[Option<TermId>], o: &Operand| -> TermId {
        match o {
            Operand::Var(v) => terms[v.index()].expect("SSA order"),
            Operand::Const { value, width } => pool.constant(*value, *width),
        }
    };
    for s in &proc_.stmts {
        let args: Vec<TermId> = s.args.iter().map(|a| operand(pool, &terms, a)).collect();
        let t = match s.op {
            Op::Copy => args[0],
            Op::Add => pool.add(args),
            Op::Sub => pool.sub(args[0], args[1]),
            Op::Mul => pool.mul(args),
            Op::And => pool.and(args),
            Op::Or => pool.or(args),
            Op::Xor => pool.xor(args),
            Op::Shl => pool.shl(args[0], args[1]),
            Op::LShr => pool.lshr(args[0], args[1]),
            Op::AShr => pool.ashr(args[0], args[1]),
            Op::Not => pool.not(args[0]),
            Op::Neg => pool.neg(args[0]),
            Op::Eq => pool.eq(args[0], args[1]),
            Op::Ne => {
                let e = pool.eq(args[0], args[1]);
                pool.not(e)
            }
            Op::Ult => pool.ult(args[0], args[1]),
            Op::Ule => pool.ule(args[0], args[1]),
            Op::Slt => pool.slt(args[0], args[1]),
            Op::Sle => pool.sle(args[0], args[1]),
            Op::Ite => pool.ite(args[0], args[1], args[2]),
            Op::Zext(to) => pool.zext(args[0], to),
            Op::Sext(to) => pool.sext(args[0], to),
            Op::Extract(hi, lo) => pool.extract(args[0], hi, lo),
            Op::Concat => pool.concat(args[0], args[1]),
            Op::Load(w) => pool.load(args[0], args[1], w),
            Op::Store(_) => pool.store(args[0], args[1], args[2]),
        };
        terms[s.dst.index()] = Some(t);
    }
    terms
        .into_iter()
        .map(|t| t.expect("all vars encoded"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use esh_asm::parse_proc;
    use esh_ivl::lift;
    use esh_solver::{EquivChecker, Verdict};

    fn lift_text(text: &str) -> Proc {
        let p = parse_proc(&format!("proc t\nentry:\n{text}")).expect("parses");
        lift("t", &p.blocks[0].insts)
    }

    #[test]
    fn unified_inputs_make_equal_strands_equal() {
        // Figure 3's pair: q = `lea r14d, [r12+13h]`, t = `mov r9, 13h;
        // mov rbx, r12(:=input); lea r13d, [rbx+r9]` — equivalent when
        // r12_q is assumed equal to the target's source register.
        let q = lift_text("lea r14d, [r12+0x13]");
        let t = lift_text("mov r9, 0x13\nmov r13, rbx\nadd r13, r9");
        let mut ec = EquivChecker::new();
        let mut namer = InputNamer::new();
        // Unify the single register input of each side.
        let qi = q.inputs()[0];
        let ti = t.inputs()[0];
        let shared = namer.fresh();
        namer.unify(0, qi, shared);
        namer.unify(1, ti, shared);
        let qt = encode_proc(&mut ec.pool, &q, |v| namer.id_for(0, v));
        let tt = encode_proc(&mut ec.pool, &t, |v| namer.id_for(1, v));
        // q computes (r12+0x13) as a 64-bit temp before truncation; the
        // target's r13 add computes the same 64-bit sum.
        let q_sum = q
            .temps()
            .into_iter()
            .find(|v| q.var(*v).sort == Sort::Bv(64))
            .expect("64-bit temp");
        let t_sum = t
            .temps()
            .into_iter()
            .rfind(|v| t.var(*v).sort == Sort::Bv(64))
            .expect("64-bit temp");
        assert_eq!(
            ec.check_eq(qt[q_sum.index()], tt[t_sum.index()]),
            Verdict::Equal
        );
    }

    #[test]
    fn distinct_inputs_are_not_equal() {
        let q = lift_text("mov rax, rdi");
        let t = lift_text("mov rax, rsi");
        let mut ec = EquivChecker::new();
        let mut namer = InputNamer::new();
        let qt = encode_proc(&mut ec.pool, &q, |v| namer.id_for(0, v));
        let tt = encode_proc(&mut ec.pool, &t, |v| namer.id_for(1, v));
        let qv = q.temps()[0];
        let tv = t.temps()[0];
        assert_eq!(
            ec.check_eq(qt[qv.index()], tt[tv.index()]),
            Verdict::NotEqual
        );
    }

    #[test]
    fn figure4_syntactically_close_semantically_different() {
        // Figure 4: v2 = v1 + 1 vs v2 = v1 + 16 — one character apart
        // syntactically, semantically different almost everywhere.
        let q = lift_text("mov rax, r14\nadd rax, 0x1\nxor rax, r14\nand rax, r14");
        let t = lift_text("mov rax, r14\nadd rax, 0x10\nxor rax, r14\nand rax, r14");
        let mut ec = EquivChecker::new();
        let mut namer = InputNamer::new();
        let shared = namer.fresh();
        namer.unify(0, q.inputs()[0], shared);
        namer.unify(1, t.inputs()[0], shared);
        let qt = encode_proc(&mut ec.pool, &q, |v| namer.id_for(0, v));
        let tt = encode_proc(&mut ec.pool, &t, |v| namer.id_for(1, v));
        // Count matching temps: only the initial copy of r14 matches.
        let mut matched = 0;
        for qv in q.temps() {
            let found = t
                .temps()
                .iter()
                .any(|tv| ec.check_eq(qt[qv.index()], tt[tv.index()]) == Verdict::Equal);
            if found {
                matched += 1;
            }
        }
        assert!(
            matched * 6 <= q.temps().len() * 2,
            "at most ~1/3 of temps should match, got {matched}/{}",
            q.temps().len()
        );
    }
}
