#![warn(missing_docs)]

//! # esh-verifier — the program-verifier layer
//!
//! The paper encodes strand similarity as Boogie procedures: assume input
//! equality under a correspondence γ, sequentially compose the strands,
//! assert equality of all variable pairs, and let the verifier label each
//! assertion (§4.2). This crate provides that interface over the
//! from-scratch `esh-solver` backend:
//!
//! * [`encode_proc`]/[`InputNamer`] — lower an IVL strand into solver
//!   terms, realizing assumptions by variable unification;
//! * [`JointQuery`] — the assume/compose/assert program shape;
//! * [`VerifierSession`] — a long-lived session whose term pool and
//!   decision cache are shared across queries (the paper's batching).
//!
//! # Examples
//!
//! Prove two single-instruction strands equivalent under an input
//! correspondence:
//!
//! ```
//! use esh_asm::parse_inst;
//! use esh_ivl::lift;
//! use esh_verifier::{JointQuery, VerifierSession};
//!
//! let q = lift("q", &[parse_inst("lea r14, [r12+0x13]").unwrap()]);
//! let t = lift("t", &[parse_inst("lea rcx, [rbx+0x13]").unwrap()]);
//! let mut session = VerifierSession::new();
//! let mut jq = JointQuery::new(&q, &t);
//! jq.assume_eq(q.inputs()[0], t.inputs()[0]);
//! jq.assert_eq(q.temps()[0], t.temps()[0]);
//! assert_eq!(session.solve(&jq), vec![esh_solver::Verdict::Equal]);
//! ```

mod encode;
mod query;

pub use encode::{encode_proc, InputNamer};
pub use esh_solver::{EquivConfig, EquivStats, Verdict};
pub use query::{var_shape, JointQuery, VerifierSession};
