//! Little-endian byte-level encoding for the v5 binary files.
//!
//! Fixed layout, no self-description: every field is written and read in
//! one agreed order, lengths are explicit, and integers are
//! little-endian. The reader returns `Err` with a position-annotated
//! message instead of panicking, so a truncated or corrupted file
//! surfaces as a loadable error rather than UB or an abort.

/// Append-only encoder.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A fresh empty buffer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    #[allow(dead_code)] // clippy::len_without_is_empty pairs it with len()
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// One raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// f64 as its IEEE-754 bit pattern (bit-exact round trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Raw bytes, no length prefix (pair with an explicit length field).
    pub fn raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed (u32) byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.raw(v);
    }

    /// Length-prefixed (u32) UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Length-prefixed (u32) vector of u64s.
    pub fn u64s(&mut self, v: &[u64]) {
        self.u32(v.len() as u32);
        for &x in v {
            self.u64(x);
        }
    }
}

/// Sequential decoder over a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Current read offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// True when every byte has been consumed.
    pub fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self.pos.checked_add(n).ok_or("length overflow")?;
        if end > self.buf.len() {
            return Err(format!(
                "truncated: need {n} bytes at offset {}, file has {}",
                self.pos,
                self.buf.len()
            ));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// One raw byte.
    pub fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    /// Little-endian u32.
    pub fn u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Little-endian u64.
    pub fn u64(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// f64 from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Exactly `n` raw bytes.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], String> {
        self.take(n)
    }

    /// Length-prefixed (u32) byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], String> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    /// Length-prefixed (u32) UTF-8 string.
    pub fn str(&mut self) -> Result<String, String> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|e| format!("invalid utf-8 string: {e}"))
    }

    /// Length-prefixed (u32) vector of u64s.
    pub fn u64s(&mut self) -> Result<Vec<u64>, String> {
        let n = self.u32()? as usize;
        let mut out = Vec::with_capacity(n.min(self.buf.len() / 8 + 1));
        for _ in 0..n {
            out.push(self.u64()?);
        }
        Ok(out)
    }
}

/// FNV-1a over raw bytes — the whole-file checksum recorded in the
/// manifest (the file does not checksum itself, so writing stays
/// single-pass).
pub fn checksum(bytes: &[u8]) -> u64 {
    checksum_parts(&[bytes])
}

/// FNV-1a over the concatenation of `parts` — equal to [`checksum`] of
/// the joined bytes, without materializing the join. Used for the shard
/// *meta* checksum, which covers a file minus its record-blob region
/// (the two slices around the hole).
pub fn checksum_parts(parts: &[&[u8]]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for part in parts {
        for &b in *part {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.f64(-0.0);
        w.str("héllo");
        w.u64s(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.u64s().unwrap(), vec![1, 2, 3]);
        assert!(r.at_end());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = Writer::new();
        w.u64(42);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..5]);
        let err = r.u64().unwrap_err();
        assert!(err.contains("truncated"), "{err}");
    }

    #[test]
    fn checksum_is_order_sensitive() {
        assert_ne!(checksum(b"ab"), checksum(b"ba"));
        assert_eq!(checksum(b""), 0xcbf2_9ce4_8422_2325);
    }
}
