//! Read-only memory mapping for index files.
//!
//! The scale tier's shard files are large and read-mostly; mapping them
//! lets the wire [`Reader`](crate::wire) borrow directly from the page
//! cache instead of copying every shard into an owned buffer first, and
//! lets eviction return memory by simply unmapping. The build vendors no
//! `libc` crate, so the two syscalls involved are declared directly; the
//! constants are the Linux/BSD values for the only configuration this
//! wrapper compiles on (`cfg(unix)`). Every other platform reports
//! [`std::io::ErrorKind::Unsupported`] and callers fall back to
//! `std::fs::read`.

use std::fmt;
use std::io;
use std::ops::Deref;
use std::path::Path;

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// A read-only, privately mapped view of an entire file. Dereferences to
/// `[u8]`; the mapping is released when the value is dropped.
pub struct Mmap {
    ptr: *const u8,
    len: usize,
}

// The mapping is created PROT_READ + MAP_PRIVATE and never remapped, so
// its bytes are immutable for the wrapper's whole lifetime; sharing
// shared references across threads is safe.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps `path` read-only. A zero-length file produces an empty view
    /// without creating a mapping (Linux rejects `len == 0`).
    #[cfg(unix)]
    pub fn map(path: &Path) -> io::Result<Mmap> {
        use std::os::unix::io::AsRawFd;

        let file = std::fs::File::open(path)?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len).map_err(|_| {
            io::Error::new(io::ErrorKind::OutOfMemory, "file exceeds the address space")
        })?;
        if len == 0 {
            return Ok(Mmap { ptr: std::ptr::NonNull::<u8>::dangling().as_ptr(), len: 0 });
        }
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as usize == usize::MAX {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap { ptr: ptr as *const u8, len })
    }

    /// Mapping is unavailable on this platform; callers fall back to
    /// reading the file into an owned buffer.
    #[cfg(not(unix))]
    pub fn map(_path: &Path) -> io::Result<Mmap> {
        Err(io::Error::new(io::ErrorKind::Unsupported, "mmap is not available on this platform"))
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        if self.len == 0 {
            &[]
        } else {
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(unix)]
        if self.len > 0 {
            unsafe { sys::munmap(self.ptr as *mut _, self.len) };
        }
    }
}

impl fmt::Debug for Mmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mmap").field("len", &self.len).finish()
    }
}

/// Bytes of an index file: a zero-copy mapping when the platform and the
/// open options allow it, an owned buffer otherwise. Both deref to
/// `[u8]`, so checksum verification and decoding are shared.
#[derive(Debug)]
pub(crate) enum FileBytes {
    /// Memory-mapped view.
    Mapped(Mmap),
    /// Owned read-into-buffer fallback.
    Owned(Vec<u8>),
}

impl Deref for FileBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match self {
            FileBytes::Mapped(m) => m,
            FileBytes::Owned(v) => v,
        }
    }
}

/// Reads `path` as a mapping when `mmap` is set (falling back to an
/// owned read where the platform has no mmap), as an owned buffer
/// otherwise.
pub(crate) fn read_file(path: &Path, mmap: bool) -> io::Result<FileBytes> {
    if mmap {
        match Mmap::map(path) {
            Ok(m) => return Ok(FileBytes::Mapped(m)),
            Err(e) if e.kind() == io::ErrorKind::Unsupported => {}
            Err(e) => return Err(e),
        }
    }
    Ok(FileBytes::Owned(std::fs::read(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_file(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!("esh-mmap-{name}-{}", std::process::id()));
        std::fs::write(&p, bytes).unwrap();
        p
    }

    #[test]
    fn mapping_sees_the_file_bytes() {
        let p = temp_file("basic", b"strand bytes");
        let m = Mmap::map(&p).unwrap();
        assert_eq!(&*m, b"strand bytes");
        drop(m);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn zero_length_file_maps_to_empty_slice() {
        let p = temp_file("empty", b"");
        let m = Mmap::map(&p).unwrap();
        assert!(m.is_empty());
        drop(m);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn owned_fallback_matches_mapping() {
        let p = temp_file("fallback", b"same bytes either way");
        let mapped = read_file(&p, true).unwrap();
        let owned = read_file(&p, false).unwrap();
        assert_eq!(&*mapped, &*owned);
        assert!(matches!(owned, FileBytes::Owned(_)));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn missing_file_is_an_error() {
        let p = std::env::temp_dir().join("esh-mmap-definitely-missing");
        assert!(Mmap::map(&p).is_err());
    }
}
