#![warn(missing_docs)]

//! # esh-index — the scale tier's on-disk format (v6)
//!
//! JSON snapshots (format v2–v4, `esh-core::snapshot`) serialize every
//! strand class **including its lifted IVL procedure** into one document;
//! loading a 10k-procedure corpus means parsing hundreds of megabytes of
//! JSON before the first query can run. This crate replaces that with a
//! compact binary, **segment-sharded** layout that loads the pricing
//! metadata eagerly and everything else lazily:
//!
//! ```text
//! index.eshx/
//!   manifest.json    — format version, config + fingerprint, shard table
//!   core.bin         — per-class pricing metadata (hash, vars, corpus
//!                      count, signature, sketch, name) + target records
//!                      + residual cache entries; fixed little-endian
//!                      layout, loaded at open
//!   shard-0000.bin   — one per target segment: the segment's lifted
//!   shard-0001.bin     procedures behind a per-class offset table, plus
//!   ...                the VCP-cache entries keyed into the segment
//! ```
//!
//! **Sharding rule.** Targets are split into contiguous segments of
//! `targets_per_shard`. Strand classes are created in target insertion
//! order, so each segment owns the contiguous class-index range its
//! targets introduced (computed as a cumulative maximum over the
//! segment's class references). A persisted VCP-cache entry lives in the
//! shard owning the class its `class_hash` names; entries naming no
//! class (possible only in hand-edited files) fall back to the eagerly
//! loaded residual section of `core.bin`.
//!
//! **Lazy-load contract.** [`open_sharded`] returns a
//! [`SimilarityEngine`] whose shards *open* on first use, through the
//! engine's open-before-lookup rule: a shard's structural parts —
//! header, per-record offset table, VCP-cache segment — decode when the
//! shard is first touched, before the first counted cache lookup into
//! the segment, while the procedure records stay raw mapped bytes until
//! a query's pricing actually demands one (v6 demand decoding). The
//! mapping (or owned buffer) therefore lives for the shard's whole
//! residency, not just the open call. Ranked responses and cache
//! hit/miss counters are byte-identical to the same corpus loaded from
//! JSON — pinned by this crate's round-trip proptests.
//!
//! **Migration.** [`migrate_json`] reads any JSON snapshot the engine
//! accepts (formats v2–v4) and writes the sharded layout — the additive
//! upgrade path.
//!
//! **Checksums** (all FNV-1a) are layered to match decode granularity:
//! the manifest records a whole-file `checksum` per file (tooling and
//! full-verification passes), plus, per shard, a structural
//! `meta_checksum` covering every byte *except* the record-blob region
//! — verified when the shard opens — while the shard's offset table
//! carries one checksum per procedure record, verified when that record
//! is first decoded. `core.bin` and `prune.bin` are verified whole at
//! open. A byte flip inside one record therefore fails only the queries
//! that decode that record, with an error naming the file and the
//! class.

use std::fmt;
use std::path::{Path, PathBuf};

use esh_core::{
    Bloom, CorpusExport, EngineConfig, LazyClassMeta, ShardBandSummary, ShardRecords, ShardSource,
    ShardSpec, SimilarityEngine, SnapshotError, TargetExport, VcpCacheEntry, VcpPair,
};
use esh_ivl::Proc;
use esh_strands::Signature;
use serde::{Deserialize, Serialize};

mod mmap;
mod wire;

pub use mmap::Mmap;

use mmap::{read_file, FileBytes};
use wire::{checksum, checksum_parts, Reader, Writer};

/// Format version of the sharded directory layout. Versions 2–4 are the
/// JSON snapshot lineage (`esh-core::SNAPSHOT_FORMAT_VERSION`); version 5
/// introduced the binary layout (whole-shard decode), version 6 adds
/// per-record checksums to the shard offset tables plus a structural
/// `meta_checksum` per shard, enabling per-procedure demand decoding.
pub const SHARDED_FORMAT_VERSION: u32 = 6;

/// Manifest file name inside an index directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// Core (eager) file name inside an index directory.
pub const CORE_FILE: &str = "core.bin";

/// Sketch-band prune sidecar file name inside an index directory.
pub const PRUNE_FILE: &str = "prune.bin";

const CORE_MAGIC: &[u8; 8] = b"ESHXCOR1";
const SHARD_MAGIC: &[u8; 8] = b"ESHXSHD2";
const PRUNE_MAGIC: &[u8; 8] = b"ESHXPRN1";

/// Why a sharded index failed to write or open.
#[derive(Debug)]
pub enum IndexError {
    /// Filesystem error.
    Io {
        /// File or directory being touched.
        path: PathBuf,
        /// Underlying error.
        source: std::io::Error,
    },
    /// A file is not well-formed (bad magic, truncation, checksum
    /// mismatch, invalid shard table…).
    Format {
        /// File that failed to parse or verify.
        path: PathBuf,
        /// What was wrong with it.
        detail: String,
    },
    /// The manifest was written by a format version this build does not
    /// read.
    VersionMismatch {
        /// Manifest that was rejected.
        path: PathBuf,
        /// Version recorded in the manifest.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// The manifest's recorded config fingerprint disagrees with the one
    /// recomputed from its embedded configuration — the file was edited
    /// or corrupted.
    ConfigMismatch {
        /// Manifest that was rejected.
        path: PathBuf,
        /// Fingerprint recorded in the manifest.
        found: u64,
        /// Fingerprint recomputed from the embedded config.
        expected: u64,
    },
    /// A JSON snapshot error surfaced during [`migrate_json`].
    Snapshot(SnapshotError),
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::Io { path, source } => {
                write!(f, "sharded index {}: i/o: {source}", path.display())
            }
            IndexError::Format { path, detail } => {
                write!(f, "sharded index {}: malformed: {detail}", path.display())
            }
            IndexError::VersionMismatch { path, found, expected } => write!(
                f,
                "sharded index {}: format version {found} is not supported \
                 (this build reads version {expected}); rebuild the index",
                path.display()
            ),
            IndexError::ConfigMismatch { path, found, expected } => write!(
                f,
                "sharded index {}: recorded config fingerprint {found:#018x} \
                 does not match {expected:#018x} recomputed from the embedded \
                 configuration — the manifest was edited or corrupted",
                path.display()
            ),
            IndexError::Snapshot(e) => write!(f, "migrating json snapshot: {e}"),
        }
    }
}

impl std::error::Error for IndexError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IndexError::Io { source, .. } => Some(source),
            IndexError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SnapshotError> for IndexError {
    fn from(e: SnapshotError) -> IndexError {
        IndexError::Snapshot(e)
    }
}

/// One shard's row in the manifest table.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ShardManifest {
    file: String,
    class_start: u64,
    class_end: u64,
    target_start: u64,
    target_end: u64,
    bytes: u64,
    checksum: u64,
    // Structural checksum: FNV-1a over the file minus its record-blob
    // region. Verified at shard *open*, so header, offset table and
    // cache segment are trusted before any record decodes — the record
    // blobs themselves are covered one by one by the per-record
    // checksums in the offset table. `Option` only so a pre-v6 manifest
    // parses far enough to be rejected with a version message instead
    // of a field error.
    meta_checksum: Option<u64>,
}

/// The manifest document (`manifest.json`).
#[derive(Debug, Serialize, Deserialize)]
struct Manifest {
    format_version: u32,
    config_fingerprint: u64,
    config: EngineConfig,
    class_count: u64,
    target_count: u64,
    core_file: String,
    core_bytes: u64,
    core_checksum: u64,
    shards: Vec<ShardManifest>,
    // Sketch-band prune sidecar (v5 additive extension). Absent in
    // indexes written before the sidecar existed, or when the sketch
    // tier was disabled at write time — both open fine, with pruning
    // simply unavailable. The vendored serde maps a missing field to
    // `None`, so older manifests stay readable.
    prune_file: Option<String>,
    prune_bytes: Option<u64>,
    prune_checksum: Option<u64>,
}

/// What [`write_sharded`] produced — sizes for benches and logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteSummary {
    /// Number of shard files written.
    pub shards: usize,
    /// Bytes in `core.bin`.
    pub core_bytes: u64,
    /// Total bytes across all shard files.
    pub shard_bytes: u64,
    /// Classes persisted.
    pub classes: usize,
    /// Targets persisted.
    pub targets: usize,
    /// VCP-cache entries persisted (segmented + residual).
    pub cache_entries: usize,
}

impl WriteSummary {
    /// Total on-disk bytes (manifest excluded).
    pub fn total_bytes(&self) -> u64 {
        self.core_bytes + self.shard_bytes
    }
}

/// True when `path` looks like a sharded index directory (used by the
/// CLI to dispatch between JSON snapshots and sharded directories).
pub fn is_sharded_index(path: impl AsRef<Path>) -> bool {
    path.as_ref().join(MANIFEST_FILE).is_file()
}

fn io_err(path: &Path) -> impl FnOnce(std::io::Error) -> IndexError + '_ {
    move |source| IndexError::Io { path: path.to_path_buf(), source }
}

fn format_err(path: &Path, detail: impl Into<String>) -> IndexError {
    IndexError::Format { path: path.to_path_buf(), detail: detail.into() }
}

fn shard_file_name(i: usize) -> String {
    format!("shard-{i:04}.bin")
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn encode_signature(w: &mut Writer, s: &Signature) {
    w.u32(s.rounds.len() as u32);
    for round in &s.rounds {
        w.u64s(round);
    }
}

fn decode_signature(r: &mut Reader<'_>) -> Result<Signature, String> {
    let n = r.u32()? as usize;
    let mut rounds = Vec::with_capacity(n);
    for _ in 0..n {
        rounds.push(r.u64s()?);
    }
    Ok(Signature { rounds })
}

fn encode_cache_entry(w: &mut Writer, e: &VcpCacheEntry) {
    w.u64(e.query_hash);
    w.u64(e.class_hash);
    w.u64(e.vcp_fingerprint);
    w.f64(e.pair.q_in_t);
    w.f64(e.pair.t_in_q);
}

fn decode_cache_entry(r: &mut Reader<'_>) -> Result<VcpCacheEntry, String> {
    Ok(VcpCacheEntry {
        query_hash: r.u64()?,
        class_hash: r.u64()?,
        vcp_fingerprint: r.u64()?,
        pair: VcpPair { q_in_t: r.f64()?, t_in_q: r.f64()? },
    })
}

fn encode_core(
    export: &CorpusExport,
    residual: &[VcpCacheEntry],
) -> Vec<u8> {
    let mut w = Writer::new();
    w.raw(CORE_MAGIC);
    w.u64(export.classes.len() as u64);
    w.u64(export.targets.len() as u64);
    for c in &export.classes {
        w.str(&c.name);
        w.u64(c.hash);
        w.u64(c.vars as u64);
        w.u64(c.corpus_count);
        encode_signature(&mut w, &c.signature);
        match &c.sketch {
            Some(s) => {
                w.u8(1);
                w.u64s(&s.digests);
                w.u64s(&s.minhash);
            }
            None => w.u8(0),
        }
    }
    for t in &export.targets {
        w.str(&t.name);
        w.u64(t.basic_blocks as u64);
        w.u32(t.strands.len() as u32);
        for &(ci, n) in &t.strands {
            w.u64(ci as u64);
            w.u64(n);
        }
    }
    w.u32(residual.len() as u32);
    for e in residual {
        encode_cache_entry(&mut w, e);
    }
    w.into_bytes()
}

struct CoreParts {
    classes: Vec<LazyClassMeta>,
    targets: Vec<TargetExport>,
    residual: Vec<VcpCacheEntry>,
}

fn decode_core(bytes: &[u8]) -> Result<CoreParts, String> {
    let mut r = Reader::new(bytes);
    if r.raw(8)? != CORE_MAGIC {
        return Err("bad core.bin magic".into());
    }
    let nclasses = r.u64()? as usize;
    let ntargets = r.u64()? as usize;
    let mut classes = Vec::with_capacity(nclasses);
    for _ in 0..nclasses {
        let name = r.str()?;
        let hash = r.u64()?;
        let vars = r.u64()? as usize;
        let corpus_count = r.u64()?;
        let signature = decode_signature(&mut r)?;
        let sketch = match r.u8()? {
            0 => None,
            1 => Some(esh_core::SemanticSketch { digests: r.u64s()?, minhash: r.u64s()? }),
            k => return Err(format!("bad sketch flag {k}")),
        };
        classes.push(LazyClassMeta { name, signature, vars, hash, corpus_count, sketch });
    }
    let mut targets = Vec::with_capacity(ntargets);
    for _ in 0..ntargets {
        let name = r.str()?;
        let basic_blocks = r.u64()? as usize;
        let nstrands = r.u32()? as usize;
        let mut strands = Vec::with_capacity(nstrands);
        for _ in 0..nstrands {
            strands.push((r.u64()? as usize, r.u64()?));
        }
        targets.push(TargetExport { name, strands, basic_blocks });
    }
    let nresidual = r.u32()? as usize;
    let mut residual = Vec::with_capacity(nresidual);
    for _ in 0..nresidual {
        residual.push(decode_cache_entry(&mut r)?);
    }
    if !r.at_end() {
        return Err(format!("{} trailing bytes after core document", bytes.len() - r.pos()));
    }
    Ok(CoreParts { classes, targets, residual })
}

fn encode_shard(
    index: usize,
    spec: &ShardSpec,
    procs: &[&Proc],
    cache: &[VcpCacheEntry],
) -> Result<(Vec<u8>, u64), IndexError> {
    let mut blobs = Writer::new();
    let mut table: Vec<(u64, u64, u64)> = Vec::with_capacity(procs.len());
    for p in procs {
        let blob = serde_json::to_string(p).map_err(|e| IndexError::Format {
            path: PathBuf::from(shard_file_name(index)),
            detail: format!("serializing procedure `{}`: {e}", p.name),
        })?;
        table.push((blobs.len() as u64, blob.len() as u64, checksum(blob.as_bytes())));
        blobs.raw(blob.as_bytes());
    }
    let mut w = Writer::new();
    w.raw(SHARD_MAGIC);
    w.u64(index as u64);
    w.u64(spec.class_start as u64);
    w.u64(procs.len() as u64);
    for (off, len, sum) in &table {
        w.u64(*off);
        w.u64(*len);
        w.u64(*sum);
    }
    let blobs = blobs.into_bytes();
    w.u64(blobs.len() as u64);
    let blob_start = w.len();
    w.raw(&blobs);
    let blob_end = w.len();
    w.u64(cache.len() as u64);
    for e in cache {
        encode_cache_entry(&mut w, e);
    }
    let bytes = w.into_bytes();
    let meta = checksum_parts(&[&bytes[..blob_start], &bytes[blob_end..]]);
    Ok((bytes, meta))
}

/// A shard file's structural parts: everything except the record blobs
/// themselves, which stay raw until [`ShardRecords::decode_record`].
struct ShardStructure {
    class_start: usize,
    /// Per record: `(offset into the blob region, length, checksum)`.
    table: Vec<(usize, usize, u64)>,
    /// Absolute file offset where the blob region starts.
    blob_start: usize,
    blob_len: usize,
    cache: Vec<VcpCacheEntry>,
}

/// Parses a shard file's structural parts (header, offset table, cache
/// segment), leaving the record blobs raw. When `expect_meta` carries
/// the manifest's structural checksum it is verified as soon as the
/// blob bounds are known — *before* the cache segment is parsed — so a
/// corrupted cache region reports "checksum mismatch" rather than
/// whatever decode error the garbage happens to produce.
fn parse_shard_structure(
    bytes: &[u8],
    expect_index: usize,
    expect_start: usize,
    expect_meta: Option<u64>,
) -> Result<ShardStructure, String> {
    let mut r = Reader::new(bytes);
    if r.raw(8)? != SHARD_MAGIC {
        return Err("bad shard magic".into());
    }
    let index = r.u64()? as usize;
    let class_start = r.u64()? as usize;
    if index != expect_index || class_start != expect_start {
        return Err(format!(
            "shard identity mismatch: file says shard {index} @ class {class_start}, \
             manifest says shard {expect_index} @ class {expect_start}"
        ));
    }
    let nprocs = r.u64()? as usize;
    // Corrupted counts must surface as truncation errors from the
    // reader, not as allocator panics: clamp pre-allocation to what the
    // file could possibly hold (24 bytes per table row, 8 per cache
    // field).
    let mut table = Vec::with_capacity(nprocs.min(bytes.len() / 24 + 1));
    for _ in 0..nprocs {
        table.push((r.u64()? as usize, r.u64()? as usize, r.u64()?));
    }
    let blob_len = r.u64()? as usize;
    let blob_start = r.pos();
    let _ = r.raw(blob_len)?;
    for (i, &(off, len, _)) in table.iter().enumerate() {
        off.checked_add(len).filter(|&e| e <= blob_len).ok_or_else(|| {
            format!("blob table entry {i} out of range ({off}+{len} > {blob_len})")
        })?;
    }
    if let Some(meta) = expect_meta {
        let blob_end = blob_start + blob_len;
        if checksum_parts(&[&bytes[..blob_start], &bytes[blob_end..]]) != meta {
            return Err("checksum mismatch — the shard's structural bytes were \
                        modified after the manifest was written"
                .into());
        }
    }
    let ncache = r.u64()? as usize;
    let mut cache = Vec::with_capacity(ncache.min(bytes.len() / 8 + 1));
    for _ in 0..ncache {
        cache.push(decode_cache_entry(&mut r).map_err(|e| format!("cache segment: {e}"))?);
    }
    if !r.at_end() {
        return Err(format!("{} trailing bytes after shard document", bytes.len() - r.pos()));
    }
    Ok(ShardStructure { class_start, table, blob_start, blob_len, cache })
}

/// An open shard: structural parts decoded and verified, record blobs
/// raw. Holds the file's mapping (or owned buffer) for as long as the
/// engine keeps the shard resident — every record the engine demands
/// later is checksummed and decoded straight out of these bytes, with
/// every neighbour record left untouched (kernel-managed pages that
/// were never faulted in stay on disk).
#[derive(Debug)]
struct EshxShardRecords {
    path: PathBuf,
    bytes: FileBytes,
    class_start: usize,
    table: Vec<(usize, usize, u64)>,
    blob_start: usize,
    cache: Vec<VcpCacheEntry>,
    /// Structural bytes (file minus blob region): decoded eagerly at
    /// open, so accounted against the residency budget up front.
    base: u64,
}

impl ShardRecords for EshxShardRecords {
    fn class_count(&self) -> usize {
        self.table.len()
    }

    fn cache_entries(&self) -> &[VcpCacheEntry] {
        &self.cache
    }

    fn base_bytes(&self) -> u64 {
        self.base
    }

    fn mapped_bytes(&self) -> u64 {
        self.bytes.len() as u64
    }

    fn record_bytes(&self, i: usize) -> u64 {
        self.table[i].1 as u64
    }

    fn decode_record(&self, i: usize) -> Result<Proc, String> {
        let (off, len, sum) = self.table[i];
        let ci = self.class_start + i;
        let start = self.blob_start + off;
        let blob = &self.bytes[start..start + len];
        if checksum(blob) != sum {
            return Err(format!(
                "{}: class {ci}: checksum mismatch — the record's bytes were \
                 modified after the manifest was written",
                self.path.display()
            ));
        }
        let text = std::str::from_utf8(blob).map_err(|e| {
            format!("{}: class {ci}: record is not utf-8: {e}", self.path.display())
        })?;
        serde_json::from_str(text)
            .map_err(|e| format!("{}: class {ci}: parsing record: {e}", self.path.display()))
    }
}

fn encode_prune(summaries: &[ShardBandSummary]) -> Vec<u8> {
    let mut w = Writer::new();
    w.raw(PRUNE_MAGIC);
    w.u32(summaries.len() as u32);
    for s in summaries {
        w.u8(s.complete as u8);
        w.u64(s.min_digests);
        w.u64(s.max_mult);
        w.u64s(&s.digests.bits);
        w.u64s(&s.bands.bits);
    }
    w.into_bytes()
}

fn decode_prune(bytes: &[u8]) -> Result<Vec<ShardBandSummary>, String> {
    let mut r = Reader::new(bytes);
    if r.raw(8)? != PRUNE_MAGIC {
        return Err("bad prune.bin magic".into());
    }
    let n = r.u32()? as usize;
    let mut summaries = Vec::with_capacity(n);
    for i in 0..n {
        let complete = match r.u8()? {
            0 => false,
            1 => true,
            k => return Err(format!("summary {i}: bad complete flag {k}")),
        };
        let min_digests = r.u64()?;
        let max_mult = r.u64()?;
        let digests = Bloom { bits: r.u64s()? };
        let bands = Bloom { bits: r.u64s()? };
        summaries.push(ShardBandSummary {
            digests,
            bands,
            complete,
            min_digests,
            max_mult,
        });
    }
    if !r.at_end() {
        return Err(format!("{} trailing bytes after prune document", bytes.len() - r.pos()));
    }
    Ok(summaries)
}

// ---------------------------------------------------------------------
// Partitioning
// ---------------------------------------------------------------------

/// Splits targets into contiguous segments of at most `targets_per_shard`
/// and derives each segment's class range as the cumulative maximum of
/// class references — exactly the classes its targets introduced, because
/// classes are created in target insertion order. The last shard is
/// extended to cover any remaining classes (defensive; unreachable
/// through `add_target`).
fn partition(export: &CorpusExport, targets_per_shard: usize) -> Vec<ShardSpec> {
    let per = targets_per_shard.max(1);
    let mut specs = Vec::new();
    let mut class_cursor = 0usize;
    let mut t = 0usize;
    while t < export.targets.len() {
        let target_end = (t + per).min(export.targets.len());
        let mut class_end = class_cursor;
        for target in &export.targets[t..target_end] {
            for &(ci, _) in &target.strands {
                class_end = class_end.max(ci + 1);
            }
        }
        if target_end == export.targets.len() {
            class_end = class_end.max(export.classes.len());
        }
        specs.push(ShardSpec {
            class_start: class_cursor,
            class_end,
            target_start: t,
            target_end,
        });
        class_cursor = class_end;
        t = target_end;
    }
    specs
}

// ---------------------------------------------------------------------
// Write
// ---------------------------------------------------------------------

/// Writes `engine`'s corpus as a sharded v6 index into directory `dir`
/// (created if missing; existing index files are overwritten), with at
/// most `targets_per_shard` targets per shard.
pub fn write_sharded(
    engine: &SimilarityEngine,
    dir: impl AsRef<Path>,
    targets_per_shard: usize,
) -> Result<WriteSummary, IndexError> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir).map_err(io_err(dir))?;
    let export = engine.export_corpus();
    let specs = partition(&export, targets_per_shard);

    // Assign each cache entry to the shard owning its class hash;
    // unknown hashes go to the eagerly loaded residual section.
    let shard_of_class = |ci: usize| specs.partition_point(|s| s.class_end <= ci);
    let class_of_hash: std::collections::HashMap<u64, usize> = export
        .classes
        .iter()
        .enumerate()
        .map(|(i, c)| (c.hash, i))
        .collect();
    let mut segmented: Vec<Vec<VcpCacheEntry>> = vec![Vec::new(); specs.len()];
    let mut residual: Vec<VcpCacheEntry> = Vec::new();
    for e in &export.cache {
        match class_of_hash.get(&e.class_hash) {
            Some(&ci) => segmented[shard_of_class(ci)].push(*e),
            None => residual.push(*e),
        }
    }

    let core_bytes = encode_core(&export, &residual);
    let core_path = dir.join(CORE_FILE);
    std::fs::write(&core_path, &core_bytes).map_err(io_err(&core_path))?;

    let mut shard_manifests = Vec::with_capacity(specs.len());
    let mut shard_total = 0u64;
    for (i, spec) in specs.iter().enumerate() {
        let procs: Vec<&Proc> = export.classes[spec.class_start..spec.class_end]
            .iter()
            .map(|c| &c.proc_)
            .collect();
        let (bytes, meta) = encode_shard(i, spec, &procs, &segmented[i])?;
        let file = shard_file_name(i);
        let path = dir.join(&file);
        std::fs::write(&path, &bytes).map_err(io_err(&path))?;
        shard_total += bytes.len() as u64;
        shard_manifests.push(ShardManifest {
            file,
            class_start: spec.class_start as u64,
            class_end: spec.class_end as u64,
            target_start: spec.target_start as u64,
            target_end: spec.target_end as u64,
            bytes: bytes.len() as u64,
            checksum: checksum(&bytes),
            meta_checksum: Some(meta),
        });
    }

    // Sketch-band prune sidecar: one Bloom summary per shard over its
    // member classes' sketch digests and LSH band keys. Written only
    // when the sketch tier is on — without sketches every summary would
    // be incomplete and pruning could never trigger.
    let prune = match &export.config.sketch {
        Some(sketch_cfg) if sketch_cfg.enabled => {
            let summaries: Vec<ShardBandSummary> = specs
                .iter()
                .map(|spec| {
                    ShardBandSummary::build(
                        export.classes[spec.class_start..spec.class_end]
                            .iter()
                            .map(|c| c.sketch.as_ref()),
                        sketch_cfg.bands,
                        sketch_cfg.rows,
                    )
                })
                .collect();
            let bytes = encode_prune(&summaries);
            let path = dir.join(PRUNE_FILE);
            std::fs::write(&path, &bytes).map_err(io_err(&path))?;
            Some((bytes.len() as u64, checksum(&bytes)))
        }
        _ => None,
    };

    let manifest = Manifest {
        format_version: SHARDED_FORMAT_VERSION,
        config_fingerprint: export.config.fingerprint(),
        config: export.config.clone(),
        class_count: export.classes.len() as u64,
        target_count: export.targets.len() as u64,
        core_file: CORE_FILE.to_string(),
        core_bytes: core_bytes.len() as u64,
        core_checksum: checksum(&core_bytes),
        shards: shard_manifests,
        prune_file: prune.map(|_| PRUNE_FILE.to_string()),
        prune_bytes: prune.map(|(b, _)| b),
        prune_checksum: prune.map(|(_, c)| c),
    };
    let manifest_path = dir.join(MANIFEST_FILE);
    let json = serde_json::to_string(&manifest)
        .map_err(|e| format_err(&manifest_path, format!("serializing manifest: {e}")))?;
    std::fs::write(&manifest_path, json).map_err(io_err(&manifest_path))?;

    Ok(WriteSummary {
        shards: specs.len(),
        core_bytes: core_bytes.len() as u64,
        shard_bytes: shard_total,
        classes: export.classes.len(),
        targets: export.targets.len(),
        cache_entries: export.cache.len(),
    })
}

// ---------------------------------------------------------------------
// Open
// ---------------------------------------------------------------------

/// How [`open_sharded_with`] maps and prices an index directory. The
/// defaults are the fast path; the flags exist so benches and CI can
/// pin down each mechanism's contribution (and fall back when a
/// platform has no `mmap`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EshxOpenOptions {
    /// Map index files with `mmap` (zero-copy, evictable by unmapping)
    /// instead of reading them into owned buffers. Platforms without
    /// `mmap` silently use the owned fallback.
    pub mmap: bool,
    /// Load the per-shard sketch-band summaries (when the sidecar is
    /// present) so queries can skip whole shards with zero sketch
    /// collisions before fan-out.
    pub prune: bool,
    /// Decode shard records per procedure, on demand (the default): a
    /// touched shard decodes only the classes a query actually needs.
    /// When false every record of a touched shard decodes at shard open
    /// — the v5 behavior, kept as the bench baseline and an escape
    /// hatch. Both modes produce byte-identical rankings and counters.
    pub demand: bool,
}

impl Default for EshxOpenOptions {
    fn default() -> EshxOpenOptions {
        EshxOpenOptions { mmap: true, prune: true, demand: true }
    }
}

/// What [`read_manifest`] reports about an index directory without
/// touching `core.bin`, any shard file, or the prune sidecar.
#[derive(Debug, Clone)]
pub struct ManifestSummary {
    /// Engine configuration the index was built with.
    pub config: EngineConfig,
    /// Strand classes persisted.
    pub class_count: u64,
    /// Targets persisted.
    pub target_count: u64,
    /// Number of shard files.
    pub shards: usize,
    /// Total bytes across all shard files.
    pub shard_bytes: u64,
    /// Bytes in `core.bin`.
    pub core_bytes: u64,
    /// Size of the largest single shard file.
    pub largest_shard_bytes: u64,
    /// Whether a sketch-band prune sidecar is recorded.
    pub has_prune: bool,
}

/// Reads and validates `manifest.json` (version + config fingerprint)
/// without opening any other file in the directory.
fn load_manifest(dir: &Path) -> Result<Manifest, IndexError> {
    let manifest_path = dir.join(MANIFEST_FILE);
    let text = std::fs::read_to_string(&manifest_path).map_err(io_err(&manifest_path))?;
    let manifest: Manifest = serde_json::from_str(&text)
        .map_err(|e| format_err(&manifest_path, e.to_string()))?;
    if manifest.format_version != SHARDED_FORMAT_VERSION {
        return Err(IndexError::VersionMismatch {
            path: manifest_path,
            found: manifest.format_version,
            expected: SHARDED_FORMAT_VERSION,
        });
    }
    let recomputed = manifest.config.fingerprint();
    if manifest.config_fingerprint != recomputed {
        return Err(IndexError::ConfigMismatch {
            path: manifest_path,
            found: manifest.config_fingerprint,
            expected: recomputed,
        });
    }
    Ok(manifest)
}

/// Reads an index directory's manifest alone — no `core.bin` read, no
/// checksum pass over data files — for callers that only need the
/// index's shape (CLI status lines, bench sizing, admission checks).
pub fn read_manifest(dir: impl AsRef<Path>) -> Result<ManifestSummary, IndexError> {
    let manifest = load_manifest(dir.as_ref())?;
    Ok(ManifestSummary {
        class_count: manifest.class_count,
        target_count: manifest.target_count,
        shards: manifest.shards.len(),
        shard_bytes: manifest.shards.iter().map(|s| s.bytes).sum(),
        core_bytes: manifest.core_bytes,
        largest_shard_bytes: manifest.shards.iter().map(|s| s.bytes).max().unwrap_or(0),
        has_prune: manifest.prune_file.is_some(),
        config: manifest.config,
    })
}

/// Opens shard files on demand, verifying each file's *structural*
/// checksum (everything but the record-blob region) against the
/// manifest at open. With `mmap` set the file is mapped and the handle
/// keeps the mapping alive for the shard's whole residency — records
/// decode straight out of it later, each against its own per-record
/// checksum, so untouched records never leave the kernel page cache.
#[derive(Debug)]
struct FileShardSource {
    dir: PathBuf,
    shards: Vec<ShardManifest>,
    mmap: bool,
}

impl ShardSource for FileShardSource {
    fn open_shard(&self, shard: usize) -> Result<Box<dyn ShardRecords>, String> {
        let m = &self.shards[shard];
        let path = self.dir.join(&m.file);
        let bytes = read_file(&path, self.mmap).map_err(|e| format!("{}: {e}", path.display()))?;
        if bytes.len() as u64 != m.bytes {
            return Err(format!(
                "{}: checksum mismatch — file has {} bytes, manifest says {}",
                path.display(),
                bytes.len(),
                m.bytes
            ));
        }
        let meta = m.meta_checksum.ok_or_else(|| {
            format!("{}: manifest records no structural checksum", path.display())
        })?;
        let s = parse_shard_structure(&bytes, shard, m.class_start as usize, Some(meta))
            .map_err(|e| format!("{}: {e}", path.display()))?;
        let base = (bytes.len() - s.blob_len) as u64;
        Ok(Box::new(EshxShardRecords {
            path,
            bytes,
            class_start: s.class_start,
            table: s.table,
            blob_start: s.blob_start,
            cache: s.cache,
            base,
        }))
    }

    fn shard_bytes(&self, shard: usize) -> Option<u64> {
        Some(self.shards[shard].bytes)
    }
}

/// Absolute byte range of every procedure record in shard `shard` of
/// the index at `dir`, as `(class_index, start, len)` triples — a
/// tooling/test hook for inspecting (or deliberately corrupting) a
/// single record's bytes without decoding any procedure.
pub fn shard_record_ranges(
    dir: impl AsRef<Path>,
    shard: usize,
) -> Result<Vec<(usize, u64, u64)>, IndexError> {
    let dir = dir.as_ref();
    let manifest = load_manifest(dir)?;
    let m = manifest.shards.get(shard).ok_or_else(|| {
        format_err(
            &dir.join(MANIFEST_FILE),
            format!("shard {shard} out of range ({} shards)", manifest.shards.len()),
        )
    })?;
    let path = dir.join(&m.file);
    let bytes = read_file(&path, false).map_err(io_err(&path))?;
    let s = parse_shard_structure(&bytes, shard, m.class_start as usize, m.meta_checksum)
        .map_err(|e| format_err(&path, e))?;
    Ok(s
        .table
        .iter()
        .enumerate()
        .map(|(i, &(off, len, _))| (s.class_start + i, (s.blob_start + off) as u64, len as u64))
        .collect())
}

/// Opens a sharded v6 index directory as a lazily backed
/// [`SimilarityEngine`] with default options (mmap on, pruning on).
/// Ranked responses are byte-identical to the same corpus loaded from a
/// JSON snapshot.
pub fn open_sharded(dir: impl AsRef<Path>) -> Result<SimilarityEngine, IndexError> {
    open_sharded_with(dir, EshxOpenOptions::default())
}

/// Opens a sharded v6 index directory as a lazily backed
/// [`SimilarityEngine`]: the manifest and `core.bin` load now, shard
/// files load on first use, each checksum-verified at that first touch.
/// Pruning and mmap are both behaviour-preserving: rankings, H0 and VCP
/// cache counters are byte-identical across every option combination
/// (pinned by this crate's round-trip proptests).
pub fn open_sharded_with(
    dir: impl AsRef<Path>,
    options: EshxOpenOptions,
) -> Result<SimilarityEngine, IndexError> {
    let dir = dir.as_ref();
    let manifest_path = dir.join(MANIFEST_FILE);
    let manifest = load_manifest(dir)?;

    let core_path = dir.join(&manifest.core_file);
    let core_bytes = read_file(&core_path, options.mmap).map_err(io_err(&core_path))?;
    if core_bytes.len() as u64 != manifest.core_bytes
        || checksum(&core_bytes) != manifest.core_checksum
    {
        return Err(format_err(
            &core_path,
            "checksum mismatch — the file was modified after the manifest was written",
        ));
    }
    let parts = decode_core(&core_bytes).map_err(|e| format_err(&core_path, e))?;
    if parts.classes.len() as u64 != manifest.class_count
        || parts.targets.len() as u64 != manifest.target_count
    {
        return Err(format_err(
            &core_path,
            format!(
                "core document has {} classes / {} targets, manifest says {} / {}",
                parts.classes.len(),
                parts.targets.len(),
                manifest.class_count,
                manifest.target_count
            ),
        ));
    }

    let specs: Vec<ShardSpec> = manifest
        .shards
        .iter()
        .map(|m| ShardSpec {
            class_start: m.class_start as usize,
            class_end: m.class_end as usize,
            target_start: m.target_start as usize,
            target_end: m.target_end as usize,
        })
        .collect();
    let prune = match (&manifest.prune_file, manifest.prune_bytes, manifest.prune_checksum) {
        (Some(file), Some(nbytes), Some(sum)) if options.prune => {
            let path = dir.join(file);
            let bytes = read_file(&path, options.mmap).map_err(io_err(&path))?;
            if bytes.len() as u64 != nbytes || checksum(&bytes) != sum {
                return Err(format_err(
                    &path,
                    "checksum mismatch — the file was modified after the manifest was written",
                ));
            }
            Some(decode_prune(&bytes).map_err(|e| format_err(&path, e))?)
        }
        _ => None,
    };

    let source =
        FileShardSource { dir: dir.to_path_buf(), shards: manifest.shards, mmap: options.mmap };
    let mut engine = SimilarityEngine::from_lazy_parts(
        manifest.config,
        parts.classes,
        parts.targets,
        specs,
        Box::new(source),
        parts.residual,
    )
    .map_err(|e| format_err(&manifest_path, e))?;
    if let Some(summaries) = prune {
        engine
            .set_shard_band_summaries(summaries)
            .map_err(|e| format_err(&manifest_path, e))?;
    }
    engine.set_shard_demand_decode(options.demand);
    Ok(engine)
}

/// Migrates a JSON snapshot (any readable format, v2–v4) to a sharded v6
/// index directory. The JSON file is left untouched.
pub fn migrate_json(
    json_path: impl AsRef<Path>,
    dir: impl AsRef<Path>,
    targets_per_shard: usize,
) -> Result<WriteSummary, IndexError> {
    let engine = SimilarityEngine::load(json_path.as_ref())?;
    write_sharded(&engine, dir, targets_per_shard)
}

#[cfg(test)]
mod tests {
    use super::*;
    use esh_cc::{Compiler, Vendor, VendorVersion};
    use esh_minic::demo;

    fn temp_dir(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("esh-index-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        p
    }

    fn small_engine() -> SimilarityEngine {
        let gcc = Compiler::new(Vendor::Gcc, VendorVersion::new(4, 9));
        let mut engine = SimilarityEngine::new(EngineConfig {
            threads: 2,
            ..EngineConfig::default()
        });
        for (name, f) in demo::cve_functions() {
            engine.add_target(name, &gcc.compile_function(&f));
        }
        engine
    }

    #[test]
    fn partition_tiles_classes_and_targets_contiguously() {
        let engine = small_engine();
        let export = engine.export_corpus();
        for per in [1, 2, 3, 100] {
            let specs = partition(&export, per);
            let mut c = 0;
            let mut t = 0;
            for s in &specs {
                assert_eq!(s.class_start, c);
                assert_eq!(s.target_start, t);
                assert!(s.class_end >= s.class_start);
                assert!(s.target_end > s.target_start);
                c = s.class_end;
                t = s.target_end;
            }
            assert_eq!(c, export.classes.len(), "per={per}");
            assert_eq!(t, export.targets.len(), "per={per}");
        }
    }

    #[test]
    fn round_trip_preserves_corpus_shape_and_scores() {
        let engine = small_engine();
        let dir = temp_dir("roundtrip");
        let summary = write_sharded(&engine, &dir, 2).unwrap();
        assert!(summary.shards >= 2);
        assert!(is_sharded_index(&dir));
        let lazy = open_sharded(&dir).unwrap();
        assert_eq!(lazy.target_count(), engine.target_count());
        assert_eq!(lazy.class_count(), engine.class_count());
        let q = Compiler::new(Vendor::Clang, VendorVersion::new(3, 5))
            .compile_function(&demo::heartbleed_like());
        let a = engine.query(&q);
        let b = lazy.query(&q);
        for (x, y) in a.scores.iter().zip(&b.scores) {
            assert_eq!(x.ges.to_bits(), y.ges.to_bits(), "{}", x.name);
            assert_eq!(x.s_log.to_bits(), y.s_log.to_bits(), "{}", x.name);
            assert_eq!(x.s_vcp.to_bits(), y.s_vcp.to_bits(), "{}", x.name);
        }
        let stats = lazy.shard_stats();
        assert_eq!(stats.shards_total, summary.shards as u64);
        assert!(stats.fanout_total > 0, "query consulted no shards: {stats:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tampered_shard_fails_at_lazy_load_not_at_open() {
        let engine = small_engine();
        let dir = temp_dir("tamper-shard");
        write_sharded(&engine, &dir, 1).unwrap();
        // Flip one byte of the last shard: open() must still succeed
        // (the file is lazy), the load must fail loudly.
        let manifest: Manifest =
            serde_json::from_str(&std::fs::read_to_string(dir.join(MANIFEST_FILE)).unwrap())
                .unwrap();
        let victim = dir.join(&manifest.shards.last().unwrap().file);
        let mut bytes = std::fs::read(&victim).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&victim, &bytes).unwrap();
        let lazy = open_sharded(&dir).expect("open is lazy; tamper undetected until load");
        let source = FileShardSource {
            dir: dir.clone(),
            shards: manifest.shards.clone(),
            mmap: true,
        };
        let err = source.open_shard(manifest.shards.len() - 1).unwrap_err();
        assert!(err.contains("checksum mismatch"), "{err}");
        drop(lazy);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tampered_manifest_fingerprint_is_rejected_at_open() {
        let engine = small_engine();
        let dir = temp_dir("tamper-manifest");
        write_sharded(&engine, &dir, 2).unwrap();
        let path = dir.join(MANIFEST_FILE);
        let text = std::fs::read_to_string(&path).unwrap();
        let needle = format!("\"config_fingerprint\":{}", engine.config().fingerprint());
        assert!(text.contains(&needle), "manifest shape changed");
        std::fs::write(&path, text.replace(&needle, "\"config_fingerprint\":1")).unwrap();
        match open_sharded(&dir) {
            Err(IndexError::ConfigMismatch { found: 1, .. }) => {}
            other => panic!("expected ConfigMismatch, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_version_is_rejected_at_open() {
        let engine = small_engine();
        let dir = temp_dir("version");
        write_sharded(&engine, &dir, 2).unwrap();
        let path = dir.join(MANIFEST_FILE);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(
            &path,
            text.replace(
                &format!("\"format_version\":{SHARDED_FORMAT_VERSION}"),
                "\"format_version\":9",
            ),
        )
        .unwrap();
        match open_sharded(&dir) {
            Err(IndexError::VersionMismatch { found: 9, expected, .. }) => {
                assert_eq!(expected, SHARDED_FORMAT_VERSION);
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn saving_a_lazy_engine_materializes_procedures() {
        // A lazily backed engine must never serialize placeholder
        // procedures: a JSON snapshot written from it has to load into an
        // engine that scores identically.
        let engine = small_engine();
        let dir = temp_dir("materialize");
        write_sharded(&engine, &dir, 2).unwrap();
        let lazy = open_sharded(&dir).unwrap();
        let json = dir.join("resaved.esh");
        lazy.save(&json).unwrap();
        let resaved = SimilarityEngine::load(&json).unwrap();
        let q = Compiler::new(Vendor::Icc, VendorVersion::new(15, 0))
            .compile_function(&demo::venom_like());
        let a = engine.query(&q);
        let b = resaved.query(&q);
        for (x, y) in a.scores.iter().zip(&b.scores) {
            assert_eq!(x.ges.to_bits(), y.ges.to_bits(), "{}", x.name);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn read_manifest_touches_no_data_file() {
        let engine = small_engine();
        let dir = temp_dir("manifest-only");
        let summary = write_sharded(&engine, &dir, 2).unwrap();
        // Removing every data file must not bother read_manifest — it
        // reads manifest.json alone.
        std::fs::remove_file(dir.join(CORE_FILE)).unwrap();
        for i in 0..summary.shards {
            std::fs::remove_file(dir.join(shard_file_name(i))).unwrap();
        }
        std::fs::remove_file(dir.join(PRUNE_FILE)).ok();
        let m = read_manifest(&dir).unwrap();
        assert_eq!(m.target_count as usize, engine.target_count());
        assert_eq!(m.class_count as usize, engine.class_count());
        assert_eq!(m.shards, summary.shards);
        assert_eq!(m.shard_bytes, summary.shard_bytes);
        assert_eq!(m.core_bytes, summary.core_bytes);
        assert!(m.largest_shard_bytes > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prune_sidecar_round_trips_and_is_optional() {
        let engine = small_engine();
        let dir = temp_dir("prune-sidecar");
        write_sharded(&engine, &dir, 1).unwrap();
        assert!(read_manifest(&dir).unwrap().has_prune);
        let bytes = std::fs::read(dir.join(PRUNE_FILE)).unwrap();
        let summaries = decode_prune(&bytes).unwrap();
        assert_eq!(summaries.len(), read_manifest(&dir).unwrap().shards);
        // Opening with pruning disabled must still work, as must a
        // manifest with the sidecar fields absent (pre-sidecar index).
        let q = Compiler::new(Vendor::Clang, VendorVersion::new(3, 5))
            .compile_function(&demo::heartbleed_like());
        let with = open_sharded_with(&dir, EshxOpenOptions::default()).unwrap();
        let without =
            open_sharded_with(&dir, EshxOpenOptions { prune: false, ..Default::default() })
                .unwrap();
        let a = with.query(&q);
        let b = without.query(&q);
        for (x, y) in a.scores.iter().zip(&b.scores) {
            assert_eq!(x.ges.to_bits(), y.ges.to_bits(), "{}", x.name);
        }
        let path = dir.join(MANIFEST_FILE);
        let text = std::fs::read_to_string(&path).unwrap();
        let stripped = text
            .replace("\"prune_file\":\"prune.bin\"", "\"prune_file\":null")
            .replace(",\"prune_bytes\"", ",\"ignored_bytes\"")
            .replace(",\"prune_checksum\"", ",\"ignored_checksum\"");
        std::fs::write(&path, stripped).unwrap();
        let legacy = open_sharded(&dir).unwrap();
        let c = legacy.query(&q);
        for (x, y) in a.scores.iter().zip(&c.scores) {
            assert_eq!(x.ges.to_bits(), y.ges.to_bits(), "{}", x.name);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fallback_open_matches_mmap_open() {
        let engine = small_engine();
        let dir = temp_dir("no-mmap");
        write_sharded(&engine, &dir, 2).unwrap();
        let mapped = open_sharded_with(&dir, EshxOpenOptions::default()).unwrap();
        let owned =
            open_sharded_with(&dir, EshxOpenOptions { mmap: false, ..Default::default() }).unwrap();
        let q = Compiler::new(Vendor::Icc, VendorVersion::new(15, 0))
            .compile_function(&demo::venom_like());
        let a = mapped.query(&q);
        let b = owned.query(&q);
        for (x, y) in a.scores.iter().zip(&b.scores) {
            assert_eq!(x.ges.to_bits(), y.ges.to_bits(), "{}", x.name);
            assert_eq!(x.s_log.to_bits(), y.s_log.to_bits(), "{}", x.name);
            assert_eq!(x.s_vcp.to_bits(), y.s_vcp.to_bits(), "{}", x.name);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn migrate_json_round_trips_scores() {
        let engine = small_engine();
        let dir = temp_dir("migrate");
        std::fs::create_dir_all(&dir).unwrap();
        let json = dir.join("old.esh");
        engine.save_with_cache(&json).unwrap();
        let out = dir.join("new.eshx");
        let summary = migrate_json(&json, &out, 3).unwrap();
        assert_eq!(summary.targets, engine.target_count());
        let lazy = open_sharded(&out).unwrap();
        let q = Compiler::new(Vendor::Clang, VendorVersion::new(3, 4))
            .compile_function(&demo::ws_snmp_like());
        let a = engine.query(&q);
        let b = lazy.query(&q);
        for (x, y) in a.scores.iter().zip(&b.scores) {
            assert_eq!(x.ges.to_bits(), y.ges.to_bits(), "{}", x.name);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
