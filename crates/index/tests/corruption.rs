//! Shard corruption on the lazy path: a byte flipped in a
//! *not-yet-loaded* shard file must surface as a typed `Corrupted`
//! error — naming the shard file — on the first query that touches the
//! shard, while every other shard keeps serving. Under v6 sub-shard
//! demand decoding the blast radius shrinks further, to a single
//! record: a byte flipped in an *undecoded neighbour record* fails only
//! queries that actually price that record, with an error naming the
//! file and the class. Corruption is a per-item failure, never a
//! poisoned engine.

use esh_cc::{Compiler, Vendor, VendorVersion};
use esh_core::{CancelToken, EngineConfig, PrefilterConfig, QueryError, SimilarityEngine};
use esh_index::{open_sharded, write_sharded};
use esh_minic::demo;

fn scratch(tag: &str) -> std::path::PathBuf {
    let p = std::env::temp_dir().join(format!("esh-corrupt-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    p
}

#[test]
fn byte_flip_in_unloaded_shard_fails_only_queries_touching_it() {
    let gcc = Compiler::new(Vendor::Gcc, VendorVersion::new(4, 9));
    let clang = Compiler::new(Vendor::Clang, VendorVersion::new(3, 5));
    let funcs = demo::cve_functions();
    // The pure-LSH profile with refinement off keeps a query's shard
    // fan-out to band-colliding shards only — the healthy query below
    // must provably never need the corrupted shard. (Under the default
    // staged-pricing profile every query's refine pass scans the whole
    // 8-target corpus and would trip over the tampered file.)
    let mut engine = SimilarityEngine::new(EngineConfig {
        threads: 2,
        sketch: Some(PrefilterConfig {
            refine_top_k: None,
            ..PrefilterConfig::lsh_only()
        }),
        ..EngineConfig::default()
    });
    for (name, f) in &funcs {
        engine.add_target(format!("t-{name}"), &clang.compile_function(f));
    }
    let dir = scratch("lazy");
    write_sharded(&engine, &dir, 1).unwrap();
    drop(engine);

    // Flip one byte in the *last* target's shard, before anything loads
    // it. One target per shard means the victim's classes live there and
    // nowhere else.
    let victims: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("shard-") && n.ends_with(".bin"))
        })
        .collect();
    let victim = victims.iter().max().unwrap();
    let victim_name = victim.file_name().unwrap().to_str().unwrap().to_string();
    let mut bytes = std::fs::read(victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(victim, &bytes).unwrap();

    // Open is lazy: the tamper goes unnoticed until a query needs the
    // shard.
    let lazy = open_sharded(&dir).unwrap();

    // A query for the FIRST function scores fine — its shard is intact.
    let healthy_q = gcc.compile_function(&funcs[0].1);
    let ok = lazy
        .query_cancellable(&healthy_q, &CancelToken::new())
        .expect("healthy shards must keep serving");
    assert_eq!(ok.ranked()[0].name, format!("t-{}", funcs[0].0));

    // A query for the LAST function must touch the corrupted shard (its
    // own class lives there) and fail with a typed error naming the
    // shard file.
    let poisoned_q = gcc.compile_function(&funcs.last().unwrap().1);
    match lazy.query_cancellable(&poisoned_q, &CancelToken::new()) {
        Err(QueryError::Corrupted(e)) => {
            let msg = e.to_string();
            assert!(msg.contains(&victim_name), "error must name the shard file: {msg}");
            assert!(msg.contains("checksum mismatch"), "error must say why: {msg}");
        }
        Ok(_) => panic!("query over a corrupted shard reported success"),
        Err(e) => panic!("expected Corrupted, got {e}"),
    }

    // The engine is not poisoned: healthy queries still serve, with
    // identical results, and the corrupted query keeps failing the same
    // way (the load is retried, not latched).
    let again = lazy
        .query_cancellable(&healthy_q, &CancelToken::new())
        .expect("engine must survive a corrupted-shard error");
    for (x, y) in ok.scores.iter().zip(&again.scores) {
        assert_eq!(x.ges.to_bits(), y.ges.to_bits(), "{}", x.name);
    }
    assert!(matches!(
        lazy.query_cancellable(&poisoned_q, &CancelToken::new()),
        Err(QueryError::Corrupted(_))
    ));

    std::fs::remove_dir_all(&dir).ok();
}

/// Sub-shard demand decoding narrows the corruption blast radius from a
/// shard file to a single record: with two targets sharing one shard,
/// byte-flips in every record belonging to one target leave the *other*
/// target's queries serving — same shard, same mapping, neighbouring
/// records never checksummed because they are never decoded — while a
/// query that actually prices a poisoned record fails with a typed
/// error naming both the shard file and the class.
#[test]
fn byte_flip_in_undecoded_neighbour_record_fails_only_queries_touching_it() {
    let gcc = Compiler::new(Vendor::Gcc, VendorVersion::new(4, 9));
    let clang = Compiler::new(Vendor::Clang, VendorVersion::new(3, 5));
    let funcs = demo::cve_functions();
    // The same no-collision pair the shard-level test leans on — first
    // and last CVE functions — but co-resident in ONE shard, so only
    // record granularity can separate them.
    let (healthy_name, healthy_f) = &funcs[0];
    let (victim_name, victim_f) = funcs.last().unwrap();
    let mut engine = SimilarityEngine::new(EngineConfig {
        threads: 2,
        sketch: Some(PrefilterConfig {
            refine_top_k: None,
            ..PrefilterConfig::lsh_only()
        }),
        ..EngineConfig::default()
    });
    engine.add_target(format!("t-{healthy_name}"), &clang.compile_function(healthy_f));
    engine.add_target(format!("t-{victim_name}"), &clang.compile_function(victim_f));
    let export = engine.export_corpus();
    let dir = scratch("neighbour");
    write_sharded(&engine, &dir, 2).unwrap();
    drop(engine);

    // Classes owned by the victim target and NOT by the healthy one —
    // the records whose bytes the healthy query must never checksum.
    let healthy_classes: std::collections::BTreeSet<usize> =
        export.targets[0].strands.iter().map(|&(ci, _)| ci).collect();
    let victim_classes: std::collections::BTreeSet<usize> = export.targets[1]
        .strands
        .iter()
        .map(|&(ci, _)| ci)
        .filter(|ci| !healthy_classes.contains(ci))
        .collect();
    assert!(!victim_classes.is_empty(), "victim target shares every class");

    // Flip a byte in the middle of every victim record, straight through
    // the published record ranges. The structural region (header, table,
    // cache segment) is untouched, so the shard still *opens* fine.
    let shard_file = dir.join("shard-0000.bin");
    let mut bytes = std::fs::read(&shard_file).unwrap();
    let mut flipped = 0usize;
    for (ci, start, len) in esh_index::shard_record_ranges(&dir, 0).unwrap() {
        if victim_classes.contains(&ci) {
            bytes[(start + len / 2) as usize] ^= 0x40;
            flipped += 1;
        }
    }
    assert!(flipped > 0, "no record was flipped");
    std::fs::write(&shard_file, &bytes).unwrap();

    let lazy = open_sharded(&dir).unwrap();

    // The healthy target's query prices only its own records: the shard
    // opens (structural checksum intact), the poisoned neighbours stay
    // raw, and the query succeeds.
    let healthy_q = gcc.compile_function(healthy_f);
    let ok = lazy
        .query_cancellable(&healthy_q, &CancelToken::new())
        .expect("records the query never decodes must not be able to fail it");
    assert_eq!(ok.ranked()[0].name, format!("t-{healthy_name}"));

    // The victim target's query must decode a poisoned record and fail,
    // naming the shard file and the class.
    let poisoned_q = gcc.compile_function(victim_f);
    match lazy.query_cancellable(&poisoned_q, &CancelToken::new()) {
        Err(QueryError::Corrupted(e)) => {
            let msg = e.to_string();
            assert!(msg.contains("shard-0000.bin"), "error must name the shard file: {msg}");
            assert!(msg.contains("class "), "error must name the class: {msg}");
            assert!(msg.contains("checksum mismatch"), "error must say why: {msg}");
        }
        Ok(_) => panic!("query over a poisoned record reported success"),
        Err(e) => panic!("expected Corrupted, got {e}"),
    }

    // Not poisoned: the healthy query keeps serving identically from the
    // very same (still-open, partially-decoded) shard.
    let again = lazy
        .query_cancellable(&healthy_q, &CancelToken::new())
        .expect("engine must survive a poisoned-record error");
    for (x, y) in ok.scores.iter().zip(&again.scores) {
        assert_eq!(x.ges.to_bits(), y.ges.to_bits(), "{}", x.name);
    }
    let stats = lazy.shard_stats();
    assert!(
        stats.shards_partial >= 1,
        "the surviving shard should be partially decoded: {stats:?}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repairing_the_shard_restores_service_without_reopening() {
    let clang = Compiler::new(Vendor::Clang, VendorVersion::new(3, 5));
    let gcc = Compiler::new(Vendor::Gcc, VendorVersion::new(4, 9));
    let funcs = demo::cve_functions();
    let mut engine = SimilarityEngine::new(EngineConfig {
        threads: 2,
        ..EngineConfig::default()
    });
    for (name, f) in &funcs {
        engine.add_target(format!("t-{name}"), &clang.compile_function(f));
    }
    let dir = scratch("repair");
    write_sharded(&engine, &dir, 2).unwrap();
    drop(engine);

    let shard0 = dir.join("shard-0000.bin");
    let original = std::fs::read(&shard0).unwrap();
    let mut tampered = original.clone();
    tampered[original.len() / 3] ^= 0x01;
    std::fs::write(&shard0, &tampered).unwrap();

    let lazy = open_sharded(&dir).unwrap();
    let q = gcc.compile_function(&funcs[0].1);
    assert!(matches!(
        lazy.query_cancellable(&q, &CancelToken::new()),
        Err(QueryError::Corrupted(_))
    ));

    // Restore the file: because loads are retried (no error latch in the
    // slot), the same engine recovers in place.
    std::fs::write(&shard0, &original).unwrap();
    let scores = lazy
        .query_cancellable(&q, &CancelToken::new())
        .expect("repaired shard must load on retry");
    assert_eq!(scores.ranked()[0].name, format!("t-{}", funcs[0].0));

    std::fs::remove_dir_all(&dir).ok();
}
