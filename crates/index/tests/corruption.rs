//! Shard corruption on the lazy path: a byte flipped in a
//! *not-yet-loaded* shard file must surface as a typed `Corrupted`
//! error — naming the shard file — on the first query that touches the
//! shard, while every other shard keeps serving. Corruption is a
//! per-item failure, never a poisoned engine.

use esh_cc::{Compiler, Vendor, VendorVersion};
use esh_core::{CancelToken, EngineConfig, PrefilterConfig, QueryError, SimilarityEngine};
use esh_index::{open_sharded, write_sharded};
use esh_minic::demo;

fn scratch(tag: &str) -> std::path::PathBuf {
    let p = std::env::temp_dir().join(format!("esh-corrupt-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    p
}

#[test]
fn byte_flip_in_unloaded_shard_fails_only_queries_touching_it() {
    let gcc = Compiler::new(Vendor::Gcc, VendorVersion::new(4, 9));
    let clang = Compiler::new(Vendor::Clang, VendorVersion::new(3, 5));
    let funcs = demo::cve_functions();
    // The pure-LSH profile with refinement off keeps a query's shard
    // fan-out to band-colliding shards only — the healthy query below
    // must provably never need the corrupted shard. (Under the default
    // staged-pricing profile every query's refine pass scans the whole
    // 8-target corpus and would trip over the tampered file.)
    let mut engine = SimilarityEngine::new(EngineConfig {
        threads: 2,
        sketch: Some(PrefilterConfig {
            refine_top_k: None,
            ..PrefilterConfig::lsh_only()
        }),
        ..EngineConfig::default()
    });
    for (name, f) in &funcs {
        engine.add_target(format!("t-{name}"), &clang.compile_function(f));
    }
    let dir = scratch("lazy");
    write_sharded(&engine, &dir, 1).unwrap();
    drop(engine);

    // Flip one byte in the *last* target's shard, before anything loads
    // it. One target per shard means the victim's classes live there and
    // nowhere else.
    let victims: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("shard-") && n.ends_with(".bin"))
        })
        .collect();
    let victim = victims.iter().max().unwrap();
    let victim_name = victim.file_name().unwrap().to_str().unwrap().to_string();
    let mut bytes = std::fs::read(victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(victim, &bytes).unwrap();

    // Open is lazy: the tamper goes unnoticed until a query needs the
    // shard.
    let lazy = open_sharded(&dir).unwrap();

    // A query for the FIRST function scores fine — its shard is intact.
    let healthy_q = gcc.compile_function(&funcs[0].1);
    let ok = lazy
        .query_cancellable(&healthy_q, &CancelToken::new())
        .expect("healthy shards must keep serving");
    assert_eq!(ok.ranked()[0].name, format!("t-{}", funcs[0].0));

    // A query for the LAST function must touch the corrupted shard (its
    // own class lives there) and fail with a typed error naming the
    // shard file.
    let poisoned_q = gcc.compile_function(&funcs.last().unwrap().1);
    match lazy.query_cancellable(&poisoned_q, &CancelToken::new()) {
        Err(QueryError::Corrupted(e)) => {
            let msg = e.to_string();
            assert!(msg.contains(&victim_name), "error must name the shard file: {msg}");
            assert!(msg.contains("checksum mismatch"), "error must say why: {msg}");
        }
        Ok(_) => panic!("query over a corrupted shard reported success"),
        Err(e) => panic!("expected Corrupted, got {e}"),
    }

    // The engine is not poisoned: healthy queries still serve, with
    // identical results, and the corrupted query keeps failing the same
    // way (the load is retried, not latched).
    let again = lazy
        .query_cancellable(&healthy_q, &CancelToken::new())
        .expect("engine must survive a corrupted-shard error");
    for (x, y) in ok.scores.iter().zip(&again.scores) {
        assert_eq!(x.ges.to_bits(), y.ges.to_bits(), "{}", x.name);
    }
    assert!(matches!(
        lazy.query_cancellable(&poisoned_q, &CancelToken::new()),
        Err(QueryError::Corrupted(_))
    ));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repairing_the_shard_restores_service_without_reopening() {
    let clang = Compiler::new(Vendor::Clang, VendorVersion::new(3, 5));
    let gcc = Compiler::new(Vendor::Gcc, VendorVersion::new(4, 9));
    let funcs = demo::cve_functions();
    let mut engine = SimilarityEngine::new(EngineConfig {
        threads: 2,
        ..EngineConfig::default()
    });
    for (name, f) in &funcs {
        engine.add_target(format!("t-{name}"), &clang.compile_function(f));
    }
    let dir = scratch("repair");
    write_sharded(&engine, &dir, 2).unwrap();
    drop(engine);

    let shard0 = dir.join("shard-0000.bin");
    let original = std::fs::read(&shard0).unwrap();
    let mut tampered = original.clone();
    tampered[original.len() / 3] ^= 0x01;
    std::fs::write(&shard0, &tampered).unwrap();

    let lazy = open_sharded(&dir).unwrap();
    let q = gcc.compile_function(&funcs[0].1);
    assert!(matches!(
        lazy.query_cancellable(&q, &CancelToken::new()),
        Err(QueryError::Corrupted(_))
    ));

    // Restore the file: because loads are retried (no error latch in the
    // slot), the same engine recovers in place.
    std::fs::write(&shard0, &original).unwrap();
    let scores = lazy
        .query_cancellable(&q, &CancelToken::new())
        .expect("repaired shard must load on retry");
    assert_eq!(scores.ranked()[0].name, format!("t-{}", funcs[0].0));

    std::fs::remove_dir_all(&dir).ok();
}
