//! The scale tier's load-bearing pin: an engine opened from a sharded
//! v6 index is **indistinguishable** from the same corpus loaded from a
//! JSON snapshot — not just same ranked names, but byte-identical scores
//! AND identical VCP-cache hit/miss counters, whatever the query
//! sequence and whatever the shard granularity.
//!
//! The counter half is the subtle one. A lazily backed engine inserts
//! each shard's persisted cache segment at shard-open time; if any
//! counted lookup could run before the owning shard's segment was
//! resident, a persisted entry would be re-counted as a miss and the
//! counters would drift. The engine's open-before-lookup rule is exactly
//! what this property exercises, across shard sizes 1..4 and arbitrary
//! query subsets with repetition.
//!
//! v6 adds a second axis: sub-shard *demand decoding*. `open_sharded`
//! defaults to decoding individual class records only when a query
//! actually prices them; `EshxOpenOptions { demand: false }` restores
//! eager whole-shard decode. The two modes must be bitwise
//! indistinguishable — rankings, H0-backed scores, and per-step VCP
//! hit/miss counters — which the dedicated proptest below pins across
//! shard sizes and query sequences.

use esh_asm::Procedure;
use esh_cc::{Compiler, Vendor, VendorVersion};
use esh_core::{EngineConfig, QueryScores, SimilarityEngine};
use esh_index::EshxOpenOptions;
use esh_minic::demo;
use proptest::prelude::*;

fn corpus_and_queries() -> (Vec<(String, Procedure)>, Vec<Procedure>) {
    let gcc = Compiler::new(Vendor::Gcc, VendorVersion::new(4, 9));
    let clang = Compiler::new(Vendor::Clang, VendorVersion::new(3, 5));
    let funcs = demo::cve_functions();
    let corpus = funcs
        .iter()
        .map(|(name, f)| (format!("t-{name}"), clang.compile_function(f)))
        .collect();
    let queries = funcs
        .iter()
        .take(4)
        .map(|(_, f)| gcc.compile_function(f))
        .collect();
    (corpus, queries)
}

fn build_engine(corpus: &[(String, Procedure)]) -> SimilarityEngine {
    let mut engine = SimilarityEngine::new(EngineConfig {
        threads: 2,
        ..EngineConfig::default()
    });
    for (name, p) in corpus {
        engine.add_target(name.clone(), p);
    }
    engine
}

fn assert_scores_identical(a: &QueryScores, b: &QueryScores, what: &str) {
    assert_eq!(a.scores.len(), b.scores.len(), "{what}: score rows");
    for (x, y) in a.scores.iter().zip(&b.scores) {
        assert_eq!(x.target, y.target, "{what}: target order");
        assert_eq!(x.ges.to_bits(), y.ges.to_bits(), "{what}: GES {}", x.name);
        assert_eq!(x.s_log.to_bits(), y.s_log.to_bits(), "{what}: S-LOG {}", x.name);
        assert_eq!(x.s_vcp.to_bits(), y.s_vcp.to_bits(), "{what}: S-VCP {}", x.name);
    }
}

fn scratch(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("esh-v5-prop-{tag}-{}", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For any shard granularity and any query sequence (with repeats —
    /// repeats are what make cache hits happen), the v5-loaded engine's
    /// ranked responses are byte-identical to the JSON-loaded engine's,
    /// and so are the hit/miss counters after every single query.
    #[test]
    fn sharded_engine_matches_json_engine_bitwise_with_identical_counters(
        targets_per_shard in 1usize..5,
        picks in prop::collection::vec(0usize..4, 1..6),
    ) {
        let (corpus, queries) = corpus_and_queries();
        let built = build_engine(&corpus);

        let dir = scratch(&format!("{targets_per_shard}-{}", picks.len()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let json_path = dir.join("corpus.esh");
        let eshx_path = dir.join("corpus.eshx");
        // Persist WITH the (empty-but-structured) cache through both
        // formats, from the same built engine.
        built.save_with_cache(&json_path).unwrap();
        esh_index::write_sharded(&built, &eshx_path, targets_per_shard).unwrap();
        drop(built);

        let from_json = SimilarityEngine::load(&json_path).unwrap();
        let from_v5 = esh_index::open_sharded(&eshx_path).unwrap();

        for (step, &i) in picks.iter().enumerate() {
            let a = from_json.query(&queries[i]);
            let b = from_v5.query(&queries[i]);
            assert_scores_identical(&a, &b, &format!("step {step} query {i}"));
            let ca = from_json.cache_stats();
            let cb = from_v5.cache_stats();
            prop_assert_eq!(
                (ca.hits, ca.misses),
                (cb.hits, cb.misses),
                "counters diverged after step {} (query {}, shard size {})",
                step, i, targets_per_shard
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Warmed caches survive the v5 round trip with the counter contract
    /// intact: queries answered from persisted cache segments count as
    /// hits on the lazy engine exactly as they do on the resident one.
    #[test]
    fn persisted_cache_segments_replay_as_hits(
        targets_per_shard in 1usize..4,
    ) {
        let (corpus, queries) = corpus_and_queries();
        let warmed = build_engine(&corpus);
        // Warm the cache, then persist it into both formats.
        for q in &queries {
            warmed.query(q);
        }
        let dir = scratch(&format!("warm-{targets_per_shard}"));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let json_path = dir.join("warm.esh");
        let eshx_path = dir.join("warm.eshx");
        warmed.save_with_cache(&json_path).unwrap();
        esh_index::write_sharded(&warmed, &eshx_path, targets_per_shard).unwrap();
        drop(warmed);

        let from_json = SimilarityEngine::load(&json_path).unwrap();
        let from_v5 = esh_index::open_sharded(&eshx_path).unwrap();
        for (i, q) in queries.iter().enumerate() {
            let a = from_json.query(q);
            let b = from_v5.query(q);
            assert_scores_identical(&a, &b, &format!("warm query {i}"));
        }
        let ca = from_json.cache_stats();
        let cb = from_v5.cache_stats();
        prop_assert_eq!((ca.hits, ca.misses), (cb.hits, cb.misses));
        prop_assert!(
            ca.hits > 0,
            "warmed cache produced no hits at all — the fixture is too weak"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Sketch-band shard pruning may only skip work that contributes
    /// nothing: for any shard granularity and query sequence, the pruned
    /// engine's rankings, H0 statistics (already folded into the scores)
    /// and VCP cache counters are byte-identical to the unpruned
    /// engine's after every step.
    #[test]
    fn pruned_fanout_is_bitwise_identical_to_full_fanout(
        targets_per_shard in 1usize..5,
        picks in prop::collection::vec(0usize..4, 1..6),
    ) {
        let (corpus, queries) = corpus_and_queries();
        let built = build_engine(&corpus);
        let dir = scratch(&format!("prune-{targets_per_shard}-{}", picks.len()));
        std::fs::remove_dir_all(&dir).ok();
        esh_index::write_sharded(&built, &dir, targets_per_shard).unwrap();
        drop(built);

        let full = esh_index::open_sharded_with(
            &dir,
            EshxOpenOptions { prune: false, ..Default::default() },
        )
        .unwrap();
        let pruned = esh_index::open_sharded(&dir).unwrap();

        for (step, &i) in picks.iter().enumerate() {
            let a = full.query(&queries[i]);
            let b = pruned.query(&queries[i]);
            assert_scores_identical(&a, &b, &format!("prune step {step} query {i}"));
            let ca = full.cache_stats();
            let cb = pruned.cache_stats();
            prop_assert_eq!(
                (ca.hits, ca.misses),
                (cb.hits, cb.misses),
                "cache counters diverged after step {} (query {}, shard size {})",
                step, i, targets_per_shard
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Demand decode vs whole-shard decode: for any shard granularity
    /// and query sequence, per-procedure demand decoding answers
    /// byte-identically to eager whole-shard decoding — same rankings,
    /// same H0-backed score bits, same VCP hit/miss counters after every
    /// step — while provably decoding less: once queries ran, at least
    /// one open shard must still hold a raw (undecoded) neighbour record
    /// whenever shards hold more than one class.
    #[test]
    fn demand_decode_is_bitwise_identical_to_whole_shard_decode(
        targets_per_shard in 1usize..5,
        picks in prop::collection::vec(0usize..4, 1..6),
    ) {
        let (corpus, queries) = corpus_and_queries();
        let built = build_engine(&corpus);
        let dir = scratch(&format!("demand-{targets_per_shard}-{}", picks.len()));
        std::fs::remove_dir_all(&dir).ok();
        esh_index::write_sharded(&built, &dir, targets_per_shard).unwrap();
        drop(built);

        let whole = esh_index::open_sharded_with(
            &dir,
            EshxOpenOptions { demand: false, ..Default::default() },
        )
        .unwrap();
        let demand = esh_index::open_sharded(&dir).unwrap();

        for (step, &i) in picks.iter().enumerate() {
            let a = whole.query(&queries[i]);
            let b = demand.query(&queries[i]);
            assert_scores_identical(&a, &b, &format!("demand step {step} query {i}"));
            let ca = whole.cache_stats();
            let cb = demand.cache_stats();
            prop_assert_eq!(
                (ca.hits, ca.misses),
                (cb.hits, cb.misses),
                "cache counters diverged after step {} (query {}, shard size {})",
                step, i, targets_per_shard
            );
        }
        let sw = whole.shard_stats();
        let sd = demand.shard_stats();
        prop_assert_eq!(sw.shards_partial, 0, "eager decode left a partial shard: {:?}", sw);
        prop_assert!(
            sd.decoded_bytes <= sw.decoded_bytes,
            "demand decoded more than eager ({} > {})",
            sd.decoded_bytes, sw.decoded_bytes
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A memory-bounded engine (budget ≈ two shards) answers any query
    /// sequence bitwise-identically to an unbounded engine, with cache
    /// counters unchanged — eviction plus reload must be invisible to
    /// everything except the residency gauges.
    #[test]
    fn two_shard_budget_matches_unbounded_engine_bitwise(
        targets_per_shard in 1usize..4,
        picks in prop::collection::vec(0usize..4, 1..8),
    ) {
        let (corpus, queries) = corpus_and_queries();
        let built = build_engine(&corpus);
        let dir = scratch(&format!("budget-{targets_per_shard}-{}", picks.len()));
        std::fs::remove_dir_all(&dir).ok();
        esh_index::write_sharded(&built, &dir, targets_per_shard).unwrap();
        drop(built);

        let budget = esh_index::read_manifest(&dir).unwrap().largest_shard_bytes * 2;
        let unbounded = esh_index::open_sharded(&dir).unwrap();
        let budgeted = esh_index::open_sharded(&dir).unwrap();
        budgeted.set_shard_budget(budget);

        for (step, &i) in picks.iter().enumerate() {
            let a = unbounded.query(&queries[i]);
            let b = budgeted.query(&queries[i]);
            assert_scores_identical(&a, &b, &format!("budget step {step} query {i}"));
            let ca = unbounded.cache_stats();
            let cb = budgeted.cache_stats();
            prop_assert_eq!(
                (ca.hits, ca.misses),
                (cb.hits, cb.misses),
                "cache counters diverged after step {} (query {}, shard size {})",
                step, i, targets_per_shard
            );
            let s = budgeted.shard_stats();
            prop_assert!(
                s.resident_bytes <= budget,
                "settled residency {} exceeds budget {} after step {}",
                s.resident_bytes, budget, step
            );
            prop_assert!(
                s.resident_bytes_peak <= budget,
                "peak residency {} exceeds budget {} after step {}",
                s.resident_bytes_peak, budget, step
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Under the scale tier's pure-LSH profile
/// ([`esh_core::PrefilterConfig::lsh_only`]) with one target per shard,
/// shards none of whose classes band-collide with the query are provably
/// silent — at least one shard must actually be skipped, the pruned
/// counter must say so, and every score must stay byte-identical to an
/// engine opened with pruning disabled.
#[test]
fn pruning_skips_shards_under_the_lsh_profile_with_identical_scores() {
    use esh_core::PrefilterConfig;
    let (corpus, queries) = corpus_and_queries();
    let mut built = SimilarityEngine::new(EngineConfig {
        threads: 2,
        sketch: Some(PrefilterConfig::lsh_only()),
        ..EngineConfig::default()
    });
    for (name, p) in &corpus {
        built.add_target(name.clone(), p);
    }
    let dir = scratch("prune-gate");
    std::fs::remove_dir_all(&dir).ok();
    esh_index::write_sharded(&built, &dir, 1).unwrap();
    drop(built);

    let full = esh_index::open_sharded_with(
        &dir,
        EshxOpenOptions {
            prune: false,
            ..EshxOpenOptions::default()
        },
    )
    .unwrap();
    let pruned = esh_index::open_sharded(&dir).unwrap();
    for (i, q) in queries.iter().enumerate() {
        let a = full.query(q);
        let b = pruned.query(q);
        assert_scores_identical(&a, &b, &format!("lsh-profile query {i}"));
    }
    assert_eq!(full.shard_stats().pruned_total, 0, "prune:false must not skip");
    let stats = pruned.shard_stats();
    assert!(stats.shards_total >= 4, "fixture too small: {stats:?}");
    assert!(
        stats.pruned_total > 0,
        "no shard was ever pruned across {} queries: {stats:?}",
        queries.len()
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Tight budget (one shard) across queries touching several shards:
/// evictions must actually happen, the loaded gauge must stay consistent
/// (loads − evictions), and scores must still match the JSON engine.
#[test]
fn tight_budget_evicts_and_still_scores_correctly() {
    let (corpus, queries) = corpus_and_queries();
    let built = build_engine(&corpus);
    let dir = scratch("evict-gate");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let json_path = dir.join("ref.esh");
    built.save_with_cache(&json_path).unwrap();
    esh_index::write_sharded(&built, dir.join("idx.eshx"), 1).unwrap();
    drop(built);

    let manifest = esh_index::read_manifest(dir.join("idx.eshx")).unwrap();
    let budget = manifest.largest_shard_bytes;
    let reference = SimilarityEngine::load(&json_path).unwrap();
    let budgeted = esh_index::open_sharded(dir.join("idx.eshx")).unwrap();
    budgeted.set_shard_budget(budget);

    for (i, q) in queries.iter().enumerate() {
        let a = reference.query(q);
        let b = budgeted.query(q);
        assert_scores_identical(&a, &b, &format!("tight-budget query {i}"));
    }
    let s = budgeted.shard_stats();
    assert!(s.evicted_total > 0, "a one-shard budget never evicted: {s:?}");
    assert!(s.resident_bytes <= budget, "settled above budget: {s:?}");
    assert!(s.shards_loaded < s.shards_total, "loaded gauge ignores evictions: {s:?}");
    std::fs::remove_dir_all(&dir).ok();
}
