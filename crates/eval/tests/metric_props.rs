//! Property tests for the ranked-retrieval metrics.

use esh_eval::{croc_auc, false_positives, roc_auc};
use proptest::prelude::*;

fn arb_items() -> impl Strategy<Value = Vec<(f64, bool)>> {
    prop::collection::vec((0.0f64..1.0, any::<bool>()), 2..60)
}

proptest! {
    #[test]
    fn aucs_are_in_unit_interval(items in arb_items()) {
        let roc = roc_auc(&items);
        let croc = croc_auc(&items);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&roc));
        prop_assert!((0.0..=1.0 + 1e-9).contains(&croc));
    }

    #[test]
    fn perfect_separation_scores_one(
        pos in prop::collection::vec(0.6f64..1.0, 1..20),
        neg in prop::collection::vec(0.0f64..0.4, 1..20),
    ) {
        let mut items: Vec<(f64, bool)> = Vec::new();
        items.extend(pos.iter().map(|s| (*s, true)));
        items.extend(neg.iter().map(|s| (*s, false)));
        prop_assert!((roc_auc(&items) - 1.0).abs() < 1e-9);
        prop_assert!((croc_auc(&items) - 1.0).abs() < 1e-9);
        prop_assert_eq!(false_positives(&items), 0);
    }

    #[test]
    fn roc_is_label_flip_complementary(items in arb_items()) {
        // Flipping every label maps AUC to 1 - AUC (when both classes are
        // non-empty and there are no ties between them the relation is
        // exact; ties keep it exact too because both get half credit).
        let pos = items.iter().filter(|(_, p)| *p).count();
        prop_assume!(pos > 0 && pos < items.len());
        let flipped: Vec<(f64, bool)> = items.iter().map(|(s, p)| (*s, !*p)).collect();
        prop_assert!((roc_auc(&items) + roc_auc(&flipped) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn monotone_score_transform_preserves_metrics(items in arb_items()) {
        // AUC depends only on the ranking, not the score values.
        let transformed: Vec<(f64, bool)> =
            items.iter().map(|(s, p)| (s * 100.0 + 7.0, *p)).collect();
        prop_assert!((roc_auc(&items) - roc_auc(&transformed)).abs() < 1e-9);
        prop_assert!((croc_auc(&items) - croc_auc(&transformed)).abs() < 1e-9);
        prop_assert_eq!(false_positives(&items), false_positives(&transformed));
    }

    #[test]
    fn croc_never_exceeds_what_perfect_would_give(items in arb_items()) {
        let pos = items.iter().filter(|(_, p)| *p).count();
        prop_assume!(pos > 0 && pos < items.len());
        // CROC of the actual ranking ≤ CROC of the perfectly sorted one.
        let mut perfect = items.clone();
        perfect.sort_by_key(|e| std::cmp::Reverse(e.1));
        let perfect: Vec<(f64, bool)> = perfect
            .into_iter()
            .enumerate()
            .map(|(i, (_, p))| (1.0 - i as f64 * 1e-3, p))
            .collect();
        prop_assert!(croc_auc(&items) <= croc_auc(&perfect) + 1e-9);
    }

    #[test]
    fn fp_count_bounded_by_negatives(items in arb_items()) {
        let neg = items.iter().filter(|(_, p)| !*p).count();
        prop_assert!(false_positives(&items) <= neg);
    }
}
