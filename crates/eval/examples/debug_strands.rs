//! Per-strand VCP diagnosis between two compilations of one function.
use esh_cc::{Compiler, Vendor, VendorVersion};
use esh_core::{size_ratio_ok, vcp_pair, VcpConfig};
use esh_minic::demo;
use esh_strands::{extract_proc_strands, lift_strand};
use esh_verifier::VerifierSession;

fn main() {
    let q = Compiler::new(Vendor::Clang, VendorVersion::new(3, 5))
        .compile_function(&demo::ffmpeg_like());
    let t =
        Compiler::new(Vendor::Gcc, VendorVersion::new(4, 9)).compile_function(&demo::ffmpeg_like());
    println!("=== query (clang) ===\n{q}\n=== target (gcc) ===\n{t}");
    let config = VcpConfig::default();
    let qs: Vec<_> = extract_proc_strands(&q)
        .iter()
        .map(lift_strand)
        .filter(|p| p.vars.len() >= config.min_strand_vars)
        .collect();
    let ts: Vec<_> = extract_proc_strands(&t)
        .iter()
        .map(lift_strand)
        .filter(|p| p.vars.len() >= config.min_strand_vars)
        .collect();
    let mut session = VerifierSession::new();
    for (qi, ql) in qs.iter().enumerate() {
        let mut best = 0.0f64;
        let mut best_ti = usize::MAX;
        for (ti, tl) in ts.iter().enumerate() {
            if !size_ratio_ok(&config, ql.vars.len(), tl.vars.len()) {
                continue;
            }
            let v = vcp_pair(&mut session, ql, tl, &config);
            if v.q_in_t > best {
                best = v.q_in_t;
                best_ti = ti;
            }
        }
        println!(
            "q{qi} ({} vars, {}): best VCP {:.3} vs t{best_ti}",
            ql.vars.len(),
            ql.name,
            best
        );
        if best < 0.5 {
            println!("--- unmatched strand:\n{ql}");
        }
    }
    println!("stats {:?}", session.stats());
}
