//! Debug: ffmpeg query ranking at smoke scale.
use esh_core::{EngineConfig, SimilarityEngine};
use esh_corpus::{Corpus, CorpusConfig};

fn main() {
    let corpus = Corpus::build(&CorpusConfig::small());
    let mut engine = SimilarityEngine::new(EngineConfig::default());
    for p in &corpus.procs {
        engine.add_target(p.display(), &p.proc_);
    }
    let qi = corpus
        .query_for("CVE-2015-6826", "clang 3.5")
        .expect("ffmpeg");
    let scores = engine.query(&corpus.procs[qi].proc_);
    println!(
        "query: {} ({} strands)",
        corpus.procs[qi].display(),
        scores.query_strands
    );
    for s in scores.ranked().iter().take(12) {
        let tp = corpus.procs[s.target.0].func == corpus.procs[qi].func;
        println!(
            "{:>9.3} {:>9.3} {:>7.2} {} {}",
            s.ges,
            s.s_log,
            s.s_vcp,
            if tp { "TP" } else { "  " },
            s.name
        );
    }
}
