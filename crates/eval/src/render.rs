//! Plain-text rendering for tables and heat maps.

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given header.
    pub fn new(header: &[&str]) -> TextTable {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (missing cells render empty).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        let all = std::iter::once(&self.header).chain(self.rows.iter());
        for row in all {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |row: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (i, w) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!(" {cell:<w$} |"));
            }
            line
        };
        let sep = {
            let mut s = String::from("+");
            for w in &widths {
                s.push_str(&"-".repeat(w + 2));
                s.push('+');
            }
            s
        };
        out.push_str(&sep);
        out.push('\n');
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        out.push_str(&sep);
        out.push('\n');
        out
    }
}

/// Renders a matrix of values in `[0, 1]` as an ASCII heat map
/// (Figure 6's presentation).
pub fn heatmap(values: &[Vec<f64>], labels: &[String]) -> String {
    const SHADES: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let mut out = String::new();
    for (i, row) in values.iter().enumerate() {
        for v in row {
            let idx = ((v.clamp(0.0, 1.0)) * (SHADES.len() - 1) as f64).round() as usize;
            out.push(SHADES[idx]);
            out.push(SHADES[idx]); // double width for aspect ratio
        }
        let label = labels.get(i).map(String::as_str).unwrap_or("");
        out.push_str(&format!("  {label}\n"));
    }
    out
}

/// Formats a float with three decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(&["name", "score"]);
        t.row(vec!["heartbleed".into(), "1.000".into()]);
        t.row(vec!["x".into(), "0.5".into()]);
        let s = t.render();
        assert!(s.contains("| name       | score |"));
        assert!(s.lines().count() >= 6);
        // All lines share the same width.
        let widths: Vec<usize> = s.lines().map(str::len).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn heatmap_shades_by_value() {
        let m = vec![vec![0.0, 1.0], vec![0.5, 0.25]];
        let s = heatmap(&m, &["a".into(), "b".into()]);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("  @@"));
    }

    #[test]
    fn f3_formats() {
        assert_eq!(f3(0.41911), "0.419");
    }
}
