//! Similarity-based clustering — the paper's stated future work (§8: "we
//! plan to investigate the use of our technique for clustering and
//! classification").
//!
//! Greedy agglomerative clustering over the pairwise GES matrix: each
//! procedure joins the cluster of its strongest link above a threshold
//! derived from the score distribution. Evaluated against ground truth
//! with pairwise precision/recall.

use serde::{Deserialize, Serialize};

/// A clustering of `n` items: `assignment[i]` is the cluster id of item `i`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Clustering {
    /// Cluster id per item.
    pub assignment: Vec<usize>,
    /// Number of clusters.
    pub clusters: usize,
}

/// Clusters items from a (possibly asymmetric) similarity matrix.
///
/// The link strength between `i` and `j` is `max(m[i][j], m[j][i])`
/// (GES is asymmetric; either direction of strong evidence counts).
/// `threshold_quantile` picks the link cutoff from the off-diagonal score
/// distribution (e.g. `0.9` = only the top decile of links merge).
pub fn cluster_matrix(matrix: &[Vec<f64>], threshold_quantile: f64) -> Clustering {
    let n = matrix.len();
    if n == 0 {
        return Clustering {
            assignment: Vec::new(),
            clusters: 0,
        };
    }
    // Collect off-diagonal link strengths.
    let mut links: Vec<(f64, usize, usize)> = Vec::new();
    for (i, row) in matrix.iter().enumerate() {
        for (j, up) in row.iter().enumerate().skip(i + 1) {
            let s = up.max(matrix[j][i]);
            links.push((s, i, j));
        }
    }
    links.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let cutoff = if links.is_empty() {
        f64::INFINITY
    } else {
        let idx = ((links.len() - 1) as f64 * threshold_quantile.clamp(0.0, 1.0)) as usize;
        links[idx].0
    };
    // Union-find over strong links.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let r = find(parent, parent[x]);
            parent[x] = r;
        }
        parent[x]
    }
    for (s, i, j) in links.iter().rev() {
        if *s < cutoff {
            break;
        }
        let (ri, rj) = (find(&mut parent, *i), find(&mut parent, *j));
        if ri != rj {
            parent[ri] = rj;
        }
    }
    // Compact cluster ids.
    let mut ids = std::collections::HashMap::new();
    let mut assignment = Vec::with_capacity(n);
    for i in 0..n {
        let r = find(&mut parent, i);
        let next = ids.len();
        assignment.push(*ids.entry(r).or_insert(next));
    }
    Clustering {
        clusters: ids.len(),
        assignment,
    }
}

/// Pairwise precision/recall/F1 of a clustering against ground-truth
/// labels.
pub fn pairwise_f1(clustering: &Clustering, truth: &[usize]) -> (f64, f64, f64) {
    let n = truth.len();
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut fn_ = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            let same_pred = clustering.assignment[i] == clustering.assignment[j];
            let same_true = truth[i] == truth[j];
            match (same_pred, same_true) {
                (true, true) => tp += 1,
                (true, false) => fp += 1,
                (false, true) => fn_ += 1,
                (false, false) => {}
            }
        }
    }
    let precision = if tp + fp == 0 {
        1.0
    } else {
        tp as f64 / (tp + fp) as f64
    };
    let recall = if tp + fn_ == 0 {
        1.0
    } else {
        tp as f64 / (tp + fn_) as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    (precision, recall, f1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_diagonal_matrix_clusters_perfectly() {
        // Two groups of 3 with strong in-group links.
        let mut m = vec![vec![0.05; 6]; 6];
        for g in [&[0usize, 1, 2][..], &[3, 4, 5][..]] {
            for &i in g {
                for &j in g {
                    m[i][j] = if i == j { 1.0 } else { 0.9 };
                }
            }
        }
        let c = cluster_matrix(&m, 0.7);
        assert_eq!(c.clusters, 2);
        let truth = vec![0, 0, 0, 1, 1, 1];
        let (p, r, f1) = pairwise_f1(&c, &truth);
        assert_eq!((p, r, f1), (1.0, 1.0, 1.0));
    }

    #[test]
    fn asymmetric_links_count_either_direction() {
        let m = vec![vec![1.0, 0.9], vec![0.0, 1.0]];
        let c = cluster_matrix(&m, 0.5);
        assert_eq!(c.clusters, 1, "the strong i→j link should merge");
    }

    #[test]
    fn low_quantile_merges_everything_high_splits() {
        let m = vec![
            vec![1.0, 0.5, 0.2],
            vec![0.5, 1.0, 0.3],
            vec![0.2, 0.3, 1.0],
        ];
        let all = cluster_matrix(&m, 0.0);
        assert_eq!(all.clusters, 1);
        let none = cluster_matrix(&m, 1.0);
        assert!(none.clusters >= 2);
    }

    #[test]
    fn empty_input() {
        let c = cluster_matrix(&[], 0.5);
        assert_eq!(c.clusters, 0);
        assert_eq!(pairwise_f1(&c, &[]), (1.0, 1.0, 1.0));
    }

    #[test]
    fn f1_penalizes_overmerging() {
        let c = Clustering {
            assignment: vec![0, 0, 0, 0],
            clusters: 1,
        };
        let truth = vec![0, 0, 1, 1];
        let (p, r, _) = pairwise_f1(&c, &truth);
        assert!(p < 1.0);
        assert_eq!(r, 1.0);
    }
}
