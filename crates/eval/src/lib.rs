#![warn(missing_docs)]

//! # esh-eval — evaluation harness
//!
//! ROC / CROC / false-positive metrics (§5.4), plain-text rendering, and
//! the experiment drivers that regenerate every table and figure of the
//! paper's evaluation (Tables 1–3, Figures 5–6). See `DESIGN.md` for the
//! experiment index and `EXPERIMENTS.md` for recorded paper-vs-measured
//! results.

pub mod cluster;
pub mod experiments;
pub mod rankcmp;
pub mod render;
mod roc;

pub use rankcmp::{compare_rankings, kendall_tau, topk_agreement, RankComparison};
pub use roc::{croc_auc, false_positives, roc_auc, CROC_ALPHA};
