//! Ranked-retrieval metrics: ROC, CROC and the paper's false-positive
//! count (§5.4).

/// Area under the ROC curve for `(score, is_positive)` observations.
///
/// Computed as the Mann–Whitney U statistic (ties get half credit), which
/// equals the area under the stepwise ROC curve.
pub fn roc_auc(items: &[(f64, bool)]) -> f64 {
    let pos = items.iter().filter(|(_, p)| *p).count();
    let neg = items.len() - pos;
    if pos == 0 || neg == 0 {
        return 1.0;
    }
    let mut sorted: Vec<&(f64, bool)> = items.iter().collect();
    sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    // Average ranks over tied scores.
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i;
        while j < sorted.len() && sorted[j].0 == sorted[i].0 {
            j += 1;
        }
        // Ranks are 1-based; ties share the average rank.
        let avg_rank = (i + 1 + j) as f64 / 2.0;
        for item in &sorted[i..j] {
            if item.1 {
                rank_sum_pos += avg_rank;
            }
        }
        i = j;
    }
    let u = rank_sum_pos - (pos * (pos + 1)) as f64 / 2.0;
    u / (pos as f64 * neg as f64)
}

/// The exponential-transform parameter recommended by Swamidass et al.
/// (paper ref \[34\]) for early-retrieval evaluation.
pub const CROC_ALPHA: f64 = 7.0;

fn croc_x(x: f64) -> f64 {
    (1.0 - (-CROC_ALPHA * x).exp()) / (1.0 - (-CROC_ALPHA).exp())
}

/// Area under the Concentrated ROC curve (exponential magnification of the
/// early part of the ranking; penalizes false positives aggressively).
pub fn croc_auc(items: &[(f64, bool)]) -> f64 {
    let pos = items.iter().filter(|(_, p)| *p).count();
    let neg = items.len() - pos;
    if pos == 0 || neg == 0 {
        return 1.0;
    }
    // Build the stepwise ROC curve from the best score down, breaking ties
    // by processing tied groups together (diagonal segment).
    let mut sorted: Vec<&(f64, bool)> = items.iter().collect();
    sorted.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut auc = 0.0f64;
    let mut prev_fpr = 0.0f64;
    let mut prev_tpr = 0.0f64;
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i;
        let mut dtp = 0;
        let mut dfp = 0;
        while j < sorted.len() && sorted[j].0 == sorted[i].0 {
            if sorted[j].1 {
                dtp += 1;
            } else {
                dfp += 1;
            }
            j += 1;
        }
        tp += dtp;
        fp += dfp;
        let tpr = tp as f64 / pos as f64;
        let fpr = fp as f64 / neg as f64;
        // Trapezoid on the transformed x-axis.
        auc += (croc_x(fpr) - croc_x(prev_fpr)) * (tpr + prev_tpr) / 2.0;
        prev_fpr = fpr;
        prev_tpr = tpr;
        i = j;
    }
    auc
}

/// The paper's false-positive count: how many negatives a human examiner
/// working down the ranked list inspects before finding every positive.
pub fn false_positives(items: &[(f64, bool)]) -> usize {
    let mut sorted: Vec<&(f64, bool)> = items.iter().collect();
    sorted.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let last_pos = match sorted.iter().rposition(|(_, p)| *p) {
        Some(i) => i,
        None => return 0,
    };
    sorted[..=last_pos].iter().filter(|(_, p)| !*p).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_scores_one() {
        let items = vec![(0.9, true), (0.8, true), (0.3, false), (0.1, false)];
        assert_eq!(roc_auc(&items), 1.0);
        assert!((croc_auc(&items) - 1.0).abs() < 1e-9);
        assert_eq!(false_positives(&items), 0);
    }

    #[test]
    fn inverted_ranking_scores_zero() {
        let items = vec![(0.9, false), (0.8, false), (0.3, true), (0.1, true)];
        assert_eq!(roc_auc(&items), 0.0);
        assert!(croc_auc(&items) < 0.2);
        assert_eq!(false_positives(&items), 2);
    }

    #[test]
    fn random_ties_score_half() {
        let items = vec![(0.5, true), (0.5, false), (0.5, true), (0.5, false)];
        assert!((roc_auc(&items) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn croc_penalizes_early_false_positives_more_than_roc() {
        // One FP at the very top vs one FP at the very bottom.
        let early = vec![
            (0.99, false),
            (0.9, true),
            (0.8, true),
            (0.1, false),
            (0.05, false),
        ];
        let late = vec![
            (0.9, true),
            (0.8, true),
            (0.5, false),
            (0.2, false),
            (0.1, false),
        ];
        let roc_gap = roc_auc(&late) - roc_auc(&early);
        let croc_gap = croc_auc(&late) - croc_auc(&early);
        assert!(
            croc_gap > roc_gap,
            "CROC gap {croc_gap} vs ROC gap {roc_gap}"
        );
    }

    #[test]
    fn fp_counts_until_last_positive() {
        let items = vec![
            (0.9, true),
            (0.7, false),
            (0.6, true),
            (0.5, false),
            (0.4, true),
            (0.1, false),
        ];
        assert_eq!(false_positives(&items), 2);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(roc_auc(&[]), 1.0);
        assert_eq!(roc_auc(&[(1.0, true)]), 1.0);
        assert_eq!(false_positives(&[(1.0, false)]), 0);
    }

    #[test]
    fn croc_matches_roc_on_perfect_and_worst() {
        let perfect = vec![(1.0, true), (0.0, false)];
        assert!((croc_auc(&perfect) - 1.0).abs() < 1e-9);
        let worst = vec![(1.0, false), (0.0, true)];
        assert!(croc_auc(&worst) < 1e-9);
    }
}
