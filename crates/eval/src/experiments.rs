//! Drivers regenerating every table and figure of the paper's evaluation.
//!
//! Each `run_*` function returns a structured result and can render itself
//! as text; the `esh-eval` binaries and the `esh-bench` criterion harness
//! call these. Scales control corpus size: `Smoke` for CI, `Default` for
//! a laptop run, `Paper` for the full ~1500-procedure corpus.

use esh_baselines::{match_libraries, tracy_similarity};
use esh_core::{EngineConfig, QueryScores, ScoringMode, SimilarityEngine, TargetId};
use esh_corpus::{cve_aliases, cve_packages, Corpus, CorpusConfig, PatchTag};
use esh_strands::strand_stats;
use serde::{Deserialize, Serialize};

use crate::render::{f3, heatmap, TextTable};
use crate::roc::{croc_auc, false_positives, roc_auc};

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny: two toolchains, few distractors (CI).
    Smoke,
    /// Medium: the full toolchain matrix, reduced distractor count.
    Default,
    /// The paper-scale corpus (~1500 procedures).
    Paper,
}

impl Scale {
    /// The corpus configuration for this scale.
    pub fn corpus_config(self) -> CorpusConfig {
        match self {
            Scale::Smoke => CorpusConfig::small(),
            Scale::Default => CorpusConfig::default(),
            Scale::Paper => CorpusConfig::paper_scale(),
        }
    }

    /// Parses `smoke`/`default`/`paper`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "smoke" => Some(Scale::Smoke),
            "default" => Some(Scale::Default),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }
}

/// Builds an engine over the whole corpus.
pub fn build_engine(corpus: &Corpus, config: EngineConfig) -> SimilarityEngine {
    let mut engine = SimilarityEngine::new(config);
    for p in &corpus.procs {
        engine.add_target(p.display(), &p.proc_);
    }
    engine
}

/// Like [`build_engine`], but reuses a snapshot at `snapshot_path` when one
/// exists and was built under the same configuration fingerprint; otherwise
/// builds from the corpus and writes the snapshot (with the warmed VCP
/// cache) for the next run. Experiments repeating the same corpus — ablation
/// sweeps, ROC reruns, bench iterations — skip decomposition and lifting
/// entirely on every run after the first.
pub fn load_or_build_engine(
    corpus: &Corpus,
    config: EngineConfig,
    snapshot_path: &std::path::Path,
) -> SimilarityEngine {
    if snapshot_path.exists() {
        match SimilarityEngine::load_compatible(snapshot_path, &config) {
            Ok(engine) => return engine,
            // Stale version, other thresholds, corruption: rebuild below.
            Err(e) => eprintln!("snapshot {}: {e}; rebuilding", snapshot_path.display()),
        }
    }
    let engine = build_engine(corpus, config);
    if let Err(e) = engine.save_with_cache(snapshot_path) {
        eprintln!("snapshot {}: {e}; continuing in-memory", snapshot_path.display());
    }
    engine
}

/// Labels a query's scores against ground truth, excluding the query's own
/// corpus entry.
fn labelled(
    corpus: &Corpus,
    scores: &QueryScores,
    query_idx: usize,
    mode: ScoringMode,
) -> Vec<(f64, bool)> {
    let qf = &corpus.procs[query_idx].func;
    scores
        .scores
        .iter()
        .filter(|s| s.target != TargetId(query_idx))
        .map(|s| (s.score(mode), &corpus.procs[s.target.0].func == qf))
        .collect()
}

/// Metrics of one method on one experiment.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MethodMetrics {
    /// Human-examiner false positives.
    pub fp: usize,
    /// ROC AUC.
    pub roc: f64,
    /// CROC AUC.
    pub croc: f64,
}

fn metrics(items: &[(f64, bool)]) -> MethodMetrics {
    MethodMetrics {
        fp: false_positives(items),
        roc: roc_auc(items),
        croc: croc_auc(items),
    }
}

// ---------------------------------------------------------------- Table 1

/// One row of Table 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Row {
    /// The alias used in the paper ("Heartbleed", ...).
    pub alias: String,
    /// CVE id.
    pub cve: String,
    /// Basic blocks of the query.
    pub basic_blocks: usize,
    /// Strand count of the query.
    pub strands: usize,
    /// S-VCP ablation.
    pub s_vcp: MethodMetrics,
    /// S-LOG ablation.
    pub s_log: MethodMetrics,
    /// Full Esh.
    pub esh: MethodMetrics,
}

/// Table 1: the eight vulnerability searches under each scoring mode.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1 {
    /// One row per CVE experiment.
    pub rows: Vec<Table1Row>,
}

impl Table1 {
    /// Renders in the paper's layout.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&[
            "#",
            "Alias",
            "CVE",
            "#BB",
            "#Strands",
            "S-VCP FP",
            "S-VCP ROC",
            "S-VCP CROC",
            "S-LOG FP",
            "S-LOG ROC",
            "S-LOG CROC",
            "Esh FP",
            "Esh ROC",
            "Esh CROC",
        ]);
        for (i, r) in self.rows.iter().enumerate() {
            t.row(vec![
                (i + 1).to_string(),
                r.alias.clone(),
                r.cve.clone(),
                r.basic_blocks.to_string(),
                r.strands.to_string(),
                r.s_vcp.fp.to_string(),
                f3(r.s_vcp.roc),
                f3(r.s_vcp.croc),
                r.s_log.fp.to_string(),
                f3(r.s_log.roc),
                f3(r.s_log.croc),
                r.esh.fp.to_string(),
                f3(r.esh.roc),
                f3(r.esh.croc),
            ]);
        }
        t.render()
    }
}

/// The query toolchain alternates per experiment so no vendor is favoured
/// (§5.3 "alternating the query used").
pub fn query_toolchain_rotation() -> Vec<&'static str> {
    vec![
        "clang 3.5",
        "gcc 4.9",
        "icc 15.0",
        "gcc 4.8",
        "clang 3.4",
        "icc 14.0",
        "gcc 4.6",
        "clang 3.5",
    ]
}

/// Runs the Table 1 experiment against a prebuilt engine.
pub fn run_table1(corpus: &Corpus, engine: &SimilarityEngine) -> Table1 {
    let rotation = query_toolchain_rotation();
    let mut rows = Vec::new();
    for (i, (alias, cve)) in cve_aliases().into_iter().enumerate() {
        let query_idx = corpus
            .query_for(cve, rotation[i % rotation.len()])
            .or_else(|| corpus.query_for(cve, ""))
            .expect("corpus contains the CVE");
        let qp = &corpus.procs[query_idx].proc_;
        let stats = strand_stats(qp);
        let scores = engine.query(qp);
        let m = |mode| metrics(&labelled(corpus, &scores, query_idx, mode));
        rows.push(Table1Row {
            alias: alias.to_string(),
            cve: cve.to_string(),
            basic_blocks: stats.basic_blocks,
            strands: stats.strands,
            s_vcp: m(ScoringMode::SVcp),
            s_log: m(ScoringMode::SLog),
            esh: m(ScoringMode::Esh),
        });
    }
    Table1 { rows }
}

// ---------------------------------------------------------------- Table 2

/// One row of Table 2: an aspect combination.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Row {
    /// Compiler-version aspect enabled.
    pub versions: bool,
    /// Cross-vendor aspect enabled.
    pub cross: bool,
    /// Patch aspect enabled.
    pub patches: bool,
    /// TRACY (Ratio-70) ROC AUC.
    pub tracy: f64,
    /// Esh ROC AUC.
    pub esh: f64,
}

/// Table 2: TRACY vs Esh across problem aspects.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2 {
    /// The seven aspect combinations.
    pub rows: Vec<Table2Row>,
}

impl Table2 {
    /// Renders in the paper's layout.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&["Versions", "Cross", "Patches", "TRACY (Ratio-70)", "Esh"]);
        let check = |b: bool| if b { "x".to_string() } else { String::new() };
        for r in &self.rows {
            t.row(vec![
                check(r.versions),
                check(r.cross),
                check(r.patches),
                f3(r.tracy),
                f3(r.esh),
            ]);
        }
        t.render()
    }
}

/// Runs Table 2 on the Heartbleed query (the paper focuses on experiment
/// #1 for this comparison).
pub fn run_table2(corpus: &Corpus, engine_config: EngineConfig) -> Table2 {
    let cve = "CVE-2014-0160";
    let query_idx = corpus
        .query_for(cve, "gcc 4.9")
        .or_else(|| corpus.query_for(cve, ""))
        .expect("heartbleed in corpus");
    let query = &corpus.procs[query_idx];
    let combos = [
        (true, false, false),
        (false, true, false),
        (false, false, true),
        (true, true, false),
        (true, false, true),
        (false, true, true),
        (true, true, true),
    ];
    let query_vendor = query.toolchain.split(' ').next().unwrap_or("").to_string();
    let mut rows = Vec::new();
    for (versions, cross, patches) in combos {
        // Target set: all non-CVE-family procedures (distractors) plus the
        // true-positive variants selected by the aspect combination.
        let mut targets: Vec<usize> = Vec::new();
        for (i, p) in corpus.procs.iter().enumerate() {
            if i == query_idx {
                continue;
            }
            if p.func != query.func {
                targets.push(i);
                continue;
            }
            let same_vendor = p.toolchain.starts_with(&query_vendor);
            let same_toolchain = p.toolchain == query.toolchain;
            let is_patched = p.patch != PatchTag::Original;
            let aspect_ok = match (versions, cross, patches) {
                (true, false, false) => same_vendor && !same_toolchain && !is_patched,
                (false, true, false) => !same_vendor && !is_patched,
                (false, false, true) => same_toolchain && is_patched,
                (true, true, false) => !same_toolchain && !is_patched,
                (true, false, true) => same_vendor && (!same_toolchain || is_patched),
                (false, true, true) => !same_vendor,
                (true, true, true) => true,
                _ => unreachable!(),
            };
            if aspect_ok && (!same_toolchain || is_patched) {
                targets.push(i);
            }
        }
        let mut engine = SimilarityEngine::new(engine_config.clone());
        for &i in &targets {
            engine.add_target(corpus.procs[i].display(), &corpus.procs[i].proc_);
        }
        let scores = engine.query(&query.proc_);
        let esh_items: Vec<(f64, bool)> = scores
            .scores
            .iter()
            .enumerate()
            .map(|(k, s)| (s.ges, corpus.procs[targets[k]].func == query.func))
            .collect();
        let tracy_items: Vec<(f64, bool)> = targets
            .iter()
            .map(|&i| {
                (
                    tracy_similarity(&query.proc_, &corpus.procs[i].proc_),
                    corpus.procs[i].func == query.func,
                )
            })
            .collect();
        rows.push(Table2Row {
            versions,
            cross,
            patches,
            tracy: roc_auc(&tracy_items),
            esh: roc_auc(&esh_items),
        });
    }
    Table2 { rows }
}

// ---------------------------------------------------------------- Table 3

/// One row of Table 3.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Row {
    /// CVE alias.
    pub alias: String,
    /// Whether BinDiff paired the vulnerable procedure correctly.
    pub matched: bool,
    /// BinDiff similarity when matched.
    pub similarity: Option<f64>,
    /// BinDiff confidence when matched.
    pub confidence: Option<f64>,
}

/// Table 3: BinDiff on cross-vendor, patched whole libraries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3 {
    /// One row per CVE.
    pub rows: Vec<Table3Row>,
}

impl Table3 {
    /// Renders in the paper's layout.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&["Alias", "Matched?", "Similarity", "Confidence"]);
        for r in &self.rows {
            t.row(vec![
                r.alias.clone(),
                if r.matched { "yes" } else { "no" }.into(),
                r.similarity.map(f3).unwrap_or_else(|| "-".into()),
                r.confidence.map(f3).unwrap_or_else(|| "-".into()),
            ]);
        }
        t.render()
    }
}

/// Runs Table 3: each CVE's library compiled with gcc 4.9 vs the patched
/// source compiled with icc 15.0 (whole-library matching, as BinDiff
/// requires). icc is the vendor pair that preserves the most structure,
/// giving BinDiff its best shot — the paper likewise reports that its two
/// successes were exactly the cases "where the number of blocks and
/// branches remained the same".
pub fn run_table3(distractor_count: usize) -> Table3 {
    use esh_asm::Program;
    use esh_cc::{Compiler, Vendor, VendorVersion};
    use esh_minic::gen;
    use esh_minic::patch::{apply_patch, PatchLevel};

    let gcc = Compiler::new(Vendor::Gcc, VendorVersion::new(4, 9));
    let other = Compiler::new(Vendor::Icc, VendorVersion::new(15, 0));
    let module = gen::generate_module(0x7ab1e3, "lib", distractor_count);
    let mut rows = Vec::new();
    for (alias, cve) in cve_aliases() {
        let (_, _, f) = cve_packages()
            .into_iter()
            .find(|(c, _, _)| *c == cve)
            .expect("cve exists");
        let mut lib_a = Program::new("a");
        lib_a.procs.push(gcc.compile_function(&f));
        for d in &module.functions {
            lib_a.procs.push(gcc.compile_function(d));
        }
        let mut lib_b = Program::new("b");
        let mut patched = apply_patch(&f, PatchLevel::Moderate, 5);
        patched.name = f.name.clone();
        lib_b.procs.push(other.compile_function(&patched));
        for d in &module.functions {
            lib_b.procs.push(other.compile_function(d));
        }
        let matches = match_libraries(&lib_a, &lib_b);
        let hit = matches.iter().find(|m| m.a == f.name);
        let matched = hit.map(|m| m.b == f.name).unwrap_or(false);
        rows.push(Table3Row {
            alias: alias.to_string(),
            matched,
            similarity: hit.filter(|m| m.b == f.name).map(|m| m.similarity),
            confidence: hit.filter(|m| m.b == f.name).map(|m| m.confidence),
        });
    }
    Table3 { rows }
}

// ---------------------------------------------------------------- Figure 5

/// One bar of Figure 5.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Bar {
    /// Target display name.
    pub name: String,
    /// Normalized GES.
    pub score: f64,
    /// Ground truth: same source as the query.
    pub is_tp: bool,
}

/// Figure 5: the Heartbleed search, one bar per target.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5 {
    /// Bars in rank order (best first).
    pub bars: Vec<Fig5Bar>,
    /// Lowest true-positive normalized GES.
    pub min_tp: f64,
    /// Highest false-positive normalized GES.
    pub max_fp: f64,
    /// ROC AUC of the ranking.
    pub roc: f64,
    /// CROC AUC of the ranking.
    pub croc: f64,
}

impl Fig5 {
    /// The TP/FP separation gap (positive = clean separation, as the
    /// paper's 0.419 vs 0.333).
    pub fn gap(&self) -> f64 {
        self.min_tp - self.max_fp
    }

    /// Renders bars as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Figure 5 — Heartbleed search: gap = {:.3} (min TP {:.3} vs max FP {:.3}), \
             ROC = {:.3}, CROC = {:.3}\n",
            self.gap(),
            self.min_tp,
            self.max_fp,
            self.roc,
            self.croc
        ));
        for b in self.bars.iter().take(30) {
            let bar = "#".repeat((b.score * 50.0).round() as usize);
            let tag = if b.is_tp { "TP" } else { "  " };
            out.push_str(&format!("{:5.3} {tag} |{bar:<50}| {}\n", b.score, b.name));
        }
        out
    }
}

/// Runs the Figure 5 experiment (query: Heartbleed compiled with CLang
/// 3.5, as in §6.1).
pub fn run_fig5(corpus: &Corpus, engine: &SimilarityEngine) -> Fig5 {
    let cve = "CVE-2014-0160";
    let query_idx = corpus
        .query_for(cve, "clang 3.5")
        .or_else(|| corpus.query_for(cve, ""))
        .expect("heartbleed in corpus");
    let query = &corpus.procs[query_idx];
    let scores = engine.query(&query.proc_);
    let normalized = scores.normalized();
    let mut bars: Vec<Fig5Bar> = scores
        .scores
        .iter()
        .zip(normalized.iter())
        .filter(|(s, _)| s.target != TargetId(query_idx))
        .map(|(s, (_, v))| Fig5Bar {
            name: corpus.procs[s.target.0].display(),
            score: *v,
            is_tp: corpus.procs[s.target.0].func == query.func,
        })
        .collect();
    bars.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let min_tp = bars
        .iter()
        .filter(|b| b.is_tp)
        .map(|b| b.score)
        .fold(f64::INFINITY, f64::min);
    let max_fp = bars
        .iter()
        .filter(|b| !b.is_tp)
        .map(|b| b.score)
        .fold(f64::NEG_INFINITY, f64::max);
    let items: Vec<(f64, bool)> = bars.iter().map(|b| (b.score, b.is_tp)).collect();
    Fig5 {
        min_tp,
        max_fp,
        roc: roc_auc(&items),
        croc: croc_auc(&items),
        bars,
    }
}

// ---------------------------------------------------------------- Figure 6

/// Figure 6: the all-vs-all heat map.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6 {
    /// Query display names (same order on both axes).
    pub labels: Vec<String>,
    /// Row-normalized GES matrix.
    pub matrix: Vec<Vec<f64>>,
    /// Mean per-row ROC AUC.
    pub avg_roc: f64,
    /// Mean per-row CROC AUC.
    pub avg_croc: f64,
    /// Ground-truth source function per row.
    pub funcs: Vec<String>,
}

impl Fig6 {
    /// Renders the heat map.
    pub fn render(&self) -> String {
        format!(
            "Figure 6 — all-vs-all: avg ROC = {:.3}, avg CROC = {:.3}\n{}",
            self.avg_roc,
            self.avg_croc,
            heatmap(&self.matrix, &self.labels)
        )
    }

    /// Symmetry defect: mean `|m[i][j] - m[j][i]|` (the paper notes GES
    /// is asymmetric).
    pub fn asymmetry(&self) -> f64 {
        let n = self.matrix.len();
        if n == 0 {
            return 0.0;
        }
        let mut sum = 0.0;
        let mut count = 0usize;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    sum += (self.matrix[i][j] - self.matrix[j][i]).abs();
                    count += 1;
                }
            }
        }
        sum / count.max(1) as f64
    }
}

/// Runs the Figure 6 experiment over `indices` (queries = targets).
pub fn run_fig6(corpus: &Corpus, indices: &[usize], engine_config: EngineConfig) -> Fig6 {
    let mut engine = SimilarityEngine::new(engine_config);
    for &i in indices {
        engine.add_target(corpus.procs[i].display(), &corpus.procs[i].proc_);
    }
    let mut matrix = Vec::new();
    let mut rocs = Vec::new();
    let mut crocs = Vec::new();
    for (row_k, &qi) in indices.iter().enumerate() {
        let scores = engine.query(&corpus.procs[qi].proc_);
        let normalized = scores.normalized();
        let row: Vec<f64> = normalized.iter().map(|(_, v)| *v).collect();
        let items: Vec<(f64, bool)> = scores
            .scores
            .iter()
            .enumerate()
            .filter(|(k, _)| *k != row_k)
            .map(|(k, s)| {
                (
                    s.ges,
                    corpus.procs[indices[k]].func == corpus.procs[qi].func,
                )
            })
            .collect();
        if items.iter().any(|(_, p)| *p) {
            rocs.push(roc_auc(&items));
            crocs.push(croc_auc(&items));
        }
        matrix.push(row);
    }
    Fig6 {
        labels: indices.iter().map(|&i| corpus.procs[i].display()).collect(),
        funcs: indices
            .iter()
            .map(|&i| corpus.procs[i].func.clone())
            .collect(),
        matrix,
        avg_roc: rocs.iter().sum::<f64>() / rocs.len().max(1) as f64,
        avg_croc: crocs.iter().sum::<f64>() / crocs.len().max(1) as f64,
    }
}

/// Picks the Figure 6 query set: `count` procedures sampled round-robin
/// over source functions, several compilations each (the paper uses 40
/// queries including `ftp_syst` and `ff_rv34_decode_init_thread_copy`).
pub fn fig6_indices(corpus: &Corpus, count: usize) -> Vec<usize> {
    let mut funcs: Vec<&str> = Vec::new();
    // wget and ffmpeg first, as in the paper.
    for want in ["ftp_syst", "ff_rv34_decode_init_thread_copy"] {
        if corpus.procs.iter().any(|p| p.func == want) {
            funcs.push(want);
        }
    }
    for p in &corpus.procs {
        if !funcs.contains(&p.func.as_str()) && p.cve.is_none() {
            funcs.push(&p.func);
        }
    }
    let mut out = Vec::new();
    'outer: for f in funcs {
        let variants: Vec<usize> = corpus
            .procs
            .iter()
            .enumerate()
            .filter(|(_, p)| p.func == f && p.patch == PatchTag::Original)
            .map(|(i, _)| i)
            .take(3)
            .collect();
        if variants.len() < 2 {
            continue;
        }
        for v in variants {
            out.push(v);
            if out.len() >= count {
                break 'outer;
            }
        }
    }
    out
}

// ------------------------------------------------------------- Limitations

/// §6.6's limitation study: wrappers and template procedures as queries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Limitations {
    /// ROC when querying the `exit_cleanup` wrapper.
    pub wrapper_roc: Option<f64>,
    /// Number of strands the wrapper query retains after filtering
    /// (§6.6: trivial procedures yield very few usable strands).
    pub wrapper_strands: usize,
    /// ROC when querying one template-family member, counting only the
    /// *same* member as positive (clones count as negatives).
    pub template_strict_roc: Option<f64>,
    /// ROC counting every family member as positive.
    pub template_family_roc: Option<f64>,
}

impl Limitations {
    /// Renders the study.
    pub fn render(&self) -> String {
        let s = |o: Option<f64>| o.map(f3).unwrap_or_else(|| "n/a".into());
        format!(
            "Limitations (§6.6)\n\
             wrapper query strands after filtering: {}\n\
             wrapper ROC:                           {}\n\
             template ROC (strict positives):       {}\n\
             template ROC (family as positives):    {}\n",
            self.wrapper_strands,
            s(self.wrapper_roc),
            s(self.template_strict_roc),
            s(self.template_family_roc),
        )
    }
}

/// Runs the limitation study against a prebuilt engine whose corpus
/// includes wrappers and a template family.
pub fn run_limitations(corpus: &Corpus, engine: &SimilarityEngine) -> Limitations {
    let find = |f: &str| corpus.procs.iter().position(|p| p.func == f);
    let mut out = Limitations {
        wrapper_roc: None,
        wrapper_strands: 0,
        template_strict_roc: None,
        template_family_roc: None,
    };
    if let Some(qi) = find("exit_cleanup") {
        let scores = engine.query(&corpus.procs[qi].proc_);
        out.wrapper_strands = scores.query_strands;
        let items = labelled(corpus, &scores, qi, ScoringMode::Esh);
        if items.iter().any(|(_, p)| *p) {
            out.wrapper_roc = Some(roc_auc(&items));
        }
    }
    if let Some(qi) = find("strcmp_key_0") {
        let scores = engine.query(&corpus.procs[qi].proc_);
        let strict = labelled(corpus, &scores, qi, ScoringMode::Esh);
        if strict.iter().any(|(_, p)| *p) {
            out.template_strict_roc = Some(roc_auc(&strict));
        }
        let family: Vec<(f64, bool)> = scores
            .scores
            .iter()
            .filter(|s| s.target != TargetId(qi))
            .map(|s| {
                (
                    s.ges,
                    corpus.procs[s.target.0].func.starts_with("strcmp_key"),
                )
            })
            .collect();
        if family.iter().any(|(_, p)| *p) {
            out.template_family_roc = Some(roc_auc(&family));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_corpus() -> Corpus {
        Corpus::build(&Scale::Smoke.corpus_config())
    }

    fn quick_engine_config() -> EngineConfig {
        EngineConfig {
            threads: 2,
            ..EngineConfig::default()
        }
    }

    #[test]
    fn load_or_build_reuses_matching_snapshot() {
        let c = smoke_corpus();
        let path = std::env::temp_dir().join(format!(
            "esh-eval-load-or-build-{}.esh",
            std::process::id()
        ));
        std::fs::remove_file(&path).ok();
        let built = load_or_build_engine(&c, quick_engine_config(), &path);
        assert!(path.exists(), "first call must write the snapshot");
        let reused = load_or_build_engine(&c, quick_engine_config(), &path);
        assert_eq!(reused.class_count(), built.class_count());
        assert_eq!(reused.target_count(), built.target_count());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn table3_smoke() {
        let t3 = run_table3(4);
        assert_eq!(t3.rows.len(), 8);
        let rendered = t3.render();
        assert!(rendered.contains("Heartbleed"));
        assert!(rendered.contains("Matched?"));
    }

    #[test]
    fn fig6_indices_prefer_multi_compiled_functions() {
        let c = smoke_corpus();
        let idx = fig6_indices(&c, 6);
        assert!(idx.len() >= 4);
        // Each selected function appears at least twice.
        for &i in &idx {
            let f = &c.procs[i].func;
            assert!(idx.iter().filter(|&&j| c.procs[j].func == *f).count() >= 2);
        }
    }

    #[test]
    #[ignore = "slow: full smoke-scale Table 1 (run explicitly or via the table1 binary)"]
    fn table1_smoke_end_to_end() {
        let c = smoke_corpus();
        let engine = build_engine(&c, quick_engine_config());
        let t1 = run_table1(&c, &engine);
        assert_eq!(t1.rows.len(), 8);
        // Esh should dominate S-VCP on average (the paper's headline).
        let esh_avg: f64 = t1.rows.iter().map(|r| r.esh.croc).sum::<f64>() / 8.0;
        let svcp_avg: f64 = t1.rows.iter().map(|r| r.s_vcp.croc).sum::<f64>() / 8.0;
        assert!(
            esh_avg >= svcp_avg - 0.05,
            "esh {esh_avg} vs s-vcp {svcp_avg}"
        );
    }
}
