//! Regenerates Table 2: TRACY (Ratio-70) vs Esh across the problem
//! aspects {versions, cross-vendor, patches}. Usage: `table2 [scale]`.

use esh_core::EngineConfig;
use esh_corpus::Corpus;
use esh_eval::experiments::{run_table2, Scale};

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Default);
    eprintln!("building corpus ({scale:?})...");
    let corpus = Corpus::build(&scale.corpus_config());
    eprintln!(
        "corpus: {} procedures; running 7 aspect rows...",
        corpus.procs.len()
    );
    let t2 = run_table2(&corpus, EngineConfig::default());
    println!("{}", t2.render());
    if let Ok(json) = serde_json::to_string_pretty(&t2) {
        let _ = std::fs::create_dir_all("target/experiments");
        let _ = std::fs::write("target/experiments/table2.json", json);
    }
}
