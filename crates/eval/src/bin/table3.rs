//! Regenerates Table 3: BinDiff-style whole-library matching per CVE.
//! Usage: `table3 [distractor_count]`.

use esh_eval::experiments::run_table3;

fn main() {
    let n = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(24);
    let t3 = run_table3(n);
    println!("{}", t3.render());
    if let Ok(json) = serde_json::to_string_pretty(&t3) {
        let _ = std::fs::create_dir_all("target/experiments");
        let _ = std::fs::write("target/experiments/table3.json", json);
    }
}
