//! Regenerates Table 1: FP / ROC / CROC for S-VCP, S-LOG and Esh on the
//! eight CVE searches. Usage: `table1 [smoke|default|paper]`.

use esh_core::EngineConfig;
use esh_corpus::Corpus;
use esh_eval::experiments::{build_engine, run_table1, Scale};

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Default);
    eprintln!("building corpus ({scale:?})...");
    let corpus = Corpus::build(&scale.corpus_config());
    eprintln!(
        "corpus: {} procedures; building engine...",
        corpus.procs.len()
    );
    let engine = build_engine(&corpus, EngineConfig::default());
    eprintln!(
        "engine: {} strand classes; running 8 queries...",
        engine.class_count()
    );
    let t1 = run_table1(&corpus, &engine);
    println!("{}", t1.render());
    if std::env::args().any(|a| a == "--h0-report") {
        println!("most common strand classes (H0 mass, cf. §6.2):");
        for (count, vars, name) in engine.common_classes(10) {
            println!("  {count:>6}x  {vars:>3} vars  {name}");
        }
    }
    if let Ok(json) = serde_json::to_string_pretty(&t1) {
        let _ = std::fs::create_dir_all("target/experiments");
        let _ = std::fs::write("target/experiments/table1.json", json);
    }
}
