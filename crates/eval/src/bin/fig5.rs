//! Regenerates Figure 5: the Heartbleed search bar chart. Usage:
//! `fig5 [scale]`.

use esh_core::EngineConfig;
use esh_corpus::Corpus;
use esh_eval::experiments::{build_engine, run_fig5, Scale};

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Default);
    eprintln!("building corpus ({scale:?})...");
    let corpus = Corpus::build(&scale.corpus_config());
    let engine = build_engine(&corpus, EngineConfig::default());
    let f5 = run_fig5(&corpus, &engine);
    println!("{}", f5.render());
    if let Ok(json) = serde_json::to_string_pretty(&f5) {
        let _ = std::fs::create_dir_all("target/experiments");
        let _ = std::fs::write("target/experiments/fig5.json", json);
    }
}
