//! Regenerates Figure 6: the all-vs-all heat map. Usage:
//! `fig6 [scale] [query_count]`.

use esh_core::EngineConfig;
use esh_corpus::Corpus;
use esh_eval::experiments::{fig6_indices, run_fig6, Scale};

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Default);
    let count = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);
    eprintln!("building corpus ({scale:?})...");
    let corpus = Corpus::build(&scale.corpus_config());
    let indices = fig6_indices(&corpus, count);
    eprintln!("{} queries selected; running all-vs-all...", indices.len());
    let f6 = run_fig6(&corpus, &indices, EngineConfig::default());
    println!("{}", f6.render());
    println!(
        "asymmetry (mean |GES(i,j)-GES(j,i)|): {:.4}",
        f6.asymmetry()
    );
    if let Ok(json) = serde_json::to_string_pretty(&f6) {
        let _ = std::fs::create_dir_all("target/experiments");
        let _ = std::fs::write("target/experiments/fig6.json", json);
    }
}
