//! Clustering study — the paper's §8 future work: cluster the Figure 6
//! all-vs-all GES matrix and score it against ground truth.
//! Usage: `clustering [scale] [query_count]`.

use esh_core::EngineConfig;
use esh_corpus::Corpus;
use esh_eval::cluster::{cluster_matrix, pairwise_f1};
use esh_eval::experiments::{fig6_indices, run_fig6, Scale};

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Default);
    let count = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(24);
    eprintln!("building corpus ({scale:?})...");
    let corpus = Corpus::build(&scale.corpus_config());
    let indices = fig6_indices(&corpus, count);
    let f6 = run_fig6(&corpus, &indices, EngineConfig::default());
    // Ground truth: same source function.
    let mut ids = std::collections::HashMap::new();
    let truth: Vec<usize> = f6
        .funcs
        .iter()
        .map(|f| {
            let next = ids.len();
            *ids.entry(f.clone()).or_insert(next)
        })
        .collect();
    println!(
        "clustering {} procedures ({} true groups):",
        indices.len(),
        ids.len()
    );
    for q in [0.5, 0.7, 0.8, 0.9, 0.95] {
        let c = cluster_matrix(&f6.matrix, q);
        let (p, r, f1) = pairwise_f1(&c, &truth);
        println!(
            "  quantile {q:.2}: {} clusters, precision {p:.3}, recall {r:.3}, F1 {f1:.3}",
            c.clusters
        );
    }
}
