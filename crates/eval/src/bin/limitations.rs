//! Regenerates the §6.6 limitation study (wrappers and template
//! procedures as queries). Usage: `limitations [scale]`.

use esh_core::EngineConfig;
use esh_corpus::Corpus;
use esh_eval::experiments::{build_engine, run_limitations, Scale};

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Default);
    eprintln!("building corpus ({scale:?})...");
    let corpus = Corpus::build(&scale.corpus_config());
    let engine = build_engine(&corpus, EngineConfig::default());
    let lim = run_limitations(&corpus, &engine);
    println!("{}", lim.render());
    if let Ok(json) = serde_json::to_string_pretty(&lim) {
        let _ = std::fs::create_dir_all("target/experiments");
        let _ = std::fs::write("target/experiments/limitations.json", json);
    }
}
