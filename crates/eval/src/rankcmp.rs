//! Ranking-fidelity metrics: how well a pruned ranking reproduces the
//! exhaustive one.
//!
//! ROC/CROC ([`crate::roc_auc`], [`crate::croc_auc`]) measure a ranking
//! against *ground truth*; a prefilter can hold those steady while still
//! reshuffling the order users page through. The metrics here compare a
//! ranking against the **exhaustive reference ranking** directly:
//!
//! * [`topk_agreement`] — what fraction of the reference top-K the pruned
//!   ranking also serves in its top-K (set overlap; order-insensitive),
//! * [`kendall_tau`] — pairwise order agreement over the shared prefix
//!   (order-sensitive; 1.0 = identical order, −1.0 = reversed),
//! * [`RankComparison`] — both of the above plus ROC/CROC of each ranking
//!   against ground-truth labels, bundled per query.
//!
//! See `docs/RANK_QUALITY.md` for the methodology and
//! `BENCH_rankquality.json` for the bench that consumes these.

/// Fraction of `reference`'s top-K items that also appear in `pruned`'s
/// top-K (order-insensitive). 1.0 when the served windows hold the same
/// items; `k` is clamped to the shorter ranking. Returns 1.0 for an empty
/// window (nothing to disagree about).
pub fn topk_agreement<T: PartialEq>(reference: &[T], pruned: &[T], k: usize) -> f64 {
    let k = k.min(reference.len()).min(pruned.len());
    if k == 0 {
        return 1.0;
    }
    let hits = reference[..k]
        .iter()
        .filter(|r| pruned[..k].contains(r))
        .count();
    hits as f64 / k as f64
}

/// Kendall rank-correlation (tau-a) between two rankings of the same item
/// set, computed over the items both rankings contain.
///
/// Every unordered item pair is concordant when the two rankings order it
/// the same way and discordant otherwise; tau is
/// `(concordant − discordant) / total`. Items present in only one ranking
/// are ignored (the top-K windows being compared may differ — that
/// disagreement is [`topk_agreement`]'s job). Returns 1.0 when fewer than
/// two shared items exist.
pub fn kendall_tau<T: PartialEq>(reference: &[T], pruned: &[T]) -> f64 {
    // Positions in `pruned` of the reference items both rankings share,
    // in reference order.
    let positions: Vec<usize> = reference
        .iter()
        .filter_map(|r| pruned.iter().position(|p| p == r))
        .collect();
    let n = positions.len();
    if n < 2 {
        return 1.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            if positions[i] < positions[j] {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    (concordant - discordant) as f64 / (concordant + discordant) as f64
}

/// Per-query rank-fidelity report: the pruned ranking measured against
/// the exhaustive reference and both measured against ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankComparison {
    /// The two rankings serve the same first item.
    pub top1_identical: bool,
    /// [`topk_agreement`] over the configured window.
    pub topk_agreement: f64,
    /// [`kendall_tau`] over the shared window items.
    pub kendall_tau: f64,
    /// ROC AUC of the exhaustive ranking against ground truth.
    pub roc_exhaustive: f64,
    /// ROC AUC of the pruned ranking against ground truth.
    pub roc_pruned: f64,
    /// CROC AUC of the exhaustive ranking against ground truth.
    pub croc_exhaustive: f64,
    /// CROC AUC of the pruned ranking against ground truth.
    pub croc_pruned: f64,
}

/// Compares one query's pruned ranking against its exhaustive reference.
///
/// Each ranking is `(name, score)` in served (descending) order over the
/// same target set; `positive` labels a target name as ground-truth
/// relevant (same source function). `k` is the agreement window.
pub fn compare_rankings(
    reference: &[(String, f64)],
    pruned: &[(String, f64)],
    positive: impl Fn(&str) -> bool,
    k: usize,
) -> RankComparison {
    let ref_names: Vec<&String> = reference.iter().map(|(n, _)| n).collect();
    let pruned_names: Vec<&String> = pruned.iter().map(|(n, _)| n).collect();
    let labelled = |ranking: &[(String, f64)]| -> Vec<(f64, bool)> {
        ranking
            .iter()
            .map(|(name, score)| (*score, positive(name)))
            .collect()
    };
    let ref_items = labelled(reference);
    let pruned_items = labelled(pruned);
    RankComparison {
        top1_identical: ref_names.first() == pruned_names.first(),
        topk_agreement: topk_agreement(&ref_names, &pruned_names, k),
        kendall_tau: kendall_tau(
            &ref_names[..k.min(ref_names.len())],
            &pruned_names[..k.min(pruned_names.len())],
        ),
        roc_exhaustive: crate::roc_auc(&ref_items),
        roc_pruned: crate::roc_auc(&pruned_items),
        croc_exhaustive: crate::croc_auc(&ref_items),
        croc_pruned: crate::croc_auc(&pruned_items),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_rankings_are_perfect() {
        let r = ["a", "b", "c", "d"];
        assert_eq!(topk_agreement(&r, &r, 3), 1.0);
        assert_eq!(kendall_tau(&r, &r), 1.0);
    }

    #[test]
    fn reversed_ranking_has_tau_minus_one_but_full_set_agreement() {
        let r = ["a", "b", "c", "d"];
        let rev = ["d", "c", "b", "a"];
        assert_eq!(topk_agreement(&r, &rev, 4), 1.0, "same items");
        assert_eq!(kendall_tau(&r, &rev), -1.0, "opposite order");
    }

    #[test]
    fn disjoint_windows_have_zero_agreement() {
        let r = ["a", "b"];
        let p = ["c", "d"];
        assert_eq!(topk_agreement(&r, &p, 2), 0.0);
    }

    #[test]
    fn partial_overlap_counts_shared_items() {
        let r = ["a", "b", "c", "d"];
        let p = ["a", "c", "x", "y"];
        // Window of 4: reference {a,b,c,d} vs pruned {a,c,x,y} share a, c.
        assert_eq!(topk_agreement(&r, &p, 4), 0.5);
        // One swapped adjacent pair out of three: tau = (2 - 1) / 3.
        let swapped = ["a", "c", "b", "d"];
        let tau = kendall_tau(&r, &swapped);
        assert!((tau - 4.0 / 6.0).abs() < 1e-9, "tau {tau}");
    }

    #[test]
    fn k_clamps_to_ranking_length() {
        let r = ["a", "b"];
        let p = ["b", "a"];
        assert_eq!(topk_agreement(&r, &p, 10), 1.0);
        assert_eq!(topk_agreement::<&str>(&[], &[], 10), 1.0);
    }

    #[test]
    fn items_missing_from_one_ranking_are_ignored_by_tau() {
        let r = ["a", "b", "c"];
        let p = ["c", "a"]; // b missing; shared items a, c are inverted
        assert_eq!(kendall_tau(&r, &p), -1.0);
        assert_eq!(kendall_tau(&["a"], &["a"]), 1.0, "singleton is trivially ordered");
    }

    #[test]
    fn compare_rankings_bundles_all_metrics() {
        let reference = vec![
            ("tp".to_string(), 3.0),
            ("fp1".to_string(), 2.0),
            ("fp2".to_string(), 1.0),
        ];
        let pruned = vec![
            ("tp".to_string(), 3.0),
            ("fp2".to_string(), 0.5),
            ("fp1".to_string(), 0.4),
        ];
        let cmp = compare_rankings(&reference, &pruned, |n| n == "tp", 3);
        assert!(cmp.top1_identical);
        assert_eq!(cmp.topk_agreement, 1.0);
        assert!(cmp.kendall_tau < 1.0, "fp order flipped");
        assert_eq!(cmp.roc_exhaustive, 1.0);
        assert_eq!(cmp.roc_pruned, 1.0, "positive still ranks first");
    }
}
