//! Style fingerprints: each vendor/version leaves the distinguishing marks
//! in its output that the paper's §5.3 relies on (and that [30]'s
//! toolchain-provenance classifiers detect).

use esh_asm::{Inst, Operand, Procedure, Reg64, ShiftAmount};
use esh_cc::{Compiler, OptLevel, Vendor, VendorVersion};
use esh_minic::{demo, BinOp, Expr, Function, Stmt};

fn count<F: Fn(&Inst) -> bool>(p: &Procedure, f: F) -> usize {
    p.insts().filter(|i| f(i)).count()
}

fn mul5_function() -> Function {
    Function::new(
        "mul5",
        vec!["a".into()],
        vec![Stmt::Return(Some(Expr::bin(
            BinOp::Mul,
            Expr::var("a"),
            Expr::Const(5),
        )))],
    )
}

#[test]
fn gcc46_uses_inc_gcc49_does_not() {
    let f = Function::new(
        "bump",
        vec!["a".into()],
        vec![Stmt::Return(Some(Expr::add(
            Expr::var("a"),
            Expr::Const(1),
        )))],
    );
    let old = Compiler::new(Vendor::Gcc, VendorVersion::new(4, 6)).compile_function(&f);
    let new = Compiler::new(Vendor::Gcc, VendorVersion::new(4, 9)).compile_function(&f);
    assert!(count(&old, |i| matches!(i, Inst::Inc { .. })) > 0, "{old}");
    assert_eq!(count(&new, |i| matches!(i, Inst::Inc { .. })), 0, "{new}");
}

#[test]
fn mul_idiom_differs_between_icc_versions() {
    let f = mul5_function();
    let icc14 = Compiler::new(Vendor::Icc, VendorVersion::new(14, 0)).compile_function(&f);
    let icc15 = Compiler::new(Vendor::Icc, VendorVersion::new(15, 0)).compile_function(&f);
    // icc 14 selects imul; icc 15 strength-reduces to lea.
    assert!(
        count(&icc14, |i| matches!(i, Inst::ImulImm { .. })) > 0,
        "{icc14}"
    );
    assert_eq!(
        count(&icc15, |i| matches!(i, Inst::ImulImm { .. })),
        0,
        "{icc15}"
    );
    assert!(
        count(&icc15, |i| matches!(i, Inst::Lea { .. })) > 0,
        "{icc15}"
    );
}

#[test]
fn o0_keeps_frame_pointer_and_stack_homes() {
    let f = demo::saturating_sum();
    let p = Compiler::with_opt(Vendor::Clang, VendorVersion::new(3, 5), OptLevel::O0)
        .compile_function(&f);
    // Frame pointer: prologue pushes rbp and addresses locals off it.
    assert!(
        count(&p, |i| matches!(
            i,
            Inst::Push { src: Operand::Reg(r) } if r.base == Reg64::Rbp
        )) > 0
    );
    let rbp_mem = p
        .insts()
        .filter_map(|i| match i {
            Inst::Mov {
                dst: Operand::Mem(m),
                ..
            } => m.base,
            _ => None,
        })
        .filter(|b| *b == Reg64::Rbp)
        .count();
    assert!(rbp_mem > 0, "O0 locals live off rbp:\n{p}");
}

#[test]
fn label_prefixes_fingerprint_the_vendor() {
    let f = demo::ws_snmp_like();
    let gcc = Compiler::new(Vendor::Gcc, VendorVersion::new(4, 9)).compile_function(&f);
    let clang = Compiler::new(Vendor::Clang, VendorVersion::new(3, 5)).compile_function(&f);
    let icc = Compiler::new(Vendor::Icc, VendorVersion::new(15, 0)).compile_function(&f);
    assert!(gcc.blocks.iter().any(|b| b.label.starts_with(".L")));
    assert!(clang.blocks.iter().any(|b| b.label.starts_with(".LBB")));
    assert!(icc.blocks.iter().any(|b| b.label.starts_with("..B")));
}

#[test]
fn icc14_inserts_staging_moves() {
    let f = demo::clobberin_time_like();
    let icc14 = Compiler::new(Vendor::Icc, VendorVersion::new(14, 0)).compile_function(&f);
    let icc15 = Compiler::new(Vendor::Icc, VendorVersion::new(15, 0)).compile_function(&f);
    // Staging moves inflate the instruction count (cf. Figure 2(b)'s
    // `mov r12, rax; mov eax, r12d` pattern).
    assert!(
        icc14.inst_count() > icc15.inst_count(),
        "icc 14 should be move-noisier: {} vs {}",
        icc14.inst_count(),
        icc15.inst_count()
    );
}

#[test]
fn xor_zeroing_at_o2_mov_zero_at_o0() {
    let f = Function::new(
        "zero",
        vec!["a".into()],
        vec![
            Stmt::Let {
                name: "z".into(),
                init: Expr::Const(0),
            },
            Stmt::Return(Some(Expr::bin(BinOp::Xor, Expr::var("z"), Expr::var("a")))),
        ],
    );
    let o2 = Compiler::new(Vendor::Gcc, VendorVersion::new(4, 9)).compile_function(&f);
    let o0 = Compiler::with_opt(Vendor::Gcc, VendorVersion::new(4, 9), OptLevel::O0)
        .compile_function(&f);
    let xor_self = |p: &Procedure| {
        count(p, |i| {
            matches!(
                i,
                Inst::Xor { dst: Operand::Reg(a), src: Operand::Reg(b) } if a == b
            )
        })
    };
    assert!(xor_self(&o2) > 0, "{o2}");
    assert_eq!(xor_self(&o0), 0, "{o0}");
}

#[test]
fn shift_idioms_follow_mul_strength_reduction() {
    let f = Function::new(
        "by8",
        vec!["a".into()],
        vec![Stmt::Return(Some(Expr::bin(
            BinOp::Mul,
            Expr::var("a"),
            Expr::Const(8),
        )))],
    );
    let gcc = Compiler::new(Vendor::Gcc, VendorVersion::new(4, 9)).compile_function(&f);
    assert!(
        count(&gcc, |i| matches!(
            i,
            Inst::Shl {
                amount: ShiftAmount::Imm(3),
                ..
            }
        )) > 0,
        "×8 becomes shl 3 at -O2:\n{gcc}"
    );
}

#[test]
fn loop_rotation_differs_between_gcc_and_clang() {
    let f = demo::wget_like();
    let gcc = Compiler::new(Vendor::Gcc, VendorVersion::new(4, 9)).compile_function(&f);
    let clang = Compiler::new(Vendor::Clang, VendorVersion::new(3, 5)).compile_function(&f);
    // Rotated loops start with an unconditional jmp to the test block;
    // unrotated loops test at the top.
    let leading_jmp = |p: &Procedure| {
        p.blocks
            .iter()
            .flat_map(|b| b.insts.iter())
            .take_while(|i| !i.is_terminator())
            .count()
    };
    // Weak but structural: block counts must differ because of rotation.
    assert_ne!(
        gcc.blocks.len(),
        clang.blocks.len(),
        "gcc:\n{gcc}\nclang:\n{clang}"
    );
    let _ = leading_jmp; // structural assertion above suffices
}
