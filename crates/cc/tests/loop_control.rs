//! Differential tests for `break`/`continue` across every toolchain, plus
//! normalization interaction (a `continue` must re-evaluate hoisted loop
//! condition temporaries).

use esh_cc::{emu, Compiler, Toolchain};
use esh_minic::{
    interp, validate_function, BinOp, Expr, Function, MemWidth, Memory, StdHost, Stmt,
};

fn v(n: &str) -> Expr {
    Expr::var(n)
}

fn c(x: i64) -> Expr {
    Expr::Const(x)
}

/// Scans bytes, skipping zero bytes (continue) and stopping at 0xff
/// (break); returns the sum of accepted bytes.
fn scan_function() -> Function {
    Function::new(
        "scan",
        vec!["p".into(), "n".into()],
        vec![
            Stmt::Let {
                name: "acc".into(),
                init: c(0),
            },
            Stmt::Let {
                name: "i".into(),
                init: c(0),
            },
            Stmt::Let {
                name: "cap".into(),
                init: Expr::bin(BinOp::And, v("n"), c(63)),
            },
            Stmt::While {
                cond: Expr::bin(BinOp::Ult, v("i"), v("cap")),
                body: vec![
                    Stmt::Let {
                        name: "ch".into(),
                        init: Expr::load(Expr::add(v("p"), v("i")), MemWidth::W8),
                    },
                    Stmt::Assign {
                        name: "i".into(),
                        value: Expr::add(v("i"), c(1)),
                    },
                    Stmt::If {
                        cond: Expr::bin(BinOp::Eq, v("ch"), c(0)),
                        then_body: vec![Stmt::Continue],
                        else_body: vec![],
                    },
                    Stmt::If {
                        cond: Expr::bin(BinOp::Eq, v("ch"), c(0xff)),
                        then_body: vec![Stmt::Break],
                        else_body: vec![],
                    },
                    Stmt::Assign {
                        name: "acc".into(),
                        value: Expr::add(v("acc"), v("ch")),
                    },
                ],
            },
            Stmt::Return(Some(v("acc"))),
        ],
    )
}

/// A loop whose condition depends on memory the body mutates, with a
/// `continue` path — exercising the normalize-tail re-evaluation.
fn countdown_with_continue() -> Function {
    Function::new(
        "countdown",
        vec!["p".into()],
        vec![
            Stmt::Let {
                name: "steps".into(),
                init: c(0),
            },
            Stmt::While {
                // Deep condition to force hoisting.
                cond: Expr::bin(
                    BinOp::Ne,
                    Expr::bin(
                        BinOp::Add,
                        Expr::bin(BinOp::Mul, Expr::load(v("p"), MemWidth::W8), c(2)),
                        c(0),
                    ),
                    c(0),
                ),
                body: vec![
                    Stmt::Store {
                        addr: v("p"),
                        width: MemWidth::W8,
                        value: Expr::bin(BinOp::Sub, Expr::load(v("p"), MemWidth::W8), c(1)),
                    },
                    Stmt::Assign {
                        name: "steps".into(),
                        value: Expr::add(v("steps"), c(1)),
                    },
                    Stmt::If {
                        cond: Expr::bin(BinOp::Eq, Expr::bin(BinOp::And, v("steps"), c(1)), c(1)),
                        then_body: vec![Stmt::Continue],
                        else_body: vec![],
                    },
                    Stmt::Assign {
                        name: "steps".into(),
                        value: Expr::add(v("steps"), c(0)),
                    },
                ],
            },
            Stmt::Return(Some(v("steps"))),
        ],
    )
}

fn check_differential(f: &Function, setup: impl Fn(&mut Memory) -> Vec<u64>) {
    assert!(validate_function(f).is_empty());
    for tc in Toolchain::paper_matrix() {
        let cc = Compiler::from_toolchain(tc);
        let proc_ = cc.compile_function(f);
        let mut mem_i = Memory::new();
        let args = setup(&mut mem_i);
        let mut mem_e = mem_i.clone();
        let mut host_i = StdHost::default();
        let mut host_e = StdHost::default();
        let ri = interp::run_function(f, &args, &mut mem_i, &mut host_i)
            .unwrap_or_else(|e| panic!("{tc}: interp failed: {e}"));
        let re = emu::run_procedure(&proc_, &args, &mut mem_e, &mut host_e)
            .unwrap_or_else(|e| panic!("{tc}: emu failed: {e}\n{proc_}"));
        assert_eq!(ri, re, "{tc}: loop-control semantics diverged\n{proc_}");
    }
}

#[test]
fn break_and_continue_differential() {
    check_differential(&scan_function(), |mem| {
        let p = mem.alloc(64);
        for (i, b) in [5u8, 0, 7, 0, 9, 0xff, 11, 13].iter().enumerate() {
            mem.write_u8(p + i as u64, *b);
        }
        vec![p, 40]
    });
    // interp sanity: 5 + 7 + 9 = 21 (0s skipped, 0xff breaks).
    let mut mem = Memory::new();
    let p = mem.alloc(64);
    for (i, b) in [5u8, 0, 7, 0, 9, 0xff, 11, 13].iter().enumerate() {
        mem.write_u8(p + i as u64, *b);
    }
    let mut host = StdHost::default();
    let r = interp::run_function(&scan_function(), &[p, 40], &mut mem, &mut host).unwrap();
    assert_eq!(r, 21);
}

#[test]
fn continue_reevaluates_hoisted_condition() {
    check_differential(&countdown_with_continue(), |mem| {
        let p = mem.alloc(16);
        mem.write_u8(p, 6);
        vec![p]
    });
}

#[test]
fn validator_rejects_loop_control_outside_loops() {
    let f = Function::new("bad", vec![], vec![Stmt::Break]);
    let errs = validate_function(&f);
    assert!(
        errs.iter()
            .any(|e| matches!(e, esh_minic::ValidateError::LoopControlOutsideLoop { .. })),
        "{errs:?}"
    );
}

#[test]
fn nested_loop_break_targets_inner_loop() {
    // outer counts to 3; inner breaks immediately — outer must still run.
    let f = Function::new(
        "nested",
        vec![],
        vec![
            Stmt::Let {
                name: "i".into(),
                init: c(0),
            },
            Stmt::Let {
                name: "total".into(),
                init: c(0),
            },
            Stmt::While {
                cond: Expr::bin(BinOp::Ult, v("i"), c(3)),
                body: vec![
                    Stmt::Assign {
                        name: "i".into(),
                        value: Expr::add(v("i"), c(1)),
                    },
                    Stmt::Let {
                        name: "j".into(),
                        init: c(0),
                    },
                    Stmt::While {
                        cond: Expr::bin(BinOp::Ult, v("j"), c(100)),
                        body: vec![
                            Stmt::Assign {
                                name: "j".into(),
                                value: Expr::add(v("j"), c(1)),
                            },
                            Stmt::Break,
                        ],
                    },
                    Stmt::Assign {
                        name: "total".into(),
                        value: Expr::add(v("total"), v("j")),
                    },
                ],
            },
            Stmt::Return(Some(v("total"))),
        ],
    );
    check_differential(&f, |_| vec![]);
    let mut mem = Memory::new();
    let mut host = StdHost::default();
    assert_eq!(
        interp::run_function(&f, &[], &mut mem, &mut host).unwrap(),
        3
    );
}
