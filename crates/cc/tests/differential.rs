//! Differential testing: for every toolchain in the paper's matrix, the
//! compiled procedure must behave exactly like the MiniC reference
//! interpreter — same return value, same external-call trace, same final
//! memory (outside the emulator's own stack).

use esh_cc::{emu, Compiler, OptLevel, Toolchain};
use esh_minic::{demo, gen, interp, Function, Memory, StdHost};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Runs `f` both ways on one input vector and asserts agreement.
fn check_one(f: &Function, cc: &Compiler, seed: u64) {
    let proc_ = cc.compile_function(f);

    // Identical initial memories: two buffers with patterned contents.
    let mut base = Memory::new();
    let buf_a = base.alloc(4096);
    let buf_b = base.alloc(4096);
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..512 {
        base.write_u8(buf_a + i, rng.gen());
        base.write_u8(buf_b + i, rng.gen());
    }
    let args: Vec<u64> = vec![
        if seed.is_multiple_of(3) { buf_a } else { buf_b },
        if seed.is_multiple_of(2) {
            buf_b
        } else {
            rng.gen_range(0..512)
        },
        rng.gen_range(0..1024),
        rng.gen(),
    ];

    let mut mem_i = base.clone();
    let mut host_i = StdHost::default();
    let r_interp = interp::run_function(f, &args, &mut mem_i, &mut host_i)
        .unwrap_or_else(|e| panic!("{} interp failed: {e}", f.name));

    let mut mem_e = base.clone();
    let mut host_e = StdHost::default();
    let r_emu = emu::run_procedure(&proc_, &args, &mut mem_e, &mut host_e).unwrap_or_else(|e| {
        panic!(
            "{} [{}] emulation failed: {e}\n{proc_}",
            f.name,
            cc.toolchain()
        )
    });

    assert_eq!(
        r_interp,
        r_emu,
        "{} [{}] returned {r_emu:#x}, interpreter said {r_interp:#x} (seed {seed})\n{proc_}",
        f.name,
        cc.toolchain()
    );
    assert_eq!(
        host_i.trace,
        host_e.trace,
        "{} [{}] external-call traces diverged (seed {seed})\n{proc_}",
        f.name,
        cc.toolchain()
    );
    // Final heap state must agree on both buffers (the compiled code also
    // writes to its stack, which the interpreter has no analogue of).
    for i in 0..4096 {
        assert_eq!(
            mem_i.read_u8(buf_a + i),
            mem_e.read_u8(buf_a + i),
            "{} [{}] heap diverged at buf_a+{i:#x} (seed {seed})",
            f.name,
            cc.toolchain()
        );
        assert_eq!(
            mem_i.read_u8(buf_b + i),
            mem_e.read_u8(buf_b + i),
            "{} [{}] heap diverged at buf_b+{i:#x} (seed {seed})",
            f.name,
            cc.toolchain()
        );
    }
}

fn all_compilers() -> Vec<Compiler> {
    let mut out: Vec<Compiler> = Toolchain::paper_matrix()
        .into_iter()
        .map(Compiler::from_toolchain)
        .collect();
    // Also exercise -O0 and -O3 for one vendor each.
    let mut o0 = Toolchain::paper_matrix()[0];
    o0.opt = OptLevel::O0;
    out.push(Compiler::from_toolchain(o0));
    let mut o3 = Toolchain::paper_matrix()[3];
    o3.opt = OptLevel::O3;
    out.push(Compiler::from_toolchain(o3));
    out
}

#[test]
fn demos_agree_across_all_toolchains() {
    let mut functions: Vec<Function> = demo::cve_functions().into_iter().map(|(_, f)| f).collect();
    functions.push(demo::saturating_sum());
    functions.push(demo::exit_cleanup_wrapper());
    for cc in all_compilers() {
        for f in &functions {
            for seed in 0..4 {
                check_one(f, &cc, seed);
            }
        }
    }
}

#[test]
fn generated_programs_agree_across_all_toolchains() {
    let mut rng = StdRng::seed_from_u64(0xc0ffee);
    let config = gen::GenConfig::default();
    let compilers = all_compilers();
    for shape in gen::Shape::ALL {
        for k in 0..6 {
            let f = gen::generate_function(&mut rng, format!("df_{shape:?}_{k}"), shape, &config);
            for cc in &compilers {
                for seed in 0..2 {
                    check_one(&f, cc, seed);
                }
            }
        }
    }
}

#[test]
fn patched_programs_agree() {
    use esh_minic::patch::{apply_patch, PatchLevel};
    let compilers = all_compilers();
    for (_, f) in demo::cve_functions() {
        for level in [PatchLevel::Minor, PatchLevel::Moderate, PatchLevel::Major] {
            let p = apply_patch(&f, level, 1);
            for cc in &compilers {
                check_one(&p, cc, 0);
            }
        }
    }
}

#[test]
fn template_families_agree() {
    let mut rng = StdRng::seed_from_u64(99);
    let fam = gen::generate_template_family(&mut rng, "strcmp_key", 5);
    for cc in all_compilers() {
        for f in &fam {
            check_one(f, &cc, 3);
        }
    }
}
