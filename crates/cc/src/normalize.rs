//! AST legalization ahead of code generation.
//!
//! Two rewrites, both semantics-preserving:
//!
//! 1. **Call hoisting** — every call becomes the whole right-hand side of
//!    its own `let`. Calls clobber all caller-saved registers, so the code
//!    generator requires that no scratch values are live across them.
//! 2. **Depth bounding** — expressions deeper than the budget are split
//!    through temporaries, so expression evaluation never needs more
//!    scratch registers than the style provides.
//!
//! Loop conditions are handled by evaluating the hoisted prefix once before
//! the loop and re-evaluating it at the end of each iteration, preserving
//! the re-evaluation semantics of `while`.

use esh_minic::{Expr, Function, Stmt};

/// Default maximum expression depth after normalization.
pub const DEFAULT_MAX_DEPTH: usize = 3;

struct Normalizer {
    max_depth: usize,
    fresh: usize,
}

impl Normalizer {
    fn fresh_name(&mut self) -> String {
        self.fresh += 1;
        format!("__n{}", self.fresh)
    }

    /// Rebuilds `e` with every child flattened to `budget - 1`.
    fn flat_node(&mut self, e: &Expr, budget: usize, out: &mut Vec<Stmt>) -> Expr {
        let child = budget.saturating_sub(1);
        match e {
            Expr::Unary(op, a) => Expr::Unary(*op, Box::new(self.flat(a, child, out))),
            Expr::Binary(op, a, b) => Expr::Binary(
                *op,
                Box::new(self.flat(a, child, out)),
                Box::new(self.flat(b, child, out)),
            ),
            Expr::Load { addr, width } => Expr::Load {
                addr: Box::new(self.flat(addr, child, out)),
                width: *width,
            },
            _ => unreachable!("flat_node only called on compound expressions"),
        }
    }

    /// Returns an expression of depth ≤ `budget` equivalent to `e`,
    /// appending hoisted prefix statements to `out`.
    fn flat(&mut self, e: &Expr, budget: usize, out: &mut Vec<Stmt>) -> Expr {
        match e {
            Expr::Const(_) | Expr::Var(_) => e.clone(),
            Expr::Call { name, args } => {
                // Arguments must be leaves: they are staged through
                // scratch registers all at once.
                let new_args: Vec<Expr> = args.iter().map(|a| self.flat(a, 0, out)).collect();
                let t = self.fresh_name();
                out.push(Stmt::Let {
                    name: t.clone(),
                    init: Expr::Call {
                        name: name.clone(),
                        args: new_args,
                    },
                });
                Expr::Var(t)
            }
            _ if budget == 0 => {
                let rebuilt = self.flat_node(e, self.max_depth, out);
                let t = self.fresh_name();
                out.push(Stmt::Let {
                    name: t.clone(),
                    init: rebuilt,
                });
                Expr::Var(t)
            }
            _ => self.flat_node(e, budget, out),
        }
    }

    /// Flattens a statement-level expression. A call in tail position stays
    /// a call (it already is a whole RHS).
    fn flat_rhs(&mut self, e: &Expr, out: &mut Vec<Stmt>) -> Expr {
        if let Expr::Call { name, args } = e {
            let new_args: Vec<Expr> = args.iter().map(|a| self.flat(a, 0, out)).collect();
            return Expr::Call {
                name: name.clone(),
                args: new_args,
            };
        }
        self.flat(e, self.max_depth, out)
    }

    fn stmt(&mut self, s: &Stmt, out: &mut Vec<Stmt>) {
        match s {
            Stmt::Let { name, init } => {
                let init = self.flat_rhs(init, out);
                out.push(Stmt::Let {
                    name: name.clone(),
                    init,
                });
            }
            Stmt::Assign { name, value } => {
                let value = self.flat_rhs(value, out);
                out.push(Stmt::Assign {
                    name: name.clone(),
                    value,
                });
            }
            Stmt::Store { addr, width, value } => {
                let addr = self.flat(addr, self.max_depth, out);
                let value = self.flat(value, self.max_depth, out);
                out.push(Stmt::Store {
                    addr,
                    width: *width,
                    value,
                });
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let cond = self.flat(cond, self.max_depth, out);
                let then_body = self.block(then_body);
                let else_body = self.block(else_body);
                out.push(Stmt::If {
                    cond,
                    then_body,
                    else_body,
                });
            }
            Stmt::While { cond, body } => {
                // Hoisted prefix before the loop (as `let`s)...
                let mut pre = Vec::new();
                let cond = self.flat(cond, self.max_depth, &mut pre);
                out.extend(pre.iter().cloned());
                // ...and re-evaluated at the end of each iteration (as
                // assignments to the same temporaries).
                let tail: Vec<Stmt> = pre
                    .into_iter()
                    .map(|s| match s {
                        Stmt::Let { name, init } => Stmt::Assign { name, value: init },
                        other => other,
                    })
                    .collect();
                let mut body = self.block(body);
                // Every `continue` at this loop's level jumps back to the
                // condition, so the temporaries must be recomputed first.
                insert_before_continues(&mut body, &tail);
                body.extend(tail);
                out.push(Stmt::While { cond, body });
            }
            Stmt::Return(Some(e)) => {
                let e = self.flat(e, self.max_depth, out);
                out.push(Stmt::Return(Some(e)));
            }
            Stmt::Return(None) => out.push(Stmt::Return(None)),
            Stmt::Break => out.push(Stmt::Break),
            Stmt::Continue => out.push(Stmt::Continue),
            Stmt::ExprStmt(e) => {
                if let Expr::Call { name, args } = e {
                    let new_args: Vec<Expr> = args.iter().map(|a| self.flat(a, 0, out)).collect();
                    out.push(Stmt::ExprStmt(Expr::Call {
                        name: name.clone(),
                        args: new_args,
                    }));
                } else {
                    // A pure expression statement has no effect; drop it
                    // after flattening possible embedded calls.
                    let _ = self.flat(e, self.max_depth, out);
                }
            }
        }
    }

    fn block(&mut self, stmts: &[Stmt]) -> Vec<Stmt> {
        let mut out = Vec::new();
        for s in stmts {
            self.stmt(s, &mut out);
        }
        out
    }
}

/// Prepends `tail` to every `continue` belonging to the current loop
/// (recursing into `if` arms but not into nested loops, whose `continue`s
/// target the inner loop).
fn insert_before_continues(stmts: &mut Vec<Stmt>, tail: &[Stmt]) {
    let mut i = 0;
    while i < stmts.len() {
        match &mut stmts[i] {
            Stmt::Continue => {
                for (k, s) in tail.iter().enumerate() {
                    stmts.insert(i + k, s.clone());
                }
                i += tail.len() + 1;
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                insert_before_continues(then_body, tail);
                insert_before_continues(else_body, tail);
                i += 1;
            }
            _ => i += 1,
        }
    }
}

/// Normalizes a function for code generation.
pub fn normalize(f: &Function) -> Function {
    normalize_with_depth(f, DEFAULT_MAX_DEPTH)
}

/// Normalizes with an explicit depth budget (≥ 1).
pub fn normalize_with_depth(f: &Function, max_depth: usize) -> Function {
    let mut n = Normalizer {
        max_depth: max_depth.max(1),
        fresh: 0,
    };
    Function::new(f.name.clone(), f.params.clone(), n.block(&f.body))
}

/// The depth of an expression tree (leaves are depth 0).
pub fn expr_depth(e: &Expr) -> usize {
    match e {
        Expr::Const(_) | Expr::Var(_) => 0,
        Expr::Unary(_, a) | Expr::Load { addr: a, .. } => 1 + expr_depth(a),
        Expr::Binary(_, a, b) => 1 + expr_depth(a).max(expr_depth(b)),
        Expr::Call { args, .. } => 1 + args.iter().map(expr_depth).max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esh_minic::{demo, interp, validate_function, Memory, StdHost};

    fn max_stmt_depth(stmts: &[Stmt]) -> usize {
        let mut d = 0;
        for s in stmts {
            d = d.max(match s {
                Stmt::Let { init, .. } | Stmt::Assign { value: init, .. } => match init {
                    Expr::Call { args, .. } => args.iter().map(expr_depth).max().unwrap_or(0),
                    e => expr_depth(e),
                },
                Stmt::Store { addr, value, .. } => expr_depth(addr).max(expr_depth(value)),
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => expr_depth(cond)
                    .max(max_stmt_depth(then_body))
                    .max(max_stmt_depth(else_body)),
                Stmt::While { cond, body } => expr_depth(cond).max(max_stmt_depth(body)),
                Stmt::Return(Some(e)) => expr_depth(e),
                Stmt::Return(None) | Stmt::Break | Stmt::Continue => 0,
                Stmt::ExprStmt(e) => expr_depth(e),
            });
        }
        d
    }

    fn has_nested_call(stmts: &[Stmt]) -> bool {
        fn expr_has_nested(e: &Expr, top: bool) -> bool {
            match e {
                Expr::Call { args, .. } => !top || args.iter().any(|a| expr_has_nested(a, false)),
                Expr::Unary(_, a) | Expr::Load { addr: a, .. } => expr_has_nested(a, false),
                Expr::Binary(_, a, b) => expr_has_nested(a, false) || expr_has_nested(b, false),
                _ => false,
            }
        }
        stmts.iter().any(|s| match s {
            Stmt::Let { init, .. } | Stmt::Assign { value: init, .. } => {
                expr_has_nested(init, true)
            }
            Stmt::Store { addr, value, .. } => {
                expr_has_nested(addr, false) || expr_has_nested(value, false)
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                expr_has_nested(cond, false)
                    || has_nested_call(then_body)
                    || has_nested_call(else_body)
            }
            Stmt::While { cond, body } => expr_has_nested(cond, false) || has_nested_call(body),
            Stmt::Return(Some(e)) => expr_has_nested(e, false),
            Stmt::Return(None) | Stmt::Break | Stmt::Continue => false,
            Stmt::ExprStmt(e) => expr_has_nested(e, true),
        })
    }

    #[test]
    fn normalized_demos_validate_and_are_shallow() {
        for (_, f) in demo::cve_functions() {
            let n = normalize(&f);
            let errs = validate_function(&n);
            assert!(errs.is_empty(), "{}: {errs:?}\n{n}", f.name);
            assert!(
                max_stmt_depth(&n.body) <= DEFAULT_MAX_DEPTH,
                "{}\n{n}",
                f.name
            );
            assert!(!has_nested_call(&n.body), "{}\n{n}", f.name);
        }
    }

    #[test]
    fn normalization_preserves_behaviour() {
        for (_, f) in demo::cve_functions() {
            let n = normalize(&f);
            for seed in 0..8u64 {
                let mut m1 = Memory::new();
                let a1 = m1.alloc(4096);
                let b1 = m1.alloc(4096);
                for i in 0..64 {
                    m1.write_u8(b1 + i, (seed as u8).wrapping_mul(31).wrapping_add(i as u8));
                }
                let mut m2 = m1.clone();
                let mut h1 = StdHost::default();
                let mut h2 = StdHost::default();
                let args = [a1, b1, 16 + seed];
                let r1 = interp::run_function(&f, &args, &mut m1, &mut h1).expect("orig");
                let r2 = interp::run_function(&n, &args, &mut m2, &mut h2).expect("norm");
                assert_eq!(r1, r2, "{} diverged on seed {seed}", f.name);
                assert_eq!(h1.trace, h2.trace, "{} call trace diverged", f.name);
            }
        }
    }

    #[test]
    fn while_condition_reevaluated() {
        use esh_minic::{BinOp, MemWidth};
        // while (load(p) != 0) { store(p, load(p) - 1); } — the condition
        // depends on memory mutated by the body.
        let f = Function::new(
            "countdown",
            vec!["p".into()],
            vec![
                Stmt::While {
                    cond: Expr::bin(
                        BinOp::Ne,
                        // Make it deep enough to force hoisting.
                        Expr::bin(
                            BinOp::Add,
                            Expr::bin(
                                BinOp::Mul,
                                Expr::load(Expr::var("p"), MemWidth::W8),
                                Expr::Const(2),
                            ),
                            Expr::Const(0),
                        ),
                        Expr::Const(0),
                    ),
                    body: vec![Stmt::Store {
                        addr: Expr::var("p"),
                        width: MemWidth::W8,
                        value: Expr::bin(
                            BinOp::Sub,
                            Expr::load(Expr::var("p"), MemWidth::W8),
                            Expr::Const(1),
                        ),
                    }],
                },
                Stmt::Return(Some(Expr::load(Expr::var("p"), MemWidth::W8))),
            ],
        );
        let n = normalize_with_depth(&f, 1);
        let mut mem = Memory::new();
        mem.write_u8(0x100, 5);
        let mut host = StdHost::default();
        let r = interp::run_function(&n, &[0x100], &mut mem, &mut host).expect("runs");
        assert_eq!(r, 0, "loop must terminate by re-evaluating the condition");
    }

    #[test]
    fn depth_is_bounded_for_pathological_input() {
        use esh_minic::BinOp;
        // A deeply nested expression.
        let mut e = Expr::var("a");
        for k in 0..20 {
            e = Expr::bin(BinOp::Add, e, Expr::Const(k));
        }
        let f = Function::new("deep", vec!["a".into()], vec![Stmt::Return(Some(e))]);
        let n = normalize_with_depth(&f, 2);
        assert!(validate_function(&n).is_empty());
        assert!(max_stmt_depth(&n.body) <= 2, "{n}");
    }
}
