//! The public compiler front-end.

use esh_asm::{Procedure, Program};
use esh_minic::{Function, Module};

use crate::codegen::compile_function_with_style;
use crate::style::{OptLevel, Style, Toolchain, Vendor, VendorVersion};

/// A configured synthetic compiler: one vendor, version and `-O` level.
///
/// ```
/// use esh_cc::{Compiler, Vendor, VendorVersion};
/// use esh_minic::demo;
///
/// let gcc = Compiler::new(Vendor::Gcc, VendorVersion::new(4, 9));
/// let proc_ = gcc.compile_function(&demo::saturating_sum());
/// assert!(proc_.inst_count() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct Compiler {
    toolchain: Toolchain,
    style: Style,
}

impl Compiler {
    /// Creates a compiler at `-O2` (the paper corpus default).
    pub fn new(vendor: Vendor, version: VendorVersion) -> Compiler {
        Compiler::from_toolchain(Toolchain::new(vendor, version))
    }

    /// Creates a compiler with an explicit optimization level.
    pub fn with_opt(vendor: Vendor, version: VendorVersion, opt: OptLevel) -> Compiler {
        Compiler::from_toolchain(Toolchain {
            vendor,
            version,
            opt,
        })
    }

    /// Creates a compiler from a [`Toolchain`] triple.
    pub fn from_toolchain(toolchain: Toolchain) -> Compiler {
        let style = Style::resolve(toolchain.vendor, toolchain.version, toolchain.opt);
        Compiler { toolchain, style }
    }

    /// The toolchain triple this compiler models.
    pub fn toolchain(&self) -> Toolchain {
        self.toolchain
    }

    /// The resolved code-generation style.
    pub fn style(&self) -> &Style {
        &self.style
    }

    /// Compiles one function to a binary procedure.
    pub fn compile_function(&self, f: &Function) -> Procedure {
        compile_function_with_style(&self.style, f)
    }

    /// Compiles a whole module into a "binary".
    pub fn compile_module(&self, m: &Module) -> Program {
        let mut prog = Program::new(format!("{}-{}", m.name, self.toolchain));
        for f in &m.functions {
            prog.procs.push(self.compile_function(f));
        }
        prog
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esh_minic::demo;

    #[test]
    fn compilation_is_deterministic() {
        let cc = Compiler::new(Vendor::Clang, VendorVersion::new(3, 5));
        let f = demo::heartbleed_like();
        assert_eq!(cc.compile_function(&f), cc.compile_function(&f));
    }

    #[test]
    fn vendors_emit_different_code_for_same_source() {
        let f = demo::heartbleed_like();
        let gcc = Compiler::new(Vendor::Gcc, VendorVersion::new(4, 9)).compile_function(&f);
        let clang = Compiler::new(Vendor::Clang, VendorVersion::new(3, 5)).compile_function(&f);
        let icc = Compiler::new(Vendor::Icc, VendorVersion::new(15, 0)).compile_function(&f);
        assert_ne!(gcc, clang);
        assert_ne!(clang, icc);
        assert_ne!(gcc, icc);
    }

    #[test]
    fn versions_emit_different_code() {
        let f = demo::wget_like();
        let a = Compiler::new(Vendor::Gcc, VendorVersion::new(4, 6)).compile_function(&f);
        let b = Compiler::new(Vendor::Gcc, VendorVersion::new(4, 9)).compile_function(&f);
        assert_ne!(a, b);
    }

    #[test]
    fn opt_levels_differ() {
        let f = demo::wget_like();
        let o0 = Compiler::with_opt(Vendor::Gcc, VendorVersion::new(4, 9), OptLevel::O0)
            .compile_function(&f);
        let o2 = Compiler::new(Vendor::Gcc, VendorVersion::new(4, 9)).compile_function(&f);
        assert_ne!(o0, o2);
        // -O0 promotes nothing: no callee-saved register is ever saved
        // beyond the frame pointer.
        use esh_asm::{Inst, Operand, Reg64};
        let saves_callee = |p: &esh_asm::Procedure| {
            p.insts()
                .any(|i| matches!(i, Inst::Push { src: Operand::Reg(r) } if r.base != Reg64::Rbp))
        };
        assert!(!saves_callee(&o0));
        assert!(saves_callee(&o2));
    }

    #[test]
    fn module_compilation_names_binary_after_toolchain() {
        let mut m = esh_minic::Module::new("openssl-1.0.1f");
        m.functions.push(demo::saturating_sum());
        let cc = Compiler::new(Vendor::Icc, VendorVersion::new(15, 0));
        let prog = cc.compile_module(&m);
        assert!(prog.name.contains("openssl-1.0.1f"));
        assert!(prog.name.contains("icc"));
        assert_eq!(prog.procs.len(), 1);
    }
}
