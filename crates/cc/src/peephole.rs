//! Post-codegen peephole cleanup, style-aware.

use esh_asm::{Inst, Operand, Procedure, Width};

use crate::style::Style;

fn is_noop(inst: &Inst) -> bool {
    match inst {
        // A full-width self-move does nothing. (A 32-bit self-move is NOT a
        // no-op: it zero-extends into the upper half.)
        Inst::Mov {
            dst: Operand::Reg(d),
            src: Operand::Reg(s),
        } => d == s && d.width == Width::W64,
        Inst::Add {
            dst: _,
            src: Operand::Imm(0),
        }
        | Inst::Sub {
            dst: _,
            src: Operand::Imm(0),
        } => true,
        Inst::Nop => true,
        _ => false,
    }
}

/// Runs the peephole passes over every block of `proc_` in place.
pub fn run(_style: &Style, proc_: &mut Procedure) {
    for block in &mut proc_.blocks {
        block.insts.retain(|i| !is_noop(i));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::style::{OptLevel, Style, Vendor, VendorVersion};
    use esh_asm::{parse_proc, Reg64};

    #[test]
    fn removes_full_width_self_moves_only() {
        let mut p = parse_proc("proc f\nentry:\nmov rax, rax\nmov eax, eax\nadd rbx, 0x0\nret\n")
            .expect("parses");
        let style = Style::resolve(Vendor::Gcc, VendorVersion::new(4, 9), OptLevel::O2);
        run(&style, &mut p);
        assert_eq!(p.inst_count(), 2, "{p}");
        // The 32-bit self-move (zero-extension) survives.
        assert!(p.blocks[0].insts.iter().any(|i| matches!(
            i,
            Inst::Mov { dst: Operand::Reg(r), .. } if r.base == Reg64::Rax && r.width == Width::W32
        )));
    }
}
