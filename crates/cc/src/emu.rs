//! An x86-64 emulator for the modelled instruction subset.
//!
//! This is the second half of the differential-testing oracle: a compiled
//! [`Procedure`] is executed here against the same [`Memory`] and [`Host`]
//! the MiniC interpreter uses, and the results must agree.
//!
//! Faithfulness notes: sub-register writes follow x86 rules (32-bit writes
//! zero the upper half, 8/16-bit writes merge); CF/ZF/SF/OF are modelled
//! precisely for arithmetic and logic; external calls clobber all
//! caller-saved registers (except the return value) with deterministic junk
//! so that compiler bugs holding values in the wrong register class surface
//! as test failures rather than silent luck.

use std::collections::HashMap;
use std::fmt;

use esh_asm::{
    Cond, Inst, Mem, Operand, Procedure, Reg, Reg64, ShiftAmount, Width, ARG_REGS, CALLER_SAVED,
};
use esh_minic::{Host, MemWidth, Memory};

/// Initial stack pointer (below the heap base, 16-aligned).
pub const STACK_TOP: u64 = 0x0000_6fff_ffff_f000;

/// Default instruction fuel.
pub const DEFAULT_FUEL: u64 = 1 << 22;

/// An emulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmuError {
    /// A jump targeted a label that does not exist.
    UnknownLabel(String),
    /// The instruction budget was exhausted.
    OutOfFuel,
    /// Control fell off the end of the procedure without `ret`.
    FellOffEnd,
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::UnknownLabel(l) => write!(f, "jump to unknown label `{l}`"),
            EmuError::OutOfFuel => write!(f, "emulation fuel exhausted"),
            EmuError::FellOffEnd => write!(f, "control fell off the end of the procedure"),
        }
    }
}

impl std::error::Error for EmuError {}

#[derive(Debug, Clone, Copy, Default)]
struct Flags {
    cf: bool,
    zf: bool,
    sf: bool,
    of: bool,
}

fn mem_width(w: Width) -> MemWidth {
    match w {
        Width::W8 => MemWidth::W8,
        Width::W16 => MemWidth::W16,
        Width::W32 => MemWidth::W32,
        Width::W64 => MemWidth::W64,
    }
}

/// The machine state during emulation.
struct Machine<'a, H: Host> {
    regs: [u64; 16],
    flags: Flags,
    mem: &'a mut Memory,
    host: &'a mut H,
    clobber_counter: u64,
}

impl<H: Host> Machine<'_, H> {
    fn reg(&self, r: Reg64) -> u64 {
        self.regs[r.index()]
    }

    fn set_reg64(&mut self, r: Reg64, v: u64) {
        self.regs[r.index()] = v;
    }

    fn read_reg(&self, r: Reg) -> u64 {
        self.reg(r.base) & r.width.mask()
    }

    fn write_reg(&mut self, r: Reg, v: u64) {
        let v = v & r.width.mask();
        match r.width {
            Width::W64 => self.set_reg64(r.base, v),
            // 32-bit writes zero-extend.
            Width::W32 => self.set_reg64(r.base, v),
            Width::W16 => {
                let old = self.reg(r.base);
                self.set_reg64(r.base, (old & !0xffff) | v);
            }
            Width::W8 => {
                let old = self.reg(r.base);
                self.set_reg64(r.base, (old & !0xff) | v);
            }
        }
    }

    fn effective_addr(&self, m: &Mem) -> u64 {
        let mut a = m.disp as u64;
        if let Some(b) = m.base {
            a = a.wrapping_add(self.reg(b));
        }
        if let Some((i, s)) = m.index {
            a = a.wrapping_add(self.reg(i).wrapping_mul(s.factor()));
        }
        a
    }

    /// Reads an operand at context width `w`.
    fn read(&self, op: &Operand, w: Width) -> u64 {
        match op {
            Operand::Reg(r) => self.read_reg(Reg::new(r.base, w.min(r.width))) & w.mask(),
            Operand::Imm(i) => (*i as u64) & w.mask(),
            Operand::Mem(m) => self.mem.read(self.effective_addr(m), mem_width(m.width)) & w.mask(),
        }
    }

    fn write(&mut self, op: &Operand, w: Width, v: u64) {
        match op {
            Operand::Reg(r) => self.write_reg(Reg::new(r.base, w), v),
            Operand::Mem(m) => {
                let a = self.effective_addr(m);
                self.mem.write(a, mem_width(m.width), v);
            }
            Operand::Imm(_) => panic!("write to immediate"),
        }
    }

    fn op_width(op: &Operand, other: Option<&Operand>) -> Width {
        op.width()
            .or_else(|| other.and_then(Operand::width))
            .unwrap_or(Width::W64)
    }

    fn msb(v: u64, w: Width) -> bool {
        v >> (w.bits() - 1) & 1 == 1
    }

    fn set_zf_sf(&mut self, res: u64, w: Width) {
        self.flags.zf = res & w.mask() == 0;
        self.flags.sf = Self::msb(res & w.mask(), w);
    }

    fn flags_add(&mut self, a: u64, b: u64, res: u64, w: Width) {
        let (a, b, res) = (a & w.mask(), b & w.mask(), res & w.mask());
        self.flags.cf = res < a;
        self.flags.of = Self::msb(!(a ^ b) & (a ^ res), w);
        self.set_zf_sf(res, w);
    }

    fn flags_sub(&mut self, a: u64, b: u64, res: u64, w: Width) {
        let (a, b, res) = (a & w.mask(), b & w.mask(), res & w.mask());
        self.flags.cf = a < b;
        self.flags.of = Self::msb((a ^ b) & (a ^ res), w);
        self.set_zf_sf(res, w);
    }

    fn flags_logic(&mut self, res: u64, w: Width) {
        self.flags.cf = false;
        self.flags.of = false;
        self.set_zf_sf(res, w);
    }

    fn cond(&self, c: Cond) -> bool {
        let f = self.flags;
        match c {
            Cond::E => f.zf,
            Cond::Ne => !f.zf,
            Cond::L => f.sf != f.of,
            Cond::Le => f.zf || f.sf != f.of,
            Cond::G => !f.zf && f.sf == f.of,
            Cond::Ge => f.sf == f.of,
            Cond::B => f.cf,
            Cond::Be => f.cf || f.zf,
            Cond::A => !f.cf && !f.zf,
            Cond::Ae => !f.cf,
            Cond::S => f.sf,
            Cond::Ns => !f.sf,
        }
    }

    fn shift_amount(&self, a: &ShiftAmount, w: Width) -> u32 {
        let raw = match a {
            ShiftAmount::Imm(i) => u64::from(*i),
            ShiftAmount::Cl => self.reg(Reg64::Rcx) & 0xff,
        };
        let mask = if w == Width::W64 { 63 } else { 31 };
        (raw as u32) & mask
    }

    fn do_call(&mut self, target: &str, args: u8) {
        let mut vals = Vec::with_capacity(usize::from(args));
        for r in ARG_REGS.iter().take(usize::from(args)) {
            vals.push(self.reg(*r));
        }
        let ret = self.host.call(target, &vals, self.mem);
        // Clobber the volatile state like a real callee would.
        self.clobber_counter = self.clobber_counter.wrapping_add(1);
        for (k, r) in CALLER_SAVED.iter().enumerate() {
            if *r != Reg64::Rax {
                let junk = 0xdead_0000_0000_0000u64
                    ^ self.clobber_counter.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    ^ (k as u64) << 32;
                self.set_reg64(*r, junk);
            }
        }
        self.flags = Flags {
            cf: self.clobber_counter & 1 == 1,
            zf: self.clobber_counter & 2 == 2,
            sf: self.clobber_counter & 4 == 4,
            of: self.clobber_counter & 8 == 8,
        };
        self.set_reg64(Reg64::Rax, ret);
    }

    /// Executes one instruction. Returns a control-flow action.
    fn step(&mut self, inst: &Inst) -> Step {
        match inst {
            Inst::Mov { dst, src } => {
                let w = Self::op_width(dst, Some(src));
                let v = self.read(src, w);
                self.write(dst, w, v);
            }
            Inst::MovZx { dst, src } => {
                let sw = src.width().unwrap_or(Width::W8);
                let v = self.read(src, sw);
                self.write(&Operand::Reg(*dst), dst.width, v);
            }
            Inst::MovSx { dst, src } => {
                let sw = src.width().unwrap_or(Width::W8);
                let v = self.read(src, sw);
                let bits = sw.bits();
                let sext = if bits == 64 {
                    v
                } else {
                    (((v << (64 - bits)) as i64) >> (64 - bits)) as u64
                };
                self.write(&Operand::Reg(*dst), dst.width, sext);
            }
            Inst::Lea { dst, addr } => {
                let a = self.effective_addr(addr);
                self.write_reg(*dst, a);
            }
            Inst::Add { dst, src } => {
                let w = Self::op_width(dst, Some(src));
                let (a, b) = (self.read(dst, w), self.read(src, w));
                let res = a.wrapping_add(b);
                self.flags_add(a, b, res, w);
                self.write(dst, w, res);
            }
            Inst::Sub { dst, src } => {
                let w = Self::op_width(dst, Some(src));
                let (a, b) = (self.read(dst, w), self.read(src, w));
                let res = a.wrapping_sub(b);
                self.flags_sub(a, b, res, w);
                self.write(dst, w, res);
            }
            Inst::Imul { dst, src } => {
                let w = dst.width;
                let (a, b) = (self.read_reg(*dst), self.read(src, w));
                let res = a.wrapping_mul(b);
                self.flags_logic(res, w); // CF/OF approximated; never branched on.
                self.write_reg(*dst, res);
            }
            Inst::ImulImm { dst, src, imm } => {
                let w = dst.width;
                let (a, b) = (self.read(src, w), (*imm as u64) & w.mask());
                let res = a.wrapping_mul(b);
                self.flags_logic(res, w);
                self.write_reg(*dst, res);
            }
            Inst::Neg { dst } => {
                let w = Self::op_width(dst, None);
                let a = self.read(dst, w);
                let res = a.wrapping_neg();
                self.flags.cf = a != 0;
                self.flags.of = a == 1 << (w.bits() - 1);
                self.set_zf_sf(res, w);
                self.write(dst, w, res);
            }
            Inst::Not { dst } => {
                let w = Self::op_width(dst, None);
                let a = self.read(dst, w);
                self.write(dst, w, !a);
            }
            Inst::Inc { dst } => {
                let w = Self::op_width(dst, None);
                let a = self.read(dst, w);
                let res = a.wrapping_add(1);
                let cf = self.flags.cf;
                self.flags_add(a, 1, res, w);
                self.flags.cf = cf; // inc preserves CF
                self.write(dst, w, res);
            }
            Inst::Dec { dst } => {
                let w = Self::op_width(dst, None);
                let a = self.read(dst, w);
                let res = a.wrapping_sub(1);
                let cf = self.flags.cf;
                self.flags_sub(a, 1, res, w);
                self.flags.cf = cf;
                self.write(dst, w, res);
            }
            Inst::And { dst, src } | Inst::Or { dst, src } | Inst::Xor { dst, src } => {
                let w = Self::op_width(dst, Some(src));
                let (a, b) = (self.read(dst, w), self.read(src, w));
                let res = match inst {
                    Inst::And { .. } => a & b,
                    Inst::Or { .. } => a | b,
                    _ => a ^ b,
                };
                self.flags_logic(res, w);
                self.write(dst, w, res);
            }
            Inst::Shl { dst, amount } | Inst::Shr { dst, amount } | Inst::Sar { dst, amount } => {
                let w = Self::op_width(dst, None);
                let n = self.shift_amount(amount, w);
                if n != 0 {
                    let a = self.read(dst, w);
                    let res = match inst {
                        Inst::Shl { .. } => a.wrapping_shl(n),
                        Inst::Shr { .. } => a.wrapping_shr(n),
                        _ => {
                            let bits = w.bits();
                            let sext = ((a << (64 - bits)) as i64) >> (64 - bits);
                            (sext >> n.min(63)) as u64
                        }
                    } & w.mask();
                    self.flags.cf = if n > w.bits() {
                        false // count exceeds the operand: nothing shifted out
                    } else {
                        match inst {
                            Inst::Shl { .. } => a >> (w.bits() - n) & 1 == 1,
                            _ => a >> (n - 1) & 1 == 1,
                        }
                    };
                    self.flags.of = false;
                    self.set_zf_sf(res, w);
                    self.write(dst, w, res);
                }
            }
            Inst::Cmp { a, b } => {
                let w = Self::op_width(a, Some(b));
                let (x, y) = (self.read(a, w), self.read(b, w));
                let res = x.wrapping_sub(y);
                self.flags_sub(x, y, res, w);
            }
            Inst::Test { a, b } => {
                let w = Self::op_width(a, Some(b));
                let res = self.read(a, w) & self.read(b, w);
                self.flags_logic(res, w);
            }
            Inst::Set { cond, dst } => {
                let v = u64::from(self.cond(*cond));
                self.write(dst, Width::W8, v);
            }
            Inst::Cmov { cond, dst, src } => {
                if self.cond(*cond) {
                    let v = self.read(src, dst.width);
                    self.write_reg(*dst, v);
                } else if dst.width == Width::W32 {
                    // cmov with a 32-bit destination zero-extends even when
                    // the move is not taken.
                    let v = self.read_reg(*dst);
                    self.write_reg(*dst, v);
                }
            }
            Inst::Push { src } => {
                let v = self.read(src, Width::W64);
                let sp = self.reg(Reg64::Rsp).wrapping_sub(8);
                self.set_reg64(Reg64::Rsp, sp);
                self.mem.write(sp, MemWidth::W64, v);
            }
            Inst::Pop { dst } => {
                let sp = self.reg(Reg64::Rsp);
                let v = self.mem.read(sp, MemWidth::W64);
                self.set_reg64(Reg64::Rsp, sp.wrapping_add(8));
                self.write(dst, Width::W64, v);
            }
            Inst::Call { target, args } => self.do_call(target, *args),
            Inst::Cdqe => {
                let v = self.reg(Reg64::Rax) as u32;
                self.set_reg64(Reg64::Rax, v as i32 as i64 as u64);
            }
            Inst::Nop => {}
            Inst::Ret => return Step::Ret,
            Inst::Jmp { target } => return Step::Jump(target.clone()),
            Inst::Jcc { cond, target } => {
                if self.cond(*cond) {
                    return Step::Jump(target.clone());
                }
            }
        }
        Step::Next
    }
}

enum Step {
    Next,
    Jump(String),
    Ret,
}

/// Runs `proc_` with `args` in the System V argument registers.
///
/// Returns the value left in `rax` by `ret`.
///
/// # Errors
///
/// Returns [`EmuError`] on unknown jump targets, fuel exhaustion, or if
/// control falls off the final block.
pub fn run_procedure<H: Host>(
    proc_: &Procedure,
    args: &[u64],
    mem: &mut Memory,
    host: &mut H,
) -> Result<u64, EmuError> {
    run_procedure_fuel(proc_, args, mem, host, DEFAULT_FUEL)
}

/// Like [`run_procedure`] with an explicit fuel budget.
///
/// # Errors
///
/// Returns [`EmuError`] on unknown jump targets, fuel exhaustion, or if
/// control falls off the final block.
pub fn run_procedure_fuel<H: Host>(
    proc_: &Procedure,
    args: &[u64],
    mem: &mut Memory,
    host: &mut H,
    mut fuel: u64,
) -> Result<u64, EmuError> {
    let labels: HashMap<&str, usize> = proc_
        .blocks
        .iter()
        .enumerate()
        .map(|(i, b)| (b.label.as_str(), i))
        .collect();
    let mut m = Machine {
        regs: [0; 16],
        flags: Flags::default(),
        mem,
        host,
        clobber_counter: 0,
    };
    m.set_reg64(Reg64::Rsp, STACK_TOP);
    for (i, v) in args.iter().enumerate().take(ARG_REGS.len()) {
        m.set_reg64(ARG_REGS[i], *v);
    }
    let mut block = 0usize;
    'outer: loop {
        let Some(b) = proc_.blocks.get(block) else {
            return Err(EmuError::FellOffEnd);
        };
        for inst in &b.insts {
            if fuel == 0 {
                return Err(EmuError::OutOfFuel);
            }
            fuel -= 1;
            match m.step(inst) {
                Step::Next => {}
                Step::Ret => return Ok(m.reg(Reg64::Rax)),
                Step::Jump(label) => {
                    block = *labels
                        .get(label.as_str())
                        .ok_or(EmuError::UnknownLabel(label.clone()))?;
                    continue 'outer;
                }
            }
        }
        block += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esh_asm::parse_proc;
    use esh_minic::StdHost;

    fn run(text: &str, args: &[u64]) -> u64 {
        let p = parse_proc(text).expect("parses");
        let mut mem = Memory::new();
        let mut host = StdHost::default();
        run_procedure(&p, args, &mut mem, &mut host).expect("runs")
    }

    #[test]
    fn arithmetic_and_return() {
        let r = run(
            "proc f\nentry:\nmov rax, rdi\nadd rax, rsi\nret\n",
            &[40, 2],
        );
        assert_eq!(r, 42);
    }

    #[test]
    fn partial_width_merge() {
        // Writing al preserves upper rax bits; writing eax zeroes them.
        let r = run(
            "proc f\nentry:\nmov rax, rdi\nmov al, 0x7\nret\n",
            &[0xaabb_ccdd_eeff_1122],
        );
        assert_eq!(r, 0xaabb_ccdd_eeff_1107);
        let r = run(
            "proc f\nentry:\nmov rax, rdi\nmov eax, 0x7\nret\n",
            &[u64::MAX],
        );
        assert_eq!(r, 7);
    }

    #[test]
    fn conditional_branches() {
        let text =
            "proc f\nentry:\ncmp rdi, rsi\njl less\nmov rax, 0x1\nret\nless:\nxor eax, eax\nret\n";
        assert_eq!(run(text, &[5, 9]), 0);
        assert_eq!(run(text, &[9, 5]), 1);
        // Signed comparison: -1 < 0.
        assert_eq!(run(text, &[u64::MAX, 0]), 0);
    }

    #[test]
    fn unsigned_comparison() {
        let text = "proc f\nentry:\ncmp rdi, rsi\njb below\nmov rax, 0x1\nret\nbelow:\nxor eax, eax\nret\n";
        // Unsigned: u64::MAX is huge.
        assert_eq!(run(text, &[u64::MAX, 0]), 1);
        assert_eq!(run(text, &[0, 1]), 0);
    }

    #[test]
    fn setcc_and_movzx() {
        let text = "proc f\nentry:\ncmp rdi, rsi\nsete al\nmovzx rax, al\nret\n";
        assert_eq!(run(text, &[3, 3]), 1);
        assert_eq!(run(text, &[3, 4]), 0);
    }

    #[test]
    fn cmov_semantics() {
        let text =
            "proc f\nentry:\nmov rax, rdi\nmov rdx, 0x63\ncmp rsi, 0x0\ncmove rax, rdx\nret\n";
        assert_eq!(run(text, &[7, 0]), 0x63);
        assert_eq!(run(text, &[7, 1]), 7);
    }

    #[test]
    fn push_pop_roundtrip() {
        let text = "proc f\nentry:\npush rdi\npush rsi\npop rax\npop rdx\nadd rax, rdx\nret\n";
        assert_eq!(run(text, &[30, 12]), 42);
    }

    #[test]
    fn loads_and_stores_le() {
        let p = parse_proc(
            "proc f\nentry:\nmov dword ptr [rdi], esi\nmovzx rax, byte ptr [rdi+0x1]\nret\n",
        )
        .expect("parses");
        let mut mem = Memory::new();
        let mut host = StdHost::default();
        let r = run_procedure(&p, &[0x1000, 0xa1b2c3d4], &mut mem, &mut host).expect("runs");
        assert_eq!(r, 0xc3);
    }

    #[test]
    fn lea_computes_address_arithmetic() {
        let r = run(
            "proc f\nentry:\nlea rax, [rdi+rsi*4+0x13]\nret\n",
            &[100, 3],
        );
        assert_eq!(r, 100 + 12 + 0x13);
    }

    #[test]
    fn calls_clobber_caller_saved() {
        // r10 is caller-saved: holding a value across a call must break.
        let text = "proc f\nentry:\nmov r10, rdi\nmov rdi, 0x0\ncall cleanup\nmov rax, r10\nret\n";
        let r = run(text, &[42]);
        assert_ne!(r, 42, "r10 must be clobbered by the call");
        // rbx is callee-saved in our host model: survives.
        let text2 = "proc f\nentry:\nmov rbx, rdi\ncall cleanup\nmov rax, rbx\nret\n";
        assert_eq!(run(text2, &[42]), 42);
    }

    #[test]
    fn call_passes_args_and_returns() {
        let p = parse_proc("proc f\nentry:\nmov rdi, 0x40\ncall strlen/1\nret\n").expect("ok");
        let mut mem = Memory::new();
        mem.write_u8(0x40, b'h');
        mem.write_u8(0x41, b'i');
        let mut host = StdHost::default();
        let r = run_procedure(&p, &[], &mut mem, &mut host).expect("runs");
        assert_eq!(r, 2);
    }

    #[test]
    fn infinite_loop_exhausts_fuel() {
        let p = parse_proc("proc f\nentry:\nspin:\njmp spin\n").expect("ok");
        let mut mem = Memory::new();
        let mut host = StdHost::default();
        let e = run_procedure_fuel(&p, &[], &mut mem, &mut host, 100);
        assert_eq!(e, Err(EmuError::OutOfFuel));
    }

    #[test]
    fn shift_by_zero_preserves_flags() {
        // cmp sets ZF; shl by 0 must not disturb it.
        let text = "proc f\nentry:\ncmp rdi, rdi\nshl rsi, 0x0\nsete al\nmovzx rax, al\nret\n";
        assert_eq!(run(text, &[5, 1]), 1);
    }

    #[test]
    fn sar_is_arithmetic() {
        let r = run(
            "proc f\nentry:\nmov rax, rdi\nsar rax, 0x4\nret\n",
            &[(-256i64) as u64],
        );
        assert_eq!(r as i64, -16);
    }
}
