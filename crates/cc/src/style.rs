//! Vendor/version/optimization "styles": the knobs that make two
//! compilations of the same source differ syntactically.
//!
//! The paper's premise is that gcc, CLang and icc produce binaries that
//! "differ vastly in syntax" for the same source (§1), and that even
//! versions of one compiler differ. Each [`Style`] field captures one
//! concrete axis of that divergence, grounded in real compiler behaviour:
//! frame-pointer omission, register-allocation preference order,
//! instruction-selection idioms (lea-arithmetic, xor-zeroing, inc/dec,
//! test-vs-cmp), loop rotation, and scheduling noise.

use esh_asm::Reg64;
use std::fmt;

/// Compiler vendor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Vendor {
    /// GNU gcc analogue.
    Gcc,
    /// LLVM CLang analogue.
    Clang,
    /// Intel icc analogue.
    Icc,
}

impl Vendor {
    /// All vendors.
    pub const ALL: [Vendor; 3] = [Vendor::Gcc, Vendor::Clang, Vendor::Icc];

    /// Lowercase name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Vendor::Gcc => "gcc",
            Vendor::Clang => "clang",
            Vendor::Icc => "icc",
        }
    }
}

impl fmt::Display for Vendor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A compiler version (major.minor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VendorVersion {
    /// Major component.
    pub major: u8,
    /// Minor component.
    pub minor: u8,
}

impl VendorVersion {
    /// Creates a version.
    pub fn new(major: u8, minor: u8) -> VendorVersion {
        VendorVersion { major, minor }
    }

    /// A single ordering key.
    fn key(self) -> u16 {
        u16::from(self.major) << 8 | u16::from(self.minor)
    }
}

impl fmt::Display for VendorVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.major, self.minor)
    }
}

/// Optimization level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OptLevel {
    /// No optimization: everything lives on the stack.
    O0,
    /// The default for most packages in the paper's corpus (§5.2).
    O2,
    /// OpenSSL's default (§5.2): more promotion, more idioms.
    O3,
}

impl fmt::Display for OptLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptLevel::O0 => write!(f, "-O0"),
            OptLevel::O2 => write!(f, "-O2"),
            OptLevel::O3 => write!(f, "-O3"),
        }
    }
}

/// How `x * constant` is selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MulIdiom {
    /// Always `imul dst, src, imm`.
    Imul,
    /// Prefer `lea`/`shl`/`add` strength reduction where possible.
    LeaShift,
}

/// The resolved set of code-generation choices.
#[derive(Debug, Clone)]
pub struct Style {
    /// Keep a frame pointer (`rbp`) and address locals off it.
    pub frame_pointer: bool,
    /// Callee-saved registers in promotion-preference order.
    pub promote_order: Vec<Reg64>,
    /// How many locals may be promoted to registers.
    pub promote_limit: usize,
    /// Caller-saved scratch registers in acquisition order (never `rcx`,
    /// which is reserved for dynamic shift counts).
    pub scratch_order: Vec<Reg64>,
    /// Zero a register with `xor r, r` instead of `mov r, 0`.
    pub xor_zeroing: bool,
    /// Use `inc`/`dec` for ±1.
    pub inc_dec: bool,
    /// Use `test r, r` instead of `cmp r, 0`.
    pub test_for_zero: bool,
    /// Fuse `a + b` / `a + c` into `lea` when both sides are registers.
    pub lea_arith: bool,
    /// Strength-reduce multiplications.
    pub mul_idiom: MulIdiom,
    /// Convert two-armed value-only `if`s into `cmov`.
    pub use_cmov: bool,
    /// Rotate loops (condition test at the bottom, guarded entry jump).
    pub rotate_loops: bool,
    /// Evaluate call arguments left-to-right (`false` = right-to-left).
    pub args_left_to_right: bool,
    /// Allocate stack slots in declaration order (`false` = reversed).
    pub slots_in_decl_order: bool,
    /// Emit a shared epilogue block (`false` = inline `ret` per return).
    pub shared_epilogue: bool,
    /// Insert icc-style staging moves through an extra register.
    pub redundant_moves: bool,
    /// Label prefix, cosmetic vendor fingerprint.
    pub label_prefix: &'static str,
}

impl Style {
    /// Resolves the style for a vendor/version/optimization triple.
    ///
    /// Version thresholds are modelled after the real toolchains the paper
    /// uses: gcc 4.6 → 4.9 gains lea-arithmetic, loop rotation and cmov;
    /// CLang 3.4 → 3.5 changes scratch ordering and gains cmov at `-O2`;
    /// icc 14 → 15 drops some staging moves and changes multiply selection.
    pub fn resolve(vendor: Vendor, version: VendorVersion, opt: OptLevel) -> Style {
        use Reg64::*;
        let v = version.key();
        let optimized = opt != OptLevel::O0;
        match vendor {
            Vendor::Gcc => Style {
                frame_pointer: !optimized || v < VendorVersion::new(4, 8).key(),
                promote_order: vec![Rbx, R12, R13, R14, R15],
                promote_limit: match opt {
                    OptLevel::O0 => 0,
                    OptLevel::O2 => 3,
                    OptLevel::O3 => 5,
                },
                scratch_order: vec![Rax, Rdx, Rsi, Rdi, R8, R9, R10, R11],
                xor_zeroing: optimized,
                inc_dec: v < VendorVersion::new(4, 9).key(),
                test_for_zero: optimized,
                lea_arith: optimized && v >= VendorVersion::new(4, 8).key(),
                mul_idiom: if optimized {
                    MulIdiom::LeaShift
                } else {
                    MulIdiom::Imul
                },
                use_cmov: match opt {
                    OptLevel::O0 => false,
                    OptLevel::O2 => v >= VendorVersion::new(4, 9).key(),
                    OptLevel::O3 => true,
                },
                rotate_loops: optimized && v >= VendorVersion::new(4, 8).key(),
                args_left_to_right: false,
                slots_in_decl_order: true,
                shared_epilogue: true,
                redundant_moves: false,
                label_prefix: ".L",
            },
            Vendor::Clang => Style {
                frame_pointer: !optimized,
                promote_order: vec![R14, R15, Rbx, R12, R13],
                promote_limit: match opt {
                    OptLevel::O0 => 0,
                    OptLevel::O2 => 4,
                    OptLevel::O3 => 5,
                },
                scratch_order: if v >= VendorVersion::new(3, 5).key() {
                    vec![Rax, Rsi, Rdx, Rdi, R8, R9, R11, R10]
                } else {
                    vec![Rax, Rdi, Rsi, Rdx, R8, R10, R11, R9]
                },
                xor_zeroing: optimized,
                inc_dec: false,
                test_for_zero: optimized,
                lea_arith: optimized,
                mul_idiom: if optimized {
                    MulIdiom::LeaShift
                } else {
                    MulIdiom::Imul
                },
                use_cmov: optimized && v >= VendorVersion::new(3, 5).key(),
                rotate_loops: false,
                args_left_to_right: true,
                slots_in_decl_order: false,
                shared_epilogue: false,
                redundant_moves: false,
                label_prefix: ".LBB",
            },
            Vendor::Icc => Style {
                frame_pointer: !optimized,
                promote_order: vec![R12, R13, R14, Rbx, R15],
                promote_limit: match opt {
                    OptLevel::O0 => 0,
                    OptLevel::O2 => 3,
                    OptLevel::O3 => 4,
                },
                scratch_order: vec![Rdx, Rax, R9, R10, Rsi, Rdi, R8, R11],
                xor_zeroing: optimized,
                inc_dec: true,
                test_for_zero: false,
                lea_arith: optimized,
                mul_idiom: if v >= VendorVersion::new(15, 0).key() {
                    MulIdiom::LeaShift
                } else {
                    MulIdiom::Imul
                },
                use_cmov: opt == OptLevel::O3,
                rotate_loops: optimized,
                args_left_to_right: true,
                slots_in_decl_order: true,
                shared_epilogue: true,
                redundant_moves: v < VendorVersion::new(15, 0).key(),
                label_prefix: "..B",
            },
        }
    }
}

/// A `(vendor, version, opt)` triple identifying one toolchain
/// configuration; the unit of the paper's compiler matrix (§5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Toolchain {
    /// Vendor.
    pub vendor: Vendor,
    /// Version.
    pub version: VendorVersion,
    /// Optimization level.
    pub opt: OptLevel,
}

impl Toolchain {
    /// Creates a toolchain at `-O2` (the corpus default).
    pub fn new(vendor: Vendor, version: VendorVersion) -> Toolchain {
        Toolchain {
            vendor,
            version,
            opt: OptLevel::O2,
        }
    }

    /// The paper's full compiler matrix: gcc 4.{6,8,9}, CLang 3.{4,5},
    /// icc {14.0, 15.0} (§5.3), at `-O2`.
    pub fn paper_matrix() -> Vec<Toolchain> {
        vec![
            Toolchain::new(Vendor::Gcc, VendorVersion::new(4, 6)),
            Toolchain::new(Vendor::Gcc, VendorVersion::new(4, 8)),
            Toolchain::new(Vendor::Gcc, VendorVersion::new(4, 9)),
            Toolchain::new(Vendor::Clang, VendorVersion::new(3, 4)),
            Toolchain::new(Vendor::Clang, VendorVersion::new(3, 5)),
            Toolchain::new(Vendor::Icc, VendorVersion::new(14, 0)),
            Toolchain::new(Vendor::Icc, VendorVersion::new(15, 0)),
        ]
    }
}

impl fmt::Display for Toolchain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.vendor, self.version, self.opt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn styles_differ_across_vendors() {
        let o2 = OptLevel::O2;
        let gcc = Style::resolve(Vendor::Gcc, VendorVersion::new(4, 9), o2);
        let clang = Style::resolve(Vendor::Clang, VendorVersion::new(3, 5), o2);
        let icc = Style::resolve(Vendor::Icc, VendorVersion::new(15, 0), o2);
        assert_ne!(gcc.promote_order, clang.promote_order);
        assert_ne!(clang.promote_order, icc.promote_order);
        assert_ne!(gcc.scratch_order, icc.scratch_order);
        assert_ne!(gcc.label_prefix, clang.label_prefix);
    }

    #[test]
    fn versions_change_idioms() {
        let o2 = OptLevel::O2;
        let g46 = Style::resolve(Vendor::Gcc, VendorVersion::new(4, 6), o2);
        let g49 = Style::resolve(Vendor::Gcc, VendorVersion::new(4, 9), o2);
        assert!(!g46.lea_arith && g49.lea_arith);
        assert!(g46.inc_dec && !g49.inc_dec);
        assert!(!g46.use_cmov && g49.use_cmov);
    }

    #[test]
    fn o0_pins_everything_to_the_stack() {
        for vendor in Vendor::ALL {
            let s = Style::resolve(vendor, VendorVersion::new(9, 9), OptLevel::O0);
            assert_eq!(s.promote_limit, 0);
            assert!(s.frame_pointer);
            assert!(!s.use_cmov);
        }
    }

    #[test]
    fn scratch_never_contains_rcx_or_callee_saved() {
        for vendor in Vendor::ALL {
            for opt in [OptLevel::O0, OptLevel::O2, OptLevel::O3] {
                let s = Style::resolve(vendor, VendorVersion::new(4, 9), opt);
                assert!(!s.scratch_order.contains(&Reg64::Rcx));
                for r in &s.promote_order {
                    assert!(!s.scratch_order.contains(r), "{vendor}: {r} in both");
                }
            }
        }
    }

    #[test]
    fn paper_matrix_has_seven_toolchains() {
        let m = Toolchain::paper_matrix();
        assert_eq!(m.len(), 7);
        assert_eq!(m.iter().filter(|t| t.vendor == Vendor::Gcc).count(), 3);
    }
}
