#![warn(missing_docs)]

//! # esh-cc — a synthetic multi-vendor compiler
//!
//! The paper's experiments hinge on the same source code being compiled by
//! gcc 4.{6,8,9}, CLang 3.{4,5} and icc {14,15} into syntactically very
//! different — but semantically equal — binaries (§5.3). This crate is the
//! substitute toolchain: a MiniC → x86-64 compiler whose code generation is
//! parameterized by a vendor/version/optimization [`Style`], plus the
//! [`emu`] x86-64 emulator used to differentially test every backend
//! against the MiniC reference interpreter.
//!
//! ## Example
//!
//! ```
//! use esh_cc::{emu, Compiler, Vendor, VendorVersion};
//! use esh_minic::{demo, Memory, StdHost};
//!
//! let f = demo::saturating_sum();
//! let icc = Compiler::new(Vendor::Icc, VendorVersion::new(15, 0));
//! let proc_ = icc.compile_function(&f);
//!
//! let mut mem = Memory::new();
//! let mut host = StdHost::default();
//! let r = emu::run_procedure(&proc_, &[7, 3], &mut mem, &mut host)?;
//! assert_eq!(r, 10);
//! # Ok::<(), esh_cc::emu::EmuError>(())
//! ```

mod codegen;
mod compiler;
pub mod emu;
pub mod normalize;
mod peephole;
mod style;

pub use compiler::Compiler;
pub use style::{MulIdiom, OptLevel, Style, Toolchain, Vendor, VendorVersion};
