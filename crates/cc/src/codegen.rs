//! MiniC → x86-64 code generation, parameterized by a [`Style`].
//!
//! The generator is deliberately simple (stack homes + register promotion +
//! per-statement expression evaluation through a scratch pool) but every
//! choice point is driven by the style, so two styles produce visibly
//! different instruction streams for the same source — which is exactly the
//! phenomenon the paper's search problem is about.

use std::collections::HashMap;

use esh_asm::{
    BasicBlock, Cond, Inst, Mem, Operand, Procedure, Reg64, Scale, ShiftAmount, Width, ARG_REGS,
};
use esh_minic::{BinOp, Expr, Function, MemWidth, Stmt, UnOp};

use crate::normalize::normalize;
use crate::style::{MulIdiom, Style};

fn asm_width(w: MemWidth) -> Width {
    match w {
        MemWidth::W8 => Width::W8,
        MemWidth::W16 => Width::W16,
        MemWidth::W32 => Width::W32,
        MemWidth::W64 => Width::W64,
    }
}

/// Where a MiniC variable lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Home {
    /// Promoted to a callee-saved register.
    Reg(Reg64),
    /// Stack slot index (0-based).
    Slot(usize),
}

struct Cg<'a> {
    style: &'a Style,
    blocks: Vec<BasicBlock>,
    homes: HashMap<String, Home>,
    saved: Vec<Reg64>,
    slot_count: usize,
    in_use: Vec<Reg64>,
    label_count: usize,
    epilogue_label: String,
    staging_counter: usize,
    /// `(continue target, break target)` per enclosing loop.
    loop_labels: Vec<(String, String)>,
}

impl<'a> Cg<'a> {
    fn cur(&mut self) -> &mut BasicBlock {
        self.blocks.last_mut().expect("at least one block")
    }

    fn emit(&mut self, inst: Inst) {
        self.cur().push(inst);
    }

    fn fresh_label(&mut self) -> String {
        self.label_count += 1;
        format!("{}{}", self.style.label_prefix, self.label_count)
    }

    fn start_block(&mut self, label: String) {
        self.blocks.push(BasicBlock::new(label));
    }

    // ---- scratch pool -------------------------------------------------

    fn acquire(&mut self) -> Reg64 {
        let r = self
            .style
            .scratch_order
            .iter()
            .find(|r| !self.in_use.contains(r))
            .copied()
            .unwrap_or_else(|| panic!("scratch pool exhausted (normalize bug)"));
        self.in_use.push(r);
        r
    }

    fn release(&mut self, r: Reg64) {
        if let Some(pos) = self.in_use.iter().position(|&x| x == r) {
            self.in_use.remove(pos);
        }
    }

    // ---- homes --------------------------------------------------------

    fn slot_mem(&self, idx: usize) -> Mem {
        if self.style.frame_pointer {
            // Saved registers sit right below rbp; locals below them.
            let off = -8 * (self.saved.len() as i64 + 1 + idx as i64);
            Mem::base_disp(Width::W64, Reg64::Rbp, off)
        } else {
            Mem::base_disp(Width::W64, Reg64::Rsp, 8 * idx as i64)
        }
    }

    fn home_operand(&self, name: &str) -> Operand {
        match self.homes.get(name) {
            Some(Home::Reg(r)) => Operand::Reg(r.full()),
            Some(Home::Slot(i)) => Operand::Mem(self.slot_mem(*i)),
            None => panic!("unhomed variable `{name}` (validator bug)"),
        }
    }

    fn store_home(&mut self, name: &str, src: Reg64) {
        match self.home_operand(name) {
            Operand::Reg(r) if r.base == src => {}
            dst => self.emit(Inst::Mov {
                dst,
                src: Operand::Reg(src.full()),
            }),
        }
    }

    // ---- expressions ----------------------------------------------------

    /// Loads a constant into `r` using the style's idiom.
    fn load_const(&mut self, r: Reg64, c: i64) {
        if c == 0 && self.style.xor_zeroing {
            self.emit(Inst::Xor {
                dst: Operand::Reg(r.view(Width::W32)),
                src: Operand::Reg(r.view(Width::W32)),
            });
        } else {
            self.emit(Inst::Mov {
                dst: Operand::Reg(r.full()),
                src: Operand::Imm(c),
            });
        }
    }

    /// Evaluates a *leaf* into an operand usable as the source of most
    /// instructions, acquiring no scratch. Panics on non-leaves.
    fn leaf_operand(&self, e: &Expr) -> Operand {
        match e {
            Expr::Const(c) => Operand::Imm(*c),
            Expr::Var(v) => self.home_operand(v),
            _ => panic!("leaf_operand on non-leaf"),
        }
    }

    /// Evaluates `e` into an operand; non-leaves go through a scratch
    /// register which is returned for the caller to release.
    fn operand_of(&mut self, e: &Expr) -> (Operand, Option<Reg64>) {
        match e {
            Expr::Const(_) | Expr::Var(_) => (self.leaf_operand(e), None),
            _ => {
                let r = self.eval(e);
                (Operand::Reg(r.full()), Some(r))
            }
        }
    }

    /// Evaluates `e` into a register the caller must eventually release —
    /// reusing an existing register home is not allowed because the caller
    /// may mutate the result.
    fn eval(&mut self, e: &Expr) -> Reg64 {
        match e {
            Expr::Const(c) => {
                let r = self.acquire();
                self.load_const(r, *c);
                r
            }
            Expr::Var(v) => {
                let r = self.acquire();
                let src = self.home_operand(v);
                self.emit(Inst::Mov {
                    dst: Operand::Reg(r.full()),
                    src,
                });
                r
            }
            Expr::Unary(op, a) => self.eval_unary(*op, a),
            Expr::Binary(op, a, b) => self.eval_binary(*op, a, b),
            Expr::Load { addr, width } => {
                let (mem, release) = self.eval_addr(addr, asm_width(*width));
                let r = self.acquire();
                self.emit_load(r, mem);
                for rr in release {
                    self.release(rr);
                }
                r
            }
            Expr::Call { .. } => panic!("calls must be hoisted before codegen"),
        }
    }

    fn emit_load(&mut self, r: Reg64, mem: Mem) {
        match mem.width {
            Width::W64 => self.emit(Inst::Mov {
                dst: Operand::Reg(r.full()),
                src: Operand::Mem(mem),
            }),
            Width::W32 => self.emit(Inst::Mov {
                dst: Operand::Reg(r.view(Width::W32)),
                src: Operand::Mem(mem),
            }),
            _ => self.emit(Inst::MovZx {
                dst: r.full(),
                src: Operand::Mem(mem),
            }),
        }
    }

    fn eval_unary(&mut self, op: UnOp, a: &Expr) -> Reg64 {
        let r = self.eval(a);
        match op {
            UnOp::Neg => self.emit(Inst::Neg {
                dst: Operand::Reg(r.full()),
            }),
            UnOp::Not => self.emit(Inst::Not {
                dst: Operand::Reg(r.full()),
            }),
            UnOp::Trunc(MemWidth::W64) => {}
            UnOp::Trunc(MemWidth::W32) => {
                // A 32-bit self-move zero-extends.
                self.emit(Inst::Mov {
                    dst: Operand::Reg(r.view(Width::W32)),
                    src: Operand::Reg(r.view(Width::W32)),
                });
            }
            UnOp::Trunc(w) => {
                self.emit(Inst::MovZx {
                    dst: r.full(),
                    src: Operand::Reg(r.view(asm_width(w))),
                });
            }
            UnOp::Sext(MemWidth::W64) => {}
            UnOp::Sext(w) => {
                self.emit(Inst::MovSx {
                    dst: r.full(),
                    src: Operand::Reg(r.view(asm_width(w))),
                });
            }
        }
        r
    }

    fn eval_binary(&mut self, op: BinOp, a: &Expr, b: &Expr) -> Reg64 {
        if op.is_cmp() {
            return self.eval_comparison(op, a, b);
        }
        // lea fusion: reg + reg, or reg + small const.
        if op == BinOp::Add && self.style.lea_arith {
            if let Some(r) = self.try_lea_add(a, b) {
                return self.maybe_stage(r);
            }
        }
        if matches!(op, BinOp::Shl | BinOp::Shr | BinOp::Sar) {
            return self.eval_shift(op, a, b);
        }
        if op == BinOp::Mul {
            if let Expr::Const(c) = b {
                let r = self.eval(a);
                self.mul_by_const(r, *c);
                return self.maybe_stage(r);
            }
            if let Expr::Const(c) = a {
                let r = self.eval(b);
                self.mul_by_const(r, *c);
                return self.maybe_stage(r);
            }
        }
        let r = self.eval(a);
        let (src, release) = self.operand_of(b);
        let dst = Operand::Reg(r.full());
        match (op, &src) {
            (BinOp::Add, Operand::Imm(1)) if self.style.inc_dec => self.emit(Inst::Inc { dst }),
            (BinOp::Sub, Operand::Imm(1)) if self.style.inc_dec => self.emit(Inst::Dec { dst }),
            (BinOp::Add, _) => self.emit(Inst::Add { dst, src }),
            (BinOp::Sub, _) => self.emit(Inst::Sub { dst, src }),
            (BinOp::And, _) => self.emit(Inst::And { dst, src }),
            (BinOp::Or, _) => self.emit(Inst::Or { dst, src }),
            (BinOp::Xor, _) => self.emit(Inst::Xor { dst, src }),
            (BinOp::Mul, Operand::Imm(c)) => {
                let c = *c;
                self.mul_by_const(r, c);
            }
            (BinOp::Mul, _) => self.emit(Inst::Imul { dst: r.full(), src }),
            _ => unreachable!("cmp and shifts handled above"),
        }
        if let Some(rr) = release {
            self.release(rr);
        }
        self.maybe_stage(r)
    }

    /// icc-style staging: occasionally forward the result through another
    /// register (`mov rX, rY`), a deterministic source of move noise.
    fn maybe_stage(&mut self, r: Reg64) -> Reg64 {
        if !self.style.redundant_moves {
            return r;
        }
        self.staging_counter += 1;
        if !self.staging_counter.is_multiple_of(3) {
            return r;
        }
        let r2 = self.acquire();
        self.emit(Inst::Mov {
            dst: Operand::Reg(r2.full()),
            src: Operand::Reg(r.full()),
        });
        self.release(r);
        r2
    }

    fn try_lea_add(&mut self, a: &Expr, b: &Expr) -> Option<Reg64> {
        // Only fires when both sides are leaves that are (or can become)
        // registers; the common `p + i` / `x + 13` patterns.
        let a_leaf = matches!(a, Expr::Const(_) | Expr::Var(_));
        let b_leaf = matches!(b, Expr::Const(_) | Expr::Var(_));
        if !a_leaf || !b_leaf {
            return None;
        }
        match (a, b) {
            (Expr::Var(_), Expr::Const(c)) => {
                let ra = self.eval(a);
                let dst = self.acquire();
                self.emit(Inst::Lea {
                    dst: dst.full(),
                    addr: Mem::base_disp(Width::W64, ra, *c),
                });
                self.release(ra);
                Some(dst)
            }
            (Expr::Var(_), Expr::Var(_)) => {
                let ra = self.eval(a);
                let rb = self.eval(b);
                let dst = self.acquire();
                self.emit(Inst::Lea {
                    dst: dst.full(),
                    addr: Mem::base_index(Width::W64, ra, rb, Scale::S1, 0),
                });
                self.release(ra);
                self.release(rb);
                Some(dst)
            }
            _ => None,
        }
    }

    fn eval_shift(&mut self, op: BinOp, a: &Expr, b: &Expr) -> Reg64 {
        let r = self.eval(a);
        let dst = Operand::Reg(r.full());
        let amount = match b {
            Expr::Const(c) => ShiftAmount::Imm((*c & 63) as u8),
            _ => {
                // Dynamic shift: the count goes through rcx, which is kept
                // out of every scratch pool for exactly this purpose.
                let (src, release) = self.operand_of(b);
                self.emit(Inst::Mov {
                    dst: Operand::Reg(Reg64::Rcx.full()),
                    src,
                });
                if let Some(rr) = release {
                    self.release(rr);
                }
                ShiftAmount::Cl
            }
        };
        match op {
            BinOp::Shl => self.emit(Inst::Shl { dst, amount }),
            BinOp::Shr => self.emit(Inst::Shr { dst, amount }),
            BinOp::Sar => self.emit(Inst::Sar { dst, amount }),
            _ => unreachable!(),
        }
        self.maybe_stage(r)
    }

    fn mul_by_const(&mut self, r: Reg64, c: i64) {
        let dst = Operand::Reg(r.full());
        if self.style.mul_idiom == MulIdiom::Imul {
            self.emit(Inst::ImulImm {
                dst: r.full(),
                src: Operand::Reg(r.full()),
                imm: c,
            });
            return;
        }
        match c {
            0 => self.load_const(r, 0),
            1 => {}
            2 => self.emit(Inst::Add { dst, src: dst }),
            c if c > 0 && (c as u64).is_power_of_two() => {
                self.emit(Inst::Shl {
                    dst,
                    amount: ShiftAmount::Imm((c as u64).trailing_zeros() as u8),
                });
            }
            3 | 5 | 9 => {
                let scale = Scale::from_factor((c - 1) as u64).expect("2/4/8");
                self.emit(Inst::Lea {
                    dst: r.full(),
                    addr: Mem::base_index(Width::W64, r, r, scale, 0),
                });
            }
            6 | 10 | 18 => {
                let scale = Scale::from_factor((c / 2 - 1) as u64).expect("2/4/8");
                self.emit(Inst::Lea {
                    dst: r.full(),
                    addr: Mem::base_index(Width::W64, r, r, scale, 0),
                });
                self.emit(Inst::Add { dst, src: dst });
            }
            _ => self.emit(Inst::ImulImm {
                dst: r.full(),
                src: Operand::Reg(r.full()),
                imm: c,
            }),
        }
    }

    fn eval_comparison(&mut self, op: BinOp, a: &Expr, b: &Expr) -> Reg64 {
        let r = self.eval(a);
        let (src, release) = self.operand_of(b);
        self.emit_compare(r, src);
        if let Some(rr) = release {
            self.release(rr);
        }
        let cond = cond_of(op);
        // Materialize: setcc low byte, then zero-extend.
        self.emit(Inst::Set {
            cond,
            dst: Operand::Reg(r.view(Width::W8)),
        });
        self.emit(Inst::MovZx {
            dst: r.full(),
            src: Operand::Reg(r.view(Width::W8)),
        });
        r
    }

    fn emit_compare(&mut self, a: Reg64, b: Operand) {
        if matches!(b, Operand::Imm(0)) && self.style.test_for_zero {
            self.emit(Inst::Test {
                a: Operand::Reg(a.full()),
                b: Operand::Reg(a.full()),
            });
        } else {
            self.emit(Inst::Cmp {
                a: Operand::Reg(a.full()),
                b,
            });
        }
    }

    /// Computes a memory operand for an address expression, folding
    /// `base + const` and `base + index` shapes.
    fn eval_addr(&mut self, e: &Expr, width: Width) -> (Mem, Vec<Reg64>) {
        match e {
            Expr::Binary(BinOp::Add, a, b) => match (&**a, &**b) {
                (inner, Expr::Const(c)) => {
                    let (mut mem, rel) = self.eval_addr(inner, width);
                    mem.disp += c;
                    (mem, rel)
                }
                (Expr::Const(c), inner) => {
                    let (mut mem, rel) = self.eval_addr(inner, width);
                    mem.disp += c;
                    (mem, rel)
                }
                (_, _) => {
                    let ra = self.eval(a);
                    let rb = self.eval(b);
                    (Mem::base_index(width, ra, rb, Scale::S1, 0), vec![ra, rb])
                }
            },
            _ => {
                let r = self.eval(e);
                (Mem::base(width, r), vec![r])
            }
        }
    }

    // ---- statements ---------------------------------------------------

    fn gen_call(&mut self, name: &str, args: &[Expr]) {
        let order: Vec<usize> = if self.style.args_left_to_right {
            (0..args.len()).collect()
        } else {
            (0..args.len()).rev().collect()
        };
        for i in order {
            let src = self.leaf_operand(&args[i]);
            let dst = Operand::Reg(ARG_REGS[i].full());
            match (&dst, &src) {
                (Operand::Reg(d), Operand::Reg(s)) if d == s => {}
                _ => {
                    if matches!(src, Operand::Imm(0)) && self.style.xor_zeroing {
                        self.load_const(ARG_REGS[i], 0);
                    } else {
                        self.emit(Inst::Mov { dst, src });
                    }
                }
            }
        }
        self.emit(Inst::Call {
            target: name.to_string(),
            args: args.len() as u8,
        });
    }

    fn assign_var(&mut self, name: &str, value: &Expr) {
        if let Expr::Call { name: callee, args } = value {
            self.gen_call(callee, args);
            self.store_home(name, Reg64::Rax);
            return;
        }
        // Direct constant to memory/reg home without a scratch when leaf.
        match value {
            Expr::Const(c) => {
                let dst = self.home_operand(name);
                if *c == 0 && self.style.xor_zeroing {
                    if let Operand::Reg(r) = dst {
                        self.load_const(r.base, 0);
                        return;
                    }
                }
                self.emit(Inst::Mov {
                    dst,
                    src: Operand::Imm(*c),
                });
            }
            _ => {
                let r = self.eval(value);
                self.store_home(name, r);
                self.release(r);
            }
        }
    }

    /// Emits a conditional branch to `target` taken when `cond` is false
    /// (`negate = true`) or true (`negate = false`).
    fn branch_on(&mut self, cond: &Expr, target: &str, negate: bool) {
        if let Expr::Binary(op, a, b) = cond {
            if op.is_cmp() {
                let r = self.eval(a);
                let (src, release) = self.operand_of(b);
                self.emit_compare(r, src);
                self.release(r);
                if let Some(rr) = release {
                    self.release(rr);
                }
                let mut c = cond_of(*op);
                if negate {
                    c = c.negate();
                }
                self.emit(Inst::Jcc {
                    cond: c,
                    target: target.to_string(),
                });
                return;
            }
        }
        let r = self.eval(cond);
        self.emit_compare(r, Operand::Imm(0));
        self.release(r);
        let c = if negate { Cond::E } else { Cond::Ne };
        self.emit(Inst::Jcc {
            cond: c,
            target: target.to_string(),
        });
    }

    /// Attempts the cmov pattern: `if (c) x = leaf;` with empty else.
    fn try_cmov(&mut self, cond: &Expr, then_body: &[Stmt], else_body: &[Stmt]) -> bool {
        if !self.style.use_cmov || !else_body.is_empty() || then_body.len() != 1 {
            return false;
        }
        let (name, value) = match &then_body[0] {
            Stmt::Assign { name, value } if matches!(value, Expr::Const(_) | Expr::Var(_)) => {
                (name, value)
            }
            _ => return false,
        };
        let (op, a, b) = match cond {
            Expr::Binary(op, a, b) if op.is_cmp() => (*op, &**a, &**b),
            _ => return false,
        };
        // current value and new value first (flag-neutral movs)...
        let rcur = self.eval(&Expr::Var(name.clone()));
        let rnew = self.eval(value);
        // ...then the comparison and the conditional move.
        let ra = self.eval(a);
        let (src, release) = self.operand_of(b);
        self.emit_compare(ra, src);
        self.release(ra);
        if let Some(rr) = release {
            self.release(rr);
        }
        self.emit(Inst::Cmov {
            cond: cond_of(op),
            dst: rcur.full(),
            src: Operand::Reg(rnew.full()),
        });
        self.store_home(name, rcur);
        self.release(rcur);
        self.release(rnew);
        true
    }

    fn gen_stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Let { name, init } | Stmt::Assign { name, value: init } => {
                self.assign_var(name, init);
            }
            Stmt::Store { addr, width, value } => {
                let w = asm_width(*width);
                // The value must end up in a register or immediate: x86 has
                // no memory-to-memory moves.
                let (src, src_rel) = match self.operand_of(value) {
                    (Operand::Mem(m), rel) => {
                        debug_assert!(rel.is_none(), "slot operands acquire no scratch");
                        let r = self.acquire();
                        self.emit(Inst::Mov {
                            dst: Operand::Reg(r.full()),
                            src: Operand::Mem(m),
                        });
                        (Operand::Reg(r.full()), Some(r))
                    }
                    other => other,
                };
                let (mem, addr_rel) = self.eval_addr(addr, w);
                let src = match src {
                    Operand::Reg(r) => Operand::Reg(r.base.view(w)),
                    other => other,
                };
                self.emit(Inst::Mov {
                    dst: Operand::Mem(mem),
                    src,
                });
                if let Some(r) = src_rel {
                    self.release(r);
                }
                for r in addr_rel {
                    self.release(r);
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                if self.try_cmov(cond, then_body, else_body) {
                    return;
                }
                if else_body.is_empty() {
                    let end = self.fresh_label();
                    self.branch_on(cond, &end, true);
                    let body_label = self.fresh_label();
                    self.start_block(body_label);
                    self.gen_block(then_body);
                    self.start_block(end);
                } else {
                    let els = self.fresh_label();
                    let end = self.fresh_label();
                    self.branch_on(cond, &els, true);
                    let body_label = self.fresh_label();
                    self.start_block(body_label);
                    self.gen_block(then_body);
                    self.emit(Inst::Jmp {
                        target: end.clone(),
                    });
                    self.start_block(els);
                    self.gen_block(else_body);
                    self.start_block(end);
                }
            }
            Stmt::While { cond, body } => {
                if self.style.rotate_loops {
                    let test = self.fresh_label();
                    let body_label = self.fresh_label();
                    let after = self.fresh_label();
                    self.emit(Inst::Jmp {
                        target: test.clone(),
                    });
                    self.start_block(body_label.clone());
                    self.loop_labels.push((test.clone(), after.clone()));
                    self.gen_block(body);
                    self.loop_labels.pop();
                    self.start_block(test);
                    self.branch_on(cond, &body_label, false);
                    self.start_block(after);
                } else {
                    let head = self.fresh_label();
                    let end = self.fresh_label();
                    self.start_block(head.clone());
                    self.branch_on(cond, &end, true);
                    let body_label = self.fresh_label();
                    self.start_block(body_label);
                    self.loop_labels.push((head.clone(), end.clone()));
                    self.gen_block(body);
                    self.loop_labels.pop();
                    self.emit(Inst::Jmp { target: head });
                    self.start_block(end);
                }
            }
            Stmt::Return(e) => {
                match e {
                    Some(Expr::Call { name, args }) => {
                        // Tail value: result is already in rax after the call.
                        self.gen_call(name, args);
                    }
                    Some(e) => {
                        let r = self.eval(e);
                        if r != Reg64::Rax {
                            self.emit(Inst::Mov {
                                dst: Operand::Reg(Reg64::Rax.full()),
                                src: Operand::Reg(r.full()),
                            });
                        }
                        self.release(r);
                    }
                    None => self.load_const(Reg64::Rax, 0),
                }
                if self.style.shared_epilogue {
                    let target = self.epilogue_label.clone();
                    self.emit(Inst::Jmp { target });
                } else {
                    self.emit_epilogue_insts();
                    self.emit(Inst::Ret);
                }
            }
            Stmt::ExprStmt(e) => {
                if let Expr::Call { name, args } = e {
                    self.gen_call(name, args);
                }
            }
            Stmt::Break => {
                let (_, brk) = self
                    .loop_labels
                    .last()
                    .cloned()
                    .expect("validator rejects break outside loops");
                self.emit(Inst::Jmp { target: brk });
                // Unreachable continuation block keeps layout well-formed.
                let cont = self.fresh_label();
                self.start_block(cont);
            }
            Stmt::Continue => {
                let (cont_target, _) = self
                    .loop_labels
                    .last()
                    .cloned()
                    .expect("validator rejects continue outside loops");
                self.emit(Inst::Jmp {
                    target: cont_target,
                });
                let cont = self.fresh_label();
                self.start_block(cont);
            }
        }
    }

    fn gen_block(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.gen_stmt(s);
        }
    }

    // ---- prologue / epilogue -------------------------------------------

    fn frame_bytes(&self) -> i64 {
        // Keep 16-byte alignment for realism.
        let n = 8 * self.slot_count as i64;
        (n + 15) & !15
    }

    fn emit_prologue(&mut self, params: &[String]) {
        if self.style.frame_pointer {
            self.emit(Inst::Push {
                src: Operand::Reg(Reg64::Rbp.full()),
            });
            self.emit(Inst::Mov {
                dst: Operand::Reg(Reg64::Rbp.full()),
                src: Operand::Reg(Reg64::Rsp.full()),
            });
            let saved: Vec<Reg64> = self.saved.clone();
            for r in saved {
                self.emit(Inst::Push {
                    src: Operand::Reg(r.full()),
                });
            }
            let bytes = self.frame_bytes();
            if bytes > 0 {
                self.emit(Inst::Sub {
                    dst: Operand::Reg(Reg64::Rsp.full()),
                    src: Operand::Imm(bytes),
                });
            }
        } else {
            let saved: Vec<Reg64> = self.saved.clone();
            for r in saved {
                self.emit(Inst::Push {
                    src: Operand::Reg(r.full()),
                });
            }
            let bytes = self.frame_bytes();
            if bytes > 0 {
                self.emit(Inst::Sub {
                    dst: Operand::Reg(Reg64::Rsp.full()),
                    src: Operand::Imm(bytes),
                });
            }
        }
        // Move parameters to their homes.
        for (i, p) in params.iter().enumerate().take(ARG_REGS.len()) {
            let src = Operand::Reg(ARG_REGS[i].full());
            match self.home_operand(p) {
                Operand::Reg(r) if r.base == ARG_REGS[i] => {}
                dst => self.emit(Inst::Mov { dst, src }),
            }
        }
    }

    fn emit_epilogue_insts(&mut self) {
        if self.style.frame_pointer {
            let saved: Vec<Reg64> = self.saved.clone();
            // Unwind to the saved-register area, restore, then the frame.
            let bytes = self.frame_bytes();
            if bytes > 0 {
                self.emit(Inst::Add {
                    dst: Operand::Reg(Reg64::Rsp.full()),
                    src: Operand::Imm(bytes),
                });
            }
            for r in saved.into_iter().rev() {
                self.emit(Inst::Pop {
                    dst: Operand::Reg(r.full()),
                });
            }
            self.emit(Inst::Pop {
                dst: Operand::Reg(Reg64::Rbp.full()),
            });
        } else {
            let bytes = self.frame_bytes();
            if bytes > 0 {
                self.emit(Inst::Add {
                    dst: Operand::Reg(Reg64::Rsp.full()),
                    src: Operand::Imm(bytes),
                });
            }
            let saved: Vec<Reg64> = self.saved.clone();
            for r in saved.into_iter().rev() {
                self.emit(Inst::Pop {
                    dst: Operand::Reg(r.full()),
                });
            }
        }
    }
}

fn cond_of(op: BinOp) -> Cond {
    match op {
        BinOp::Eq => Cond::E,
        BinOp::Ne => Cond::Ne,
        BinOp::Slt => Cond::L,
        BinOp::Sle => Cond::Le,
        BinOp::Ult => Cond::B,
        BinOp::Ule => Cond::Be,
        _ => panic!("not a comparison"),
    }
}

/// Collects every variable (params first, then `let`s in pre-order) with
/// its reference count.
fn collect_vars(f: &Function) -> Vec<(String, usize)> {
    fn count_expr(e: &Expr, counts: &mut HashMap<String, usize>) {
        match e {
            Expr::Var(v) => *counts.entry(v.clone()).or_default() += 1,
            Expr::Const(_) => {}
            Expr::Unary(_, a) | Expr::Load { addr: a, .. } => count_expr(a, counts),
            Expr::Binary(_, a, b) => {
                count_expr(a, counts);
                count_expr(b, counts);
            }
            Expr::Call { args, .. } => args.iter().for_each(|a| count_expr(a, counts)),
        }
    }
    fn walk(stmts: &[Stmt], order: &mut Vec<String>, counts: &mut HashMap<String, usize>) {
        for s in stmts {
            match s {
                Stmt::Let { name, init } => {
                    count_expr(init, counts);
                    if !order.contains(name) {
                        order.push(name.clone());
                    }
                }
                Stmt::Assign { name, value } => {
                    count_expr(value, counts);
                    *counts.entry(name.clone()).or_default() += 1;
                }
                Stmt::Store { addr, value, .. } => {
                    count_expr(addr, counts);
                    count_expr(value, counts);
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    count_expr(cond, counts);
                    walk(then_body, order, counts);
                    walk(else_body, order, counts);
                }
                Stmt::While { cond, body } => {
                    count_expr(cond, counts);
                    walk(body, order, counts);
                }
                Stmt::Return(Some(e)) | Stmt::ExprStmt(e) => count_expr(e, counts),
                Stmt::Return(None) | Stmt::Break | Stmt::Continue => {}
            }
        }
    }
    let mut order: Vec<String> = f.params.clone();
    let mut counts = HashMap::new();
    walk(&f.body, &mut order, &mut counts);
    order
        .into_iter()
        .map(|n| {
            let c = counts.get(&n).copied().unwrap_or(0);
            (n, c)
        })
        .collect()
}

/// Compiles one (already validated) MiniC function under `style`.
pub fn compile_function_with_style(style: &Style, f: &Function) -> Procedure {
    let f = normalize(f);
    let vars = collect_vars(&f);

    // Promotion: the most referenced variables get callee-saved registers.
    let mut by_use: Vec<&(String, usize)> = vars.iter().collect();
    by_use.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let mut homes = HashMap::new();
    let mut saved = Vec::new();
    for (i, (name, _)) in by_use.iter().take(style.promote_limit).enumerate() {
        if let Some(&reg) = style.promote_order.get(i) {
            homes.insert(name.clone(), Home::Reg(reg));
            saved.push(reg);
        }
    }
    // Stack slots for the rest.
    let mut slot_names: Vec<&String> = vars
        .iter()
        .map(|(n, _)| n)
        .filter(|n| !homes.contains_key(*n))
        .collect();
    if !style.slots_in_decl_order {
        slot_names.reverse();
    }
    let slot_count = slot_names.len();
    for (i, name) in slot_names.into_iter().enumerate() {
        homes.insert(name.clone(), Home::Slot(i));
    }

    let mut cg = Cg {
        style,
        blocks: vec![BasicBlock::new("entry")],
        homes,
        saved,
        slot_count,
        in_use: Vec::new(),
        label_count: 0,
        epilogue_label: format!("{}ret", style.label_prefix),
        staging_counter: 0,
        loop_labels: Vec::new(),
    };
    cg.emit_prologue(&f.params);
    cg.gen_block(&f.body);

    // Fall-off-the-end: synthesize `return 0`.
    let needs_tail = match cg.blocks.last() {
        Some(b) => b.terminator().is_none(),
        None => true,
    };
    if needs_tail {
        cg.gen_stmt(&Stmt::Return(None));
    }
    if cg.style.shared_epilogue {
        let label = cg.epilogue_label.clone();
        cg.start_block(label);
        cg.emit_epilogue_insts();
        cg.emit(Inst::Ret);
    }
    debug_assert!(cg.in_use.is_empty(), "scratch leak: {:?}", cg.in_use);

    let mut proc_ = Procedure::new(f.name.clone());
    proc_.blocks = cg
        .blocks
        .into_iter()
        .filter(|b| !b.insts.is_empty() || b.label != "entry")
        .collect();
    crate::peephole::run(style, &mut proc_);
    proc_
}
