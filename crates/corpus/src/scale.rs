//! Scale-tier corpus generation: a seeded stream of synthetic
//! procedures at 10k+ scale.
//!
//! The paper-shaped corpus ([`crate::CorpusConfig`]) materializes every
//! source function and every compiled procedure before returning — fine
//! at ~1500 procedures, hostile at 10k+. This module instead *streams*:
//! source functions are index-addressable
//! ([`esh_minic::gen::generate_scale_source`] re-seeds per index), so the
//! generator works through fixed-size chunks of sources, fans each chunk
//! across the compiler matrix with scoped threads, emits the chunk's
//! procedures, and drops everything before the next chunk.
//!
//! The emit order is deterministic and **source-major**: all compilations
//! of source 0 (in matrix order), then all of source 1, … — so a prefix
//! of the stream at any size covers the full compiler matrix as evenly
//! as possible, and `--procs N` truncates to exactly `N` procedures.

use esh_cc::{Compiler, OptLevel, Toolchain};
use esh_minic::gen::generate_scale_source;

use crate::{CompiledProc, Corpus, PatchTag};

/// Sources generated (and compiled across the matrix) per streaming
/// chunk. Bounds peak memory to `SCALE_CHUNK × matrix` procedures.
pub const SCALE_CHUNK: usize = 64;

/// The scale-tier compiler matrix: the paper's 7 vendor/version pairs
/// (gcc 4.{6,8,9}, CLang 3.{4,5}, icc {14,15}) each at `-O0`, `-O2` and
/// `-O3` — 21 toolchain configurations.
pub fn scale_matrix() -> Vec<Toolchain> {
    let mut matrix = Vec::new();
    for tc in Toolchain::paper_matrix() {
        for opt in [OptLevel::O0, OptLevel::O2, OptLevel::O3] {
            matrix.push(Toolchain { opt, ..tc });
        }
    }
    matrix
}

/// Knobs for the scale-tier generator.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Total procedures to emit (exact; the stream truncates).
    pub procs: usize,
    /// Generation seed.
    pub seed: u64,
    /// Package name stamped on every emitted procedure.
    pub package: String,
}

impl ScaleConfig {
    /// A configuration emitting exactly `procs` procedures from `seed`.
    pub fn new(procs: usize, seed: u64) -> ScaleConfig {
        ScaleConfig {
            procs,
            seed,
            package: "synth-scale".to_string(),
        }
    }

    /// Distinct source functions needed to cover `self.procs` emissions.
    pub fn source_count(&self) -> usize {
        self.procs.div_ceil(scale_matrix().len())
    }
}

/// Streams the scale corpus for `config`, calling `emit` once per
/// compiled procedure in the deterministic source-major order. Returns
/// the number of procedures emitted (== `config.procs`). Compiles with
/// one thread per toolchain configuration (the historical default).
pub fn stream_scale_corpus(
    config: &ScaleConfig,
    emit: impl FnMut(CompiledProc),
) -> usize {
    stream_scale_corpus_with_threads(config, scale_matrix().len(), emit)
}

/// [`stream_scale_corpus`] with at most `threads` compile threads per
/// chunk. The emitted stream is byte-identical for every thread count —
/// per-chunk results splice back in matrix order regardless of which
/// worker compiled them.
///
/// Memory stays bounded by one chunk ([`SCALE_CHUNK`] sources × the
/// 21-configuration matrix) regardless of `config.procs`.
pub fn stream_scale_corpus_with_threads(
    config: &ScaleConfig,
    threads: usize,
    mut emit: impl FnMut(CompiledProc),
) -> usize {
    let matrix = scale_matrix();
    let mut emitted = 0usize;
    let mut next_source = 0u64;
    while emitted < config.procs {
        let sources: Vec<_> = (0..SCALE_CHUNK as u64)
            .map(|k| generate_scale_source(config.seed, next_source + k))
            .collect();
        next_source += SCALE_CHUNK as u64;

        // The worker pool hands out matrix indices; collecting in
        // matrix order keeps the result deterministic.
        let compiled: Vec<Vec<esh_asm::Procedure>> =
            crate::pooled(matrix.len(), threads, |c| {
                let tc = &matrix[c];
                let cc = Compiler::with_opt(tc.vendor, tc.version, tc.opt);
                sources.iter().map(|f| cc.compile_function(f)).collect()
            });

        'chunk: for (s, source) in sources.iter().enumerate() {
            for (c, tc) in matrix.iter().enumerate() {
                if emitted == config.procs {
                    break 'chunk;
                }
                emit(CompiledProc {
                    package: config.package.clone(),
                    func: source.name.clone(),
                    cve: None,
                    toolchain: tc.to_string(),
                    patch: PatchTag::Original,
                    proc_: compiled[c][s].clone(),
                });
                emitted += 1;
            }
        }
    }
    emitted
}

/// Materializes the full scale corpus — convenient for benches and
/// tests; prefer [`stream_scale_corpus`] at 10k+ scale.
pub fn build_scale_corpus(config: &ScaleConfig) -> Corpus {
    let mut procs = Vec::with_capacity(config.procs);
    stream_scale_corpus(config, |p| procs.push(p));
    Corpus { procs }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_seven_vendors_times_three_opt_levels() {
        let m = scale_matrix();
        assert_eq!(m.len(), 21);
        let distinct: std::collections::HashSet<_> = m.iter().collect();
        assert_eq!(distinct.len(), 21);
    }

    #[test]
    fn stream_emits_exactly_n_deterministically() {
        let config = ScaleConfig::new(50, 77);
        let mut a = Vec::new();
        assert_eq!(stream_scale_corpus(&config, |p| a.push(p)), 50);
        assert_eq!(a.len(), 50);
        let mut b = Vec::new();
        stream_scale_corpus(&config, |p| b.push(p));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.proc_, y.proc_);
            assert_eq!(x.toolchain, y.toolchain);
        }
        // Source-major: the first 21 emissions are source 0 across the
        // whole matrix.
        assert!(a[..21].iter().all(|p| p.func == a[0].func));
        assert_ne!(a[21].func, a[0].func);
    }

    #[test]
    fn stream_spans_the_matrix_and_names_are_distinct() {
        let config = ScaleConfig::new(63, 5);
        let mut toolchains = std::collections::HashSet::new();
        let mut funcs = std::collections::HashSet::new();
        stream_scale_corpus(&config, |p| {
            toolchains.insert(p.toolchain.clone());
            funcs.insert(p.func.clone());
        });
        assert_eq!(toolchains.len(), 21);
        assert_eq!(funcs.len(), 3, "63 procs = 3 sources x 21 configs");
    }

    #[test]
    fn thread_count_never_changes_the_stream() {
        let config = ScaleConfig::new(47, 123);
        let mut full = Vec::new();
        stream_scale_corpus(&config, |p| full.push(p));
        for threads in [1, 4, 64] {
            let mut got = Vec::new();
            stream_scale_corpus_with_threads(&config, threads, |p| got.push(p));
            assert_eq!(got.len(), full.len(), "threads={threads}");
            for (x, y) in full.iter().zip(&got) {
                assert_eq!(x.proc_, y.proc_, "threads={threads}");
                assert_eq!(x.toolchain, y.toolchain, "threads={threads}");
            }
        }
    }

    #[test]
    fn truncation_mid_matrix_is_exact() {
        let config = ScaleConfig::new(25, 9);
        let mut n = 0;
        stream_scale_corpus(&config, |_| n += 1);
        assert_eq!(n, 25);
        assert_eq!(config.source_count(), 2);
    }
}
