#![warn(missing_docs)]

//! # esh-corpus — the evaluation test-bed
//!
//! Builds the substitute for the paper's corpus (§5.2–§5.3): eight
//! CVE-shaped vulnerable procedures (with patched source versions) plus a
//! large distractor set, each compiled across the full vendor/version
//! matrix — gcc 4.{6,8,9}, CLang 3.{4,5}, icc {14,15} — at the package's
//! default optimization level.
//!
//! Ground truth is tracked per compiled procedure: the originating
//! package, source function, toolchain and patch level. Two compiled
//! procedures are *similar* (a true positive for retrieval) when they
//! originate from the same source function, regardless of toolchain or
//! patch (§5.3 treats patched variants as targets to find).

pub mod scale;

use esh_asm::Procedure;
use esh_cc::{Compiler, OptLevel, Toolchain};
use esh_minic::patch::{apply_patch, PatchLevel};
use esh_minic::{demo, gen, Function};
use serde::{Deserialize, Serialize};

/// Patch level tag for ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PatchTag {
    /// The vulnerable original.
    Original,
    /// Patched with `n` edits.
    Patched(u8),
}

/// One compiled procedure with full ground-truth metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompiledProc {
    /// Package name (e.g. `openssl-1.0.1f`).
    pub package: String,
    /// Source function base name (patch suffixes stripped).
    pub func: String,
    /// CVE id when this is one of the vulnerable procedures.
    pub cve: Option<String>,
    /// Toolchain description, e.g. `gcc 4.9`.
    pub toolchain: String,
    /// Patch level.
    pub patch: PatchTag,
    /// The binary procedure.
    pub proc_: Procedure,
}

impl CompiledProc {
    /// True positives: same source function.
    pub fn same_source(&self, other: &CompiledProc) -> bool {
        self.func == other.func
    }

    /// A unique display name.
    pub fn display(&self) -> String {
        let patch = match self.patch {
            PatchTag::Original => String::new(),
            PatchTag::Patched(n) => format!(" (patched x{n})"),
        };
        format!(
            "{}:{} [{}]{}",
            self.package, self.func, self.toolchain, patch
        )
    }
}

/// Corpus construction knobs.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Toolchains to compile with.
    pub toolchains: Vec<Toolchain>,
    /// Number of generated distractor functions.
    pub distractors: usize,
    /// Seed for distractor generation.
    pub seed: u64,
    /// Include patched source versions of the CVE procedures.
    pub patched_versions: bool,
    /// Size of the `DEFINE_SORT_FUNCTIONS`-style template family (§6.6).
    pub template_family: usize,
    /// Include wrapper procedures (§6.6).
    pub wrappers: bool,
}

impl Default for CorpusConfig {
    fn default() -> CorpusConfig {
        CorpusConfig {
            toolchains: Toolchain::paper_matrix(),
            distractors: 24,
            seed: 0xe5e5,
            patched_versions: true,
            template_family: 4,
            wrappers: true,
        }
    }
}

impl CorpusConfig {
    /// A small configuration for tests (two toolchains, few distractors).
    pub fn small() -> CorpusConfig {
        CorpusConfig {
            toolchains: vec![Toolchain::paper_matrix()[2], Toolchain::paper_matrix()[4]],
            distractors: 6,
            patched_versions: false,
            template_family: 0,
            wrappers: false,
            ..CorpusConfig::default()
        }
    }

    /// The paper-scale configuration (§5.2: ~1500 target procedures).
    pub fn paper_scale() -> CorpusConfig {
        CorpusConfig {
            distractors: 180,
            ..CorpusConfig::default()
        }
    }

    /// Builds the corpus from this configuration.
    pub fn build(&self) -> Corpus {
        Corpus::build(self)
    }
}

/// The CVE packages of Table 1, in order: `(cve, package, function)`.
pub fn cve_packages() -> Vec<(&'static str, &'static str, Function)> {
    vec![
        ("CVE-2014-0160", "openssl-1.0.1f", demo::heartbleed_like()),
        ("CVE-2014-6271", "bash-4.3", demo::shellshock_like()),
        ("CVE-2015-3456", "qemu-2.3", demo::venom_like()),
        ("CVE-2014-9295", "ntp-4.2.7", demo::clobberin_time_like()),
        ("CVE-2014-7169", "bash-4.3p1", demo::shellshock2_like()),
        ("CVE-2011-0444", "wireshark-1.4", demo::ws_snmp_like()),
        ("CVE-2014-4877", "wget-1.15", demo::wget_like()),
        ("CVE-2015-6826", "ffmpeg-2.4.6", demo::ffmpeg_like()),
    ]
}

/// The short aliases used in Table 1's rows.
pub fn cve_aliases() -> Vec<(&'static str, &'static str)> {
    vec![
        ("Heartbleed", "CVE-2014-0160"),
        ("Shellshock", "CVE-2014-6271"),
        ("Venom", "CVE-2015-3456"),
        ("Clobberin' Time", "CVE-2014-9295"),
        ("Shellshock #2", "CVE-2014-7169"),
        ("ws-snmp", "CVE-2011-0444"),
        ("wget", "CVE-2014-4877"),
        ("ffmpeg", "CVE-2015-6826"),
    ]
}

/// One source procedure awaiting compilation: `(package, func, cve,
/// patch, function, opt level)`.
type SourceSpec = (String, String, Option<String>, PatchTag, Function, OptLevel);

/// Runs `job(i)` for every index in `0..n` across at most `threads`
/// scoped worker threads (an atomic index dispenser — no work splitting
/// up front), returning the results in index order. Result order is
/// independent of `threads`, which is what keeps `--threads` a pure
/// throughput knob: corpus proc order, and everything downstream of it,
/// stays byte-identical.
pub(crate) fn pooled<T: Send>(
    n: usize,
    threads: usize,
    job: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let workers = threads.max(1).min(n.max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = job(i);
                *slots[i].lock().expect("pool slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("pool slot poisoned")
                .expect("every pool index ran")
        })
        .collect()
}

/// Compiles every source with one toolchain, in source order.
fn compile_toolchain(tc: Toolchain, sources: &[SourceSpec]) -> Vec<CompiledProc> {
    sources
        .iter()
        .map(|(package, func, cve, patch, f, opt)| {
            let cc = Compiler::with_opt(tc.vendor, tc.version, *opt);
            CompiledProc {
                package: package.clone(),
                func: func.clone(),
                cve: cve.clone(),
                toolchain: format!("{} {}", tc.vendor, tc.version),
                patch: *patch,
                proc_: cc.compile_function(f),
            }
        })
        .collect()
}

/// The built test-bed.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct Corpus {
    /// Every compiled procedure, queries and targets alike.
    pub procs: Vec<CompiledProc>,
}

impl Corpus {
    /// Builds a corpus per `config` with one compile thread per
    /// toolchain (the historical default).
    pub fn build(config: &CorpusConfig) -> Corpus {
        Corpus::build_with_threads(config, config.toolchains.len())
    }

    /// Builds a corpus per `config` using at most `threads` compile
    /// threads. The result is byte-identical for every thread count.
    pub fn build_with_threads(config: &CorpusConfig, threads: usize) -> Corpus {
        let mut procs = Vec::new();
        let mut sources: Vec<SourceSpec> = Vec::new();

        for (cve, package, f) in cve_packages() {
            // OpenSSL defaults to -O3, the rest to -O2 (§5.2).
            let opt = if package.starts_with("openssl") {
                OptLevel::O3
            } else {
                OptLevel::O2
            };
            sources.push((
                package.to_string(),
                f.name.clone(),
                Some(cve.to_string()),
                PatchTag::Original,
                f.clone(),
                opt,
            ));
            if config.patched_versions {
                for (k, level) in [(1u8, PatchLevel::Minor), (3, PatchLevel::Moderate)] {
                    let mut p = apply_patch(&f, level, u64::from(k) ^ config.seed);
                    p.name = f.name.clone();
                    sources.push((
                        format!("{package}-p{k}"),
                        f.name.clone(),
                        Some(cve.to_string()),
                        PatchTag::Patched(k),
                        p,
                        opt,
                    ));
                }
            }
        }

        // Distractors from Coreutils-like generated code.
        let module = gen::generate_module(config.seed, "coreutils-8.23", config.distractors);
        for f in module.functions {
            sources.push((
                "coreutils-8.23".to_string(),
                f.name.clone(),
                None,
                PatchTag::Original,
                f,
                OptLevel::O2,
            ));
        }
        if config.template_family > 0 {
            let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(config.seed);
            for f in gen::generate_template_family(&mut rng, "strcmp_key", config.template_family) {
                sources.push((
                    "coreutils-8.23".to_string(),
                    f.name.clone(),
                    None,
                    PatchTag::Original,
                    f,
                    OptLevel::O2,
                ));
            }
        }
        if config.wrappers {
            let f = demo::exit_cleanup_wrapper();
            sources.push((
                "coreutils-8.23".to_string(),
                f.name.clone(),
                None,
                PatchTag::Original,
                f,
                OptLevel::O2,
            ));
        }

        // Toolchains compile independently, so fan them out across a
        // bounded worker pool; splicing the per-toolchain batches back
        // in toolchain order keeps the proc order identical to the old
        // sequential loop (pinned by `corpus_is_deterministic`).
        let batches = pooled(config.toolchains.len(), threads, |i| {
            compile_toolchain(config.toolchains[i], &sources)
        });
        for batch in batches {
            procs.extend(batch);
        }
        Corpus { procs }
    }

    /// Indices of procedures for a given CVE.
    pub fn cve_indices(&self, cve: &str) -> Vec<usize> {
        self.procs
            .iter()
            .enumerate()
            .filter(|(_, p)| p.cve.as_deref() == Some(cve))
            .map(|(i, _)| i)
            .collect()
    }

    /// Picks the canonical query for a CVE: the unpatched variant compiled
    /// with `toolchain` (substring match, e.g. `"clang 3.5"`).
    pub fn query_for(&self, cve: &str, toolchain: &str) -> Option<usize> {
        self.procs.iter().position(|p| {
            p.cve.as_deref() == Some(cve)
                && p.patch == PatchTag::Original
                && p.toolchain.contains(toolchain)
        })
    }

    /// Groups the corpus into whole "binaries": one [`esh_asm::Program`] per
    /// `(package, toolchain)` pair — the unit BinDiff-style library
    /// matching operates on (§6.4 compares whole executables/libraries).
    pub fn as_programs(&self) -> Vec<esh_asm::Program> {
        let mut order: Vec<(String, String)> = Vec::new();
        let mut groups: std::collections::HashMap<(String, String), esh_asm::Program> =
            std::collections::HashMap::new();
        for p in &self.procs {
            let key = (p.package.clone(), p.toolchain.clone());
            if !groups.contains_key(&key) {
                order.push(key.clone());
            }
            groups
                .entry(key.clone())
                .or_insert_with(|| esh_asm::Program::new(format!("{} [{}]", key.0, key.1)))
                .procs
                .push(p.proc_.clone());
        }
        order.into_iter().map(|k| groups.remove(&k).expect("grouped")).collect()
    }

    /// Serializes to JSON.
    ///
    /// # Errors
    ///
    /// Returns any `serde_json` error.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Deserializes from JSON.
    ///
    /// # Errors
    ///
    /// Returns any `serde_json` error.
    pub fn from_json(s: &str) -> Result<Corpus, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// Convenience alias so callers can write `CorpusBuilder::default().build()`.
pub type CorpusBuilder = CorpusConfig;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_corpus_builds_with_ground_truth() {
        let c = Corpus::build(&CorpusConfig::small());
        // 8 CVEs + 6 distractors, 2 toolchains.
        assert_eq!(c.procs.len(), (8 + 6) * 2);
        let hb = c.cve_indices("CVE-2014-0160");
        assert_eq!(hb.len(), 2);
        assert!(c.procs[hb[0]].same_source(&c.procs[hb[1]]));
        assert!(!c.procs[hb[0]].same_source(&c.procs[c.cve_indices("CVE-2015-3456")[0]]));
    }

    #[test]
    fn patched_versions_share_ground_truth() {
        let config = CorpusConfig {
            distractors: 0,
            template_family: 0,
            wrappers: false,
            toolchains: vec![Toolchain::paper_matrix()[0]],
            ..CorpusConfig::default()
        };
        let c = Corpus::build(&config);
        // 8 CVEs × 3 source versions × 1 toolchain.
        assert_eq!(c.procs.len(), 24);
        let hb = c.cve_indices("CVE-2014-0160");
        assert_eq!(hb.len(), 3);
        assert!(hb.iter().all(|i| c.procs[*i].func == c.procs[hb[0]].func));
        assert!(hb.iter().any(|i| c.procs[*i].patch != PatchTag::Original));
    }

    #[test]
    fn query_lookup_respects_toolchain() {
        let c = Corpus::build(&CorpusConfig::small());
        let q = c
            .query_for("CVE-2014-0160", "clang 3.5")
            .expect("query exists");
        assert!(c.procs[q].toolchain.contains("clang"));
        assert_eq!(c.procs[q].patch, PatchTag::Original);
        assert!(c.query_for("CVE-2014-0160", "gcc 9.9").is_none());
    }

    #[test]
    fn programs_group_by_package_and_toolchain() {
        let c = Corpus::build(&CorpusConfig::small());
        let programs = c.as_programs();
        // 9 packages (8 CVE + coreutils) × 2 toolchains.
        assert_eq!(programs.len(), 18);
        let total: usize = programs.iter().map(|p| p.procs.len()).sum();
        assert_eq!(total, c.procs.len());
        // The coreutils binary holds all the distractors.
        let coreutils = programs
            .iter()
            .find(|p| p.name.starts_with("coreutils"))
            .expect("coreutils binary");
        assert!(coreutils.procs.len() >= 6);
    }

    #[test]
    fn corpus_roundtrips_through_json() {
        let c = Corpus::build(&CorpusConfig::small());
        let json = c.to_json().expect("serializes");
        let back = Corpus::from_json(&json).expect("deserializes");
        assert_eq!(c.procs.len(), back.procs.len());
        assert_eq!(c.procs[0].proc_, back.procs[0].proc_);
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = Corpus::build(&CorpusConfig::small());
        let b = Corpus::build(&CorpusConfig::small());
        assert_eq!(a.procs.len(), b.procs.len());
        for (x, y) in a.procs.iter().zip(&b.procs) {
            assert_eq!(x.proc_, y.proc_);
        }
    }

    #[test]
    fn thread_count_never_changes_the_corpus() {
        let full = Corpus::build(&CorpusConfig::small());
        for threads in [1, 2, 7, 64] {
            let c = Corpus::build_with_threads(&CorpusConfig::small(), threads);
            assert_eq!(c.procs.len(), full.procs.len(), "threads={threads}");
            for (x, y) in full.procs.iter().zip(&c.procs) {
                assert_eq!(x.proc_, y.proc_, "threads={threads}");
                assert_eq!(x.toolchain, y.toolchain, "threads={threads}");
            }
        }
    }

    #[test]
    fn pooled_preserves_index_order_at_any_width() {
        let n = 23;
        for threads in [1, 3, 8, 100] {
            let out = pooled(n, threads, |i| i * i);
            assert_eq!(out, (0..n).map(|i| i * i).collect::<Vec<_>>(), "threads={threads}");
        }
        assert!(pooled(0, 4, |i| i).is_empty());
    }

    #[test]
    fn paper_scale_matches_corpus_size() {
        // (8×3 CVE versions + 180 distractors + 4 templates + 1 wrapper) × 7
        // toolchains ≈ the paper's 1500 target procedures.
        let expected = (24 + 180 + 4 + 1) * 7;
        assert_eq!(expected, 1463);
        let cfg = CorpusConfig::paper_scale();
        assert_eq!(cfg.distractors, 180);
    }
}
