#![warn(missing_docs)]

//! # esh-minic — the MiniC source language
//!
//! The paper evaluates Esh on real packages (OpenSSL, bash, Coreutils)
//! compiled by real gcc/CLang/icc toolchains. Those binaries cannot be
//! redistributed here, so this crate provides the substitute source layer: a
//! small, C-like language with enough expressive power (64-bit integer
//! arithmetic, loads/stores, loops, calls) to write procedures whose
//! compiled shapes mirror the paper's corpus.
//!
//! The crate contains:
//!
//! * the AST ([`Function`], [`Stmt`], [`Expr`]) plus a validator,
//! * a C-like pretty-printer,
//! * a reference interpreter ([`interp::run_function`]) with a pluggable
//!   [`Host`] for external calls and a sparse byte-addressed [`Memory`] —
//!   both shared with the x86 emulator in `esh-cc` for differential testing,
//! * a seeded random program generator ([`gen`]) for distractor corpora,
//! * a patch mutator ([`patch`]) modelling source-level patches, and
//! * hand-written demo sources ([`demo`]) shaped after the paper's CVEs.
//!
//! ## Example
//!
//! ```
//! use esh_minic::{demo, interp, Memory, StdHost};
//!
//! let f = demo::saturating_sum();
//! let mut mem = Memory::new();
//! let mut host = StdHost::default();
//! let r = interp::run_function(&f, &[7, 3], &mut mem, &mut host).expect("runs");
//! assert_eq!(r, 10);
//! ```

mod ast;
pub mod demo;
pub mod gen;
pub mod interp;
mod memory;
pub mod patch;
mod printer;
pub mod stdlib;
mod validate;

pub use ast::{BinOp, Expr, Function, MemWidth, Module, Stmt, UnOp};
pub use memory::{Host, Memory, StdHost};
pub use validate::{validate_function, validate_module, ValidateError};
