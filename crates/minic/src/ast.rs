//! The MiniC abstract syntax tree.
//!
//! All values are 64-bit machine words; widths only matter at memory
//! accesses and explicit truncation/extension, mirroring how the paper's IVL
//! "always uses the full 64-bit representation of registers".

use serde::{Deserialize, Serialize};

/// A memory-access width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemWidth {
    /// One byte.
    W8,
    /// Two bytes.
    W16,
    /// Four bytes.
    W32,
    /// Eight bytes.
    W64,
}

impl MemWidth {
    /// Width in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            MemWidth::W8 => 1,
            MemWidth::W16 => 2,
            MemWidth::W32 => 4,
            MemWidth::W64 => 8,
        }
    }

    /// Mask covering the low bits of this width.
    pub fn mask(self) -> u64 {
        match self {
            MemWidth::W8 => 0xff,
            MemWidth::W16 => 0xffff,
            MemWidth::W32 => 0xffff_ffff,
            MemWidth::W64 => u64::MAX,
        }
    }
}

/// Binary operators. Comparisons produce `0` or `1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    And,
    Or,
    Xor,
    /// Left shift (amount masked to 6 bits, like x86-64).
    Shl,
    /// Logical right shift.
    Shr,
    /// Arithmetic right shift.
    Sar,
    Eq,
    Ne,
    /// Signed less-than.
    Slt,
    /// Signed less-or-equal.
    Sle,
    /// Unsigned less-than.
    Ult,
    /// Unsigned less-or-equal.
    Ule,
}

impl BinOp {
    /// True for comparison operators (result is 0/1).
    pub fn is_cmp(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Slt | BinOp::Sle | BinOp::Ult | BinOp::Ule
        )
    }

    /// Evaluates the operator on two 64-bit words.
    pub fn eval(self, a: u64, b: u64) -> u64 {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl((b & 63) as u32),
            BinOp::Shr => a.wrapping_shr((b & 63) as u32),
            BinOp::Sar => ((a as i64).wrapping_shr((b & 63) as u32)) as u64,
            BinOp::Eq => u64::from(a == b),
            BinOp::Ne => u64::from(a != b),
            BinOp::Slt => u64::from((a as i64) < (b as i64)),
            BinOp::Sle => u64::from((a as i64) <= (b as i64)),
            BinOp::Ult => u64::from(a < b),
            BinOp::Ule => u64::from(a <= b),
        }
    }

    /// The C spelling used by the pretty-printer.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Sar => ">>s",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Slt => "<",
            BinOp::Sle => "<=",
            BinOp::Ult => "<u",
            BinOp::Ule => "<=u",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// Two's-complement negation.
    Neg,
    /// Bitwise complement.
    Not,
    /// Truncate to a width (zeroing upper bits).
    Trunc(MemWidth),
    /// Sign-extend the low `width` bits to 64.
    Sext(MemWidth),
}

impl UnOp {
    /// Evaluates the operator on a 64-bit word.
    pub fn eval(self, a: u64) -> u64 {
        match self {
            UnOp::Neg => a.wrapping_neg(),
            UnOp::Not => !a,
            UnOp::Trunc(w) => a & w.mask(),
            UnOp::Sext(w) => {
                let bits = (w.bytes() * 8) as u32;
                if bits == 64 {
                    a
                } else {
                    let shifted = (a & w.mask()) << (64 - bits);
                    ((shifted as i64) >> (64 - bits)) as u64
                }
            }
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Expr {
    /// A 64-bit constant.
    Const(i64),
    /// A variable or parameter reference.
    Var(String),
    /// A unary operation.
    Unary(UnOp, Box<Expr>),
    /// A binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// A memory load of `width` bytes at `addr` (zero-extended).
    Load {
        /// Address expression.
        addr: Box<Expr>,
        /// Access width.
        width: MemWidth,
    },
    /// A call to an external procedure (see [`crate::stdlib`]).
    Call {
        /// Callee name.
        name: String,
        /// Argument expressions (at most 6: register arguments only).
        args: Vec<Expr>,
    },
}

impl Expr {
    /// Convenience: a variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Convenience: a binary operation.
    pub fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Binary(op, Box::new(a), Box::new(b))
    }

    /// Convenience: `a + b` (a static builder, not `std::ops::Add`).
    #[allow(clippy::should_implement_trait)]
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Add, a, b)
    }

    /// Convenience: a load.
    pub fn load(addr: Expr, width: MemWidth) -> Expr {
        Expr::Load {
            addr: Box::new(addr),
            width,
        }
    }

    /// Number of AST nodes (used by the generator to bound sizes).
    pub fn size(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Var(_) => 1,
            Expr::Unary(_, a) => 1 + a.size(),
            Expr::Binary(_, a, b) => 1 + a.size() + b.size(),
            Expr::Load { addr, .. } => 1 + addr.size(),
            Expr::Call { args, .. } => 1 + args.iter().map(Expr::size).sum::<usize>(),
        }
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stmt {
    /// Declare a new local and initialize it.
    Let {
        /// Local name (unique within the function).
        name: String,
        /// Initializer.
        init: Expr,
    },
    /// Assign to an existing local or parameter.
    Assign {
        /// Target name.
        name: String,
        /// New value.
        value: Expr,
    },
    /// Store `value` (low `width` bytes) at `addr`.
    Store {
        /// Address expression.
        addr: Expr,
        /// Access width.
        width: MemWidth,
        /// Value to store.
        value: Expr,
    },
    /// Two-armed conditional.
    If {
        /// Condition (non-zero means true).
        cond: Expr,
        /// Then-branch.
        then_body: Vec<Stmt>,
        /// Else-branch (may be empty).
        else_body: Vec<Stmt>,
    },
    /// While loop.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Return, optionally with a value.
    Return(Option<Expr>),
    /// Evaluate an expression for its side effects (calls).
    ExprStmt(Expr),
    /// Exit the innermost enclosing loop.
    Break,
    /// Jump to the next iteration of the innermost enclosing loop.
    Continue,
}

impl Stmt {
    /// Number of AST nodes, including nested statements.
    pub fn size(&self) -> usize {
        match self {
            Stmt::Let { init, .. } | Stmt::Assign { value: init, .. } => 1 + init.size(),
            Stmt::Store { addr, value, .. } => 1 + addr.size() + value.size(),
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                1 + cond.size()
                    + then_body.iter().map(Stmt::size).sum::<usize>()
                    + else_body.iter().map(Stmt::size).sum::<usize>()
            }
            Stmt::While { cond, body } => {
                1 + cond.size() + body.iter().map(Stmt::size).sum::<usize>()
            }
            Stmt::Return(e) => 1 + e.as_ref().map_or(0, Expr::size),
            Stmt::ExprStmt(e) => 1 + e.size(),
            Stmt::Break | Stmt::Continue => 1,
        }
    }
}

/// A MiniC function.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Parameter names (all 64-bit words; pointers are just words).
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

impl Function {
    /// Creates a function.
    pub fn new(name: impl Into<String>, params: Vec<String>, body: Vec<Stmt>) -> Function {
        Function {
            name: name.into(),
            params,
            body,
        }
    }

    /// Total AST node count.
    pub fn size(&self) -> usize {
        self.body.iter().map(Stmt::size).sum()
    }
}

/// A collection of functions (one source package).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Module {
    /// Package name (e.g. `openssl-1.0.1f`).
    pub name: String,
    /// The functions.
    pub functions: Vec<Function>,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Module {
        Module {
            name: name.into(),
            functions: Vec::new(),
        }
    }

    /// Finds a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_eval_basics() {
        assert_eq!(BinOp::Add.eval(u64::MAX, 1), 0);
        assert_eq!(BinOp::Sub.eval(0, 1), u64::MAX);
        assert_eq!(BinOp::Slt.eval(u64::MAX, 0), 1); // -1 < 0 signed
        assert_eq!(BinOp::Ult.eval(u64::MAX, 0), 0);
        assert_eq!(BinOp::Sar.eval(0x8000_0000_0000_0000, 63), u64::MAX);
        assert_eq!(BinOp::Shr.eval(0x8000_0000_0000_0000, 63), 1);
        assert_eq!(BinOp::Shl.eval(1, 64), 1); // masked shift amount
    }

    #[test]
    fn unop_eval_extensions() {
        assert_eq!(UnOp::Trunc(MemWidth::W8).eval(0x1ff), 0xff);
        assert_eq!(UnOp::Sext(MemWidth::W8).eval(0x80), 0xffff_ffff_ffff_ff80);
        assert_eq!(UnOp::Sext(MemWidth::W8).eval(0x7f), 0x7f);
        assert_eq!(UnOp::Sext(MemWidth::W64).eval(5), 5);
        assert_eq!(UnOp::Neg.eval(1), u64::MAX);
        assert_eq!(UnOp::Not.eval(0), u64::MAX);
    }

    #[test]
    fn sizes_count_nodes() {
        let e = Expr::add(Expr::var("x"), Expr::Const(1));
        assert_eq!(e.size(), 3);
        let s = Stmt::Let {
            name: "y".into(),
            init: e,
        };
        assert_eq!(s.size(), 4);
    }

    #[test]
    fn cmp_classification() {
        assert!(BinOp::Eq.is_cmp());
        assert!(BinOp::Ule.is_cmp());
        assert!(!BinOp::Add.is_cmp());
    }
}
