//! Seeded random MiniC program generation.
//!
//! The generator produces the distractor corpus standing in for the paper's
//! randomly-selected Coreutils procedures (§5.2). Functions come in
//! *shapes* modelled after what that corpus actually contains — leaf
//! arithmetic helpers, loop accumulators, string scanners, struct walkers,
//! thin wrappers (§6.6's `exit_cleanup`) and macro-template clones (§6.6's
//! `DEFINE_SORT_FUNCTIONS`) — so that the statistical background model H0
//! sees realistic strand frequencies.
//!
//! Generated loops always terminate: every loop is counted, with a bound
//! derived from a masked parameter, and the induction variable is never
//! touched by body statements. This keeps differential testing (interpreter
//! vs compiled emulation) total.

use rand::prelude::*;
use rand::rngs::StdRng;

use crate::ast::{BinOp, Expr, Function, MemWidth, Stmt};
use crate::stdlib::EXTERNALS;

/// The archetypes of generated functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Shape {
    /// Straight-line arithmetic on scalar parameters.
    LeafArith,
    /// A counted loop accumulating into one or two locals.
    LoopAccumulate,
    /// A byte-scanning loop over a pointer parameter.
    StringScan,
    /// Loads at fixed offsets from a pointer ("struct field" access).
    StructWalk,
    /// A thin wrapper: a couple of external calls, almost no logic.
    Wrapper,
    /// A mix of the above.
    Mixed,
}

impl Shape {
    /// All shapes, for sweeps.
    pub const ALL: [Shape; 6] = [
        Shape::LeafArith,
        Shape::LoopAccumulate,
        Shape::StringScan,
        Shape::StructWalk,
        Shape::Wrapper,
        Shape::Mixed,
    ];
}

/// Tuning knobs for generation.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Number of scalar parameters (in addition to pointer parameters).
    pub scalar_params: usize,
    /// Number of pointer parameters.
    pub pointer_params: usize,
    /// Rough statement budget for the function body.
    pub stmt_budget: usize,
    /// Maximum expression depth.
    pub max_expr_depth: usize,
    /// Probability of emitting an `if` at a statement slot.
    pub branch_prob: f64,
    /// Probability of emitting an external call statement.
    pub call_prob: f64,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            scalar_params: 2,
            pointer_params: 1,
            stmt_budget: 12,
            max_expr_depth: 3,
            branch_prob: 0.25,
            call_prob: 0.15,
        }
    }
}

struct Gen<'a> {
    rng: &'a mut StdRng,
    config: GenConfig,
    scalars: Vec<String>,
    pointers: Vec<String>,
    fresh: usize,
}

const ARITH_OPS: [BinOp; 9] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Shl,
    BinOp::Shr,
    BinOp::Sar,
];

const CMP_OPS: [BinOp; 6] = [
    BinOp::Eq,
    BinOp::Ne,
    BinOp::Slt,
    BinOp::Sle,
    BinOp::Ult,
    BinOp::Ule,
];

impl Gen<'_> {
    fn fresh_name(&mut self, prefix: &str) -> String {
        self.fresh += 1;
        format!("{prefix}{}", self.fresh)
    }

    fn small_const(&mut self) -> i64 {
        *[
            0, 1, 2, 3, 4, 5, 7, 8, 13, 16, 19, 24, 31, 32, 63, 64, 100, 255, 256, 0x13, 0x18,
        ]
        .choose(self.rng)
        .expect("non-empty")
    }

    fn scalar_expr(&mut self, depth: usize) -> Expr {
        if depth == 0 || self.rng.gen_bool(0.35) {
            if !self.scalars.is_empty() && self.rng.gen_bool(0.7) {
                let v = self.scalars.choose(self.rng).expect("non-empty").clone();
                Expr::Var(v)
            } else {
                Expr::Const(self.small_const())
            }
        } else {
            let op = *ARITH_OPS.choose(self.rng).expect("non-empty");
            // Keep shift amounts small constants so behaviour is stable.
            if matches!(op, BinOp::Shl | BinOp::Shr | BinOp::Sar) {
                Expr::bin(
                    op,
                    self.scalar_expr(depth - 1),
                    Expr::Const(i64::from(self.rng.gen_range(1u8..16))),
                )
            } else {
                Expr::bin(op, self.scalar_expr(depth - 1), self.scalar_expr(depth - 1))
            }
        }
    }

    fn cmp_expr(&mut self, depth: usize) -> Expr {
        let op = *CMP_OPS.choose(self.rng).expect("non-empty");
        Expr::bin(op, self.scalar_expr(depth), self.scalar_expr(depth))
    }

    fn pointer_addr(&mut self, index_var: Option<&str>) -> Expr {
        let p = self
            .pointers
            .choose(self.rng)
            .expect("pointer param exists")
            .clone();
        let base = Expr::Var(p);
        match index_var {
            Some(i) if self.rng.gen_bool(0.6) => Expr::add(base, Expr::var(i)),
            _ => {
                let off = self.rng.gen_range(0i64..32);
                if off == 0 {
                    base
                } else {
                    Expr::add(base, Expr::Const(off))
                }
            }
        }
    }

    fn call_stmt(&mut self) -> Stmt {
        let candidates: Vec<_> = EXTERNALS
            .iter()
            .filter(|e| usize::from(e.arity) <= self.scalars.len() + 1)
            .collect();
        let ext = candidates.choose(self.rng).expect("non-empty stdlib");
        let mut args = Vec::new();
        for i in 0..ext.arity {
            if i == 0 && !self.pointers.is_empty() && self.rng.gen_bool(0.6) {
                args.push(self.pointer_addr(None));
            } else {
                args.push(self.scalar_expr(1));
            }
        }
        let call = Expr::Call {
            name: ext.name.to_string(),
            args,
        };
        if ext.returns && self.rng.gen_bool(0.6) {
            let name = self.fresh_name("r");
            self.scalars.push(name.clone());
            Stmt::Let { name, init: call }
        } else {
            Stmt::ExprStmt(call)
        }
    }

    fn let_stmt(&mut self) -> Stmt {
        let init = if !self.pointers.is_empty() && self.rng.gen_bool(0.25) {
            let width = *[MemWidth::W8, MemWidth::W32, MemWidth::W64]
                .choose(self.rng)
                .expect("non-empty");
            Expr::load(self.pointer_addr(None), width)
        } else {
            self.scalar_expr(self.config.max_expr_depth)
        };
        let name = self.fresh_name("t");
        self.scalars.push(name.clone());
        Stmt::Let { name, init }
    }

    fn store_stmt(&mut self, index_var: Option<&str>) -> Stmt {
        let width = *[MemWidth::W8, MemWidth::W32, MemWidth::W64]
            .choose(self.rng)
            .expect("non-empty");
        Stmt::Store {
            addr: self.pointer_addr(index_var),
            width,
            value: self.scalar_expr(2),
        }
    }

    fn counted_loop(&mut self, body_budget: usize) -> Stmt {
        let i = self.fresh_name("i");
        let bound = self.fresh_name("n");
        // bound = (scalar & 63) + k: small, non-negative, terminating.
        let bound_init = Expr::add(
            Expr::bin(BinOp::And, self.scalar_expr(1), Expr::Const(63)),
            Expr::Const(i64::from(self.rng.gen_range(1u8..4))),
        );
        // Body statements may use but never assign the induction variable.
        let saved_scalars = self.scalars.len();
        self.scalars.push(i.clone());
        let mut body = Vec::new();
        // Early exit, like real scanners (uses `break`).
        if self.rng.gen_bool(0.3) {
            body.push(Stmt::If {
                cond: Expr::bin(BinOp::Eq, Expr::var(&i), self.scalar_expr(0)),
                then_body: vec![Stmt::Break],
                else_body: vec![],
            });
        }
        for _ in 0..body_budget {
            if !self.pointers.is_empty() && self.rng.gen_bool(0.4) {
                body.push(self.store_stmt(Some(&i)));
            } else if self.rng.gen_bool(0.5) {
                body.push(self.let_stmt());
            } else if let Some(v) = self.mutable_scalar(saved_scalars) {
                let op = *ARITH_OPS[..6].choose(self.rng).expect("non-empty");
                body.push(Stmt::Assign {
                    name: v.clone(),
                    value: Expr::bin(op, Expr::Var(v), self.scalar_expr(1)),
                });
            } else {
                body.push(self.let_stmt());
            }
        }
        body.push(Stmt::Assign {
            name: i.clone(),
            value: Expr::add(Expr::var(&i), Expr::Const(1)),
        });
        // Locals declared in the loop body are block-scoped.
        self.scalars.truncate(saved_scalars + 1);
        self.scalars.retain(|s| s != &i);
        let loop_stmt = Stmt::While {
            cond: Expr::bin(BinOp::Ult, Expr::var(&i), Expr::var(&bound)),
            body,
        };
        Stmt::If {
            cond: Expr::Const(1),
            then_body: vec![
                Stmt::Let {
                    name: bound,
                    init: bound_init,
                },
                Stmt::Let {
                    name: i,
                    init: Expr::Const(0),
                },
                loop_stmt,
            ],
            else_body: vec![],
        }
    }

    /// A scalar that existed before index `from` and is not an induction
    /// variable (those are named `i*` and excluded by construction here).
    fn mutable_scalar(&mut self, limit: usize) -> Option<String> {
        let slice = &self.scalars[..limit.min(self.scalars.len())];
        let candidates: Vec<_> = slice.iter().filter(|s| !s.starts_with('i')).collect();
        candidates.choose(self.rng).map(|s| s.to_string())
    }

    fn body_for(&mut self, shape: Shape) -> Vec<Stmt> {
        let mut body = Vec::new();
        match shape {
            Shape::LeafArith => {
                for _ in 0..self.config.stmt_budget.max(3) {
                    body.push(self.let_stmt());
                }
            }
            Shape::LoopAccumulate => {
                body.push(Stmt::Let {
                    name: "acc".into(),
                    init: Expr::Const(0),
                });
                self.scalars.push("acc".into());
                body.push(self.counted_loop(2));
                for _ in 0..self.config.stmt_budget / 4 {
                    body.push(self.let_stmt());
                }
            }
            Shape::StringScan => {
                body.push(Stmt::Let {
                    name: "len".into(),
                    init: Expr::Call {
                        name: "strlen".into(),
                        args: vec![self.pointer_addr(None)],
                    },
                });
                self.scalars.push("len".into());
                body.push(Stmt::Let {
                    name: "cap".into(),
                    init: Expr::bin(BinOp::And, Expr::var("len"), Expr::Const(31)),
                });
                self.scalars.push("cap".into());
                body.push(self.counted_loop(1));
            }
            Shape::StructWalk => {
                for off in [0i64, 8, 16, 24] {
                    let name = self.fresh_name("fld");
                    body.push(Stmt::Let {
                        name: name.clone(),
                        init: Expr::load(
                            Expr::add(Expr::Var(self.pointers[0].clone()), Expr::Const(off)),
                            MemWidth::W64,
                        ),
                    });
                    self.scalars.push(name);
                }
                for _ in 0..self.config.stmt_budget / 3 {
                    body.push(self.let_stmt());
                }
                body.push(self.store_stmt(None));
            }
            Shape::Wrapper => {
                body.push(self.call_stmt());
                if self.rng.gen_bool(0.7) {
                    body.push(self.call_stmt());
                }
            }
            Shape::Mixed => {
                for _ in 0..self.config.stmt_budget / 3 {
                    body.push(self.let_stmt());
                }
                if self.rng.gen_bool(0.5) {
                    body.push(self.counted_loop(2));
                }
                if self.rng.gen_bool(self.config.call_prob * 2.0) {
                    body.push(self.call_stmt());
                }
                if !self.pointers.is_empty() {
                    body.push(self.store_stmt(None));
                }
            }
        }
        // Optional branch wrapping a couple of extra statements.
        if self.rng.gen_bool(self.config.branch_prob) {
            let cond = self.cmp_expr(1);
            // Branch-local declarations must not leak into later expressions.
            let saved = self.scalars.len();
            let then_body = vec![self.let_stmt()];
            self.scalars.truncate(saved);
            let else_body = if self.rng.gen_bool(0.5) {
                vec![self.let_stmt()]
            } else {
                vec![]
            };
            self.scalars.truncate(saved);
            body.push(Stmt::If {
                cond,
                then_body,
                else_body,
            });
        }
        let ret = self.scalar_expr(2);
        body.push(Stmt::Return(Some(ret)));
        body
    }
}

/// Generates one function of the given shape.
pub fn generate_function(
    rng: &mut StdRng,
    name: impl Into<String>,
    shape: Shape,
    config: &GenConfig,
) -> Function {
    let mut params = Vec::new();
    let mut pointers = Vec::new();
    let mut scalars = Vec::new();
    let need_ptr = matches!(shape, Shape::StringScan | Shape::StructWalk);
    let pointer_params = if need_ptr {
        self::max1(config.pointer_params)
    } else {
        config.pointer_params
    };
    for k in 0..pointer_params {
        let p = format!("p{k}");
        params.push(p.clone());
        pointers.push(p);
    }
    for k in 0..config.scalar_params.max(1) {
        let s = format!("a{k}");
        params.push(s.clone());
        scalars.push(s);
    }
    let mut g = Gen {
        rng,
        config: config.clone(),
        scalars,
        pointers,
        fresh: 0,
    };
    let body = g.body_for(shape);
    Function::new(name, params, body)
}

fn max1(n: usize) -> usize {
    n.max(1)
}

/// Generates `count` clones of a "macro template" function: identical
/// statement skeleton, different constants and one different operator
/// (mirroring `DEFINE_SORT_FUNCTIONS` in §6.6).
pub fn generate_template_family(rng: &mut StdRng, base_name: &str, count: usize) -> Vec<Function> {
    let ops = [BinOp::Add, BinOp::Sub, BinOp::Xor, BinOp::And, BinOp::Or];
    (0..count)
        .map(|k| {
            let c1 = rng.gen_range(1i64..64);
            let c2 = rng.gen_range(1i64..64);
            let op = ops[k % ops.len()];
            Function::new(
                format!("{base_name}_{k}"),
                vec!["a".into(), "b".into()],
                vec![
                    Stmt::Let {
                        name: "x".into(),
                        init: Expr::bin(op, Expr::var("a"), Expr::Const(c1)),
                    },
                    Stmt::Let {
                        name: "y".into(),
                        init: Expr::bin(BinOp::Mul, Expr::var("b"), Expr::Const(c2)),
                    },
                    Stmt::If {
                        cond: Expr::bin(BinOp::Slt, Expr::var("x"), Expr::var("y")),
                        then_body: vec![Stmt::Return(Some(Expr::Const(-1)))],
                        else_body: vec![],
                    },
                    Stmt::Return(Some(Expr::bin(BinOp::Ne, Expr::var("x"), Expr::var("y")))),
                ],
            )
        })
        .collect()
}

/// Generates a deterministic module of `count` distractor functions with a
/// round-robin of shapes.
pub fn generate_module(seed: u64, name: impl Into<String>, count: usize) -> crate::ast::Module {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut module = crate::ast::Module::new(name);
    let config = GenConfig::default();
    for k in 0..count {
        let shape = Shape::ALL[k % Shape::ALL.len()];
        let f = generate_function(&mut rng, format!("fn_{seed}_{k}"), shape, &config);
        module.functions.push(f);
    }
    module
}

/// Derives the generation knobs for scale-tier source `index`: the
/// defaults perturbed deterministically so a 10k-procedure corpus spans
/// small leaf helpers through branchy, call-heavy bodies instead of 10k
/// near-identical functions.
fn scale_config(index: u64) -> GenConfig {
    GenConfig {
        scalar_params: 1 + (index % 3) as usize,
        pointer_params: (index % 2) as usize,
        stmt_budget: 6 + (index % 5) as usize * 4,
        max_expr_depth: 2 + (index % 3) as usize,
        branch_prob: 0.10 + 0.08 * (index % 4) as f64,
        call_prob: 0.05 + 0.07 * (index % 3) as f64,
    }
}

/// Generates the `index`-th scale-tier source function for `seed`.
///
/// Unlike [`generate_module`], which threads one RNG through the whole
/// module, every index re-seeds its own RNG from `(seed, index)` — so a
/// corpus generator can produce any window of the source stream without
/// materializing (or even generating) the functions before it. Shapes
/// round-robin and the [`GenConfig`] knobs vary with the index, giving
/// structural diversity across a 10k-function corpus.
pub fn generate_scale_source(seed: u64, index: u64) -> Function {
    // splitmix64 over (seed, index) decorrelates per-index streams.
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let mut rng = StdRng::seed_from_u64(z);
    let shape = Shape::ALL[(index % Shape::ALL.len() as u64) as usize];
    let config = scale_config(index);
    generate_function(&mut rng, format!("gen_{seed:x}_{index}"), shape, &config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::run_function;
    use crate::memory::{Memory, StdHost};
    use crate::validate::validate_function;

    #[test]
    fn generated_functions_validate() {
        let mut rng = StdRng::seed_from_u64(7);
        let config = GenConfig::default();
        for shape in Shape::ALL {
            for k in 0..20 {
                let f = generate_function(&mut rng, format!("g{k}"), shape, &config);
                let errs = validate_function(&f);
                assert!(errs.is_empty(), "shape {shape:?} invalid: {errs:?}\n{f}");
            }
        }
    }

    #[test]
    fn generated_functions_run() {
        let mut rng = StdRng::seed_from_u64(11);
        let config = GenConfig::default();
        for shape in Shape::ALL {
            for k in 0..10 {
                let f = generate_function(&mut rng, format!("g{k}"), shape, &config);
                let mut mem = Memory::new();
                let buf = mem.alloc(256);
                let mut host = StdHost::default();
                let args = vec![buf, 17, 42, 3];
                run_function(&f, &args, &mut mem, &mut host)
                    .unwrap_or_else(|e| panic!("shape {shape:?} failed: {e}\n{f}"));
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_module(42, "m", 10);
        let b = generate_module(42, "m", 10);
        assert_eq!(a, b);
        let c = generate_module(43, "m", 10);
        assert_ne!(a, c);
    }

    #[test]
    fn template_family_shares_skeleton() {
        let mut rng = StdRng::seed_from_u64(5);
        let fam = generate_template_family(&mut rng, "strcmp_key", 4);
        assert_eq!(fam.len(), 4);
        for f in &fam {
            assert!(validate_function(f).is_empty());
            assert_eq!(f.body.len(), fam[0].body.len());
        }
        // But they are not identical.
        assert_ne!(fam[0].body, fam[1].body);
    }

    #[test]
    fn scale_sources_are_deterministic_independent_and_valid() {
        for index in 0..48 {
            let f = generate_scale_source(0xC0FFEE, index);
            assert_eq!(f, generate_scale_source(0xC0FFEE, index), "index {index}");
            let errs = validate_function(&f);
            assert!(errs.is_empty(), "index {index} invalid: {errs:?}\n{f}");
        }
        // Index-addressable: the same index yields the same function no
        // matter which window it is generated in — and names are unique.
        let names: std::collections::HashSet<String> =
            (0..48).map(|i| generate_scale_source(0xC0FFEE, i).name).collect();
        assert_eq!(names.len(), 48);
        assert_ne!(
            generate_scale_source(1, 7),
            generate_scale_source(2, 7),
            "seed must matter"
        );
    }

    #[test]
    fn wrappers_are_small() {
        let mut rng = StdRng::seed_from_u64(3);
        let config = GenConfig::default();
        let f = generate_function(&mut rng, "w", Shape::Wrapper, &config);
        assert!(f.size() < 30, "wrapper too large: {}", f.size());
    }
}
