//! Hand-written MiniC sources shaped after the paper's corpus.
//!
//! Each `cve_*` function mirrors the control/data-flow *shape* of the
//! vulnerable procedure used in the corresponding Table 1 experiment —
//! buffer copies with attacker-controlled lengths, environment parsers,
//! device state machines — not the original source text. The substitution
//! rationale is documented in `DESIGN.md` §2.

use crate::ast::{BinOp, Expr, Function, MemWidth, Stmt, UnOp};

fn v(n: &str) -> Expr {
    Expr::var(n)
}

fn c(x: i64) -> Expr {
    Expr::Const(x)
}

fn lt(name: &str, init: Expr) -> Stmt {
    Stmt::Let {
        name: name.into(),
        init,
    }
}

fn call(name: &str, args: Vec<Expr>) -> Expr {
    Expr::Call {
        name: name.into(),
        args,
    }
}

/// A tiny two-parameter demo used by doctests: `min(a + b, 0xffff)`.
pub fn saturating_sum() -> Function {
    Function::new(
        "saturating_sum",
        vec!["a".into(), "b".into()],
        vec![
            lt("s", Expr::add(v("a"), v("b"))),
            Stmt::If {
                cond: Expr::bin(BinOp::Ult, c(0xffff), v("s")),
                then_body: vec![Stmt::Return(Some(c(0xffff)))],
                else_body: vec![],
            },
            Stmt::Return(Some(v("s"))),
        ],
    )
}

/// Heartbleed-shaped (CVE-2014-0160): a heartbeat responder that reads a
/// type byte and 16-bit length from an attacker-controlled record and
/// copies `payload` bytes without checking them against the record length.
pub fn heartbleed_like() -> Function {
    Function::new(
        "tls1_process_heartbeat",
        vec!["dst".into(), "src".into(), "reclen".into()],
        vec![
            // hbtype = *src; payload = (src[1] << 8) | src[2];
            lt("hbtype", Expr::load(v("src"), MemWidth::W8)),
            lt("hi", Expr::load(Expr::add(v("src"), c(1)), MemWidth::W8)),
            lt("lo", Expr::load(Expr::add(v("src"), c(2)), MemWidth::W8)),
            lt(
                "payload",
                Expr::bin(BinOp::Or, Expr::bin(BinOp::Shl, v("hi"), c(8)), v("lo")),
            ),
            // Build the response header: type, then the 2-byte length.
            Stmt::Store {
                addr: v("dst"),
                width: MemWidth::W8,
                value: c(2),
            },
            Stmt::Store {
                addr: Expr::add(v("dst"), c(1)),
                width: MemWidth::W8,
                value: Expr::bin(BinOp::Shr, v("payload"), c(8)),
            },
            Stmt::Store {
                addr: Expr::add(v("dst"), c(2)),
                width: MemWidth::W8,
                value: Expr::Unary(UnOp::Trunc(MemWidth::W8), Box::new(v("payload"))),
            },
            // The bug: copies `payload` bytes regardless of `reclen`.
            lt("bp", Expr::add(v("dst"), c(3))),
            lt("pl", Expr::add(v("src"), c(3))),
            lt("_cp", call("memcpy", vec![v("bp"), v("pl"), v("payload")])),
            // Send 3 + payload + 16 bytes of response.
            lt("n", Expr::add(Expr::add(v("payload"), c(3)), c(0x10))),
            lt("r", call("write_bytes", vec![v("dst"), v("n")])),
            Stmt::If {
                cond: Expr::bin(BinOp::Slt, v("r"), c(0)),
                then_body: vec![Stmt::Return(Some(c(-1)))],
                else_body: vec![],
            },
            Stmt::Return(Some(Expr::add(v("r"), v("hbtype")))),
        ],
    )
}

/// Shellshock-shaped (CVE-2014-6271): an environment-string importer that
/// scans for the `() {` function-definition prefix and keeps parsing past
/// the closing brace (the bug).
pub fn shellshock_like() -> Function {
    Function::new(
        "initialize_shell_variable",
        vec!["env".into(), "flags".into()],
        vec![
            lt("len", call("strlen", vec![v("env")])),
            lt("isfunc", c(0)),
            // Prefix check: '(' ')' ' ' '{'.
            lt("c0", Expr::load(v("env"), MemWidth::W8)),
            lt("c1", Expr::load(Expr::add(v("env"), c(1)), MemWidth::W8)),
            lt("c2", Expr::load(Expr::add(v("env"), c(2)), MemWidth::W8)),
            lt("c3", Expr::load(Expr::add(v("env"), c(3)), MemWidth::W8)),
            Stmt::If {
                cond: Expr::bin(
                    BinOp::And,
                    Expr::bin(
                        BinOp::And,
                        Expr::bin(BinOp::Eq, v("c0"), c(0x28)),
                        Expr::bin(BinOp::Eq, v("c1"), c(0x29)),
                    ),
                    Expr::bin(
                        BinOp::And,
                        Expr::bin(BinOp::Eq, v("c2"), c(0x20)),
                        Expr::bin(BinOp::Eq, v("c3"), c(0x7b)),
                    ),
                ),
                then_body: vec![Stmt::Assign {
                    name: "isfunc".into(),
                    value: c(1),
                }],
                else_body: vec![],
            },
            // Scan for the closing brace depth; the vulnerable version does
            // not stop at the end of the function body.
            lt("depth", c(0)),
            lt("i", c(0)),
            lt("cap", Expr::bin(BinOp::And, v("len"), c(0xff))),
            Stmt::While {
                cond: Expr::bin(BinOp::Ult, v("i"), v("cap")),
                body: vec![
                    lt("ch", Expr::load(Expr::add(v("env"), v("i")), MemWidth::W8)),
                    Stmt::If {
                        cond: Expr::bin(BinOp::Eq, v("ch"), c(0x7b)),
                        then_body: vec![Stmt::Assign {
                            name: "depth".into(),
                            value: Expr::add(v("depth"), c(1)),
                        }],
                        else_body: vec![Stmt::If {
                            cond: Expr::bin(BinOp::Eq, v("ch"), c(0x7d)),
                            then_body: vec![Stmt::Assign {
                                name: "depth".into(),
                                value: Expr::bin(BinOp::Sub, v("depth"), c(1)),
                            }],
                            else_body: vec![],
                        }],
                    },
                    Stmt::Assign {
                        name: "i".into(),
                        value: Expr::add(v("i"), c(1)),
                    },
                ],
            },
            // The bug shape: evaluate the remainder unconditionally.
            lt("rest", Expr::add(v("env"), v("i"))),
            lt(
                "ev",
                call(
                    "checksum",
                    vec![v("rest"), Expr::bin(BinOp::Sub, v("len"), v("i"))],
                ),
            ),
            Stmt::If {
                cond: v("isfunc"),
                then_body: vec![Stmt::Return(Some(Expr::bin(
                    BinOp::Xor,
                    v("ev"),
                    v("flags"),
                )))],
                else_body: vec![],
            },
            Stmt::Return(Some(v("depth"))),
        ],
    )
}

/// Venom-shaped (CVE-2015-3456): a floppy-controller FIFO handler whose
/// index wraps through a set of distinctive magic constants (§6.2 notes the
/// distinct numerics make even S-VCP score perfectly here).
pub fn venom_like() -> Function {
    Function::new(
        "fdctrl_handle_drive_specification",
        vec!["fdctrl".into(), "value".into()],
        vec![
            // Load the FIFO cursor and the configured FIFO size.
            lt(
                "pos",
                Expr::load(Expr::add(v("fdctrl"), c(0x30)), MemWidth::W32),
            ),
            lt("fifo", Expr::add(v("fdctrl"), c(0x4a0))),
            // Magic bounds from the device model.
            lt("maxpos", c(0x200)),
            Stmt::If {
                cond: Expr::bin(BinOp::Ule, v("maxpos"), v("pos")),
                // Vulnerable reset omitted: cursor keeps increasing.
                then_body: vec![lt("_d", call("log_msg", vec![c(0x56454e4d)]))],
                else_body: vec![],
            },
            Stmt::Store {
                addr: Expr::add(v("fifo"), v("pos")),
                width: MemWidth::W8,
                value: v("value"),
            },
            lt("newpos", Expr::add(v("pos"), c(1))),
            Stmt::Store {
                addr: Expr::add(v("fdctrl"), c(0x30)),
                width: MemWidth::W32,
                value: v("newpos"),
            },
            // Device status word with distinctive constants.
            lt(
                "msr",
                Expr::bin(
                    BinOp::Or,
                    c(0x80),
                    Expr::bin(BinOp::And, v("value"), c(0x10)),
                ),
            ),
            Stmt::Store {
                addr: Expr::add(v("fdctrl"), c(0x34)),
                width: MemWidth::W8,
                value: v("msr"),
            },
            Stmt::Return(Some(v("newpos"))),
        ],
    )
}

/// "Clobberin' Time"-shaped (CVE-2014-9295, ntpd): computes a receive
/// timestamp delta and copies an unvalidated extension field.
pub fn clobberin_time_like() -> Function {
    Function::new(
        "ctl_putdata",
        vec!["pkt".into(), "datap".into(), "dlen".into()],
        vec![
            lt("now", call("get_tick", vec![])),
            lt(
                "org",
                Expr::load(Expr::add(v("pkt"), c(0x18)), MemWidth::W64),
            ),
            lt("delta", Expr::bin(BinOp::Sub, v("now"), v("org"))),
            lt(
                "scaled",
                Expr::bin(
                    BinOp::Shr,
                    Expr::bin(BinOp::Mul, v("delta"), c(1000)),
                    c(16),
                ),
            ),
            Stmt::Store {
                addr: Expr::add(v("pkt"), c(0x20)),
                width: MemWidth::W64,
                value: v("scaled"),
            },
            // Vulnerable copy: no check of dlen against the packet buffer.
            lt("dst", Expr::add(v("pkt"), c(0x30))),
            lt("_cp", call("memcpy", vec![v("dst"), v("datap"), v("dlen")])),
            lt(
                "sum",
                call("checksum", vec![v("pkt"), Expr::add(v("dlen"), c(0x30))]),
            ),
            Stmt::Store {
                addr: Expr::add(v("pkt"), c(0x28)),
                width: MemWidth::W32,
                value: v("sum"),
            },
            Stmt::Return(Some(Expr::bin(BinOp::And, v("sum"), c(0x7fff_ffff)))),
        ],
    )
}

/// Shellshock #2-shaped (CVE-2014-7169): the follow-up parser bug — a
/// token scanner that mishandles redirection prefixes.
pub fn shellshock2_like() -> Function {
    Function::new(
        "parse_and_execute_token",
        vec!["buf".into(), "n".into()],
        vec![
            lt("i", c(0)),
            lt("state", c(0)),
            lt("cap", Expr::bin(BinOp::And, v("n"), c(0x7f))),
            Stmt::While {
                cond: Expr::bin(BinOp::Ult, v("i"), v("cap")),
                body: vec![
                    lt("ch", Expr::load(Expr::add(v("buf"), v("i")), MemWidth::W8)),
                    // '>' (0x3e) flips redirect state; '<' (0x3c) too.
                    Stmt::If {
                        cond: Expr::bin(
                            BinOp::Or,
                            Expr::bin(BinOp::Eq, v("ch"), c(0x3e)),
                            Expr::bin(BinOp::Eq, v("ch"), c(0x3c)),
                        ),
                        then_body: vec![Stmt::Assign {
                            name: "state".into(),
                            value: Expr::bin(BinOp::Xor, v("state"), c(1)),
                        }],
                        else_body: vec![Stmt::If {
                            // The bug shape: stray word chars while in
                            // redirect state still accumulate.
                            cond: v("state"),
                            then_body: vec![Stmt::Assign {
                                name: "state".into(),
                                value: Expr::add(v("state"), Expr::bin(BinOp::Shl, v("ch"), c(1))),
                            }],
                            else_body: vec![],
                        }],
                    },
                    Stmt::Assign {
                        name: "i".into(),
                        value: Expr::add(v("i"), c(1)),
                    },
                ],
            },
            Stmt::If {
                cond: Expr::bin(BinOp::Ne, v("state"), c(0)),
                then_body: vec![
                    lt("_lg", call("log_msg", vec![v("state")])),
                    Stmt::Return(Some(v("state"))),
                ],
                else_body: vec![],
            },
            Stmt::Return(Some(c(0))),
        ],
    )
}

/// ws-snmp-shaped (CVE-2011-0444): a small length-decoder (the paper's
/// smallest query: 6 basic blocks).
pub fn ws_snmp_like() -> Function {
    Function::new(
        "snmp_variable_decode",
        vec!["asn".into(), "len".into()],
        vec![
            lt("tag", Expr::load(v("asn"), MemWidth::W8)),
            lt("l0", Expr::load(Expr::add(v("asn"), c(1)), MemWidth::W8)),
            // Long-form length: the bug multiplies without bounding.
            Stmt::If {
                cond: Expr::bin(BinOp::Ult, c(0x80), v("l0")),
                then_body: vec![
                    lt("ext", Expr::load(Expr::add(v("asn"), c(2)), MemWidth::W8)),
                    Stmt::Return(Some(Expr::add(
                        Expr::bin(BinOp::Shl, v("ext"), c(8)),
                        Expr::bin(BinOp::And, v("l0"), c(0x7f)),
                    ))),
                ],
                else_body: vec![],
            },
            lt(
                "total",
                Expr::add(Expr::bin(BinOp::Mul, v("l0"), c(4)), v("tag")),
            ),
            Stmt::If {
                cond: Expr::bin(BinOp::Ult, v("len"), v("total")),
                then_body: vec![Stmt::Return(Some(c(-1)))],
                else_body: vec![],
            },
            Stmt::Return(Some(v("total"))),
        ],
    )
}

/// wget-shaped (CVE-2014-4877, and the `ftp_syst()` query of Figure 6): an
/// FTP reply scanner that uppercases and tokenizes the response line.
pub fn wget_like() -> Function {
    Function::new(
        "ftp_syst",
        vec!["line".into(), "out".into()],
        vec![
            lt("len", call("strlen", vec![v("line")])),
            lt("i", c(0)),
            lt("cap", Expr::bin(BinOp::And, v("len"), c(0x3f))),
            lt("acc", c(0)),
            Stmt::While {
                cond: Expr::bin(BinOp::Ult, v("i"), v("cap")),
                body: vec![
                    lt("ch", Expr::load(Expr::add(v("line"), v("i")), MemWidth::W8)),
                    // Uppercase ASCII letters: ch >= 'a' && ch <= 'z'.
                    Stmt::If {
                        cond: Expr::bin(
                            BinOp::And,
                            Expr::bin(BinOp::Ule, c(0x61), v("ch")),
                            Expr::bin(BinOp::Ule, v("ch"), c(0x7a)),
                        ),
                        then_body: vec![Stmt::Assign {
                            name: "ch".into(),
                            value: Expr::bin(BinOp::Sub, v("ch"), c(0x20)),
                        }],
                        else_body: vec![],
                    },
                    Stmt::Store {
                        addr: Expr::add(v("out"), v("i")),
                        width: MemWidth::W8,
                        value: v("ch"),
                    },
                    Stmt::Assign {
                        name: "acc".into(),
                        value: Expr::add(Expr::bin(BinOp::Mul, v("acc"), c(31)), v("ch")),
                    },
                    Stmt::Assign {
                        name: "i".into(),
                        value: Expr::add(v("i"), c(1)),
                    },
                ],
            },
            Stmt::Store {
                addr: Expr::add(v("out"), v("cap")),
                width: MemWidth::W8,
                value: c(0),
            },
            Stmt::Return(Some(v("acc"))),
        ],
    )
}

/// ffmpeg-shaped (CVE-2015-6826 / `ff_rv34_decode_init_thread_copy()` of
/// Figure 6): copies codec state between two contexts field by field.
pub fn ffmpeg_like() -> Function {
    Function::new(
        "ff_rv34_decode_init_thread_copy",
        vec!["dst_ctx".into(), "src_ctx".into()],
        vec![
            lt(
                "w",
                Expr::load(Expr::add(v("src_ctx"), c(0x10)), MemWidth::W32),
            ),
            lt(
                "h",
                Expr::load(Expr::add(v("src_ctx"), c(0x14)), MemWidth::W32),
            ),
            Stmt::Store {
                addr: Expr::add(v("dst_ctx"), c(0x10)),
                width: MemWidth::W32,
                value: v("w"),
            },
            Stmt::Store {
                addr: Expr::add(v("dst_ctx"), c(0x14)),
                width: MemWidth::W32,
                value: v("h"),
            },
            lt(
                "mb",
                Expr::bin(
                    BinOp::Mul,
                    Expr::bin(BinOp::Shr, v("w"), c(4)),
                    Expr::bin(BinOp::Shr, v("h"), c(4)),
                ),
            ),
            lt("tabsz", Expr::bin(BinOp::Mul, v("mb"), c(8))),
            lt(
                "srctab",
                Expr::load(Expr::add(v("src_ctx"), c(0x20)), MemWidth::W64),
            ),
            lt(
                "dsttab",
                Expr::load(Expr::add(v("dst_ctx"), c(0x20)), MemWidth::W64),
            ),
            Stmt::If {
                cond: Expr::bin(BinOp::Ne, v("srctab"), c(0)),
                then_body: vec![lt(
                    "_c1",
                    call(
                        "memcpy",
                        vec![
                            v("dsttab"),
                            v("srctab"),
                            Expr::bin(BinOp::And, v("tabsz"), c(0xfff)),
                        ],
                    ),
                )],
                else_body: vec![Stmt::Return(Some(c(-12)))],
            },
            lt(
                "flags",
                Expr::load(Expr::add(v("src_ctx"), c(0x40)), MemWidth::W64),
            ),
            Stmt::Store {
                addr: Expr::add(v("dst_ctx"), c(0x40)),
                width: MemWidth::W64,
                value: Expr::bin(BinOp::Or, v("flags"), c(0x2)),
            },
            Stmt::Return(Some(c(0))),
        ],
    )
}

/// The wrapper from the paper's Figure 7 (`exit_cleanup` in Coreutils'
/// sort.c): almost no logic of its own, a known hard case (§6.6).
pub fn exit_cleanup_wrapper() -> Function {
    Function::new(
        "exit_cleanup",
        vec!["temphead".into()],
        vec![
            Stmt::If {
                cond: Expr::bin(BinOp::Ne, v("temphead"), c(0)),
                then_body: vec![
                    lt("cs", call("cs_enter", vec![])),
                    Stmt::ExprStmt(call("cleanup", vec![])),
                    Stmt::ExprStmt(call("cs_leave", vec![v("cs")])),
                ],
                else_body: vec![],
            },
            Stmt::ExprStmt(call("close_stdout", vec![])),
            Stmt::Return(None),
        ],
    )
}

/// All eight CVE-shaped functions, in Table 1 order, with their CVE ids.
pub fn cve_functions() -> Vec<(&'static str, Function)> {
    vec![
        ("CVE-2014-0160", heartbleed_like()),
        ("CVE-2014-6271", shellshock_like()),
        ("CVE-2015-3456", venom_like()),
        ("CVE-2014-9295", clobberin_time_like()),
        ("CVE-2014-7169", shellshock2_like()),
        ("CVE-2011-0444", ws_snmp_like()),
        ("CVE-2014-4877", wget_like()),
        ("CVE-2015-6826", ffmpeg_like()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::run_function;
    use crate::memory::{Memory, StdHost};
    use crate::validate::validate_function;

    #[test]
    fn all_demos_validate() {
        let mut all = cve_functions()
            .into_iter()
            .map(|(_, f)| f)
            .collect::<Vec<_>>();
        all.push(saturating_sum());
        all.push(exit_cleanup_wrapper());
        for f in all {
            let errs = validate_function(&f);
            assert!(errs.is_empty(), "{}: {errs:?}", f.name);
        }
    }

    #[test]
    fn all_demos_run() {
        for (_, f) in cve_functions() {
            let mut mem = Memory::new();
            let a = mem.alloc(4096);
            let b = mem.alloc(4096);
            mem.write(b, MemWidth::W64, 0x1122334455667788);
            let mut host = StdHost::default();
            run_function(&f, &[a, b, 64], &mut mem, &mut host)
                .unwrap_or_else(|e| panic!("{}: {e}", f.name));
        }
    }

    #[test]
    fn heartbleed_copies_attacker_length() {
        let f = heartbleed_like();
        let mut mem = Memory::new();
        let dst = mem.alloc(4096);
        let src = mem.alloc(4096);
        // Record claims payload 0x100 even though reclen is 8.
        mem.write_u8(src, 1);
        mem.write_u8(src + 1, 0x01);
        mem.write_u8(src + 2, 0x00);
        mem.write_u8(src + 3 + 0x42, 0x99); // a "secret" byte past the record
        let mut host = StdHost::default();
        run_function(&f, &[dst, src, 8], &mut mem, &mut host).expect("runs");
        // The secret leaked into the response buffer.
        assert_eq!(mem.read_u8(dst + 3 + 0x42), 0x99);
    }

    #[test]
    fn ws_snmp_long_form_path() {
        let f = ws_snmp_like();
        let mut mem = Memory::new();
        let p = mem.alloc(16);
        mem.write_u8(p, 4);
        mem.write_u8(p + 1, 0x85); // long form
        mem.write_u8(p + 2, 2);
        let mut host = StdHost::default();
        let r = run_function(&f, &[p, 100], &mut mem, &mut host).expect("runs");
        assert_eq!(r, (2 << 8) + 5);
    }

    #[test]
    fn wrapper_calls_cleanup_chain() {
        let f = exit_cleanup_wrapper();
        let mut mem = Memory::new();
        let mut host = StdHost::default();
        run_function(&f, &[1], &mut mem, &mut host).expect("runs");
        let names: Vec<&str> = host.trace.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["cs_enter", "cleanup", "cs_leave", "close_stdout"]);
    }
}
