//! Source-level patch simulation.
//!
//! The paper defines a patch as "any modification of source-code that
//! changes the semantics of the procedure" (§5.3) and predicts that
//! precision declines as the patch grows. This module applies controlled,
//! semantics-changing edits to a [`Function`], with a size knob mirroring
//! that experiment axis.

use rand::prelude::*;
use rand::rngs::StdRng;

use crate::ast::{BinOp, Expr, Function, Stmt};

/// How invasive a patch is, measured in number of applied edits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PatchLevel {
    /// One edit — e.g. the real Heartbleed fix (an added bounds check).
    Minor,
    /// Three edits.
    Moderate,
    /// Six edits — a substantial rework.
    Major,
}

impl PatchLevel {
    /// The number of edits this level applies.
    pub fn edits(self) -> usize {
        match self {
            PatchLevel::Minor => 1,
            PatchLevel::Moderate => 3,
            PatchLevel::Major => 6,
        }
    }
}

/// One kind of semantic edit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EditKind {
    TweakConstant,
    ChangeOperator,
    AddGuard,
    AddStatement,
    RemoveStatement,
}

/// Applies `edit` to the `target`-th constant (pre-order); returns how many
/// constants were visited in total.
fn for_each_const(stmts: &mut [Stmt], target: Option<usize>, delta: i64) -> usize {
    fn in_expr(e: &mut Expr, n: &mut usize, target: Option<usize>, delta: i64) {
        match e {
            Expr::Const(c) => {
                if target == Some(*n) {
                    *c = c.wrapping_add(delta);
                }
                *n += 1;
            }
            Expr::Var(_) => {}
            Expr::Unary(_, a) | Expr::Load { addr: a, .. } => in_expr(a, n, target, delta),
            Expr::Binary(_, a, b) => {
                in_expr(a, n, target, delta);
                in_expr(b, n, target, delta);
            }
            Expr::Call { args, .. } => {
                for a in args {
                    in_expr(a, n, target, delta);
                }
            }
        }
    }
    fn in_stmt(s: &mut Stmt, n: &mut usize, target: Option<usize>, delta: i64) {
        match s {
            Stmt::Let { init, .. } | Stmt::Assign { value: init, .. } => {
                in_expr(init, n, target, delta)
            }
            Stmt::Store { addr, value, .. } => {
                in_expr(addr, n, target, delta);
                in_expr(value, n, target, delta);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                in_expr(cond, n, target, delta);
                for s in then_body {
                    in_stmt(s, n, target, delta);
                }
                for s in else_body {
                    in_stmt(s, n, target, delta);
                }
            }
            Stmt::While { cond, body } => {
                in_expr(cond, n, target, delta);
                for s in body {
                    in_stmt(s, n, target, delta);
                }
            }
            Stmt::Return(Some(e)) | Stmt::ExprStmt(e) => in_expr(e, n, target, delta),
            Stmt::Return(None) | Stmt::Break | Stmt::Continue => {}
        }
    }
    let mut n = 0;
    for s in stmts {
        in_stmt(s, &mut n, target, delta);
    }
    n
}

fn first_binop(stmts: &mut [Stmt]) -> Option<&mut BinOp> {
    fn in_expr(e: &mut Expr) -> Option<&mut BinOp> {
        match e {
            Expr::Binary(op, a, b) => {
                if !op.is_cmp() {
                    return Some(op);
                }
                in_expr(a).or_else(|| in_expr(b))
            }
            Expr::Unary(_, a) | Expr::Load { addr: a, .. } => in_expr(a),
            Expr::Call { args, .. } => args.iter_mut().find_map(in_expr),
            _ => None,
        }
    }
    fn in_stmt(s: &mut Stmt) -> Option<&mut BinOp> {
        match s {
            Stmt::Let { init, .. } | Stmt::Assign { value: init, .. } => in_expr(init),
            Stmt::Store { addr, value, .. } => in_expr(addr).or_else(|| in_expr(value)),
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => in_expr(cond)
                .or_else(|| then_body.iter_mut().find_map(in_stmt))
                .or_else(|| else_body.iter_mut().find_map(in_stmt)),
            Stmt::While { cond, body } => {
                in_expr(cond).or_else(|| body.iter_mut().find_map(in_stmt))
            }
            Stmt::Return(Some(e)) | Stmt::ExprStmt(e) => in_expr(e),
            Stmt::Return(None) | Stmt::Break | Stmt::Continue => None,
        }
    }
    stmts.iter_mut().find_map(in_stmt)
}

/// Applies `level.edits()` random semantic edits to a copy of `f`,
/// returning the patched function (renamed with a `__p` suffix level tag).
///
/// The function's parameter list is never changed, so patched variants stay
/// drop-in replacements (like real security patches).
pub fn apply_patch(f: &Function, level: PatchLevel, seed: u64) -> Function {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xfeed_beef);
    let mut out = f.clone();
    out.name = format!("{}__p{}", f.name, level.edits());
    let kinds = [
        EditKind::TweakConstant,
        EditKind::ChangeOperator,
        EditKind::AddGuard,
        EditKind::AddStatement,
        EditKind::RemoveStatement,
    ];
    let mut applied = 0;
    let mut attempts = 0;
    while applied < level.edits() && attempts < level.edits() * 10 {
        attempts += 1;
        let kind = *kinds.choose(&mut rng).expect("non-empty");
        let mut candidate = out.clone();
        apply_edit(&mut candidate, kind, &mut rng);
        // A patch that breaks loop termination (e.g. flipping the operator
        // of an induction update) is not a realistic source patch; reject
        // it and try another edit.
        if terminates_quickly(&candidate) {
            out = candidate;
            applied += 1;
        }
    }
    out
}

/// Smoke-runs `f` on a canonical input with a small fuel budget.
fn terminates_quickly(f: &Function) -> bool {
    use crate::interp::run_function_fuel;
    use crate::memory::{Memory, StdHost};
    let mut mem = Memory::new();
    let a = mem.alloc(4096);
    let b = mem.alloc(4096);
    for i in 0..64 {
        mem.write_u8(b + i, (37u8).wrapping_mul(i as u8 + 1));
    }
    let mut host = StdHost::default();
    run_function_fuel(f, &[a, b, 16, 5], &mut mem, &mut host, 1 << 16).is_ok()
}

fn apply_edit(f: &mut Function, kind: EditKind, rng: &mut StdRng) {
    match kind {
        EditKind::TweakConstant => {
            let total = for_each_const(&mut f.body, None, 0);
            if total > 0 {
                let target = rng.gen_range(0..total);
                let delta = *[1, 2, 4, 8].choose(rng).expect("non-empty");
                for_each_const(&mut f.body, Some(target), delta);
            }
        }
        EditKind::ChangeOperator => {
            if let Some(op) = first_binop(&mut f.body) {
                *op = match *op {
                    BinOp::Add => BinOp::Sub,
                    BinOp::Sub => BinOp::Add,
                    BinOp::Mul => BinOp::Add,
                    BinOp::And => BinOp::Or,
                    BinOp::Or => BinOp::Xor,
                    BinOp::Xor => BinOp::And,
                    other => other,
                };
            }
        }
        EditKind::AddGuard => {
            // The canonical vulnerability fix: guard the body's tail in a
            // bounds check on the first parameter.
            if let Some(p) = f.params.first().cloned() {
                let split = f.body.len().saturating_sub(1);
                let tail: Vec<Stmt> = f.body.drain(split..).collect();
                f.body.push(Stmt::If {
                    cond: Expr::bin(BinOp::Ule, Expr::var(&p), Expr::Const(0xffff)),
                    then_body: tail,
                    else_body: vec![Stmt::Return(Some(Expr::Const(-1)))],
                });
            }
        }
        EditKind::AddStatement => {
            if let Some(p) = f.params.first().cloned() {
                let name = format!("patch_t{}", f.body.len());
                f.body.insert(
                    0,
                    Stmt::Let {
                        name,
                        init: Expr::bin(
                            BinOp::Xor,
                            Expr::var(&p),
                            Expr::Const(rng.gen_range(1i64..256)),
                        ),
                    },
                );
            }
        }
        EditKind::RemoveStatement => {
            // Remove a non-Let, non-Return statement if one exists: Lets
            // may be referenced later and Returns carry the result.
            let candidates: Vec<usize> = f
                .body
                .iter()
                .enumerate()
                .filter(|(_, s)| matches!(s, Stmt::Store { .. } | Stmt::ExprStmt(_)))
                .map(|(i, _)| i)
                .collect();
            if let Some(&idx) = candidates.as_slice().choose(rng) {
                f.body.remove(idx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo;
    use crate::interp::run_function;
    use crate::memory::{Memory, StdHost};
    use crate::validate::validate_function;

    #[test]
    fn patched_functions_still_validate() {
        for level in [PatchLevel::Minor, PatchLevel::Moderate, PatchLevel::Major] {
            for seed in 0..20 {
                let f = demo::saturating_sum();
                let p = apply_patch(&f, level, seed);
                let errs = validate_function(&p);
                assert!(errs.is_empty(), "{level:?}/{seed}: {errs:?}\n{p}");
                assert_eq!(p.params, f.params);
            }
        }
    }

    #[test]
    fn patches_change_behaviour_or_body() {
        let f = demo::saturating_sum();
        let mut changed = 0;
        for seed in 0..10 {
            let p = apply_patch(&f, PatchLevel::Minor, seed);
            if p.body != f.body {
                changed += 1;
            }
        }
        assert!(
            changed >= 8,
            "patching should usually alter the body ({changed}/10)"
        );
    }

    #[test]
    fn patch_levels_scale_edit_counts() {
        assert!(PatchLevel::Minor.edits() < PatchLevel::Moderate.edits());
        assert!(PatchLevel::Moderate.edits() < PatchLevel::Major.edits());
    }

    #[test]
    fn patched_functions_still_run() {
        for seed in 0..10 {
            let f = demo::heartbleed_like();
            let p = apply_patch(&f, PatchLevel::Minor, seed);
            let mut mem = Memory::new();
            let buf = mem.alloc(1024);
            let src = mem.alloc(1024);
            let mut host = StdHost::default();
            run_function(&p, &[buf, src, 64], &mut mem, &mut host)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{p}"));
        }
    }

    #[test]
    fn patch_is_deterministic_per_seed() {
        let f = demo::saturating_sum();
        assert_eq!(
            apply_patch(&f, PatchLevel::Major, 9),
            apply_patch(&f, PatchLevel::Major, 9)
        );
    }
}
