//! Static well-formedness checks for MiniC functions.

use std::collections::HashSet;
use std::fmt;

use crate::ast::{Expr, Function, Module, Stmt};
use crate::stdlib;

/// A validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // context fields (`func`, `var`, ...) are uniform
pub enum ValidateError {
    /// A variable was used before any definition dominating the use.
    UseBeforeDef { func: String, var: String },
    /// A `Let` re-declares an existing name.
    Redeclaration { func: String, var: String },
    /// An `Assign` targets an undeclared name.
    AssignUndeclared { func: String, var: String },
    /// A call references an unknown external or has the wrong arity.
    BadCall {
        func: String,
        callee: String,
        reason: String,
    },
    /// Two functions in a module share a name.
    DuplicateFunction(String),
    /// `break`/`continue` outside a loop.
    LoopControlOutsideLoop { func: String },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::UseBeforeDef { func, var } => {
                write!(f, "{func}: `{var}` used before definition")
            }
            ValidateError::Redeclaration { func, var } => {
                write!(f, "{func}: `{var}` redeclared")
            }
            ValidateError::AssignUndeclared { func, var } => {
                write!(f, "{func}: assignment to undeclared `{var}`")
            }
            ValidateError::BadCall {
                func,
                callee,
                reason,
            } => {
                write!(f, "{func}: bad call to `{callee}`: {reason}")
            }
            ValidateError::DuplicateFunction(n) => write!(f, "duplicate function `{n}`"),
            ValidateError::LoopControlOutsideLoop { func } => {
                write!(f, "{func}: break/continue outside a loop")
            }
        }
    }
}

impl std::error::Error for ValidateError {}

struct Checker<'a> {
    func: &'a str,
    declared: HashSet<String>,
    errors: Vec<ValidateError>,
    loop_depth: usize,
}

impl Checker<'_> {
    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Const(_) => {}
            Expr::Var(n) => {
                if !self.declared.contains(n) {
                    self.errors.push(ValidateError::UseBeforeDef {
                        func: self.func.to_string(),
                        var: n.clone(),
                    });
                }
            }
            Expr::Unary(_, a) => self.expr(a),
            Expr::Binary(_, a, b) => {
                self.expr(a);
                self.expr(b);
            }
            Expr::Load { addr, .. } => self.expr(addr),
            Expr::Call { name, args } => {
                match stdlib::external(name) {
                    Some(ext) if usize::from(ext.arity) != args.len() => {
                        self.errors.push(ValidateError::BadCall {
                            func: self.func.to_string(),
                            callee: name.clone(),
                            reason: format!(
                                "arity mismatch: expected {}, got {}",
                                ext.arity,
                                args.len()
                            ),
                        });
                    }
                    Some(_) => {}
                    None => self.errors.push(ValidateError::BadCall {
                        func: self.func.to_string(),
                        callee: name.clone(),
                        reason: "unknown external".into(),
                    }),
                }
                if args.len() > 6 {
                    self.errors.push(ValidateError::BadCall {
                        func: self.func.to_string(),
                        callee: name.clone(),
                        reason: "more than 6 register arguments".into(),
                    });
                }
                for a in args {
                    self.expr(a);
                }
            }
        }
    }

    fn block(&mut self, stmts: &[Stmt]) {
        // Declarations made inside a branch are conservatively kept in
        // scope afterwards (the generator never relies on shadowing), but a
        // use is only legal if *some* dominating path declared it; we keep
        // it simple and require declaration in lexical order, branch-local
        // declarations do not escape.
        for s in stmts {
            match s {
                Stmt::Let { name, init } => {
                    self.expr(init);
                    if !self.declared.insert(name.clone()) {
                        self.errors.push(ValidateError::Redeclaration {
                            func: self.func.to_string(),
                            var: name.clone(),
                        });
                    }
                }
                Stmt::Assign { name, value } => {
                    self.expr(value);
                    if !self.declared.contains(name) {
                        self.errors.push(ValidateError::AssignUndeclared {
                            func: self.func.to_string(),
                            var: name.clone(),
                        });
                    }
                }
                Stmt::Store { addr, value, .. } => {
                    self.expr(addr);
                    self.expr(value);
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    self.expr(cond);
                    let snapshot = self.declared.clone();
                    self.block(then_body);
                    self.declared = snapshot.clone();
                    self.block(else_body);
                    self.declared = snapshot;
                }
                Stmt::While { cond, body } => {
                    self.expr(cond);
                    let snapshot = self.declared.clone();
                    self.loop_depth += 1;
                    self.block(body);
                    self.loop_depth -= 1;
                    self.declared = snapshot;
                }
                Stmt::Return(e) => {
                    if let Some(e) = e {
                        self.expr(e);
                    }
                }
                Stmt::ExprStmt(e) => self.expr(e),
                Stmt::Break | Stmt::Continue => {
                    if self.loop_depth == 0 {
                        self.errors.push(ValidateError::LoopControlOutsideLoop {
                            func: self.func.to_string(),
                        });
                    }
                }
            }
        }
    }
}

/// Validates a function; returns all problems found.
pub fn validate_function(f: &Function) -> Vec<ValidateError> {
    let mut checker = Checker {
        func: &f.name,
        declared: f.params.iter().cloned().collect(),
        errors: Vec::new(),
        loop_depth: 0,
    };
    checker.block(&f.body);
    checker.errors
}

/// Validates every function in a module plus module-level invariants.
pub fn validate_module(m: &Module) -> Vec<ValidateError> {
    let mut errors = Vec::new();
    let mut seen = HashSet::new();
    for f in &m.functions {
        if !seen.insert(f.name.clone()) {
            errors.push(ValidateError::DuplicateFunction(f.name.clone()));
        }
        errors.extend(validate_function(f));
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::BinOp;

    #[test]
    fn accepts_well_formed() {
        let f = Function::new(
            "ok",
            vec!["a".into()],
            vec![
                Stmt::Let {
                    name: "b".into(),
                    init: Expr::var("a"),
                },
                Stmt::Return(Some(Expr::bin(BinOp::Add, Expr::var("a"), Expr::var("b")))),
            ],
        );
        assert!(validate_function(&f).is_empty());
    }

    #[test]
    fn rejects_use_before_def() {
        let f = Function::new("bad", vec![], vec![Stmt::Return(Some(Expr::var("x")))]);
        assert!(matches!(
            validate_function(&f)[0],
            ValidateError::UseBeforeDef { .. }
        ));
    }

    #[test]
    fn rejects_redeclaration() {
        let f = Function::new(
            "bad",
            vec![],
            vec![
                Stmt::Let {
                    name: "x".into(),
                    init: Expr::Const(1),
                },
                Stmt::Let {
                    name: "x".into(),
                    init: Expr::Const(2),
                },
            ],
        );
        assert!(matches!(
            validate_function(&f)[0],
            ValidateError::Redeclaration { .. }
        ));
    }

    #[test]
    fn branch_locals_do_not_escape() {
        let f = Function::new(
            "bad",
            vec!["c".into()],
            vec![
                Stmt::If {
                    cond: Expr::var("c"),
                    then_body: vec![Stmt::Let {
                        name: "t".into(),
                        init: Expr::Const(1),
                    }],
                    else_body: vec![],
                },
                Stmt::Return(Some(Expr::var("t"))),
            ],
        );
        assert!(matches!(
            validate_function(&f)[0],
            ValidateError::UseBeforeDef { .. }
        ));
    }

    #[test]
    fn rejects_bad_calls() {
        let f = Function::new(
            "bad",
            vec![],
            vec![
                Stmt::ExprStmt(Expr::Call {
                    name: "memcpy".into(),
                    args: vec![],
                }),
                Stmt::ExprStmt(Expr::Call {
                    name: "no_such_fn".into(),
                    args: vec![],
                }),
            ],
        );
        let errs = validate_function(&f);
        assert_eq!(errs.len(), 2);
        assert!(errs
            .iter()
            .all(|e| matches!(e, ValidateError::BadCall { .. })));
    }

    #[test]
    fn module_duplicate_names() {
        let mut m = Module::new("m");
        m.functions
            .push(Function::new("f", vec![], vec![Stmt::Return(None)]));
        m.functions
            .push(Function::new("f", vec![], vec![Stmt::Return(None)]));
        assert!(matches!(
            validate_module(&m)[0],
            ValidateError::DuplicateFunction(_)
        ));
    }
}
