//! The MiniC reference interpreter.
//!
//! This is the *semantic oracle* for the synthetic compilers: `esh-cc`'s
//! differential tests check that every vendor/version/optimization backend
//! produces machine code whose emulated behaviour matches this interpreter
//! on random inputs.

use std::collections::HashMap;
use std::fmt;

use crate::ast::{Expr, Function, Stmt};
use crate::memory::{Host, Memory};

/// Runtime error raised by the interpreter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A name was referenced before being defined.
    UnboundVar(String),
    /// A loop exceeded the iteration fuel (runaway program).
    OutOfFuel,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVar(n) => write!(f, "unbound variable `{n}`"),
            EvalError::OutOfFuel => write!(f, "evaluation fuel exhausted"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Default iteration fuel: total statements executed.
pub const DEFAULT_FUEL: u64 = 1 << 20;

struct Interp<'a, H: Host> {
    vars: HashMap<String, u64>,
    mem: &'a mut Memory,
    host: &'a mut H,
    fuel: u64,
}

enum Flow {
    Normal,
    Return(u64),
    Break,
    Continue,
}

impl<H: Host> Interp<'_, H> {
    fn eval(&mut self, e: &Expr) -> Result<u64, EvalError> {
        Ok(match e {
            Expr::Const(c) => *c as u64,
            Expr::Var(n) => *self
                .vars
                .get(n)
                .ok_or_else(|| EvalError::UnboundVar(n.clone()))?,
            Expr::Unary(op, a) => op.eval(self.eval(a)?),
            Expr::Binary(op, a, b) => {
                let a = self.eval(a)?;
                let b = self.eval(b)?;
                op.eval(a, b)
            }
            Expr::Load { addr, width } => {
                let a = self.eval(addr)?;
                self.mem.read(a, *width)
            }
            Expr::Call { name, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a)?);
                }
                self.host.call(name, &vals, self.mem)
            }
        })
    }

    fn exec_block(&mut self, stmts: &[Stmt]) -> Result<Flow, EvalError> {
        for s in stmts {
            match self.exec(s)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec(&mut self, s: &Stmt) -> Result<Flow, EvalError> {
        if self.fuel == 0 {
            return Err(EvalError::OutOfFuel);
        }
        self.fuel -= 1;
        match s {
            Stmt::Let { name, init } | Stmt::Assign { name, value: init } => {
                let v = self.eval(init)?;
                self.vars.insert(name.clone(), v);
                Ok(Flow::Normal)
            }
            Stmt::Store { addr, width, value } => {
                let a = self.eval(addr)?;
                let v = self.eval(value)?;
                self.mem.write(a, *width, v);
                Ok(Flow::Normal)
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                if self.eval(cond)? != 0 {
                    self.exec_block(then_body)
                } else {
                    self.exec_block(else_body)
                }
            }
            Stmt::While { cond, body } => {
                while self.eval(cond)? != 0 {
                    if self.fuel == 0 {
                        return Err(EvalError::OutOfFuel);
                    }
                    self.fuel -= 1;
                    match self.exec_block(body)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(e)?,
                    None => 0,
                };
                Ok(Flow::Return(v))
            }
            Stmt::ExprStmt(e) => {
                self.eval(e)?;
                Ok(Flow::Normal)
            }
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
        }
    }
}

/// Runs `f` on `args` against `mem` and `host`, returning its result
/// (functions that fall off the end return 0).
///
/// # Errors
///
/// Returns [`EvalError`] on unbound variables (ill-formed programs; see
/// [`crate::validate_function`]) or fuel exhaustion.
pub fn run_function<H: Host>(
    f: &Function,
    args: &[u64],
    mem: &mut Memory,
    host: &mut H,
) -> Result<u64, EvalError> {
    run_function_fuel(f, args, mem, host, DEFAULT_FUEL)
}

/// Like [`run_function`] with an explicit fuel budget.
///
/// # Errors
///
/// Returns [`EvalError`] on unbound variables or fuel exhaustion.
pub fn run_function_fuel<H: Host>(
    f: &Function,
    args: &[u64],
    mem: &mut Memory,
    host: &mut H,
    fuel: u64,
) -> Result<u64, EvalError> {
    let mut vars = HashMap::new();
    for (i, p) in f.params.iter().enumerate() {
        vars.insert(p.clone(), args.get(i).copied().unwrap_or(0));
    }
    let mut interp = Interp {
        vars,
        mem,
        host,
        fuel,
    };
    match interp.exec_block(&f.body)? {
        Flow::Return(v) => Ok(v),
        // Top-level break/continue is rejected by the validator; treat it
        // like falling off the end for robustness.
        Flow::Normal | Flow::Break | Flow::Continue => Ok(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, MemWidth};
    use crate::memory::StdHost;

    fn v(n: &str) -> Expr {
        Expr::var(n)
    }

    #[test]
    fn straight_line_arithmetic() {
        let f = Function::new(
            "f",
            vec!["a".into(), "b".into()],
            vec![
                Stmt::Let {
                    name: "t".into(),
                    init: Expr::bin(BinOp::Mul, v("a"), v("b")),
                },
                Stmt::Return(Some(Expr::add(v("t"), Expr::Const(1)))),
            ],
        );
        let mut mem = Memory::new();
        let mut host = StdHost::default();
        assert_eq!(run_function(&f, &[6, 7], &mut mem, &mut host).unwrap(), 43);
    }

    #[test]
    fn while_loop_sums() {
        // sum 0..n
        let f = Function::new(
            "sum",
            vec!["n".into()],
            vec![
                Stmt::Let {
                    name: "acc".into(),
                    init: Expr::Const(0),
                },
                Stmt::Let {
                    name: "i".into(),
                    init: Expr::Const(0),
                },
                Stmt::While {
                    cond: Expr::bin(BinOp::Ult, v("i"), v("n")),
                    body: vec![
                        Stmt::Assign {
                            name: "acc".into(),
                            value: Expr::add(v("acc"), v("i")),
                        },
                        Stmt::Assign {
                            name: "i".into(),
                            value: Expr::add(v("i"), Expr::Const(1)),
                        },
                    ],
                },
                Stmt::Return(Some(v("acc"))),
            ],
        );
        let mut mem = Memory::new();
        let mut host = StdHost::default();
        assert_eq!(run_function(&f, &[10], &mut mem, &mut host).unwrap(), 45);
    }

    #[test]
    fn loads_and_stores() {
        let f = Function::new(
            "swapbytes",
            vec!["p".into()],
            vec![
                Stmt::Let {
                    name: "x".into(),
                    init: Expr::load(v("p"), MemWidth::W8),
                },
                Stmt::Let {
                    name: "y".into(),
                    init: Expr::load(Expr::add(v("p"), Expr::Const(1)), MemWidth::W8),
                },
                Stmt::Store {
                    addr: v("p"),
                    width: MemWidth::W8,
                    value: v("y"),
                },
                Stmt::Store {
                    addr: Expr::add(v("p"), Expr::Const(1)),
                    width: MemWidth::W8,
                    value: v("x"),
                },
                Stmt::Return(None),
            ],
        );
        let mut mem = Memory::new();
        mem.write_u8(0x100, 0xab);
        mem.write_u8(0x101, 0xcd);
        let mut host = StdHost::default();
        run_function(&f, &[0x100], &mut mem, &mut host).unwrap();
        assert_eq!(mem.read_u8(0x100), 0xcd);
        assert_eq!(mem.read_u8(0x101), 0xab);
    }

    #[test]
    fn unbound_variable_errors() {
        let f = Function::new("bad", vec![], vec![Stmt::Return(Some(v("ghost")))]);
        let mut mem = Memory::new();
        let mut host = StdHost::default();
        assert_eq!(
            run_function(&f, &[], &mut mem, &mut host),
            Err(EvalError::UnboundVar("ghost".into()))
        );
    }

    #[test]
    fn infinite_loop_runs_out_of_fuel() {
        let f = Function::new(
            "spin",
            vec![],
            vec![Stmt::While {
                cond: Expr::Const(1),
                body: vec![],
            }],
        );
        let mut mem = Memory::new();
        let mut host = StdHost::default();
        assert_eq!(
            run_function_fuel(&f, &[], &mut mem, &mut host, 100),
            Err(EvalError::OutOfFuel)
        );
    }

    #[test]
    fn missing_args_default_to_zero() {
        let f = Function::new("id", vec!["a".into()], vec![Stmt::Return(Some(v("a")))]);
        let mut mem = Memory::new();
        let mut host = StdHost::default();
        assert_eq!(run_function(&f, &[], &mut mem, &mut host).unwrap(), 0);
    }

    #[test]
    fn calls_reach_host() {
        let f = Function::new(
            "wrap",
            vec!["p".into(), "n".into()],
            vec![Stmt::Return(Some(Expr::Call {
                name: "write_bytes".into(),
                args: vec![v("p"), v("n")],
            }))],
        );
        let mut mem = Memory::new();
        let mut host = StdHost::default();
        assert_eq!(run_function(&f, &[0, 5], &mut mem, &mut host).unwrap(), 5);
        assert_eq!(host.trace[0].0, "write_bytes");
    }
}
