//! A sparse byte-addressed memory and the external-call host interface.
//!
//! Both the MiniC reference interpreter and the x86 emulator in `esh-cc`
//! execute against these types, which is what makes differential testing of
//! the synthetic compilers meaningful: one memory model, one external
//! library, two execution routes.

use std::collections::HashMap;

use crate::ast::MemWidth;

/// A sparse, byte-addressed, little-endian memory.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    bytes: HashMap<u64, u8>,
    /// Next address handed out by [`Memory::alloc`].
    brk: u64,
}

/// The heap region start used by [`Memory::alloc`].
const HEAP_BASE: u64 = 0x0000_7000_0000_0000;

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Memory {
        Memory {
            bytes: HashMap::new(),
            brk: HEAP_BASE,
        }
    }

    /// Reads one byte (unmapped bytes read as zero).
    pub fn read_u8(&self, addr: u64) -> u8 {
        self.bytes.get(&addr).copied().unwrap_or(0)
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        self.bytes.insert(addr, value);
    }

    /// Reads `width` bytes little-endian, zero-extended to 64 bits.
    pub fn read(&self, addr: u64, width: MemWidth) -> u64 {
        let mut v = 0u64;
        for i in 0..width.bytes() {
            v |= u64::from(self.read_u8(addr.wrapping_add(i))) << (8 * i);
        }
        v
    }

    /// Writes the low `width` bytes of `value` little-endian.
    pub fn write(&mut self, addr: u64, width: MemWidth, value: u64) {
        for i in 0..width.bytes() {
            self.write_u8(addr.wrapping_add(i), (value >> (8 * i)) as u8);
        }
    }

    /// Copies `n` bytes from `src` to `dst` (non-overlapping semantics).
    pub fn copy(&mut self, dst: u64, src: u64, n: u64) {
        let data: Vec<u8> = (0..n).map(|i| self.read_u8(src.wrapping_add(i))).collect();
        for (i, b) in data.into_iter().enumerate() {
            self.write_u8(dst.wrapping_add(i as u64), b);
        }
    }

    /// Fills `n` bytes at `dst` with `byte`.
    pub fn fill(&mut self, dst: u64, byte: u8, n: u64) {
        for i in 0..n {
            self.write_u8(dst.wrapping_add(i), byte);
        }
    }

    /// Bump-allocates `n` bytes and returns the base address.
    pub fn alloc(&mut self, n: u64) -> u64 {
        let base = self.brk;
        self.brk = self.brk.wrapping_add(n.max(1)).wrapping_add(15) & !15;
        base
    }

    /// Writes a NUL-terminated string and returns its address.
    pub fn alloc_cstr(&mut self, s: &str) -> u64 {
        let base = self.alloc(s.len() as u64 + 1);
        for (i, b) in s.bytes().enumerate() {
            self.write_u8(base + i as u64, b);
        }
        self.write_u8(base + s.len() as u64, 0);
        base
    }

    /// Number of mapped bytes (for tests).
    pub fn mapped_len(&self) -> usize {
        self.bytes.len()
    }
}

/// External-procedure host: implements the calls MiniC programs may make.
pub trait Host {
    /// Invokes external `name` with `args`, possibly touching `mem`.
    /// Returns the value left in the return register.
    fn call(&mut self, name: &str, args: &[u64], mem: &mut Memory) -> u64;
}

/// The standard host implementing [`crate::stdlib`]'s externals with
/// deterministic semantics.
#[derive(Debug, Clone, Default)]
pub struct StdHost {
    /// Log of calls `(name, args)`, usable as an observable effect trace.
    pub trace: Vec<(String, Vec<u64>)>,
}

impl Host for StdHost {
    fn call(&mut self, name: &str, args: &[u64], mem: &mut Memory) -> u64 {
        self.trace.push((name.to_string(), args.to_vec()));
        match name {
            "memcpy" => {
                let (dst, src, n) = (args[0], args[1], args[2]);
                mem.copy(dst, src, n.min(1 << 16));
                dst
            }
            "memset" => {
                let (dst, c, n) = (args[0], args[1], args[2]);
                mem.fill(dst, c as u8, n.min(1 << 16));
                dst
            }
            "strlen" => {
                let mut p = args[0];
                let mut n = 0u64;
                while mem.read_u8(p) != 0 && n < (1 << 16) {
                    p = p.wrapping_add(1);
                    n += 1;
                }
                n
            }
            "write_bytes" => {
                // Models a bounded write syscall wrapper: returns the byte
                // count on success, negative on (synthetic) overflow.
                let n = args.get(1).copied().unwrap_or(0);
                if n > 0xffff {
                    -1i64 as u64
                } else {
                    n
                }
            }
            "checksum" => {
                let (p, n) = (args[0], args.get(1).copied().unwrap_or(0).min(1 << 12));
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                for i in 0..n {
                    h ^= u64::from(mem.read_u8(p.wrapping_add(i)));
                    h = h.wrapping_mul(0x1000_0000_01b3);
                }
                h
            }
            "alloc" => mem.alloc(args.first().copied().unwrap_or(0).min(1 << 20)),
            "log_msg" | "cleanup" | "close_stdout" | "cs_leave" | "abort_msg" => 0,
            "cs_enter" => 1,
            "get_tick" => 0x5f5e100,
            _ => {
                // Unknown externals behave like a pure hash of their
                // arguments: deterministic, argument-sensitive, no state.
                let mut h = 0x9e37_79b9_7f4a_7c15u64 ^ (name.len() as u64);
                for b in name.bytes() {
                    h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
                }
                for &a in args {
                    h = (h ^ a).wrapping_mul(0x100_0000_01b3);
                    h = h.rotate_left(17);
                }
                h
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn little_endian_roundtrip() {
        let mut m = Memory::new();
        m.write(0x1000, MemWidth::W32, 0xdead_beef);
        assert_eq!(m.read(0x1000, MemWidth::W32), 0xdead_beef);
        assert_eq!(m.read_u8(0x1000), 0xef);
        assert_eq!(m.read(0x1000, MemWidth::W16), 0xbeef);
        assert_eq!(m.read(0x1000, MemWidth::W64) & 0xffff_ffff, 0xdead_beef);
    }

    #[test]
    fn unmapped_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.read(0x42, MemWidth::W64), 0);
    }

    #[test]
    fn copy_and_fill() {
        let mut m = Memory::new();
        m.fill(0x100, 0xaa, 4);
        m.copy(0x200, 0x100, 4);
        assert_eq!(m.read(0x200, MemWidth::W32), 0xaaaa_aaaa);
    }

    #[test]
    fn alloc_is_disjoint_and_aligned() {
        let mut m = Memory::new();
        let a = m.alloc(10);
        let b = m.alloc(10);
        assert!(b >= a + 10);
        assert_eq!(b % 16, 0);
    }

    #[test]
    fn strlen_via_host() {
        let mut m = Memory::new();
        let p = m.alloc_cstr("hello");
        let mut h = StdHost::default();
        assert_eq!(h.call("strlen", &[p], &mut m), 5);
        assert_eq!(h.trace.len(), 1);
    }

    #[test]
    fn memcpy_via_host() {
        let mut m = Memory::new();
        let src = m.alloc_cstr("abcd");
        let dst = m.alloc(8);
        let mut h = StdHost::default();
        let r = h.call("memcpy", &[dst, src, 4], &mut m);
        assert_eq!(r, dst);
        assert_eq!(m.read_u8(dst), b'a');
        assert_eq!(m.read_u8(dst + 3), b'd');
    }

    #[test]
    fn unknown_external_is_deterministic() {
        let mut m = Memory::new();
        let mut h = StdHost::default();
        let a = h.call("mystery", &[1, 2], &mut m);
        let b = h.call("mystery", &[1, 2], &mut m);
        let c = h.call("mystery", &[1, 3], &mut m);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
