//! A C-like pretty-printer for MiniC (Display impls).

use std::fmt;

use crate::ast::{Expr, Function, MemWidth, Module, Stmt, UnOp};

fn width_name(w: MemWidth) -> &'static str {
    match w {
        MemWidth::W8 => "u8",
        MemWidth::W16 => "u16",
        MemWidth::W32 => "u32",
        MemWidth::W64 => "u64",
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(c) => write!(f, "{c}"),
            Expr::Var(n) => write!(f, "{n}"),
            Expr::Unary(op, a) => match op {
                UnOp::Neg => write!(f, "-({a})"),
                UnOp::Not => write!(f, "~({a})"),
                UnOp::Trunc(w) => write!(f, "({})({a})", width_name(*w)),
                UnOp::Sext(w) => write!(f, "(i{})({a})", w.bytes() * 8),
            },
            Expr::Binary(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
            Expr::Load { addr, width } => write!(f, "*({}*)({addr})", width_name(*width)),
            Expr::Call { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

fn fmt_block(f: &mut fmt::Formatter<'_>, stmts: &[Stmt], indent: usize) -> fmt::Result {
    for s in stmts {
        fmt_stmt(f, s, indent)?;
    }
    Ok(())
}

fn fmt_stmt(f: &mut fmt::Formatter<'_>, s: &Stmt, indent: usize) -> fmt::Result {
    let pad = "  ".repeat(indent);
    match s {
        Stmt::Let { name, init } => writeln!(f, "{pad}u64 {name} = {init};"),
        Stmt::Assign { name, value } => writeln!(f, "{pad}{name} = {value};"),
        Stmt::Store { addr, width, value } => {
            writeln!(f, "{pad}*({}*)({addr}) = {value};", width_name(*width))
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            writeln!(f, "{pad}if ({cond}) {{")?;
            fmt_block(f, then_body, indent + 1)?;
            if else_body.is_empty() {
                writeln!(f, "{pad}}}")
            } else {
                writeln!(f, "{pad}}} else {{")?;
                fmt_block(f, else_body, indent + 1)?;
                writeln!(f, "{pad}}}")
            }
        }
        Stmt::While { cond, body } => {
            writeln!(f, "{pad}while ({cond}) {{")?;
            fmt_block(f, body, indent + 1)?;
            writeln!(f, "{pad}}}")
        }
        Stmt::Return(Some(e)) => writeln!(f, "{pad}return {e};"),
        Stmt::Return(None) => writeln!(f, "{pad}return;"),
        Stmt::ExprStmt(e) => writeln!(f, "{pad}{e};"),
        Stmt::Break => writeln!(f, "{pad}break;"),
        Stmt::Continue => writeln!(f, "{pad}continue;"),
    }
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_stmt(f, self, 0)
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u64 {}(", self.name)?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "u64 {p}")?;
        }
        writeln!(f, ") {{")?;
        fmt_block(f, &self.body, 1)?;
        writeln!(f, "}}")
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "// module {}", self.name)?;
        for func in &self.functions {
            writeln!(f, "{func}")?;
        }
        Ok(())
    }
}
