//! The external-procedure library MiniC programs may call.
//!
//! The set mirrors the call targets visible in the paper's figures and
//! corpus (e.g. `memcpy` and `write_bytes` in Figure 2, the cleanup
//! wrappers of Coreutils' `sort.c` in Figure 7).

/// Signature of an external procedure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExternalFn {
    /// Symbol name.
    pub name: &'static str,
    /// Number of (register) arguments.
    pub arity: u8,
    /// Whether the return value is meaningful.
    pub returns: bool,
}

/// All known externals.
pub const EXTERNALS: &[ExternalFn] = &[
    ExternalFn {
        name: "memcpy",
        arity: 3,
        returns: true,
    },
    ExternalFn {
        name: "memset",
        arity: 3,
        returns: true,
    },
    ExternalFn {
        name: "strlen",
        arity: 1,
        returns: true,
    },
    ExternalFn {
        name: "write_bytes",
        arity: 2,
        returns: true,
    },
    ExternalFn {
        name: "checksum",
        arity: 2,
        returns: true,
    },
    ExternalFn {
        name: "alloc",
        arity: 1,
        returns: true,
    },
    ExternalFn {
        name: "log_msg",
        arity: 1,
        returns: false,
    },
    ExternalFn {
        name: "cleanup",
        arity: 0,
        returns: false,
    },
    ExternalFn {
        name: "close_stdout",
        arity: 0,
        returns: false,
    },
    ExternalFn {
        name: "cs_enter",
        arity: 0,
        returns: true,
    },
    ExternalFn {
        name: "cs_leave",
        arity: 1,
        returns: false,
    },
    ExternalFn {
        name: "abort_msg",
        arity: 1,
        returns: false,
    },
    ExternalFn {
        name: "get_tick",
        arity: 0,
        returns: true,
    },
];

/// Looks up an external by name.
pub fn external(name: &str) -> Option<&'static ExternalFn> {
    EXTERNALS.iter().find(|e| e.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_known() {
        assert_eq!(external("memcpy").map(|e| e.arity), Some(3));
        assert!(external("nope").is_none());
    }

    #[test]
    fn arities_fit_register_convention() {
        for e in EXTERNALS {
            assert!(e.arity <= 6, "{} exceeds register args", e.name);
        }
    }
}
