//! Concrete evaluation of IVL procedures.
//!
//! Used for two things: semantic strand *hashing* (bucket strands whose
//! outputs agree on shared pseudo-random inputs, an exactness-preserving
//! prefilter for the verifier) and fast refutation inside the verifier
//! (a differing concrete run is a sound proof of inequivalence).

use std::rc::Rc;

use crate::ast::{Op, Operand, Proc, Sort, VarId};

/// A concrete memory value: a pseudo-random base image (identified by
/// `seed`) plus an overlay of stores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemImage {
    /// Identifies the unconstrained base content.
    pub seed: u64,
    /// Store overlay, oldest first: `(addr, width_bits, value)`.
    pub stores: Rc<Vec<(u64, u32, u64)>>,
}

impl MemImage {
    /// A fresh image with no stores.
    pub fn new(seed: u64) -> MemImage {
        MemImage {
            seed,
            stores: Rc::new(Vec::new()),
        }
    }

    fn base_byte(&self, addr: u64) -> u8 {
        // splitmix-style hash of (seed, addr).
        let mut z = self.seed ^ addr.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (z ^ (z >> 31)) as u8
    }

    /// Reads one byte, honouring the store overlay (newest wins).
    pub fn read_byte(&self, addr: u64) -> u8 {
        for (a, w, v) in self.stores.iter().rev() {
            let bytes = u64::from(w / 8);
            if addr.wrapping_sub(*a) < bytes {
                let k = addr.wrapping_sub(*a);
                return (v >> (8 * k)) as u8;
            }
        }
        self.base_byte(addr)
    }

    /// Reads `width` bits little-endian.
    pub fn read(&self, addr: u64, width: u32) -> u64 {
        let mut v = 0u64;
        for i in 0..u64::from(width / 8) {
            v |= u64::from(self.read_byte(addr.wrapping_add(i))) << (8 * i);
        }
        v
    }

    /// Returns a new image with one more store.
    pub fn store(&self, addr: u64, width: u32, value: u64) -> MemImage {
        let mut stores = (*self.stores).clone();
        stores.push((addr, width, value & width_mask(width)));
        MemImage {
            seed: self.seed,
            stores: Rc::new(stores),
        }
    }
}

/// A concrete value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Val {
    /// A bitvector (masked to its width by construction).
    Bv(u64),
    /// A memory image.
    Mem(MemImage),
}

impl Val {
    /// The bitvector payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is a memory image.
    pub fn bv(&self) -> u64 {
        match self {
            Val::Bv(v) => *v,
            Val::Mem(_) => panic!("expected bitvector value"),
        }
    }
}

fn width_mask(w: u32) -> u64 {
    if w >= 64 {
        u64::MAX
    } else {
        (1u64 << w) - 1
    }
}

fn sext(v: u64, w: u32) -> i64 {
    if w >= 64 {
        v as i64
    } else {
        ((v << (64 - w)) as i64) >> (64 - w)
    }
}

/// Generates the deterministic default input assignment for `p` from a
/// sample seed. Inputs with the same position get the same value across
/// procedures, which is what makes cross-procedure signature hashing
/// meaningful.
pub fn default_inputs(p: &Proc, seed: u64) -> Vec<(VarId, Val)> {
    p.inputs()
        .iter()
        .enumerate()
        .map(|(i, id)| {
            let mut z = seed
                .wrapping_mul(0x2545_f491_4f6c_dd1d)
                .wrapping_add(i as u64 + 1)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15);
            z ^= z >> 29;
            let v = match p.var(*id).sort {
                Sort::Bv(w) => Val::Bv(z & width_mask(w)),
                Sort::Mem => Val::Mem(MemImage::new(z)),
            };
            (*id, v)
        })
        .collect()
}

/// Evaluates every variable of `p` under the given input assignment.
///
/// Returns one value per variable id. Unassigned inputs default to zero /
/// empty memory.
///
/// # Panics
///
/// Panics if `p` is ill-formed (use [`Proc::validate`] first).
pub fn eval_proc(p: &Proc, inputs: &[(VarId, Val)]) -> Vec<Val> {
    let mut vals: Vec<Option<Val>> = vec![None; p.vars.len()];
    for (id, v) in inputs {
        vals[id.index()] = Some(v.clone());
    }
    for id in p.inputs() {
        if vals[id.index()].is_none() {
            vals[id.index()] = Some(match p.var(id).sort {
                Sort::Bv(_) => Val::Bv(0),
                Sort::Mem => Val::Mem(MemImage::new(0)),
            });
        }
    }
    let get = |vals: &Vec<Option<Val>>, o: &Operand| -> Val {
        match o {
            Operand::Var(v) => vals[v.index()].clone().expect("SSA order"),
            Operand::Const { value, width } => Val::Bv(value & width_mask(*width)),
        }
    };
    for s in &p.stmts {
        let args: Vec<Val> = s.args.iter().map(|a| get(&vals, a)).collect();
        let width = match p.var(s.dst).sort {
            Sort::Bv(w) => w,
            Sort::Mem => 0,
        };
        let m = width_mask(width);
        let out = match s.op {
            Op::Copy => args[0].clone(),
            Op::Add => Val::Bv(args[0].bv().wrapping_add(args[1].bv()) & m),
            Op::Sub => Val::Bv(args[0].bv().wrapping_sub(args[1].bv()) & m),
            Op::Mul => Val::Bv(args[0].bv().wrapping_mul(args[1].bv()) & m),
            Op::And => Val::Bv(args[0].bv() & args[1].bv()),
            Op::Or => Val::Bv(args[0].bv() | args[1].bv()),
            Op::Xor => Val::Bv(args[0].bv() ^ args[1].bv()),
            Op::Shl => {
                let sh = args[1].bv() % u64::from(width);
                Val::Bv(args[0].bv().wrapping_shl(sh as u32) & m)
            }
            Op::LShr => {
                let sh = args[1].bv() % u64::from(width);
                Val::Bv(args[0].bv().wrapping_shr(sh as u32) & m)
            }
            Op::AShr => {
                let sh = (args[1].bv() % u64::from(width)) as u32;
                let w = width;
                Val::Bv(((sext(args[0].bv(), w) >> sh) as u64) & m)
            }
            Op::Not => Val::Bv(!args[0].bv() & m),
            Op::Neg => Val::Bv(args[0].bv().wrapping_neg() & m),
            Op::Eq => Val::Bv(u64::from(args[0] == args[1])),
            Op::Ne => Val::Bv(u64::from(args[0] != args[1])),
            Op::Ult => Val::Bv(u64::from(args[0].bv() < args[1].bv())),
            Op::Ule => Val::Bv(u64::from(args[0].bv() <= args[1].bv())),
            Op::Slt => {
                let w = arg_width(p, s, 0);
                Val::Bv(u64::from(sext(args[0].bv(), w) < sext(args[1].bv(), w)))
            }
            Op::Sle => {
                let w = arg_width(p, s, 0);
                Val::Bv(u64::from(sext(args[0].bv(), w) <= sext(args[1].bv(), w)))
            }
            Op::Ite => {
                if args[0].bv() != 0 {
                    args[1].clone()
                } else {
                    args[2].clone()
                }
            }
            Op::Zext(_) => Val::Bv(args[0].bv() & m),
            Op::Sext(to) => {
                let from = arg_width(p, s, 0);
                Val::Bv((sext(args[0].bv(), from) as u64) & width_mask(to))
            }
            Op::Extract(hi, lo) => Val::Bv((args[0].bv() >> lo) & width_mask(hi - lo + 1)),
            Op::Concat => {
                let lo_w = arg_width(p, s, 1);
                Val::Bv(((args[0].bv() << lo_w) | args[1].bv()) & m)
            }
            Op::Load(w) => match &args[0] {
                Val::Mem(img) => Val::Bv(img.read(args[1].bv(), w)),
                Val::Bv(_) => panic!("load from non-memory"),
            },
            Op::Store(w) => match &args[0] {
                Val::Mem(img) => Val::Mem(img.store(args[1].bv(), w, args[2].bv())),
                Val::Bv(_) => panic!("store to non-memory"),
            },
        };
        vals[s.dst.index()] = Some(out);
    }
    vals.into_iter()
        .map(|v| v.expect("all vars assigned"))
        .collect()
}

fn arg_width(p: &Proc, s: &crate::ast::Stmt, i: usize) -> u32 {
    match p.operand_sort(&s.args[i]) {
        Sort::Bv(w) => w,
        Sort::Mem => panic!("expected bitvector argument"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::InputKind;
    use crate::lift::lift;
    use esh_asm::parse_proc;

    fn lift_text(text: &str) -> Proc {
        let p = parse_proc(&format!("proc t\nentry:\n{text}")).expect("parses");
        lift("t", &p.blocks[0].insts)
    }

    #[test]
    fn memory_overlay_semantics() {
        let img = MemImage::new(7);
        let base = img.read(0x100, 32);
        let img2 = img.store(0x100, 16, 0xbeef);
        assert_eq!(img2.read(0x100, 16), 0xbeef);
        // The upper two bytes still come from the base image.
        assert_eq!(img2.read(0x100, 32) & 0xffff, 0xbeef);
        assert_eq!(img2.read(0x100, 32) >> 16, base >> 16);
        // Newest store wins.
        let img3 = img2.store(0x101, 8, 0x11);
        assert_eq!(img3.read(0x100, 16), 0x11ef);
    }

    #[test]
    fn eval_matches_x86_semantics() {
        // lea r14d, [r12+0x13]: r14 = zext32(r12[31:0]... actually
        // (r12 + 0x13)[31:0] zero-extended.
        let p = lift_text("lea r14d, [r12+0x13]");
        let inputs: Vec<(VarId, Val)> = p
            .inputs()
            .iter()
            .map(|i| (*i, Val::Bv(0xffff_ffff_ffff_fff0)))
            .collect();
        let vals = eval_proc(&p, &inputs);
        // Find the final zext64 temp (the new r14 value).
        let last = p.temps().last().copied().expect("temps");
        assert_eq!(vals[last.index()].bv(), 0x0000_0000_0000_0003);
    }

    #[test]
    fn eval_cmp_thunk() {
        let p = lift_text("cmp rdi, rsi\njl out");
        let ins = p.inputs();
        let mk = |a: u64, b: u64| vec![(ins[0], Val::Bv(a)), (ins[1], Val::Bv(b))];
        let taken = |a: u64, b: u64| {
            let vals = eval_proc(&p, &mk(a, b));
            let last = p.temps().last().copied().expect("temps");
            vals[last.index()].bv()
        };
        assert_eq!(taken(1, 2), 1);
        assert_eq!(taken(2, 1), 0);
        assert_eq!(taken(u64::MAX, 0), 1); // signed
    }

    #[test]
    fn default_inputs_are_deterministic_and_seed_sensitive() {
        let p = lift_text("mov rax, rdi\nadd rax, rsi");
        let a = default_inputs(&p, 1);
        let b = default_inputs(&p, 1);
        let c = default_inputs(&p, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn call_result_is_input_driven() {
        let p = lift_text("call strlen/1\nadd rax, 0x1");
        let call_in = p
            .inputs()
            .into_iter()
            .find(|i| p.var(*i).input == Some(InputKind::CallResult))
            .expect("call result input");
        let vals = eval_proc(&p, &[(call_in, Val::Bv(41))]);
        // The add result is the last 64-bit temp (materialized flag bits
        // follow it).
        let last = p
            .temps()
            .into_iter()
            .rfind(|t| p.var(*t).sort == Sort::Bv(64))
            .expect("temps");
        assert_eq!(vals[last.index()].bv(), 42);
    }

    #[test]
    fn store_then_load_roundtrips() {
        let p = lift_text("mov qword ptr [rdi], rsi\nmov rax, qword ptr [rdi]");
        let ins = p.inputs();
        // inputs: rdi, mem, rsi (order of first use).
        let mut assign = Vec::new();
        for i in &ins {
            match p.var(*i).sort {
                Sort::Bv(_) => assign.push((
                    *i,
                    Val::Bv(if p.var(*i).name.starts_with("rsi") {
                        0xabcd
                    } else {
                        0x1000
                    }),
                )),
                Sort::Mem => assign.push((*i, Val::Mem(MemImage::new(3)))),
            }
        }
        let vals = eval_proc(&p, &assign);
        let last = p.temps().last().copied().expect("temps");
        assert_eq!(vals[last.index()].bv(), 0xabcd);
    }
}
